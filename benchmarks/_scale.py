"""Shared scaling knobs for the benchmark suite.

The paper runs 1 M-file campaigns for 8 hours on a 32 GB emulated device;
this suite divides counts by ~1000 and the device DRAM by the same factor
(see DESIGN.md, "Scaling note").  All reported quantities are ratios.
"""

from repro.bench.harness import DEFAULT_GEOMETRY
from repro.workloads import (
    Fileserver,
    MicroCreate,
    MicroDelete,
    MicroMkdir,
    MicroRmdir,
    OLTP,
    Varmail,
    Webproxy,
    Webserver,
)

GEOMETRY = DEFAULT_GEOMETRY
ALL_FS = ["ext4", "f2fs", "nova", "pmfs", "bytefs"]
FS_LABEL = {"ext4": "E", "f2fs": "F", "nova": "N", "pmfs": "P", "bytefs": "B"}


def micro_workloads():
    return {
        "create": MicroCreate(n_files=480),
        "delete": MicroDelete(n_files=480),
        "mkdir": MicroMkdir(n_dirs=480),
        "rmdir": MicroRmdir(n_dirs=480),
    }


def macro_workloads():
    return {
        "varmail": Varmail(ops_per_thread=20),
        "fileserver": Fileserver(ops_per_thread=12),
        "webproxy": Webproxy(ops_per_thread=12),
        "webserver": Webserver(ops_per_thread=10),
        "oltp": OLTP(ops_per_thread=15),
    }
