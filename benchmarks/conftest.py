"""Benchmark-suite plumbing.

Each benchmark regenerates one table or figure from the paper.  The
reproduced rows/series are collected here and printed in the terminal
summary, and also written to ``benchmarks/results/<name>.txt`` so the
numbers survive the run.

``pytest-benchmark`` measures the *wall time of the simulation harness*;
the paper's quantities (throughput, latency, traffic) are *simulated*
metrics, reported in the printed tables and in each benchmark's
``extra_info``.
"""

from __future__ import annotations

import os
from typing import List

import pytest

_TABLES: List[str] = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_table():
    """Record a reproduced table: shown in the summary and saved to disk."""

    def _record(name: str, text: str) -> None:
        _TABLES.append(text)
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        with open(os.path.join(_RESULTS_DIR, f"{name}.txt"), "w") as f:
            f.write(text + "\n")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "================ reproduced tables and figures ================"
    )
    for text in _TABLES:
        for line in text.splitlines():
            terminalreporter.write_line(line)
