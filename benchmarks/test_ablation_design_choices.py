"""Extra ablations for the design choices DESIGN.md calls out.

* the interface-selection threshold R (paper fixes 1/8);
* the log-cleaning trigger (paper fixes 85 %).
"""

from dataclasses import replace

from repro.bench.harness import DEFAULT_GEOMETRY, run_workload
from repro.bench.report import format_table
from repro.core.bytefs import build_stack
from repro.fs.vfs import O_CREAT, O_RDWR
from repro.workloads import OLTP


def _oltp_with_threshold(threshold):
    wl = OLTP(ops_per_thread=12)
    # run_workload builds its own fs; easiest is to patch the config after
    # build via a custom run
    from repro.bench.harness import run_workload as _run
    from repro.fs.extfs import ExtFSConfig

    from repro.core.bytefs import build_stack as _build
    clock, stats, device, fs = _build(
        "bytefs", geometry=DEFAULT_GEOMETRY, n_threads=wl.n_threads,
        log_bytes=1 << 20,
    )
    fs.cfg.byte_ratio_threshold = threshold
    wl.setup(fs)
    clock.sync_all()
    stats.reset()
    t0 = clock.elapsed_ns
    gens = {tid: g for tid, g in enumerate(wl.make_threads(fs))}
    ops = 0
    while gens:
        tid = min(gens, key=clock.time_of)
        clock.switch(tid)
        try:
            next(gens[tid])
            ops += 1
        except StopIteration:
            del gens[tid]
    elapsed = clock.elapsed_ns - t0
    return ops / (elapsed / 1e9)


def test_byte_threshold_sweep(benchmark, record_table):
    thresholds = [0.0, 1 / 32, 1 / 8, 1 / 4, 1 / 2]
    tput = benchmark.pedantic(
        lambda: {t: _oltp_with_threshold(t) for t in thresholds},
        rounds=1, iterations=1,
    )
    base = tput[1 / 8]
    rows = [[f"R<{t:.3f}", v / 1000.0, v / base] for t, v in tput.items()]
    table = format_table(
        "Ablation: interface-selection threshold R on OLTP",
        ["threshold", "kops/s", "vs 1/8"],
        rows,
    )
    record_table("ablation_r_threshold", table)
    # the paper's 1/8 should beat pure-block (0.0) on small-overwrite OLTP
    assert tput[1 / 8] >= tput[0.0] * 0.95


def test_clean_threshold_sweep(benchmark, record_table):
    from repro.sim.clock import VirtualClock
    from repro.ssd.device import MSSD, MSSDConfig
    from repro.ssd.firmware.bytefs_fw import ByteFSFirmwareConfig
    from repro.stats.traffic import StructKind, TrafficStats

    def run_with(threshold):
        cfg = MSSDConfig(
            geometry=DEFAULT_GEOMETRY,
            firmware="bytefs",
            bytefs_fw=ByteFSFirmwareConfig(
                log_bytes=256 << 10, clean_threshold=threshold
            ),
        )
        clock = VirtualClock(1)
        device = MSSD(cfg, clock, TrafficStats())
        t0 = clock.now
        for i in range(8000):
            device.store((i % 997) * 64, bytes(64), StructKind.DATA)
        return 8000 / ((clock.now - t0) / 1e9), device.firmware.cleanings

    thresholds = [0.5, 0.7, 0.85, 0.95]
    results = benchmark.pedantic(
        lambda: {t: run_with(t) for t in thresholds}, rounds=1, iterations=1
    )
    rows = [
        [f"{t:.2f}", v[0] / 1000.0, v[1]] for t, v in results.items()
    ]
    table = format_table(
        "Ablation: log-cleaning trigger threshold (byte-write stream)",
        ["threshold", "kops/s", "cleanings"],
        rows,
    )
    record_table("ablation_clean_threshold", table)
    # Each configuration must sustain the stream (background cleaning).
    for t, (tput, cleanings) in results.items():
        assert tput > 0
        assert cleanings > 0
