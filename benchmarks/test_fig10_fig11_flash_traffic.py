"""Figures 10 and 11: SSD-internal flash traffic.

Paper averages: ByteFS reduces flash traffic by 2.9x / 2.1x / 3.2x /
2.2x vs Ext4 / F2FS / NOVA / PMFS, thanks to coalescing small writes in
the in-device log.  The paper also notes ByteFS *can* show higher flash
read traffic on some benches (read-modify-write during log cleaning) —
which is tolerated because cleaning is off the critical path.
"""

from repro.bench.harness import run_workload
from repro.bench.report import format_table
from benchmarks._scale import ALL_FS, FS_LABEL, GEOMETRY, macro_workloads, micro_workloads


def _run(workloads):
    out = {}
    for wl_name, wl in workloads.items():
        for fs in ALL_FS:
            out[(fs, wl_name)] = run_workload(
                fs, wl, geometry=GEOMETRY, unmount=True
            )
    return out


def _table(results, workload_names, title, fname, record_table):
    rows = []
    for wl in workload_names:
        base = results[("ext4", wl)]
        base_total = base.flash_read + base.flash_write or 1
        row = [wl]
        for fs in ALL_FS:
            r = results[(fs, wl)]
            row.append((r.flash_read + r.flash_write) / base_total)
        rows.append(row)
    table = format_table(
        title, ["workload"] + [FS_LABEL[f] for f in ALL_FS], rows
    )
    record_table(fname, table)
    return rows


def test_fig10_micro_flash(benchmark, record_table):
    results = benchmark.pedantic(
        lambda: _run(micro_workloads()), rounds=1, iterations=1
    )
    _table(
        results, list(micro_workloads()),
        "Figure 10: flash traffic on micro benches (normalized to Ext4)",
        "fig10_micro_flash", record_table,
    )
    # ByteFS coalesces metadata: far fewer flash writes than Ext4 on the
    # pure-metadata benches.
    for wl in ("mkdir", "rmdir"):
        assert (
            results[("bytefs", wl)].flash_write
            < results[("ext4", wl)].flash_write
        )


def test_fig11_macro_flash(benchmark, record_table):
    results = benchmark.pedantic(
        lambda: _run(macro_workloads()), rounds=1, iterations=1
    )
    _table(
        results, list(macro_workloads()),
        "Figure 11: flash traffic on macro workloads (normalized to Ext4)",
        "fig11_macro_flash", record_table,
    )
    for wl in ("varmail", "oltp"):
        assert (
            results[("bytefs", wl)].flash_write
            < results[("ext4", wl)].flash_write
        )
