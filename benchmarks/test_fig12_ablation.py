"""Figure 12: performance breakdown of the ByteFS design components.

Variants (cumulative): ByteFS-Dual (dual interface for metadata only,
page-granular device cache), ByteFS-Log (+ firmware log-structured
memory and transactions), ByteFS (+ adaptive byte/block data path).

Paper shape: each component adds throughput; varmail/fileserver benefit
from both the dual interface and the log; webproxy mostly from the dual
interface; OLTP from the log + flexible interface selection.
"""

from repro.bench.harness import run_workload
from repro.bench.report import format_table, normalize
from repro.workloads import OLTP, Fileserver, Varmail, Webproxy
from benchmarks._scale import GEOMETRY

VARIANTS = ["ext4", "bytefs-dual", "bytefs-log", "bytefs"]


def _workloads():
    return {
        "varmail": Varmail(ops_per_thread=20),
        "fileserver": Fileserver(ops_per_thread=12),
        "webproxy": Webproxy(ops_per_thread=12),
        "oltp": OLTP(ops_per_thread=15),
    }


def _run_all():
    tput = {}
    for wl_name, wl in _workloads().items():
        for fs in VARIANTS:
            tput[(fs, wl_name)] = run_workload(
                fs, wl, geometry=GEOMETRY
            ).throughput
    return tput


def test_fig12(benchmark, record_table):
    tput = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = []
    norm = {}
    for wl in _workloads():
        values = {fs: tput[(fs, wl)] for fs in VARIANTS}
        norm[wl] = normalize(values, "ext4")
        rows.append([wl] + [norm[wl][fs] for fs in VARIANTS])
    table = format_table(
        "Figure 12: ByteFS component ablation (normalized to Ext4)",
        ["workload", "ext4", "dual", "log", "full"],
        rows,
    )
    record_table("fig12_ablation", table)
    for wl in _workloads():
        # The full design is the best (or near-tied-best) ByteFS variant
        # and never loses to Ext4.  (On OLTP at this scale, Dual's
        # page-granular device *read* cache trades against coordinated
        # caching within a few percent — see EXPERIMENTS.md.)
        full = norm[wl]["bytefs"]
        assert full >= norm[wl]["bytefs-dual"] * 0.90
        assert full >= norm[wl]["bytefs-log"] * 0.95
        assert full >= 0.9
    # The firmware log (deferring the per-write durability barrier to a
    # single COMMIT) must contribute on the fsync-heavy mail workload.
    assert norm["varmail"]["bytefs-log"] > norm["varmail"]["bytefs-dual"]
