"""Figure 13: sensitivity to NAND flash latency, including the CXL point.

The paper sweeps flash read/write latencies from low-end to high-end
NAND and adds a CXL configuration (175 ns cacheline latency + 3/80 us
flash).  Shapes: ByteFS beats F2FS and NOVA at every latency point; its
advantage grows with flash *write* latency (the log hides programs);
NOVA gains a lot from CXL but stays behind ByteFS.
"""

from repro.bench.harness import run_workload
from repro.bench.report import format_table
from repro.nand.timing import TimingModel
from repro.workloads import Varmail
from benchmarks._scale import GEOMETRY

POINTS = [
    ("3/80", 3, 80, False),
    ("40/60", 40, 60, False),
    ("60/150", 60, 150, False),
    ("95/208", 95, 208, False),
    ("3/80*CXL", 3, 80, True),
]
SYSTEMS = ["f2fs", "nova", "bytefs"]


def _run_all():
    out = {}
    for label, read_us, write_us, cxl in POINTS:
        timing = TimingModel().with_flash_latency(read_us, write_us)
        if cxl:
            timing = timing.as_cxl()
        for fs in SYSTEMS:
            wl = Varmail(ops_per_thread=15)
            out[(fs, label)] = run_workload(
                fs, wl, geometry=GEOMETRY, timing=timing
            ).throughput
    return out


def test_fig13(benchmark, record_table):
    tput = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = []
    for label, *_ in POINTS:
        rows.append(
            [label] + [tput[(fs, label)] / 1000.0 for fs in SYSTEMS]
        )
    table = format_table(
        "Figure 13: varmail throughput (kops/s) vs flash latency (R/W us)",
        ["flash R/W"] + SYSTEMS,
        rows,
    )
    record_table("fig13_flash_latency", table)
    # ByteFS wins at every latency point.
    for label, *_ in POINTS:
        assert tput[("bytefs", label)] > tput[("f2fs", label)]
        assert tput[("bytefs", label)] > tput[("nova", label)]
    # ByteFS's advantage over F2FS grows with flash write latency.
    adv_low = tput[("bytefs", "3/80")] / tput[("f2fs", "3/80")]
    adv_high = tput[("bytefs", "95/208")] / tput[("f2fs", "95/208")]
    assert adv_high > adv_low * 0.9
    # CXL helps NOVA (cheaper byte interface) more than it helps F2FS.
    nova_gain = tput[("nova", "3/80*CXL")] / tput[("nova", "3/80")]
    f2fs_gain = tput[("f2fs", "3/80*CXL")] / tput[("f2fs", "3/80")]
    assert nova_gain > f2fs_gain
