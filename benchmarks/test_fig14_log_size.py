"""Figure 14: sensitivity to the SSD DRAM write-log size.

The paper sweeps 64 MB -> 1 GB (normalized to 64 MB) and finds most
workloads gain from a larger log (more coalescing before flushing),
while workloads with good write locality (OLTP) gain only marginally.
Scaled here by the same ~1/256 factor as the device.
"""

from repro.bench.harness import run_workload
from repro.bench.report import format_table, normalize
from repro.workloads import OLTP, Varmail
from benchmarks._scale import GEOMETRY

LOG_SIZES = [256 << 10, 512 << 10, 1 << 20, 2 << 20]  # 64MB..1GB scaled


def _run_all():
    out = {}
    for wl_name, wl_cls, kwargs in (
        ("varmail", Varmail, dict(ops_per_thread=20)),
        ("oltp", OLTP, dict(ops_per_thread=15)),
    ):
        for log_bytes in LOG_SIZES:
            out[(wl_name, log_bytes)] = run_workload(
                "bytefs", wl_cls(**kwargs), geometry=GEOMETRY,
                log_bytes=log_bytes,
            ).throughput
    return out


def test_fig14(benchmark, record_table):
    tput = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = []
    norm = {}
    for wl in ("varmail", "oltp"):
        values = {str(s): tput[(wl, s)] for s in LOG_SIZES}
        norm[wl] = normalize(values, str(LOG_SIZES[0]))
        rows.append([wl] + [norm[wl][str(s)] for s in LOG_SIZES])
    table = format_table(
        "Figure 14: throughput vs log size (normalized to smallest)",
        ["workload"] + [f"{s >> 10}KB" for s in LOG_SIZES],
        rows,
    )
    record_table("fig14_log_size", table)
    for wl in ("varmail", "oltp"):
        # A larger log never hurts more than a few percent.
        assert norm[wl][str(LOG_SIZES[-1])] >= 0.9
    benchmark.extra_info.update(
        {wl: {str(s): round(tput[(wl, s)], 1) for s in LOG_SIZES}
         for wl in ("varmail", "oltp")}
    )
