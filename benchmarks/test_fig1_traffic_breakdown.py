"""Figure 1: host-SSD traffic breakdown by data structure (Ext4, F2FS).

Reproduces all four panels: write and read traffic, micro benches and
macro workloads, broken down per file-system data structure.  Key shapes
from §3.2-3.3: inodes dominate metadata writes, journaling is a large
share of Ext4's writes under ordered mode, superblock traffic is
negligible, dentries matter on directory-heavy workloads.
"""

from repro.bench.harness import run_workload
from repro.bench.report import format_table
from repro.stats.traffic import StructKind
from benchmarks._scale import GEOMETRY, macro_workloads, micro_workloads

KINDS = [
    StructKind.SUPERBLOCK,
    StructKind.BITMAP,
    StructKind.INODE,
    StructKind.DENTRY,
    StructKind.DATA_PTR,
    StructKind.JOURNAL,
    StructKind.DATA,
]


def _run_all():
    out = {}
    workloads = {**micro_workloads(), **macro_workloads()}
    for wl_name, wl in workloads.items():
        for fs in ("ext4", "f2fs"):
            out[(fs, wl_name)] = run_workload(fs, wl, geometry=GEOMETRY)
    return out


def _panel(results, attr, title, fname, record_table):
    rows = []
    for (fs, wl_name), r in sorted(results.items()):
        breakdown = getattr(r, attr)
        total = sum(breakdown.values()) or 1
        rows.append(
            [f"{fs}:{wl_name}"]
            + [100.0 * breakdown.get(k, 0) / total for k in KINDS]
        )
    table = format_table(
        title,
        ["fs:workload"] + [k.value[:9] for k in KINDS],
        rows,
        col_width=11,
    )
    record_table(fname, table)


def test_fig1_all_panels(benchmark, record_table):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    _panel(
        results, "write_breakdown",
        "Figure 1 (a,b): write traffic breakdown by structure (%)",
        "fig1_write_breakdown", record_table,
    )
    _panel(
        results, "read_breakdown",
        "Figure 1 (c,d): read traffic breakdown by structure (%)",
        "fig1_read_breakdown", record_table,
    )

    def share(fs, wl, kind, attr="write_breakdown"):
        bd = getattr(results[(fs, wl)], attr)
        return bd.get(kind, 0) / (sum(bd.values()) or 1)

    # superblock traffic is negligible everywhere (paper: 0.23 % avg)
    for (fs, wl) in results:
        assert share(fs, wl, StructKind.SUPERBLOCK) < 0.05
    # metadata (inode + journaled inode updates) is a major share on the
    # metadata-heavy create bench
    assert (
        share("ext4", "create", StructKind.INODE)
        + share("ext4", "create", StructKind.JOURNAL)
    ) > 0.20
    # journaling is a big slice of Ext4 writes on fsync-heavy varmail
    assert share("ext4", "varmail", StructKind.JOURNAL) > 0.15
    # F2FS has no journal traffic at all
    for wl in ("varmail", "oltp"):
        assert share("f2fs", wl, StructKind.JOURNAL) == 0.0
    # dentry writes matter on directory-churning workloads for ext4
    assert share("ext4", "mkdir", StructKind.DENTRY) > 0.05
    # data dominates writes on the data-heavy fileserver
    assert share("ext4", "fileserver", StructKind.DATA) > 0.5
