"""Figure 6: overall throughput of E/F/N/P/B, normalized to Ext4.

Paper shapes to reproduce:

* micro: ByteFS beats Ext4 (6.0x in the paper) and F2FS (2.4x) on create;
  delete is roughly a wash; NOVA/PMFS are mostly *worse* than Ext4/F2FS;
* varmail: ByteFS > F2FS (1.9x paper) > Ext4; NOVA/PMFS poor;
* webserver/webproxy read-heavy: ByteFS ~= Ext4 ~= F2FS (block reads +
  host caching), webproxy slightly favours ByteFS (1.3x paper);
* oltp: ByteFS clearly ahead of Ext4 (4.1x paper).
"""

from repro.bench.harness import run_workload
from repro.bench.report import format_table, normalize
from benchmarks._scale import ALL_FS, FS_LABEL, GEOMETRY, macro_workloads, micro_workloads


def _run_all():
    tput = {}
    workloads = {**micro_workloads(), **macro_workloads()}
    for wl_name, wl in workloads.items():
        for fs in ALL_FS:
            tput[(fs, wl_name)] = run_workload(
                fs, wl, geometry=GEOMETRY
            ).throughput
    return tput


def test_fig6(benchmark, record_table):
    tput = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    workload_names = list(micro_workloads()) + list(macro_workloads())
    rows = []
    norm = {}
    for wl in workload_names:
        values = {fs: tput[(fs, wl)] for fs in ALL_FS}
        norm[wl] = normalize(values, "ext4")
        rows.append([wl] + [norm[wl][fs] for fs in ALL_FS])
    table = format_table(
        "Figure 6: throughput normalized to Ext4",
        ["workload"] + [FS_LABEL[f] for f in ALL_FS],
        rows,
    )
    record_table("fig6_throughput", table)
    for wl in workload_names:
        benchmark.extra_info[wl] = {
            fs: round(norm[wl][fs], 3) for fs in ALL_FS
        }
    # --- shape assertions (who wins, roughly by how much) ---
    # create: ByteFS ahead of both block file systems
    assert norm["create"]["bytefs"] > 1.5
    assert norm["create"]["bytefs"] > norm["create"]["f2fs"]
    # NOVA/PMFS do not beat ByteFS anywhere
    for wl in workload_names:
        assert norm[wl]["bytefs"] >= norm[wl]["nova"] * 0.95
        assert norm[wl]["bytefs"] >= norm[wl]["pmfs"] * 0.95
    # varmail: ByteFS > F2FS > Ext4
    assert norm["varmail"]["bytefs"] > norm["varmail"]["f2fs"] > 1.0
    # read-heavy webserver: E/F/B within ~20% of each other
    assert 0.8 < norm["webserver"]["bytefs"] < 1.3
    assert 0.8 < norm["webserver"]["f2fs"] < 1.3
    # oltp: ByteFS clearly ahead of Ext4
    assert norm["oltp"]["bytefs"] > 1.4
