"""Figure 7: YCSB A-F average and 95th-percentile latency on the LSM KV
store (RocksDB stand-in), normalized to Ext4.

Paper shapes: ByteFS improves read avg/tail latency by ~2.3x/2.0x and
write latency by ~1.3x/1.6x vs F2FS on the 50/50 workloads (A, F);
YCSB-C (read-only) and YCSB-E (uniform scans) show little difference.
"""

from repro.bench.harness import run_workload
from repro.bench.report import format_table
from repro.workloads import YCSB
from benchmarks._scale import GEOMETRY

SYSTEMS = ["ext4", "f2fs", "bytefs"]
LETTERS = ["A", "B", "C", "D", "E", "F"]


def _run_all():
    out = {}
    for letter in LETTERS:
        for fs in SYSTEMS:
            wl = YCSB(
                letter, n_records=600, n_ops=600, n_threads=4,
                value_size=400,
            )
            r = run_workload(fs, wl, geometry=GEOMETRY)
            out[(fs, letter)] = r
    return out


def test_fig7(benchmark, record_table):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = []
    for letter in LETTERS:
        for op in ("read", "update"):
            base = results[("ext4", letter)].latency
            if base.count(op) == 0 or base.mean(op) == 0:
                continue
            row = [f"{letter}:{op}"]
            for fs in SYSTEMS:
                lat = results[(fs, letter)].latency
                row.append(base.mean(op) / max(1e-9, lat.mean(op)))
                row.append(
                    base.percentile(op, 95)
                    / max(1e-9, lat.percentile(op, 95))
                )
            rows.append(row)
    cols = ["wl:op"]
    for fs in SYSTEMS:
        cols += [f"{fs[:4]} avg", f"{fs[:4]} p95"]
    table = format_table(
        "Figure 7: YCSB latency speedup vs Ext4 (higher = faster)",
        cols,
        rows,
        col_width=11,
    )
    record_table("fig7_ycsb_latency", table)
    # Shape: ByteFS reads on the write-heavy mixes are not slower than
    # Ext4's (writes block reads in the LSM; ByteFS commits faster).
    lat_b = results[("bytefs", "A")].latency
    lat_e = results[("ext4", "A")].latency
    assert lat_b.mean("update") < lat_e.mean("update")
    # Read-only YCSB-C: all three close (within 30%).
    c_b = results[("bytefs", "C")].latency.mean("read")
    c_e = results[("ext4", "C")].latency.mean("read")
    assert 0.7 < c_b / c_e < 1.4
