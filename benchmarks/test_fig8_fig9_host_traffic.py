"""Figures 8 and 9: host-SSD I/O traffic across all five file systems.

Figure 8 (micro benches, normalized to NOVA in the paper): ByteFS cuts
metadata traffic vs the block file systems by an order of magnitude
(11.4x/6.1x average vs Ext4/F2FS in the paper) and still beats the
byte-interface NVM file systems (which double-write metadata for
consistency).

Figure 9 (macro workloads, normalized to Ext4): ByteFS also reduces
*data* traffic vs NOVA/PMFS on read-heavy workloads by exploiting the
block interface plus host caching.
"""

from repro.bench.harness import run_workload
from repro.bench.report import format_table
from benchmarks._scale import ALL_FS, FS_LABEL, GEOMETRY, macro_workloads, micro_workloads


def _run(workloads):
    out = {}
    for wl_name, wl in workloads.items():
        for fs in ALL_FS:
            out[(fs, wl_name)] = run_workload(fs, wl, geometry=GEOMETRY)
    return out


def _table(results, workload_names, baseline, title, fname, record_table):
    rows = []
    for wl in workload_names:
        base = results[(baseline, wl)]
        base_total = base.host_write + base.host_read or 1
        row = [wl]
        for fs in ALL_FS:
            r = results[(fs, wl)]
            row.append((r.host_write + r.host_read) / base_total)
        rows.append(row)
    table = format_table(
        title, ["workload"] + [FS_LABEL[f] for f in ALL_FS], rows
    )
    record_table(fname, table)


def test_fig8_micro_traffic(benchmark, record_table):
    results = benchmark.pedantic(
        lambda: _run(micro_workloads()), rounds=1, iterations=1
    )
    _table(
        results, list(micro_workloads()), "nova",
        "Figure 8: host-SSD traffic on micro benches (normalized to NOVA)",
        "fig8_micro_traffic", record_table,
    )
    # metadata traffic: ByteFS far below the block file systems on create
    for wl in ("create", "mkdir"):
        b = results[("bytefs", wl)].meta_write
        assert results[("ext4", wl)].meta_write > 4 * b
        assert results[("f2fs", wl)].meta_write > 2 * b
    # ByteFS's in-place 64 B updates stay in the same ballpark as the
    # NVM file systems' byte-granular paths (the paper's NOVA/PMFS also
    # pay out-of-place logs / undo journals; our simplified versions
    # journal less state, so we bound the gap rather than demand a win)
    for wl in ("create", "mkdir"):
        assert (
            results[("bytefs", wl)].meta_write
            <= 4 * results[("nova", wl)].meta_write
        )


def test_fig9_macro_traffic(benchmark, record_table):
    results = benchmark.pedantic(
        lambda: _run(macro_workloads()), rounds=1, iterations=1
    )
    _table(
        results, list(macro_workloads()), "ext4",
        "Figure 9: host-SSD traffic on macro workloads (normalized to Ext4)",
        "fig9_macro_traffic", record_table,
    )
    # total traffic: ByteFS below Ext4 everywhere
    for wl in macro_workloads():
        r_b = results[("bytefs", wl)]
        r_e = results[("ext4", wl)]
        assert r_b.host_write <= r_e.host_write
    # read-heavy workloads: ByteFS's block reads + host caching beat the
    # DAX file systems' repeated byte-interface reads
    b = results[("bytefs", "webserver")]
    n = results[("nova", "webserver")]
    assert n.data_read > 1.5 * b.data_read
    bp = results[("bytefs", "webproxy")]
    np_ = results[("nova", "webproxy")]
    assert np_.data_read > bp.data_read
