"""§4.3 / §4.6 micro-claims: skip-list index cost and CoW overhead.

* §4.3: average lookup latency of a fully utilized 256 MB log is 89 ns
  on the embedded core, and the index costs ~21 MB of SSD DRAM
  (~8 % of the log).  We validate the simulated-firmware cost model and
  the index's real memory accounting at our scale.
* §4.6: CoW duplicate pages occupy ~16 % of the page cache on average;
  XOR diffing runs at AVX2 speed (936 cycles / 4 KB page).
"""

import random

from repro.bench.report import format_table
from repro.host.page_cache import CachedPage
from repro.ssd.firmware.log_index import ChunkEntry, LogIndex
from repro.ssd.firmware.write_log import aligned_entry_size


def _fill_index(log_bytes=1 << 20):
    idx = LogIndex(64 << 20, 4096, partition_bytes=1 << 20)
    rng = random.Random(9)
    used = 0
    seq = 0
    while used < log_bytes:
        lpa = rng.randrange(1024)
        # realistic mixed entry sizes: 64 B cachelines up to 1 KB runs
        length = rng.choice((64, 128, 256, 512, 1024))
        offset = rng.randrange(max(1, (4096 - length) // 64)) * 64
        idx.insert(
            lpa,
            ChunkEntry(offset=offset, length=length, log_off=used,
                       txid=None, seq=seq, data=bytes(length)),
        )
        used += aligned_entry_size(length)
        seq += 1
    return idx


def test_sec43_index_lookup_and_memory(benchmark, record_table):
    idx = benchmark.pedantic(_fill_index, rounds=1, iterations=1)
    rng = random.Random(10)
    hits = sum(
        1 for _ in range(2000) if idx.lookup(rng.randrange(1024)) is not None
    )
    mem = idx.memory_bytes()
    ratio = mem / (1 << 20)
    rows = [
        ["chunks indexed", idx.n_chunks],
        ["pages indexed", idx.n_pages],
        ["lookups hit (of 2000)", hits],
        ["index bytes", mem],
        ["index/log ratio", round(ratio, 3)],
    ]
    table = format_table(
        "Sec 4.3: write-log index cost (paper: ~21MB per 256MB log = 0.08)",
        ["metric", "value"], rows, col_width=24,
    )
    record_table("sec43_skiplist", table)
    # the index overhead ratio should be under ~15% of the log, as in the
    # paper (21/256 = 8.2%)
    assert ratio < 0.15
    assert hits > 1500  # most pages of a full log are indexed


def test_sec46_cow_xor(benchmark, record_table):
    def run():
        rng = random.Random(3)
        ratios = []
        for _ in range(200):
            page = CachedPage(bytes(4096), 4096)
            page.mark_dirty(cow=True)
            # small random overwrites (the buffered-write common case)
            for _w in range(rng.randrange(1, 4)):
                off = rng.randrange(4096 - 64)
                page.data[off : off + 32] = bytes([1]) * 32
            ratios.append(page.modified_ratio())
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    below_threshold = sum(1 for r in ratios if r < 1 / 8) / len(ratios)
    rows = [
        ["pages sampled", len(ratios)],
        ["mean modified ratio", round(sum(ratios) / len(ratios), 4)],
        ["share taking byte path", round(below_threshold, 3)],
    ]
    table = format_table(
        "Sec 4.6: CoW modified-ratio distribution for small overwrites",
        ["metric", "value"], rows, col_width=24,
    )
    record_table("sec46_xor_cow", table)
    # small writes should nearly all select the byte interface
    assert below_threshold > 0.95
