"""§5.5: recovery time after a crash.

The paper powers off after YCSB and measures 4.2 s average recovery
(0.9 s loading device DRAM + 2.7 s scanning the log and TxLog and
flushing committed entries).  At our ~1/256 scale the absolute number is
far smaller; the shape to reproduce is that recovery time is dominated
by the log scan + flush and is proportional to log occupancy.
"""

from repro.bench.harness import DEFAULT_GEOMETRY
from repro.bench.report import format_table
from repro.core.bytefs import build_stack
from repro.fs.vfs import O_CREAT, O_RDWR
from repro.kv.db import KVConfig, KVStore
from repro.sim.clock import MSEC


def _crash_after_ycsb(n_ops):
    clock, stats, device, fs = build_stack(
        "bytefs", geometry=DEFAULT_GEOMETRY
    )
    db = KVStore(fs, config=KVConfig(memtable_bytes=64 << 10))
    for i in range(n_ops):
        db.put(f"user{i % 200:06d}".encode(), bytes(200))
    device.power_fail()
    fs.crash()
    rec = fs.remount()
    # verify the volume is usable after recovery
    fd = fs.open("/post", O_CREAT | O_RDWR)
    fs.write(fd, b"alive")
    fs.fsync(fd)
    fs.close(fd)
    return rec


def test_sec55_recovery_time(benchmark, record_table):
    recs = benchmark.pedantic(
        lambda: [_crash_after_ycsb(n) for n in (100, 400, 1200)],
        rounds=1,
        iterations=1,
    )
    rows = []
    for n, rec in zip((100, 400, 1200), recs):
        rows.append(
            [
                f"{n} ops",
                rec["duration_ns"] / MSEC,
                rec["scanned_entries"],
                rec["flushed_pages"],
                rec["discarded_entries"],
            ]
        )
    table = format_table(
        "Sec 5.5: ByteFS recovery after power loss",
        ["run", "time ms", "scanned", "flushed", "discarded"],
        rows,
    )
    record_table("sec55_recovery", table)
    # recovery time grows with the amount of logged state
    times = [rec["duration_ns"] for rec in recs]
    assert times[2] >= times[0]
    assert all(rec["duration_ns"] > 0 for rec in recs)
