"""Table 1: characteristics of the simulated M-SSD vs the paper's numbers.

Measures cacheline read/write latency through the byte interface and
sequential 4 KB bandwidth through the block interface on the simulated
device, and checks they land on the paper's configured values.
"""

from repro.sim.clock import VirtualClock
from repro.ssd.device import MSSD, MSSDConfig
from repro.stats.traffic import StructKind, TrafficStats
from repro.bench.report import format_table
from benchmarks._scale import GEOMETRY


def _measure():
    clock = VirtualClock(1)
    device = MSSD(MSSDConfig(geometry=GEOMETRY), clock, TrafficStats())
    # cacheline write (posted + persist barrier = the durable write path)
    t0 = clock.now
    device.store(0, b"x" * 64, StructKind.DATA)
    w_lat_us = (clock.now - t0) / 1000
    # cacheline read served from the write log (device DRAM)
    t0 = clock.now
    device.load(0, 64, StructKind.DATA)
    r_lat_us = (clock.now - t0) / 1000
    # sequential block bandwidth: a 16-page burst (the FTL write-buffer
    # size); longer streams are NAND-limited in this 8-channel device
    n = 16
    t0 = clock.now
    device.write_blocks(100, b"y" * 4096 * n, StructKind.DATA)
    w_bw = 4096 * n / (clock.now - t0)  # GB/s (bytes/ns)
    device.flush_all()
    t0 = clock.now
    device.read_blocks(100, n, StructKind.DATA)
    r_bw = 4096 * n / (clock.now - t0)
    return r_lat_us, w_lat_us, r_bw, w_bw


def test_table1(benchmark, record_table):
    r_lat, w_lat, r_bw, w_bw = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    rows = [
        ("M-SSD (paper)", 4.8, 0.6, 3.5, 2.5),
        ("M-SSD (sim)", r_lat, w_lat, r_bw, w_bw),
    ]
    table = format_table(
        "Table 1: M-SSD device characteristics",
        ["device", "R lat us", "W lat us", "R GB/s", "W GB/s"],
        rows,
        col_width=14,
    )
    record_table("table1_devices", table)
    benchmark.extra_info.update(
        {"read_lat_us": r_lat, "write_lat_us": w_lat}
    )
    # The posted cacheline write itself is 0.6 us; the durable-write path
    # adds the write-verify read.  Reads include the log lookup.
    assert 4.8 <= r_lat < 6.0
    assert 0.6 <= w_lat < 6.5
    # Burst write bandwidth approaches the link number; reads are
    # NAND-limited (8 channels x 40 us) in this configuration.
    assert w_bw > 1.0
    assert r_bw > 0.4
