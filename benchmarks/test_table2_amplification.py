"""Table 2: read/write I/O amplification of Ext4 and F2FS.

Paper values: Ext4 write amplification 1.43-6.21x, read 1.15-1.71x;
F2FS write 1.06-2.14x, read 1.13-1.67x across the five macro workloads.
The shape to reproduce: both block file systems amplify writes well above
1x, Ext4 worse than F2FS on metadata-heavy workloads.
"""

import math

import pytest

from repro.bench.harness import run_workload
from repro.bench.report import format_table
from benchmarks._scale import GEOMETRY, macro_workloads


def _measure():
    rows = []
    amps = {}
    for wl_name, wl in macro_workloads().items():
        for fs in ("ext4", "f2fs"):
            r = run_workload(
                fs, wl.__class__(**_wl_args(wl)), geometry=GEOMETRY,
                unmount=True,  # flush the page cache: count all writes
            )
            amps[(fs, wl_name)] = (
                r.write_amplification, r.read_amplification
            )
    return amps


def _wl_args(wl):
    return {"ops_per_thread": wl.ops_per_thread}


def test_table2(benchmark, record_table):
    amps = benchmark.pedantic(_measure, rounds=1, iterations=1)
    names = ["varmail", "fileserver", "webproxy", "webserver", "oltp"]
    rows = []
    for fs in ("ext4", "f2fs"):
        rows.append(
            [f"{fs} W"] + [amps[(fs, n)][0] for n in names]
        )
        rows.append(
            [f"{fs} R"] + [amps[(fs, n)][1] for n in names]
        )
    table = format_table(
        "Table 2: I/O amplification of the block interface",
        ["fs/dir"] + names,
        rows,
    )
    record_table("table2_amplification", table)
    # Shape assertions: write amplification > 1 everywhere it is defined.
    for (fs, wl), (wamp, _ramp) in amps.items():
        if not math.isnan(wamp):
            assert wamp > 1.0, (fs, wl)
    # Ext4 journals double-write: worse than F2FS on the fsync-heavy mail
    # workload.
    assert amps[("ext4", "varmail")][0] > amps[("f2fs", "varmail")][0]
