#!/usr/bin/env python3
"""Demonstrate crash consistency and firmware-level recovery (§4.7).

We write three files with different durability levels, pull the plug,
run RECOVER(), and show exactly what survived.

Run:  python examples/crash_recovery.py
"""

from repro.core import build_stack
from repro.fs.vfs import O_CREAT, O_RDWR


def main() -> None:
    clock, stats, device, fs = build_stack("bytefs")

    # 1. fsync'd file: the transaction committed via COMMIT(TxID).
    fd = fs.open("/durable.txt", O_CREAT | O_RDWR)
    fs.write(fd, b"committed before the crash")
    fs.fsync(fd)
    fs.close(fd)

    # 2. created but never synced: both the (batched) namespace
    #    transaction and the data transaction are still uncommitted.
    fd = fs.open("/half.txt", O_CREAT | O_RDWR)
    fs.write(fd, b"this data was never fsynced")

    # 3. power failure.  Battery-backed SSD DRAM keeps the write log and
    #    TxLog; everything volatile on the host is gone.
    device.power_fail()
    fs.crash()

    t0 = clock.now
    report = fs.remount()  # issues RECOVER() to the firmware
    print("recovery report:")
    print(f"  log entries scanned   : {report['scanned_entries']:.0f}")
    print(f"  uncommitted discarded : {report['discarded_entries']:.0f}")
    print(f"  pages flushed to flash: {report['flushed_pages']:.0f}")
    print(f"  simulated duration    : {report['duration_ns'] / 1e6:.3f} ms")

    fd = fs.open("/durable.txt", O_RDWR)
    print("\n/durable.txt ->", fs.pread(fd, 0, 100))
    fs.close(fd)
    print("/half.txt exists:", fs.exists("/half.txt"),
          "(its transactions never committed, so the create and the",
          "data were both discarded — same durability contract as Ext4)")


if __name__ == "__main__":
    main()
