#!/usr/bin/env python3
"""Reproduce the paper's §3 study in miniature: where does the I/O
amplification of a block-interface file system come from, and how much
of it does the dual interface remove?

Run:  python examples/io_amplification_study.py
"""

from repro.bench.harness import run_workload
from repro.stats.traffic import StructKind
from repro.workloads import Varmail


def main() -> None:
    kinds = [
        StructKind.BITMAP, StructKind.INODE, StructKind.DENTRY,
        StructKind.DATA_PTR, StructKind.JOURNAL, StructKind.DATA,
    ]
    header = f"{'fs':>8} {'W amp':>7} " + "".join(
        f"{k.value[:8]:>10}" for k in kinds
    )
    print("write traffic breakdown (bytes) on Varmail:")
    print(header)
    for fs_name in ("ext4", "f2fs", "nova", "pmfs", "bytefs"):
        r = run_workload(
            fs_name, Varmail(ops_per_thread=15), unmount=True
        )
        row = f"{fs_name:>8} {r.write_amplification:7.2f} " + "".join(
            f"{r.write_breakdown.get(k, 0):>10}" for k in kinds
        )
        print(row)
    print("\nEvery metadata structure that the paper's Table 3 marks as")
    print("'prefers byte writes' shrinks by an order of magnitude under")
    print("ByteFS; journal traffic disappears entirely because the")
    print("firmware write log doubles as the redo log.")


if __name__ == "__main__":
    main()
