#!/usr/bin/env python3
"""Quickstart: build a ByteFS stack, use it like a file system, and look
at what the dual byte/block interface did for you.

Run:  python examples/quickstart.py
"""

from repro.core import build_stack
from repro.fs.vfs import O_CREAT, O_RDWR
from repro.stats.traffic import Direction, Interface


def main() -> None:
    # One call builds the whole simulated stack: flash array, FTL,
    # PCIe link, ByteFS firmware (log-structured SSD DRAM), and the
    # ByteFS host file system on top.
    clock, stats, device, fs = build_stack("bytefs")

    # Plain POSIX-style usage.
    fs.mkdir("/projects")
    fd = fs.open("/projects/notes.txt", O_CREAT | O_RDWR)
    fs.write(fd, b"memory-semantic SSDs support byte AND block access\n")
    fs.fsync(fd)

    # A small in-place edit: ByteFS tracks the dirty cachelines with CoW
    # and persists just those bytes over the byte interface (R < 1/8).
    fs.pwrite(fd, 0, b"Memory")
    fs.fsync(fd)
    print("file content:", fs.pread(fd, 0, 51).decode().strip())
    fs.close(fd)

    byte_w = stats.host_ssd_bytes(
        direction=Direction.WRITE, interface=Interface.BYTE
    )
    block_w = stats.host_ssd_bytes(
        direction=Direction.WRITE, interface=Interface.BLOCK
    )
    print(f"bytes written via byte interface : {byte_w}")
    print(f"bytes written via block interface: {block_w}")
    print(f"write amplification              : "
          f"{stats.amplification(Direction.WRITE):.2f}x")
    print(f"simulated elapsed time           : {clock.elapsed_s * 1e6:.1f} us")
    print(f"firmware log appends             : "
          f"{stats.counters.get('fw_log_appends', 0)}")


if __name__ == "__main__":
    main()
