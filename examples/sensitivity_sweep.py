#!/usr/bin/env python3
"""Sensitivity sweep (Figures 13/14): vary flash latency — including a
CXL configuration — and the SSD DRAM log size, and watch how the design
points move.

Run:  python examples/sensitivity_sweep.py
"""

from repro.bench.harness import run_workload
from repro.nand.timing import TimingModel
from repro.workloads import Varmail


def flash_latency_sweep() -> None:
    print("flash-latency sweep (varmail, kops/s):")
    print(f"{'flash R/W us':>14} {'f2fs':>8} {'nova':>8} {'bytefs':>8}")
    points = [(3, 80), (40, 60), (95, 208)]
    for read_us, write_us in points:
        timing = TimingModel().with_flash_latency(read_us, write_us)
        row = f"{f'{read_us}/{write_us}':>14}"
        for fs_name in ("f2fs", "nova", "bytefs"):
            r = run_workload(
                fs_name, Varmail(ops_per_thread=10), timing=timing
            )
            row += f" {r.throughput / 1000:8.1f}"
        print(row)
    # the CXL point: 175 ns cacheline access (paper's "3/80*")
    timing = TimingModel().with_flash_latency(3, 80).as_cxl()
    row = f"{'3/80 + CXL':>14}"
    for fs_name in ("f2fs", "nova", "bytefs"):
        r = run_workload(
            fs_name, Varmail(ops_per_thread=10), timing=timing
        )
        row += f" {r.throughput / 1000:8.1f}"
    print(row)


def log_size_sweep() -> None:
    print("\nlog-size sweep (varmail on ByteFS):")
    print(f"{'log size':>10} {'kops/s':>8} {'cleanings':>10}")
    for log_bytes in (256 << 10, 512 << 10, 1 << 20, 2 << 20):
        r = run_workload(
            "bytefs", Varmail(ops_per_thread=10), log_bytes=log_bytes
        )
        print(
            f"{log_bytes >> 10:>9}K {r.throughput / 1000:8.1f} "
            f"{r.counters.get('fw_log_cleanings', 0):>10}"
        )


if __name__ == "__main__":
    flash_latency_sweep()
    log_size_sweep()
