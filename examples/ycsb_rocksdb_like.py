#!/usr/bin/env python3
"""Run YCSB-A over the LSM key-value store (the RocksDB stand-in) on two
file systems and compare latency — the paper's Figure 7 in miniature.

Run:  python examples/ycsb_rocksdb_like.py
"""

from repro.bench.harness import run_workload
from repro.workloads import YCSB


def main() -> None:
    print(f"{'fs':>8} {'tput kops/s':>12} {'read avg us':>12} "
          f"{'read p95 us':>12} {'upd avg us':>12} {'upd p95 us':>12}")
    for fs_name in ("ext4", "f2fs", "bytefs"):
        wl = YCSB("A", n_records=800, n_ops=800, n_threads=4,
                  value_size=400)
        r = run_workload(fs_name, wl)
        lat = r.latency
        print(
            f"{fs_name:>8} {r.throughput / 1000:12.1f} "
            f"{lat.mean('read') / 1000:12.2f} "
            f"{lat.percentile('read', 95) / 1000:12.2f} "
            f"{lat.mean('update') / 1000:12.2f} "
            f"{lat.percentile('update', 95) / 1000:12.2f}"
        )
    print("\nByteFS commits the WAL fsync through the firmware write log,")
    print("so the synchronous update path avoids block-interface round")
    print("trips — which also un-blocks reads queued behind writes.")


if __name__ == "__main__":
    main()
