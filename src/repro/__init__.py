"""ByteFS reproduction (ASPLOS 2025).

A discrete-event simulation of the full ByteFS system — the host file
system, modified SSD firmware, the memory-semantic SSD device model,
four baseline file systems, an LSM key-value store, and the paper's
complete evaluation harness.

Most users start with :func:`repro.core.build_stack`::

    from repro.core import build_stack
    clock, stats, device, fs = build_stack("bytefs")

or the command line: ``python -m repro run --fs bytefs --workload varmail``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
