"""Static analysis and runtime invariant checking for the simulation.

Two halves (see ``docs/ANALYSIS.md``):

* **AST lint passes** (:mod:`repro.analysis.linter`) enforce the
  conventions the crash-sweep framework and the deterministic substrate
  rely on: every device-visible mutation routes through a registered
  crash site (CS001), no wall-clock or ambient randomness outside
  ``repro.sim`` (DET001/DET002/DET003), and host-layer code talks to the
  device only through ``repro.ssd.device`` (LAY001).  Run them with
  ``python -m repro lint``.

* **FSSan** (:mod:`repro.analysis.fssan`), a runtime invariant
  sanitizer: contract checks inside the firmware, FTL, and simulation
  substrate that are no-ops unless ``REPRO_SANITIZE=1`` (or
  :func:`repro.analysis.fssan.enable` is called).
"""

from repro.analysis.findings import Finding, RULES

__all__ = ["Finding", "RULES"]
