"""Lint baselines: grandfather known findings, fail only on new ones.

``repro lint --baseline lint-baseline.json`` loads the committed
baseline, moves findings that match it into ``result.grandfathered``
(tracked but not failing), and leaves only *new* findings to drive the
exit code — so CI gates on regressions while pre-existing debt is
visible and versioned.  ``--update-baseline`` rewrites the file from
the current findings.

Findings are matched by ``(rule, path, line, message)``.  Line numbers
make the match deliberately strict: editing near a grandfathered
finding re-surfaces it, which is the moment to fix it or re-baseline
consciously.  Paths are repo-relative (see ``linter._display``), so the
same baseline matches locally and in CI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Set, Tuple

from repro.analysis.findings import Finding

BASELINE_SCHEMA = "repro.lint.baseline/v1"

Key = Tuple[str, str, int, str]


def finding_key(f: Finding) -> Key:
    return (f.rule, f.path, f.line, f.message)


def render_baseline(findings: List[Finding]) -> str:
    """Deterministic baseline document for the given findings."""
    entries = sorted(
        (f.to_dict() for f in findings),
        key=lambda d: (d["path"], d["line"], d["col"], d["rule"],
                       d["message"]),
    )
    return json.dumps(
        {"schema": BASELINE_SCHEMA, "findings": entries}, indent=2
    ) + "\n"


def load_baseline(path: Path) -> Set[Key]:
    """Parse a baseline file into a set of match keys."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}")
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: not a {BASELINE_SCHEMA} document "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    keys: Set[Key] = set()
    for entry in doc.get("findings", []):
        try:
            keys.add((
                entry["rule"], entry["path"], int(entry["line"]),
                entry["message"],
            ))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"{path}: malformed baseline entry: {exc}")
    return keys


def apply_baseline(result, keys: Set[Key]) -> None:
    """Split ``result.findings`` into new vs. grandfathered in place."""
    fresh: List[Finding] = []
    for f in result.findings:
        if finding_key(f) in keys:
            result.grandfathered.append(f)
        else:
            fresh.append(f)
    result.findings = fresh
