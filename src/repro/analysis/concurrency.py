"""CONC001/002/003: concurrency-readiness checks for the sharded-serving
refactor (ROADMAP item 1).

Splitting the single simulation loop across worker processes breaks
byte-identical replay whenever state silently spans the shard boundary.
These passes run on the :class:`repro.analysis.project.ProjectIndex`
import closure of the serve path (``repro.cluster`` and everything it
transitively imports) and flag the three classic hazards *before* the
refactor lands:

* **CONC001** — module-level mutable containers that the code actually
  mutates.  Each worker process gets its own copy of module globals, so
  accumulated state diverges between shards and the merged result stops
  replaying.  Pure memo caches (value a function of the key alone) are
  safe to diverge and may carry a justified ``allow[CONC001]``.
* **CONC002** — objects that alias across shard boundaries by
  construction: class-level mutable container attributes (shared by
  every instance, including devices on different shards) and mutable
  default arguments (one container shared by every call).
* **CONC003** — result-merge code whose output order depends on
  dict/set iteration over per-shard partitions (``by_*``, ``per_*``,
  ``shards``, ``partitions``): iteration order is insertion/hash order,
  which differs once partitions are filled by racing workers.  Iterate
  ``sorted(...)`` so the merged document is order-stable.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.determinism import _ImportTable
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectIndex, is_mutable_container_expr

#: Roots of the serve path: CONC checks cover everything these import.
SERVE_ROOTS = ("repro.cluster", "repro.telemetry")

#: Methods that mutate the receiver container in place.
MUTATING_METHODS = {
    "append", "appendleft", "add", "update", "setdefault",
    "pop", "popitem", "popleft", "clear", "extend", "insert",
    "remove", "discard", "__setitem__",
}

#: (module, global name) -> justification.  Module-level state that is
#: deliberately per-process: diverging copies across shard workers are
#: harmless because the state never feeds a merged, replayable result.
CONC001_EXEMPT: Dict[Tuple[str, str], str] = {
    # Sanitizer trip tallies are per-process diagnostics read only by
    # fssan.sanitized() in the same process; results never merge them.
    ("repro.analysis.fssan", "COUNTS"): "per-process sanitizer tallies",
}

#: Partition-shaped names: per-shard/per-tenant groupings whose merge
#: order must not leak hash/insertion order.
_PARTITION_RE = re.compile(
    r"(^|_)(by|per)_|(^|_)(shards?|partitions?|parts)$"
)


def _serve_reachable(index: ProjectIndex) -> Set[str]:
    return index.reachable(SERVE_ROOTS)


def _final_name(node: ast.AST) -> Optional[str]:
    """Trailing identifier of a Name/Attribute chain (``a.b.c`` -> c)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# ---------------------------------------------------------------------- #
# CONC001: mutated module-level state reachable from the serve path
# ---------------------------------------------------------------------- #


class _MutationScan(ast.NodeVisitor):
    """Find mutations of module globals within one module.

    Tracks per-scope local bindings so a local that shadows a global
    name is not miscounted.  Records the first mutation line per name.
    """

    def __init__(self, global_names: Set[str]) -> None:
        self.global_names = global_names
        self.mutations: Dict[str, int] = {}
        self._locals: List[Set[str]] = [set()]

    def _is_global(self, name: str) -> bool:
        return name in self.global_names and not any(
            name in scope for scope in self._locals[1:]
        )

    def _record(self, node: ast.AST) -> None:
        name = _final_name(node)
        if name is not None and isinstance(node, ast.Name) \
                and self._is_global(name):
            self.mutations.setdefault(name, node.lineno)

    def visit_FunctionDef(self, node) -> None:
        local: Set[str] = {a.arg for a in node.args.args}
        local.update(a.arg for a in node.args.kwonlyargs)
        local.update(a.arg for a in node.args.posonlyargs)
        if node.args.vararg:
            local.add(node.args.vararg.arg)
        if node.args.kwarg:
            local.add(node.args.kwarg.arg)
        declared_global: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and sub is not node:
                continue
            if isinstance(sub, ast.Global):
                declared_global.update(sub.names)
            elif isinstance(sub, ast.Assign):
                for tgt in sub.targets:
                    if isinstance(tgt, ast.Name):
                        local.add(tgt.id)
            elif isinstance(sub, ast.AnnAssign) \
                    and isinstance(sub.target, ast.Name):
                local.add(sub.target.id)
        self._locals.append(local - declared_global)
        self.generic_visit(node)
        self._locals.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:
        for tgt in node.targets:
            if isinstance(tgt, ast.Subscript):
                self._record(tgt.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Subscript):
            self._record(node.target.value)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for tgt in node.targets:
            if isinstance(tgt, ast.Subscript):
                self._record(tgt.value)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in MUTATING_METHODS:
            self._record(func.value)
        self.generic_visit(node)


def check_global_state(index: ProjectIndex) -> List[Finding]:
    """CONC001 over the serve-path import closure."""
    reach = _serve_reachable(index)
    out: List[Finding] = []

    # Cross-module mutations (``mod.NAME.update(...)`` through an
    # import alias) are collected from every indexed module.
    cross: Dict[Tuple[str, str], int] = {}
    for mod in index.modules:
        table = _ImportTable(mod.tree)
        for node in ast.walk(mod.tree):
            target: Optional[ast.AST] = None
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUTATING_METHODS:
                target = node.func.value
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                tgts = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for tgt in tgts:
                    if isinstance(tgt, ast.Subscript):
                        target = tgt.value
            if not isinstance(target, ast.Attribute):
                continue
            resolved = table.resolve(target)
            if resolved is None or "." not in resolved:
                continue
            owner, name = resolved.rsplit(".", 1)
            if owner in index.globals and name in index.globals[owner]:
                cross.setdefault((owner, name), node.lineno)

    for mod in index.modules:
        if mod.name not in reach:
            continue
        bindings = index.globals.get(mod.name, {})
        mutable = {n for n, b in bindings.items() if b.mutable}
        if not mutable:
            continue
        scan = _MutationScan(mutable)
        scan.visit(mod.tree)
        for name in sorted(mutable):
            line = scan.mutations.get(name)
            if line is None and (mod.name, name) in cross:
                line = cross[(mod.name, name)]
            if line is None:
                continue  # never mutated: a constant registry, fine
            if (mod.name, name) in CONC001_EXEMPT:
                continue
            b = bindings[name]
            out.append(Finding(
                "CONC001", mod.display, b.line, b.col,
                f"module-level mutable container '{name}' is mutated "
                f"(line {line}) and reachable from the serve path; "
                "per-process copies diverge under sharded serving — "
                "pass the state explicitly, or keep it with a justified "
                "`# repro: allow[CONC001]` if divergence is harmless "
                "(e.g. a pure memo cache)",
            ))
    return out


# ---------------------------------------------------------------------- #
# CONC002: objects aliasing across shard boundaries
# ---------------------------------------------------------------------- #


def check_shard_aliasing(index: ProjectIndex) -> List[Finding]:
    """CONC002 over the serve-path import closure."""
    reach = _serve_reachable(index)
    out: List[Finding] = []
    for cls in index.classes:
        if cls.module.name not in reach:
            continue
        for attr, line, col in cls.mutable_attrs:
            out.append(Finding(
                "CONC002", cls.module.display, line, col,
                f"class attribute '{attr}' on {cls.qualname} is a "
                "mutable container shared by every instance — including "
                "devices on different shards; initialize it per instance "
                "in __init__",
            ))
    for fn in index.functions:
        if fn.module.name not in reach:
            continue
        node = fn.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for d in defaults:
            if is_mutable_container_expr(d):
                out.append(Finding(
                    "CONC002", fn.module.display, d.lineno, d.col_offset,
                    f"mutable default argument on {fn.qualname}() aliases "
                    "one container across every call (and every shard); "
                    "default to None and build it inside the function",
                ))
    return out


# ---------------------------------------------------------------------- #
# CONC003: merge order from dict/set iteration over partitions
# ---------------------------------------------------------------------- #


class _MergeOrderScan(ast.NodeVisitor):
    """Per-scope walker flagging unordered iteration over partition-
    shaped names (new instance per function scope, like DET003)."""

    #: Order-insensitive consumers: a comprehension fed straight into
    #: one of these cannot leak iteration order into the result.
    _REDUCERS = {
        "sum", "min", "max", "any", "all", "len", "sorted",
        "set", "frozenset", "Counter",
    }

    def __init__(self, module, findings: List[Finding],
                 dictish: Set[str]) -> None:
        self.module = module
        self.findings = findings
        self.dictish = set(dictish)  # names with dict/set evidence
        self._safe: Set[int] = set()  # ids of reducer-fed comprehensions

    def _collect_scope(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(node, ast.Assign) \
                        and _is_dictish_expr(node.value):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            self.dictish.add(tgt.id)
                elif isinstance(node, ast.AnnAssign) \
                        and node.value is not None \
                        and _is_dictish_expr(node.value):
                    if isinstance(node.target, ast.Name):
                        self.dictish.add(node.target.id)

    def run(self, body: List[ast.stmt]) -> None:
        self._collect_scope(body)
        for stmt in body:
            self.visit(stmt)

    def _flag_iter(self, it: ast.AST) -> None:
        name: Optional[str] = None
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute) \
                and it.func.attr in ("items", "keys", "values"):
            name = _final_name(it.func.value)
            evidence = name is not None  # .items() is dict evidence
        elif isinstance(it, ast.Name):
            name = it.id
            evidence = name in self.dictish
        else:
            return
        if name is None or not evidence:
            return
        if _PARTITION_RE.search(name) is None:
            return
        self.findings.append(Finding(
            "CONC003", self.module.display, it.lineno, it.col_offset,
            f"merge order depends on dict/set iteration over partition "
            f"'{name}'; per-shard fill order differs between workers — "
            "iterate sorted(...) so the merged result is order-stable",
        ))

    def visit_For(self, node: ast.For) -> None:
        self._flag_iter(node.iter)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) \
                and node.func.id in self._REDUCERS:
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                    ast.SetComp)):
                    self._safe.add(id(arg))
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        if id(node) not in self._safe:
            for gen in node.generators:
                self._flag_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def visit_FunctionDef(self, node) -> None:
        _MergeOrderScan(self.module, self.findings, self.dictish).run(
            node.body
        )

    visit_AsyncFunctionDef = visit_FunctionDef


def _is_dictish_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.Set, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in (
            "dict", "set", "frozenset", "defaultdict", "Counter",
            "OrderedDict",
        )
    return False


def check_merge_order(index: ProjectIndex) -> List[Finding]:
    """CONC003 over the serve-path import closure."""
    reach = _serve_reachable(index)
    out: List[Finding] = []
    for mod in index.modules:
        if mod.name not in reach:
            continue
        _MergeOrderScan(mod, out, set()).run(mod.tree.body)
    return out
