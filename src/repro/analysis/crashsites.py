"""CS001: device-visible mutations must be reachable only through the
fault injector's crash-site registration.

The crash-consistency sweep (docs/FAULTS.md) enumerates numbered sites
by replaying the workload; a mutation primitive that executes on a path
with no ``faults.site(...)`` / ``faults.point(...)`` upstream is
invisible to the sweep — the oracle can never schedule a crash there,
so torn/lost-write bugs on that path are silently untested.

The pass is an over-approximating reachability analysis on a name-keyed
call graph, restricted to the device stack (``repro.ssd``, ``repro.ftl``,
``repro.nand``):

* A function is *directly guarded* (G0) when its body calls
  ``*.faults.site(...)`` or ``*.faults.point(...)``, or when it is a
  nested ``def`` passed by name as the apply-callback to a ``site()``
  call in its enclosing function.
* Guardedness then propagates by a greatest fixed point: start with
  every function assumed guarded, and demote a function when it is not
  in G0, not exempt, and either has no in-stack callers at all or has at
  least one unguarded caller.  (Universal quantification over callers is
  what catches a primitive reachable from an unregistered entry path
  even when the same helper is also called from a guarded one.)
* ``# repro: allow[CS001]`` on the ``def`` line exempts the whole
  function and treats it as guarded for propagation — recovery code is
  the intended use, since sweeps disarm the injector before recovery.

Calls are resolved by bare name (the final attribute), so the analysis
is deliberately conservative and method-receiver-agnostic; suppression
comments are the escape hatch for collisions.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.suppress import is_suppressed

#: Module prefixes that constitute the simulated device stack.  The
#: serving layer (repro.cluster) sits at the host->device boundary but
#: drives the same device mutations, so it is swept for unregistered
#: mutation paths too.
STACK_PREFIXES = ("repro.ssd", "repro.ftl", "repro.nand", "repro.cluster")

#: Bare names of device-visible mutation primitives.
MUTATION_PRIMITIVES = {
    "write_page",
    "program_page",
    "erase_block",
    "consume",
    "insert",
    "remove_page",
    "replace",
    "byte_write",
    "block_write",
    "trim",
    "commit",
}

RULE = "CS001"


class _Context:
    """One function definition (module top level is also a context)."""

    def __init__(self, name: str, qualname: str, module, node) -> None:
        self.name = name
        self.qualname = qualname
        self.module = module
        self.node = node
        self.guarded0 = False       # body registers a site/point
        self.exempt = False         # allow[CS001] on the def line
        # (name, line, col, is_method) — bare-name calls still feed the
        # call graph but are never flagged as primitives: mutation
        # primitives are methods on device objects, and bare names would
        # collide with e.g. dataclasses.replace().
        self.calls: List[Tuple[str, int, int, bool]] = []
        self.children: Dict[str, "_Context"] = {}


def _call_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_faults_call(node: ast.Call) -> bool:
    """Match ``<anything>.faults.site(...)`` / ``.point(...)`` and bare
    ``faults.site(...)``."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in ("site", "point"):
        return False
    recv = func.value
    if isinstance(recv, ast.Attribute):
        return recv.attr == "faults"
    if isinstance(recv, ast.Name):
        return recv.id == "faults"
    return False


def _collect_contexts(module) -> List[_Context]:
    """Walk one module, building a context per function definition."""
    contexts: List[_Context] = []

    def walk(node: ast.AST, ctx: _Context, qual: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                sub = _Context(
                    child.name, f"{qual}{child.name}", module, child
                )
                sub.exempt = is_suppressed(
                    module.suppress, child.lineno, RULE
                )
                ctx.children[child.name] = sub
                contexts.append(sub)
                walk(child, sub, f"{qual}{child.name}.")
            elif isinstance(child, ast.ClassDef):
                walk(child, ctx, f"{qual}{child.name}.")
            else:
                scan_node(child, ctx)
                walk(child, ctx, qual)

    def scan_node(node: ast.AST, ctx: _Context) -> None:
        if isinstance(node, ast.Call):
            if _is_faults_call(node):
                ctx.guarded0 = True
                if node.func.attr == "site":
                    # The apply-callback passed to site() runs inside the
                    # registration: mark the nested def it names as G0.
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and arg.id in ctx.children:
                            ctx.children[arg.id].guarded0 = True
            else:
                name = _call_name(node.func)
                if name is not None:
                    ctx.calls.append((
                        name, node.lineno, node.col_offset,
                        isinstance(node.func, ast.Attribute),
                    ))

    root = _Context("<module>", f"{module.name}:<module>", module, module.tree)
    contexts.append(root)
    walk(module.tree, root, "")

    # A site() call may name a nested def *after* the statement where the
    # def appears was walked; a second pass resolves late registrations.
    for ctx in contexts:
        for node in ast.walk(ctx.node):
            if isinstance(node, ast.Call) and _is_faults_call(node) \
                    and node.func.attr == "site":
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id in ctx.children:
                        ctx.children[arg.id].guarded0 = True
    return contexts


def check_crash_sites(modules) -> List[Finding]:
    """Run CS001 over every stack module in ``modules`` together."""
    stack = [
        m for m in modules
        if any(
            m.name == p or m.name.startswith(p + ".")
            for p in STACK_PREFIXES
        )
    ]
    if not stack:
        return []

    contexts: List[_Context] = []
    for mod in stack:
        contexts.extend(_collect_contexts(mod))

    callers_of: Dict[str, Set[int]] = {}
    for i, ctx in enumerate(contexts):
        for name, _line, _col, _attr in ctx.calls:
            callers_of.setdefault(name, set()).add(i)

    # Greatest fixed point: optimistically everything is guarded, then
    # demote until stable.  Demotion is monotone, so this terminates.
    guarded = [True] * len(contexts)
    changed = True
    while changed:
        changed = False
        for i, ctx in enumerate(contexts):
            if not guarded[i] or ctx.guarded0 or ctx.exempt:
                continue
            callers = callers_of.get(ctx.name, ())
            if not callers or any(not guarded[j] for j in callers):
                guarded[i] = False
                changed = True

    findings: List[Finding] = []
    for i, ctx in enumerate(contexts):
        if guarded[i] or ctx.exempt:
            continue
        for name, line, col, is_method in ctx.calls:
            if is_method and name in MUTATION_PRIMITIVES:
                findings.append(Finding(
                    RULE, ctx.module.display, line, col,
                    f"device mutation .{name}() reachable via "
                    f"{ctx.qualname}() without a crash-site registration; "
                    "wrap the path in faults.site()/faults.point() or mark "
                    "the def with `# repro: allow[CS001]`",
                ))
    return findings
