"""CS001/CS002: device-visible mutations must be reachable only through
the fault injector's crash-site registration.

The crash-consistency sweep (docs/FAULTS.md) enumerates numbered sites
by replaying the workload; a mutation primitive that executes on a path
with no ``faults.site(...)`` / ``faults.point(...)`` upstream is
invisible to the sweep — the oracle can never schedule a crash there,
so torn/lost-write bugs on that path are silently untested.

Both rules run on the shared :class:`repro.analysis.project.ProjectIndex`
call graph, restricted to the device stack (``repro.ssd``, ``repro.ftl``,
``repro.nand``, ``repro.cluster``):

* A function is *directly guarded* (G0) when its body calls
  ``*.faults.site(...)`` or ``*.faults.point(...)``, or when it is a
  nested ``def`` passed by name as the apply-callback to a ``site()``
  call in its enclosing function.
* Guardedness then propagates by a greatest fixed point: start with
  every function assumed guarded, and demote a function when it is not
  in G0, not exempt, and either has no in-stack callers at all or has at
  least one unguarded caller.  (Universal quantification over callers is
  what catches a primitive reachable from an unregistered entry path
  even when the same helper is also called from a guarded one.)
* Calls are resolved by bare name (the final attribute), so the
  analysis is conservative and method-receiver-agnostic — except where
  the index recorded a receiver-type hint (``x = ClassName(...);
  x.m()``): that edge targets only ``ClassName``'s own method, so a
  guarded driver of one class no longer poisons every same-named method
  in the stack.
* ``# repro: allow[CS001]`` on the ``def`` header (decorators and
  multi-line signatures included) exempts the whole function and treats
  it as guarded for propagation — recovery code is the intended use,
  since sweeps disarm the injector before recovery.

**CS001** flags each unguarded mutation call site.  **CS002** reports
*how* the site is reached: a minimal unguarded call chain from an entry
function (an unguarded function nobody in the stack calls) down to the
mutation, which is what you have to guard to fix it.  The same analysis
also produces the crash-site coverage map (``repro lint
--coverage-out``): per mutation primitive, every call site with its
guarded/unguarded verdict plus the unguarded chains, as a
``repro.lint.coverage/v1`` document the crash sweep can assert against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import FunctionInfo, ProjectIndex

#: Module prefixes that constitute the simulated device stack.  The
#: serving layer (repro.cluster) sits at the host->device boundary but
#: drives the same device mutations, so it is swept for unregistered
#: mutation paths too.
STACK_PREFIXES = (
    "repro.ssd",
    "repro.ftl",
    "repro.nand",
    "repro.cluster",
    # the device-DRAM cache tier sits between firmware and the FTL and
    # issues the same mutation primitives (write-back, trim forwarding)
    "repro.devcache",
)

#: Bare names of device-visible mutation primitives.
MUTATION_PRIMITIVES = {
    "write_page",
    "program_page",
    "erase_block",
    "consume",
    "insert",
    "remove_page",
    "replace",
    "byte_write",
    "block_write",
    "trim",
    "commit",
}

RULE = "CS001"
CHAIN_RULE = "CS002"

COVERAGE_SCHEMA = "repro.lint.coverage/v1"


def _stack_contexts(index: ProjectIndex) -> List[FunctionInfo]:
    out: List[FunctionInfo] = []
    for mod in index.modules:
        if any(
            mod.name == p or mod.name.startswith(p + ".")
            for p in STACK_PREFIXES
        ):
            out.extend(index.functions_by_module[mod.name])
    return out


class _Graph:
    """Caller edges over the stack subset, with receiver-hint routing."""

    def __init__(self, index: ProjectIndex,
                 contexts: List[FunctionInfo]) -> None:
        self.index = index
        self.contexts = contexts
        self.pos = {id(c): i for i, c in enumerate(contexts)}
        # name -> caller indices for untargeted calls; (class, name) ->
        # caller indices for receiver-hinted calls that resolve to a
        # known method.
        self.by_name: Dict[str, Set[int]] = {}
        self.by_class: Dict[Tuple[str, str], Set[int]] = {}
        self.ctxs_named: Dict[str, List[int]] = {}
        for i, ctx in enumerate(contexts):
            self.ctxs_named.setdefault(ctx.name, []).append(i)
            for call in ctx.calls:
                if call.recv_class is not None \
                        and index.has_method(call.recv_class, call.name):
                    self.by_class.setdefault(
                        (call.recv_class, call.name), set()
                    ).add(i)
                else:
                    self.by_name.setdefault(call.name, set()).add(i)

    def callers_of(self, ctx: FunctionInfo) -> Set[int]:
        found = set(self.by_name.get(ctx.name, ()))
        if ctx.class_name is not None:
            found |= self.by_class.get((ctx.class_name, ctx.name), set())
        return found

    def callees_of(self, i: int) -> Set[int]:
        """Indices a call from context ``i`` may land on (stack only)."""
        out: Set[int] = set()
        for call in self.contexts[i].calls:
            targeted = call.recv_class is not None \
                and self.index.has_method(call.recv_class, call.name)
            for j in self.ctxs_named.get(call.name, ()):
                ctx = self.contexts[j]
                if targeted and ctx.class_name != call.recv_class:
                    continue
                out.add(j)
        return out


def _fixed_point(graph: _Graph) -> List[bool]:
    """Greatest fixed point: optimistically everything is guarded, then
    demote until stable.  Demotion is monotone, so this terminates."""
    contexts = graph.contexts
    guarded = [True] * len(contexts)
    changed = True
    while changed:
        changed = False
        for i, ctx in enumerate(contexts):
            if not guarded[i] or ctx.guarded0 or ctx.is_exempt(RULE):
                continue
            callers = graph.callers_of(ctx)
            if not callers or any(not guarded[j] for j in callers):
                guarded[i] = False
                changed = True
    return guarded


def _entry_chains(graph: _Graph, guarded: List[bool]) -> Dict[int, List[int]]:
    """Minimal unguarded chain (entry -> ... -> ctx) per unguarded
    context, by multi-source BFS from the entry set (unguarded contexts
    with no in-stack callers).  Contexts only reachable through cycles
    fall back to a chain of just themselves."""
    contexts = graph.contexts
    entries = [
        i for i, ctx in enumerate(contexts)
        if not guarded[i] and not ctx.is_exempt(RULE)
        and not graph.callers_of(ctx)
    ]
    parent: Dict[int, Optional[int]] = {i: None for i in entries}
    frontier = list(entries)
    while frontier:
        nxt: List[int] = []
        for i in frontier:
            for j in sorted(graph.callees_of(i)):
                if guarded[j] or j in parent:
                    continue
                parent[j] = i
                nxt.append(j)
        frontier = nxt

    chains: Dict[int, List[int]] = {}
    for i, ctx in enumerate(contexts):
        if guarded[i] or ctx.is_exempt(RULE):
            continue
        if i in parent:
            chain = [i]
            while parent[chain[0]] is not None:
                chain.insert(0, parent[chain[0]])
            chains[i] = chain
        else:
            chains[i] = [i]
    return chains


def analyze_crash_sites(
    index: ProjectIndex,
) -> Tuple[List[Finding], List[Finding], dict]:
    """Run the crash-site reachability analysis once.

    Returns ``(cs001 findings, cs002 findings, coverage map)``.
    """
    contexts = _stack_contexts(index)
    if not contexts:
        return [], [], {"schema": COVERAGE_SCHEMA, "primitives": {}}

    graph = _Graph(index, contexts)
    guarded = _fixed_point(graph)
    chains = _entry_chains(graph, guarded)

    cs001: List[Finding] = []
    cs002: List[Finding] = []
    coverage: Dict[str, dict] = {}

    for i, ctx in enumerate(contexts):
        exempt = ctx.is_exempt(RULE)
        chain_exempt = exempt or ctx.is_exempt(CHAIN_RULE)
        seen_prims: Set[str] = set()
        for call in ctx.calls:
            if not call.is_method or call.name not in MUTATION_PRIMITIVES:
                continue
            entry = coverage.setdefault(
                call.name, {"guarded_sites": [], "unguarded": []}
            )
            site = {
                "path": ctx.module.display,
                "line": call.line,
                "qualname": ctx.qualname,
            }
            if guarded[i] or exempt:
                entry["guarded_sites"].append(
                    dict(site, exempt=bool(exempt and not guarded[i]))
                )
                continue
            chain = chains.get(i, [i])
            chain_quals = [contexts[j].qualname for j in chain]
            entry["unguarded"].append(dict(site, chain=chain_quals))
            cs001.append(Finding(
                RULE, ctx.module.display, call.line, call.col,
                f"device mutation .{call.name}() reachable via "
                f"{ctx.qualname}() without a crash-site registration; "
                "wrap the path in faults.site()/faults.point() or mark "
                "the def with `# repro: allow[CS001]`",
            ))
            if not chain_exempt and call.name not in seen_prims:
                seen_prims.add(call.name)
                rendered = " -> ".join(f"{q}()" for q in chain_quals)
                cs002.append(Finding(
                    CHAIN_RULE, ctx.module.display, call.line, call.col,
                    f"unguarded call path {rendered} reaches "
                    f".{call.name}(); register a crash site on the entry "
                    f"function {chain_quals[0]}() to make the whole path "
                    "sweepable",
                ))

    for entry in coverage.values():
        entry["guarded_sites"].sort(
            key=lambda s: (s["path"], s["line"], s["qualname"])
        )
        entry["unguarded"].sort(
            key=lambda s: (s["path"], s["line"], s["qualname"])
        )
    cov_doc = {
        "schema": COVERAGE_SCHEMA,
        "primitives": {k: coverage[k] for k in sorted(coverage)},
    }
    return cs001, cs002, cov_doc


def check_crash_sites(index: ProjectIndex) -> List[Finding]:
    """CS001 only (kept for callers that don't need chains/coverage)."""
    return analyze_crash_sites(index)[0]
