"""Determinism lint passes (DET001, DET002, DET003).

The whole reproduction is a deterministic discrete-event simulation:
time comes from :class:`repro.sim.clock.VirtualClock` and randomness
from :func:`repro.sim.rng.make_rng`.  These passes flag the three ways
ambient nondeterminism usually leaks in:

* **DET001** — wall-clock reads (``time.time``, ``datetime.now``, …)
  anywhere outside ``repro.sim.clock``.
* **DET002** — ambient randomness (bare ``random.*`` module calls,
  direct ``random.Random``/``SystemRandom`` construction, ``os.urandom``,
  ``uuid.uuid1/uuid4``, anything from ``secrets``) anywhere outside
  ``repro.sim.rng``.  Derive generators from ``make_rng(seed, label)``
  instead so component streams are seeded and independent.
* **DET003** — iterating a ``set``/``frozenset`` directly in a ``for``
  statement or comprehension.  Set iteration order depends on
  ``PYTHONHASHSEED`` for str/tuple keys; feed layout or timing decisions
  from it and runs stop replaying.  Iterate ``sorted(...)`` or use an
  ordered structure.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.findings import Finding

#: Modules exempt per rule (the blessed homes of time and randomness).
DET001_EXEMPT = ("repro.sim.clock",)
DET002_EXEMPT = ("repro.sim.rng",)

#: Packages registered as blessed *clock consumers*: subsystems whose
#: whole job is reading timestamps (the span tracer stamps every record
#: with virtual time).  They are audited once, here, to take time only
#: from the VirtualClock — so DET001 exempts the package by prefix and
#: instrumentation never needs per-site suppressions.
DET001_CONSUMERS = (
    "repro.trace",
    "repro.bench.perf",
    "repro.cluster",
    # the telemetry sampler stamps every row with virtual-clock
    # boundaries handed to it by the serve loop
    "repro.telemetry",
)

WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

AMBIENT_RANDOM = {
    "random.Random",
    "random.SystemRandom",
    "random.random",
    "random.randint",
    "random.randrange",
    "random.randbytes",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.seed",
    "random.getrandbits",
    "random.uniform",
    "random.gauss",
    "random.normalvariate",
    "random.expovariate",
    "random.betavariate",
    "random.triangular",
    "random.vonmisesvariate",
    "random.paretovariate",
    "random.weibullvariate",
    "random.lognormvariate",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
}


class _ImportTable:
    """Resolve names in one module back to dotted stdlib paths."""

    def __init__(self, tree: ast.AST) -> None:
        self.modules: Dict[str, str] = {}  # local alias -> module path
        self.names: Dict[str, str] = {}    # local name -> full dotted path
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id in self.names:
                return self.names[node.id]
            if node.id in self.modules:
                return self.modules[node.id]
            return None
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None


def _module_is(name: str, exempt: tuple) -> bool:
    return any(name == e for e in exempt)


def _module_in(name: str, packages: tuple) -> bool:
    """True when ``name`` is one of ``packages`` or nested inside one."""
    return any(name == p or name.startswith(p + ".") for p in packages)


def check_wall_clock(module) -> List[Finding]:
    """DET001: wall-clock reads outside repro.sim.clock."""
    if _module_is(module.name, DET001_EXEMPT) \
            or _module_in(module.name, DET001_CONSUMERS):
        return []
    table = _ImportTable(module.tree)
    out = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        path = table.resolve(node.func)
        if path in WALL_CLOCK:
            out.append(Finding(
                "DET001", module.display, node.lineno, node.col_offset,
                f"wall-clock call {path}() in a simulation path; charge "
                "time through repro.sim.clock.VirtualClock instead",
            ))
    return out


def check_ambient_random(module) -> List[Finding]:
    """DET002: ambient randomness outside repro.sim.rng."""
    if _module_is(module.name, DET002_EXEMPT):
        return []
    table = _ImportTable(module.tree)
    out = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        path = table.resolve(node.func)
        if path is None:
            continue
        if path in AMBIENT_RANDOM or path.startswith("secrets."):
            out.append(Finding(
                "DET002", module.display, node.lineno, node.col_offset,
                f"ambient randomness {path}(); derive a seeded stream "
                "with repro.sim.rng.make_rng(seed, label) instead",
            ))
    return out


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _SetIterVisitor(ast.NodeVisitor):
    """Per-scope DET003 walker (new instance per function scope)."""

    def __init__(self, module, findings: List[Finding], set_names: Set[str]):
        self.module = module
        self.findings = findings
        self.set_names = set(set_names)

    def _collect_scope(self, body: List[ast.stmt]) -> None:
        """Names bound to set expressions anywhere in this scope."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested scopes visited separately
                if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            self.set_names.add(tgt.id)
                elif isinstance(node, ast.AnnAssign) and node.value is not None \
                        and _is_set_expr(node.value):
                    if isinstance(node.target, ast.Name):
                        self.set_names.add(node.target.id)

    def run(self, body: List[ast.stmt]) -> None:
        self._collect_scope(body)
        for stmt in body:
            self.visit(stmt)

    def _flag_iter(self, it: ast.AST) -> None:
        unordered = _is_set_expr(it) or (
            isinstance(it, ast.Name) and it.id in self.set_names
        )
        if unordered:
            self.findings.append(Finding(
                "DET003", self.module.display, it.lineno, it.col_offset,
                "iteration over an unordered set; wrap in sorted() or use "
                "an ordered structure so replay order is deterministic",
            ))

    def visit_For(self, node: ast.For) -> None:
        self._flag_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension_iters(self, generators) -> None:
        for gen in generators:
            self._flag_iter(gen.iter)

    def visit_ListComp(self, node): self.visit_comprehension_iters(node.generators); self.generic_visit(node)
    def visit_SetComp(self, node): self.visit_comprehension_iters(node.generators); self.generic_visit(node)
    def visit_DictComp(self, node): self.visit_comprehension_iters(node.generators); self.generic_visit(node)
    def visit_GeneratorExp(self, node): self.visit_comprehension_iters(node.generators); self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        _SetIterVisitor(self.module, self.findings, self.set_names).run(node.body)

    visit_AsyncFunctionDef = visit_FunctionDef


def check_set_iteration(module) -> List[Finding]:
    """DET003: iterating an unordered set."""
    out: List[Finding] = []
    _SetIterVisitor(module, out, set()).run(module.tree.body)
    return out
