"""Lint finding records and the rule registry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Rule id -> one-line description (see docs/ANALYSIS.md for the long form).
RULES: Dict[str, str] = {
    "CS001": (
        "device-visible mutation not routed through a registered "
        "fault-injector crash site"
    ),
    "CS002": (
        "minimal unguarded call path from an entry function down to a "
        "device mutation primitive"
    ),
    "CONC001": (
        "module-level mutable state mutated on a path reachable from "
        "the serve path; diverges across shard worker processes"
    ),
    "CONC002": (
        "object state aliasing across shard boundaries (class-level "
        "mutable container attribute or mutable default argument)"
    ),
    "CONC003": (
        "result-merge order depends on dict/set iteration over a "
        "per-shard partition"
    ),
    "SCH001": (
        "result schema drift: key emitted by a to_*() builder but never "
        "validated, or required by a validator but never emitted"
    ),
    "DET001": "wall-clock access outside repro.sim.clock",
    "DET002": "ambient randomness outside repro.sim.rng",
    "DET003": "iteration over an unordered set",
    "LAY001": (
        "host-layer module imports NAND/FTL/firmware internals instead of "
        "going through repro.ssd.device"
    ),
    "PERF001": (
        "per-page device-visible mutation inside a loop instead of a "
        "batched op (block_write_many / trim_many / ranged trim)"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One lint finding, pinned to a file:line."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
