"""FSSan: an opt-in runtime invariant sanitizer for the storage stack.

Contract checks asserting firmware/FTL/simulation invariants while a
simulation runs.  Every check is gated on :data:`ENABLED`, which is off
by default, so production runs pay one attribute load and a falsy branch
per instrumented operation.  Enable with ``REPRO_SANITIZE=1`` in the
environment, or programmatically::

    from repro.analysis import fssan
    with fssan.sanitized():
        run_workload(...)

Invariant classes (each check belongs to exactly one):

* ``FSSAN-LOG``   — write-log entries are 64 B-aligned, positive-length,
  in-page, partition-bounded, and never overcommit the log region.
* ``FSSAN-SKIP``  — skip-list levels stay key-sorted and every higher
  level's chain is a subset of level 0.
* ``FSSAN-FTL``   — L2P/P2L maps stay mutually consistent, a physical
  page is never owned by two logical pages, and GC never erases a block
  that still holds a live (mapped) page.
* ``FSSAN-TX``    — the TxLog's order/position views agree, flushes
  apply committed chunks in commit order, and pruning never drops a
  committed transaction that still has live log entries.
* ``FSSAN-CLOCK`` — virtual-clock and resource timelines only move
  forward: no negative or NaN durations, busy-until never rewinds.
* ``FSSAN-QUEUE`` — per-tenant serving-queue accounting balances:
  every submitted request is served, still pending, rejected by
  admission control, or dropped — nothing is double-counted or lost.

A violated invariant raises :class:`SanitizerError` (an
``AssertionError`` subclass) carrying the invariant class id.  Passing
checks bump :data:`COUNTS` so tests can verify the contracts are
actually exercised, not just defined.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterable, List, Sequence, Tuple

#: Invariant class ids.
LOG = "FSSAN-LOG"
SKIP = "FSSAN-SKIP"
FTL = "FSSAN-FTL"
TX = "FSSAN-TX"
CLOCK = "FSSAN-CLOCK"
QUEUE = "FSSAN-QUEUE"

ALL_CLASSES = (LOG, SKIP, FTL, TX, CLOCK, QUEUE)

#: Master switch read by every instrumented call site.
ENABLED = os.environ.get("REPRO_SANITIZE", "").lower() in ("1", "true", "yes", "on")

#: Checks passed per invariant class (only counted while enabled).
COUNTS: Dict[str, int] = {}

#: Full skip-list validation is O(n); above this size only every
#: :data:`_SKIP_STRIDE`-th mutation pays for it.
_SKIP_FULL_CHECK_MAX = 256
_SKIP_STRIDE = 32
_skip_ops = 0


class SanitizerError(AssertionError):
    """A firmware/FTL/simulation invariant was violated."""

    def __init__(self, invariant: str, message: str) -> None:
        super().__init__(f"{invariant}: {message}")
        self.invariant = invariant


def enable() -> None:
    global ENABLED
    ENABLED = True


def disable() -> None:
    global ENABLED
    ENABLED = False


def reset_counts() -> None:
    COUNTS.clear()


@contextmanager
def sanitized():
    """Enable the sanitizer for the duration of the block."""
    global ENABLED
    prev = ENABLED
    ENABLED = True
    try:
        yield
    finally:
        ENABLED = prev


def _ok(invariant: str) -> None:
    COUNTS[invariant] = COUNTS.get(invariant, 0) + 1


def _trip(invariant: str, message: str) -> None:
    raise SanitizerError(invariant, message)


# ---------------------------------------------------------------------- #
# FSSAN-LOG — firmware write log
# ---------------------------------------------------------------------- #

def check_log_append(log_off: int, size: int, used: int, capacity: int) -> None:
    """A log-region append stayed aligned and within capacity."""
    if size <= 0 or size % 64 != 0:
        _trip(LOG, f"log entry size {size} B is not a positive multiple of 64 B")
    if log_off < 0 or log_off % 64 != 0 or log_off >= capacity:
        _trip(LOG, f"log offset {log_off} not 64 B-aligned inside [0, {capacity})")
    if used > capacity:
        _trip(LOG, f"log region overcommitted: {used} B used of {capacity} B")
    _ok(LOG)


def check_log_chunk(
    lpa: int,
    offset: int,
    length: int,
    page_size: int,
    partition: int,
    n_partitions: int,
) -> None:
    """An indexed chunk is in-page and lands in a valid partition."""
    if lpa < 0:
        _trip(LOG, f"chunk indexed under negative LPA {lpa}")
    if not 0 <= partition < n_partitions:
        _trip(
            LOG,
            f"LPA {lpa} maps to partition {partition}, outside "
            f"[0, {n_partitions}) — write log is not partition-bounded",
        )
    if length <= 0 or offset < 0 or offset + length > page_size:
        _trip(
            LOG,
            f"chunk [{offset}, {offset + length}) outside the "
            f"{page_size} B page",
        )
    _ok(LOG)


# ---------------------------------------------------------------------- #
# FSSAN-SKIP — skip-list structure
# ---------------------------------------------------------------------- #

def check_skiplist(head, level: int, length: int) -> None:
    """Level 0 is sorted and each level's chain is a subset of level 0.

    ``head`` is the sentinel node (``key``/``forward`` attributes).  Full
    validation is O(n * levels); large lists are checked every
    :data:`_SKIP_STRIDE`-th mutation.
    """
    global _skip_ops
    _skip_ops += 1
    if length > _SKIP_FULL_CHECK_MAX and _skip_ops % _SKIP_STRIDE != 0:
        return
    keys = set()
    node = head.forward[0]
    prev_key = None
    n = 0
    while node is not None:
        if prev_key is not None and node.key <= prev_key:
            _trip(SKIP, f"level 0 not sorted: {node.key} after {prev_key}")
        keys.add(node.key)
        prev_key = node.key
        node = node.forward[0]
        n += 1
        if n > length + 1:
            _trip(SKIP, "level 0 chain longer than the recorded length (cycle?)")
    if n != length:
        _trip(SKIP, f"level 0 holds {n} nodes but length says {length}")
    for lvl in range(1, level):
        node = head.forward[lvl] if lvl < len(head.forward) else None
        prev_key = None
        while node is not None:
            if prev_key is not None and node.key <= prev_key:
                _trip(SKIP, f"level {lvl} not sorted: {node.key} after {prev_key}")
            if node.key not in keys:
                _trip(
                    SKIP,
                    f"level {lvl} holds key {node.key} absent from level 0",
                )
            prev_key = node.key
            node = node.forward[lvl] if lvl < len(node.forward) else None
    _ok(SKIP)


# ---------------------------------------------------------------------- #
# FSSAN-FTL — mapping consistency and GC liveness
# ---------------------------------------------------------------------- #

def check_map_bind(l2p: dict, p2l: dict, lpa: int, ppa: int) -> None:
    """After a bind, the two maps agree on the bound pair."""
    if l2p.get(lpa) != ppa or p2l.get(ppa) != lpa:
        _trip(
            FTL,
            f"L2P/P2L disagree after bind({lpa} -> {ppa}): "
            f"l2p={l2p.get(lpa)} p2l={p2l.get(ppa)}",
        )
    _ok(FTL)


def check_map_steal(p2l: dict, lpa: int, ppa: int) -> None:
    """A bind must never silently steal a PPA live under another LPA."""
    owner = p2l.get(ppa)
    if owner is not None and owner != lpa:
        _trip(
            FTL,
            f"PPA {ppa} rebound to LPA {lpa} while still live under "
            f"LPA {owner} — a live page was overwritten without remap",
        )
    _ok(FTL)


def check_gc_victim_clear(reverse, base_ppa: int, n_pages: int, block_id: int) -> None:
    """Before erase, no page of the victim block may still be mapped."""
    for ppa in range(base_ppa, base_ppa + n_pages):
        lpa = reverse(ppa)
        if lpa is not None:
            _trip(
                FTL,
                f"GC erasing block {block_id} while PPA {ppa} is still "
                f"live (mapped by LPA {lpa}) — live page lost without remap",
            )
    _ok(FTL)


# ---------------------------------------------------------------------- #
# FSSAN-TX — transaction-log consistency and flush ordering
# ---------------------------------------------------------------------- #

def check_txlog_entry(order: List[int], positions: Dict[int, int], txid: int) -> None:
    """After a commit, the order list and position map agree."""
    if len(order) != len(positions):
        _trip(
            TX,
            f"TxLog order ({len(order)} entries) and position map "
            f"({len(positions)}) diverged at commit({txid})",
        )
    pos = positions.get(txid)
    if pos is None or pos >= len(order) or order[pos] != txid:
        _trip(TX, f"TxID {txid} committed at position {pos} but order disagrees")
    _ok(TX)


def check_commit_ordered(keys: Sequence[Tuple[int, int]]) -> None:
    """Chunks about to be merged are in (commit position, seq) order."""
    for a, b in zip(keys, keys[1:]):
        if b < a:
            _trip(
                TX,
                f"flush applies chunks out of commit order: {b} after {a}",
            )
    _ok(TX)


def check_txlog_prune(live_committed: Iterable[int], remaining: Iterable[int]) -> None:
    """Pruning kept every committed transaction with live log entries."""
    kept = set(remaining)
    for txid in live_committed:
        if txid not in kept:
            _trip(
                TX,
                f"TxLog prune dropped committed TxID {txid} which still "
                "has live log entries — its data would be uncommitted",
            )
    _ok(TX)


# ---------------------------------------------------------------------- #
# FSSAN-CLOCK — timeline monotonicity
# ---------------------------------------------------------------------- #

def check_resource_serve(
    name: str, old_busy: float, duration: float, end: float
) -> None:
    """A resource timeline only moves forward."""
    if duration != duration or duration < 0:  # NaN or negative
        _trip(CLOCK, f"resource {name!r} served a {duration} ns request")
    if end != end or end < old_busy:
        _trip(
            CLOCK,
            f"resource {name!r} busy-until rewound from {old_busy} to {end}",
        )
    _ok(CLOCK)


def check_clock_elapsed(max_seen: float, times_max: float) -> None:
    """The elapsed watermark covers every thread timeline.

    ``elapsed_ns`` returns ``_max_seen`` directly instead of re-scanning
    the per-thread timelines; this cross-check asserts the watermark is
    a true upper bound whenever the sanitizer is on.
    """
    if max_seen != max_seen:  # NaN
        _trip(CLOCK, "elapsed watermark is NaN")
    if max_seen < times_max:
        _trip(
            CLOCK,
            f"elapsed watermark {max_seen} fell behind the furthest "
            f"thread timeline {times_max}",
        )
    _ok(CLOCK)


# ---------------------------------------------------------------------- #
# FSSAN-QUEUE — serving-layer queue accounting (repro.cluster)
# ---------------------------------------------------------------------- #

def check_queue_accounting(
    tenant: str,
    submitted: int,
    served: int,
    pending: int,
    rejected: int,
    dropped: int = 0,
    lost_to_crash: int = 0,
) -> None:
    """A tenant's request ledger balances: nothing lost, nothing forged.

    ``submitted`` counts arrivals that reached admission; each must be
    in exactly one of the served / pending / rejected / dropped /
    lost-to-crash buckets.  ``lost_to_crash`` counts requests in flight
    when their shard powered off mid-serve — the one legitimate way a
    request disappears without being served, and it must still be
    accounted, not silently vanish.
    """
    counts = (submitted, served, pending, rejected, dropped, lost_to_crash)
    if any(c < 0 for c in counts):
        _trip(
            QUEUE,
            f"tenant {tenant!r} has a negative queue counter: "
            f"submitted={submitted} served={served} pending={pending} "
            f"rejected={rejected} dropped={dropped} "
            f"lost_to_crash={lost_to_crash}",
        )
    if submitted != served + pending + rejected + dropped + lost_to_crash:
        _trip(
            QUEUE,
            f"tenant {tenant!r} queue ledger out of balance: "
            f"submitted={submitted} != served={served} + pending={pending} "
            f"+ rejected={rejected} + dropped={dropped} "
            f"+ lost_to_crash={lost_to_crash}",
        )
    _ok(QUEUE)


def check_clock_advance(old_now: float, new_now: float, max_seen: float) -> None:
    """A per-thread timeline never goes backwards, NaN, or past-max loss."""
    if new_now != new_now:  # NaN
        _trip(CLOCK, "thread timeline advanced to NaN")
    if new_now < old_now:
        _trip(CLOCK, f"thread timeline rewound from {old_now} to {new_now}")
    if max_seen != max_seen or max_seen < new_now:
        _trip(
            CLOCK,
            f"elapsed watermark {max_seen} fell behind thread time {new_now}",
        )
    _ok(CLOCK)
