"""LAY001: host-side code must talk to the device through
``repro.ssd.device.MSSD``, never to NAND/FTL/firmware internals.

The paper's host/device split (host DRAM vs. SSD DRAM, MMIO vs. DMA) is
what the simulation measures; a filesystem that reaches directly into
the FTL mapping table or the NAND array is exercising state a real host
could never touch, and silently skips the timing and crash-site
machinery on the device boundary.

Config dataclasses are exchanged across the boundary by construction,
so ``from repro.ssd.firmware... import SomethingConfig`` is allowed.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding

#: Module prefixes considered host-side.
HOST_PREFIXES = (
    "repro.fs",
    "repro.host",
    "repro.kv",
    "repro.workloads",
    "repro.bench",
    "repro.core",
    "repro.cli",
    "repro.cluster",
    # the fault layer drives devices only through their public MSSD/fs
    # surface (arm/power_fail/crash/remount), so it is host-side code
    # and must not reach device internals either
    "repro.faults",
    # telemetry samples devices only through the public MSSD.gauges()
    # surface, so it is host-side code too
    "repro.telemetry",
    "repro.__main__",
)

#: Device-internal module prefixes host code must not import.
DEVICE_INTERNAL_PREFIXES = (
    "repro.nand.chip",
    "repro.ftl.ftl",
    "repro.ftl.mapping",
    "repro.ssd.firmware",
    "repro.sim.resources",
    # the device-DRAM cache tier lives behind the firmware; host code
    # may exchange only its DevCacheConfig across the boundary
    "repro.devcache",
)

RULE = "LAY001"


def _is_host(name: str) -> bool:
    return any(
        name == p or name.startswith(p + ".") for p in HOST_PREFIXES
    )


def _is_internal(name: str) -> bool:
    return any(
        name == p or name.startswith(p + ".")
        for p in DEVICE_INTERNAL_PREFIXES
    )


def check_layering(module) -> List[Finding]:
    if not _is_host(module.name):
        return []
    out: List[Finding] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_internal(alias.name):
                    out.append(Finding(
                        RULE, module.display, node.lineno, node.col_offset,
                        f"host-layer module imports device internals "
                        f"{alias.name}; go through repro.ssd.device instead",
                    ))
        elif isinstance(node, ast.ImportFrom) and node.module \
                and not node.level and _is_internal(node.module):
            offenders = [
                a.name for a in node.names if not a.name.endswith("Config")
            ]
            if offenders:
                out.append(Finding(
                    RULE, module.display, node.lineno, node.col_offset,
                    f"host-layer module imports {', '.join(offenders)} from "
                    f"device internals {node.module}; only *Config "
                    "dataclasses cross the boundary — go through "
                    "repro.ssd.device instead",
                ))
    return out
