"""Lint driver: load Python sources, run every pass, apply suppressions.

Usage from the CLI::

    repro lint                 # lint the installed repro package
    repro lint src/repro/fs    # lint a subtree
    repro lint --format=json   # machine-readable output (CI)
    repro lint --format=sarif  # SARIF 2.1.0 (code-scanning upload)

Module dotted names are derived from the last path component named
``repro`` (``.../src/repro/fs/vfs.py`` → ``repro.fs.vfs``), which is how
the passes decide layer membership and exemptions.  Files with no
``repro`` ancestor get a name from their bare stem and are still linted
by the path-independent rules.

Every run builds one :class:`repro.analysis.project.ProjectIndex` over
the loaded modules; the per-module passes (DET/LAY/PERF) walk each tree
independently while the whole-program passes (CS001/CS002, CONC001-003,
SCH001) share the index's call graph and import closure.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.concurrency import (
    check_global_state,
    check_merge_order,
    check_shard_aliasing,
)
from repro.analysis.crashsites import analyze_crash_sites
from repro.analysis.determinism import (
    check_ambient_random,
    check_set_iteration,
    check_wall_clock,
)
from repro.analysis.findings import RULES, Finding
from repro.analysis.layering import check_layering
from repro.analysis.perfpass import check_per_page_loops
from repro.analysis.project import ProjectIndex, build_index
from repro.analysis.schema_drift import check_schema_drift
from repro.analysis.suppress import is_suppressed, suppression_map

#: Directory markers that identify the repository root; finding paths
#: are emitted relative to it so baselines and SARIF output are stable
#: no matter where the linter was invoked from.
_ROOT_MARKERS = (".git", "pyproject.toml", "setup.cfg")


@dataclass
class ModuleInfo:
    path: Path
    display: str                 # path as shown in findings
    name: str                    # dotted module name
    tree: ast.Module
    suppress: Dict[int, Set[str]]


@dataclass
class LintResult:
    findings: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    n_files: int = 0
    #: Findings matched by a ``--baseline`` file: tracked, not failing.
    grandfathered: List[Finding] = field(default_factory=list)
    #: repro.lint.coverage/v1 document (when CS001/CS002 ran).
    coverage: Optional[dict] = None

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0


def module_name_for(path: Path) -> str:
    parts = list(path.parts)
    name_parts: List[str]
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        name_parts = list(parts[idx:])
    else:
        name_parts = [parts[-1]]
    if name_parts[-1].endswith(".py"):
        name_parts[-1] = name_parts[-1][: -len(".py")]
    if name_parts[-1] == "__init__":
        name_parts.pop()
    return ".".join(name_parts) or "repro"


def iter_py_files(paths: Sequence[Path]) -> List[Path]:
    out: List[Path] = []
    for p in paths:
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
    seen: Set[Path] = set()
    uniq = []
    for p in out:
        rp = p.resolve()
        if rp not in seen:
            seen.add(rp)
            uniq.append(p)
    return uniq


def _repo_root_for(path: Path) -> Optional[Path]:
    for anc in path.resolve().parents:
        if any((anc / marker).exists() for marker in _ROOT_MARKERS):
            return anc
    return None


def _display(path: Path) -> str:
    """Repo-relative posix path when a repository root is found above
    the file; cwd-relative otherwise (loose files, tmp fixtures)."""
    root = _repo_root_for(path)
    if root is not None:
        return path.resolve().relative_to(root).as_posix()
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def load_modules(
    paths: Sequence[Path], honor_suppressions: bool = True,
) -> Tuple[List[ModuleInfo], List[str]]:
    modules: List[ModuleInfo] = []
    errors: List[str] = []
    for path in iter_py_files(paths):
        display = _display(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{display}: {exc}")
            continue
        modules.append(ModuleInfo(
            path=path,
            display=display,
            name=module_name_for(path),
            tree=tree,
            suppress=(
                suppression_map(source.splitlines())
                if honor_suppressions else {}
            ),
        ))
    return modules, errors


#: Per-module passes; the whole-program passes run on the shared index.
_MODULE_PASSES = (
    ("DET001", check_wall_clock),
    ("DET002", check_ambient_random),
    ("DET003", check_set_iteration),
    ("LAY001", check_layering),
    ("PERF001", check_per_page_loops),
)

#: Whole-program passes taking the ProjectIndex (CS001/CS002 are run
#: together through analyze_crash_sites and handled separately).
_PROJECT_PASSES = (
    ("CONC001", check_global_state),
    ("CONC002", check_shard_aliasing),
    ("CONC003", check_merge_order),
)


def lint_paths(
    paths: Sequence[Path], rules: Sequence[str] = (),
    honor_suppressions: bool = True,
) -> LintResult:
    """Run the requested rule set (all rules when empty) over ``paths``."""
    wanted = set(rules) if rules else set(RULES)
    unknown = wanted - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")

    modules, errors = load_modules(paths, honor_suppressions)
    result = LintResult(errors=errors, n_files=len(modules))
    index: ProjectIndex = build_index(modules)

    supp_by_display = {m.display: m.suppress for m in modules}
    raw: List[Finding] = []
    for mod in modules:
        for rule, check in _MODULE_PASSES:
            if rule in wanted:
                raw.extend(check(mod))
    if wanted & {"CS001", "CS002"}:
        cs001, cs002, coverage = analyze_crash_sites(index)
        result.coverage = coverage
        if "CS001" in wanted:
            raw.extend(cs001)
        if "CS002" in wanted:
            raw.extend(cs002)
    for rule, check in _PROJECT_PASSES:
        if rule in wanted:
            raw.extend(check(index))
    if "SCH001" in wanted:
        raw.extend(check_schema_drift(index))

    for f in raw:
        supp = supp_by_display.get(f.path, {})
        if not is_suppressed(supp, f.line, f.rule):
            result.findings.append(f)
    result.findings.sort(
        key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
    )
    return result


def render_text(result: LintResult) -> str:
    lines = [f.format() for f in result.findings]
    lines.extend(f"error: {e}" for e in result.errors)
    n = len(result.findings)
    summary = (
        f"{n} finding{'s' if n != 1 else ''} in {result.n_files} files"
    )
    if result.grandfathered:
        summary += f" ({len(result.grandfathered)} baselined)"
    if result.errors:
        summary += f" ({len(result.errors)} files failed to parse)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps({
        "findings": [f.to_dict() for f in result.findings],
        "grandfathered": [f.to_dict() for f in result.grandfathered],
        "errors": result.errors,
        "n_files": result.n_files,
        "exit_code": result.exit_code,
    }, indent=2)
