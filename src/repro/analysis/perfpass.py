"""Performance lint pass (PERF001): per-page device ops inside loops.

The simulator's hot path is dominated by call volume, not arithmetic:
a filesystem that TRIMs a thousand blocks one ``device.trim(b)`` at a
time pays a thousand crossings of the host/device boundary (stats,
fault-site checks, firmware dispatch) where one ranged call pays a
handful.  The batched entry points exist for exactly this reason:

* ``Firmware.block_write_many(pages, kind)`` instead of per-page
  ``block_write`` in a loop,
* ``trim_many`` / ranged ``device.trim(lba, n_blocks)`` instead of
  per-block ``trim(b)`` in a loop.

**PERF001** flags a call to a per-page mutation primitive —
``block_write``, ``write_page``, ``program_page``, ``byte_write``,
``erase_block``, or single-argument ``trim`` — lexically inside a
``for``/``while`` loop or a comprehension.  Ranged ``trim(lba, n)``
calls are not flagged, so run-batching loops (which emit one ranged
call per contiguous run) pass clean.

Some per-page loops are inherent — GC migration rebinds each page to a
different physical address, and the batched implementations themselves
bottom out in per-page loops.  Annotate those with
``# repro: allow[PERF001]`` on the call line (or the line above).
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding

#: Per-page mutation primitives that have (or feed) a batched sibling.
PER_PAGE_MUTATIONS = {
    "block_write",
    "write_page",
    "program_page",
    "byte_write",
    "erase_block",
}

_MESSAGE = (
    "per-page {name}() inside a loop; use a batched device op "
    "(block_write_many / trim_many / ranged trim(lba, n)) or annotate "
    "with `# repro: allow[PERF001]` if per-page work is inherent"
)


class _LoopCallVisitor(ast.NodeVisitor):
    """Collect per-page mutation calls that sit inside any loop."""

    def __init__(self, module, out: List[Finding]) -> None:
        self.module = module
        self.out = out
        self._depth = 0

    def _loop(self, node: ast.AST) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_For = _loop
    visit_AsyncFor = _loop
    visit_While = _loop
    visit_ListComp = _loop
    visit_SetComp = _loop
    visit_DictComp = _loop
    visit_GeneratorExp = _loop

    def visit_Call(self, node: ast.Call) -> None:
        if self._depth and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in PER_PAGE_MUTATIONS or (
                attr == "trim"
                and len(node.args) == 1
                and not node.keywords
            ):
                self.out.append(Finding(
                    "PERF001",
                    self.module.display,
                    node.lineno,
                    node.col_offset,
                    _MESSAGE.format(name=attr),
                ))
        self.generic_visit(node)


def check_per_page_loops(module) -> List[Finding]:
    """PERF001: per-page device mutation inside a loop."""
    out: List[Finding] = []
    _LoopCallVisitor(module, out).visit(module.tree)
    return out
