"""Whole-program index shared by the project-level lint passes.

Every lint run builds one :class:`ProjectIndex` over the loaded modules
and hands it to each whole-program pass (CS001/CS002 crash-site
reachability, CONC001/002/003 concurrency readiness, SCH001 schema
drift).  The index holds, per module:

* a function context per ``def`` (module top level is also a context)
  with the bare-name call sites made from its body,
* receiver-type hints: a call ``x.m()`` where ``x`` was assigned
  ``x = ClassName(...)`` in the same scope records ``ClassName`` so the
  call graph can target that class's method instead of every same-named
  method (``self.m()`` stays name-keyed on purpose — restricting it by
  class would break cross-module inheritance),
* class records (methods, class-level mutable-container attributes),
* module-level bindings (name → value expression, with a
  mutable-container flag),
* the repro-internal import graph, so passes can compute "reachable
  from the serve path" as an import closure.

The index is deliberately syntactic: no imports are executed, so it is
safe to run over broken or hostile trees, and everything is keyed by
source order so findings derived from it are deterministic.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.suppress import is_def_suppressed

#: Constructor names whose result is a mutable container.
MUTABLE_CONTAINER_CALLS = {
    "dict", "list", "set", "bytearray",
    "defaultdict", "deque", "OrderedDict", "Counter", "ChainMap",
}


def is_mutable_container_expr(node: ast.AST) -> bool:
    """True for literals / constructor calls that build a mutable
    container (the aliasing hazard CONC001/CONC002 look for)."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in MUTABLE_CONTAINER_CALLS
    return False


def is_faults_call(node: ast.Call) -> bool:
    """Match ``<anything>.faults.site(...)`` / ``.point(...)`` and bare
    ``faults.site(...)`` — the crash-site registration idiom."""
    func = node.func
    if not isinstance(func, ast.Attribute) \
            or func.attr not in ("site", "point"):
        return False
    recv = func.value
    if isinstance(recv, ast.Attribute):
        return recv.attr == "faults"
    if isinstance(recv, ast.Name):
        return recv.id == "faults"
    return False


def call_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class CallSite:
    """One call expression inside a function context."""

    __slots__ = ("name", "line", "col", "is_method", "recv_class")

    def __init__(self, name: str, line: int, col: int, is_method: bool,
                 recv_class: Optional[str] = None) -> None:
        self.name = name
        self.line = line
        self.col = col
        self.is_method = is_method
        #: Receiver class when the receiver was locally constructed
        #: (``x = ClassName(...); x.m()``); None keeps the edge
        #: name-keyed (conservative).
        self.recv_class = recv_class


class FunctionInfo:
    """One function definition (module top level is also a context)."""

    def __init__(self, name: str, qualname: str, module, node,
                 class_name: Optional[str] = None) -> None:
        self.name = name
        self.qualname = qualname
        self.module = module
        self.node = node
        self.class_name = class_name  # innermost enclosing class, if any
        self.guarded0 = False         # body registers a crash site
        self.calls: List[CallSite] = []
        self.children: Dict[str, "FunctionInfo"] = {}
        # local ctor bindings seen so far: var name -> class-ish callee
        self._ctors: Dict[str, str] = {}

    def is_exempt(self, rule: str) -> bool:
        """allow[rule] anywhere on the decorator lines or (possibly
        multi-line) ``def`` signature exempts the whole function."""
        if not isinstance(self.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        return is_def_suppressed(self.module.suppress, self.node, rule)


class ClassInfo:
    """One class definition: methods plus class-level container attrs."""

    def __init__(self, name: str, qualname: str, module, node) -> None:
        self.name = name
        self.qualname = qualname
        self.module = module
        self.node = node
        self.methods: Dict[str, FunctionInfo] = {}
        #: (attr name, line, col) of class-level mutable containers.
        self.mutable_attrs: List[Tuple[str, int, int]] = []


class GlobalBinding:
    """One module-level name binding."""

    __slots__ = ("name", "module", "value", "line", "col", "mutable")

    def __init__(self, name: str, module, value: ast.AST,
                 line: int, col: int) -> None:
        self.name = name
        self.module = module
        self.value = value
        self.line = line
        self.col = col
        self.mutable = is_mutable_container_expr(value)


class ProjectIndex:
    """Symbol table + call graph + import graph over one lint run."""

    def __init__(self, modules: Sequence) -> None:
        self.modules = list(modules)
        self.by_name: Dict[str, object] = {m.name: m for m in self.modules}
        self.functions: List[FunctionInfo] = []
        self.functions_by_module: Dict[str, List[FunctionInfo]] = {}
        self.classes: List[ClassInfo] = []
        #: class name -> method names defined under that name anywhere.
        self.methods_of: Dict[str, Set[str]] = {}
        #: module name -> top-level name -> binding.
        self.globals: Dict[str, Dict[str, GlobalBinding]] = {}
        #: module name -> imported dotted module names (as written).
        self.imports: Dict[str, Set[str]] = {}
        for mod in self.modules:
            self._index_module(mod)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _index_module(self, module) -> None:
        funcs: List[FunctionInfo] = []
        self.functions_by_module[module.name] = funcs
        self.globals[module.name] = {}
        self.imports[module.name] = set()

        root = FunctionInfo(
            "<module>", f"{module.name}:<module>", module, module.tree
        )
        funcs.append(root)
        self.functions.append(root)
        self._collect_imports(module)
        self._collect_globals(module)
        self._walk(module.tree, root, "", None, module, funcs)
        self._resolve_late_site_callbacks(funcs)

    def _collect_imports(self, module) -> None:
        out = self.imports[module.name]
        is_pkg = module.path.stem == "__init__"
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    out.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    parts = module.name.split(".")
                    drop = node.level - 1 if is_pkg else node.level
                    base_parts = parts[: len(parts) - drop] if drop else parts
                    base = ".".join(base_parts)
                else:
                    base = ""
                target = node.module or ""
                if base and target:
                    target = f"{base}.{target}"
                elif base:
                    target = base
                if not target:
                    continue
                out.add(target)
                for alias in node.names:
                    # ``from pkg import sub`` may name a submodule.
                    out.add(f"{target}.{alias.name}")

    def _collect_globals(self, module) -> None:
        table = self.globals[module.name]
        for stmt in module.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            for tgt in targets:
                if isinstance(tgt, ast.Name) and tgt.id not in table:
                    table[tgt.id] = GlobalBinding(
                        tgt.id, module, value, stmt.lineno, stmt.col_offset
                    )

    def _walk(self, node: ast.AST, ctx: FunctionInfo, qual: str,
              cls: Optional[ClassInfo], module, funcs: List[FunctionInfo],
              ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                sub = FunctionInfo(
                    child.name, f"{qual}{child.name}", module, child,
                    class_name=cls.name if cls is not None else None,
                )
                ctx.children[child.name] = sub
                funcs.append(sub)
                self.functions.append(sub)
                if cls is not None:
                    cls.methods[child.name] = sub
                    self.methods_of.setdefault(cls.name, set()).add(
                        child.name
                    )
                self._walk(child, sub, f"{qual}{child.name}.", None,
                           module, funcs)
            elif isinstance(child, ast.ClassDef):
                info = ClassInfo(
                    child.name, f"{qual}{child.name}", module, child
                )
                self.classes.append(info)
                self.methods_of.setdefault(child.name, set())
                self._collect_class_attrs(child, info)
                self._walk(child, ctx, f"{qual}{child.name}.", info,
                           module, funcs)
            else:
                self._scan(child, ctx)
                self._walk(child, ctx, qual, None, module, funcs)

    @staticmethod
    def _collect_class_attrs(node: ast.ClassDef, info: ClassInfo) -> None:
        for stmt in node.body:
            targets: List[ast.expr] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not is_mutable_container_expr(value):
                continue
            for tgt in targets:
                if isinstance(tgt, ast.Name):
                    info.mutable_attrs.append(
                        (tgt.id, stmt.lineno, stmt.col_offset)
                    )

    def _scan(self, node: ast.AST, ctx: FunctionInfo) -> None:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call) \
                and isinstance(node.value.func, ast.Name):
            # Possible local construction: x = ClassName(...).  Whether
            # ClassName really is a class is decided at use time against
            # methods_of, so plain function calls never mis-target.
            ctx._ctors[node.targets[0].id] = node.value.func.id
        if not isinstance(node, ast.Call):
            return
        if is_faults_call(node):
            ctx.guarded0 = True
            if node.func.attr == "site":
                # The apply-callback passed to site() runs inside the
                # registration: mark the nested def it names as G0.
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id in ctx.children:
                        ctx.children[arg.id].guarded0 = True
            return
        name = call_name(node.func)
        if name is None:
            return
        recv_class = None
        if isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name):
            recv_class = ctx._ctors.get(node.func.value.id)
        ctx.calls.append(CallSite(
            name, node.lineno, node.col_offset,
            isinstance(node.func, ast.Attribute), recv_class,
        ))

    @staticmethod
    def _resolve_late_site_callbacks(funcs: List[FunctionInfo]) -> None:
        # A site() call may name a nested def *after* the statement where
        # the def appears was walked; a second pass resolves those.
        for ctx in funcs:
            for node in ast.walk(ctx.node):
                if isinstance(node, ast.Call) and is_faults_call(node) \
                        and node.func.attr == "site":
                    for arg in node.args:
                        if isinstance(arg, ast.Name) \
                                and arg.id in ctx.children:
                            ctx.children[arg.id].guarded0 = True

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def has_method(self, cls: str, name: str) -> bool:
        return name in self.methods_of.get(cls, ())

    def reachable(self, prefixes: Iterable[str]) -> Set[str]:
        """Names of indexed modules in the import closure of every
        indexed module matching ``prefixes``.

        Importing ``a.b.c`` also executes ``a`` and ``a.b`` package
        ``__init__``s, so ancestor packages of each import target are
        part of the closure too.
        """
        prefixes = tuple(prefixes)

        def matches(name: str) -> bool:
            return any(
                name == p or name.startswith(p + ".") for p in prefixes
            )

        seeds = [m.name for m in self.modules if matches(m.name)]
        seen: Set[str] = set()
        frontier = list(seeds)
        while frontier:
            name = frontier.pop()
            if name in seen or name not in self.by_name:
                continue
            seen.add(name)
            for target in self.imports.get(name, ()):
                parts = target.split(".")
                for i in range(1, len(parts) + 1):
                    candidate = ".".join(parts[:i])
                    if candidate in self.by_name and candidate not in seen:
                        frontier.append(candidate)
        return seen


def build_index(modules: Sequence) -> ProjectIndex:
    """Build the shared whole-program index for one lint run."""
    return ProjectIndex(modules)
