"""SARIF 2.1.0 output for ``repro lint --format=sarif``.

A minimal, valid static-analysis results interchange document: one run,
one driver (``repro-lint``), rule metadata from the registry, and one
result per finding with a physical location.  GitHub code scanning and
every SARIF viewer accept this shape; the required fields are pinned by
a schema test in tests/test_whole_program_lint.py.
"""

from __future__ import annotations

import json

from repro.analysis.findings import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _uri(path: str) -> str:
    return path.replace("\\", "/")


def render_sarif(result) -> str:
    """Render a LintResult as a SARIF 2.1.0 document (deterministic)."""
    rules = [
        {"id": rid, "shortDescription": {"text": RULES[rid]}}
        for rid in sorted(RULES)
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": _uri(f.path)},
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": f.col + 1,
                    },
                },
            }],
        }
        for f in result.findings
    ]
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
