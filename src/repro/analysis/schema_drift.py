"""SCH001: result schemas must not drift from their validators.

Every result document in the repo is a byte-deterministic JSON emitted
by a ``to_*()`` builder and gated by a sibling ``validate_*()`` function
(``repro.cluster.run/v2``, ``repro.bench.simspeed/v1``, the trace
exporters).  Nothing forces the two to agree: a key added to the
builder but not to the validator ships silently unchecked, and a key
the validator requires but nothing emits means the validator was
written against a schema that no longer exists.

The pass statically diffs the two key sets per registered module:

* **emitted keys** — constant string keys of dict literals and constant
  string subscript stores inside every ``to_*()`` function/method;
* **accepted keys** — every string constant in the validator closure:
  the ``validate_*()`` functions, the same-module helpers they call
  (via the shared call graph), and the module-level constants they
  reference (``*_FIELDS`` tuples and friends).

Direction 1 flags emitted-but-never-checked keys at the emit site.
Direction 2 flags keys required by a ``*_FIELDS``/``*_REQUIRED``
constant that no emitter in the module produces — but only when the
constant overlaps the module's emitted keys at all, so validators for
documents built in *other* modules (e.g. recovery records assembled by
the serve loop and only validated here) are not misattributed.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import FunctionInfo, ProjectIndex

#: Modules whose emitter/validator pairs are under the drift contract.
SCHEMA_MODULES = (
    "repro.cluster.result",
    "repro.bench.perf",
    "repro.bench.harness",
    "repro.trace.export",
)

_EMITTER_RE = re.compile(r"^to_")
_VALIDATOR_RE = re.compile(r"^validate_")
_REQUIRED_CONST_RE = re.compile(r"(_FIELDS|_REQUIRED)$")

RULE = "SCH001"


def _emitted_keys(fn: FunctionInfo) -> List[Tuple[str, int, int]]:
    """(key, line, col) for constant string keys built by ``fn``."""
    out: List[Tuple[str, int, int]] = []
    seen: Set[str] = set()

    def record(key: ast.AST) -> None:
        if isinstance(key, ast.Constant) and isinstance(key.value, str) \
                and key.value not in seen:
            seen.add(key.value)
            out.append((key.value, key.lineno, key.col_offset))

    for node in ast.walk(fn.node):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    record(key)
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Subscript):
                    record(tgt.slice)
        elif isinstance(node, ast.AugAssign) \
                and isinstance(node.target, ast.Subscript):
            record(node.target.slice)
    return out


def _string_constants(node: ast.AST) -> Set[str]:
    return {
        n.value for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }


def _validator_closure(
    index: ProjectIndex, module_name: str, validators: List[FunctionInfo],
) -> Tuple[Set[str], Set[str]]:
    """(accepted string constants, referenced global names) over the
    validators plus the same-module helpers they transitively call."""
    by_name = {
        f.name: f
        for f in index.functions_by_module[module_name]
        if f.name != "<module>"
    }
    todo = list(validators)
    visited: Set[str] = set()
    accepted: Set[str] = set()
    referenced: Set[str] = set()
    module_globals = index.globals.get(module_name, {})
    while todo:
        fn = todo.pop()
        if fn.qualname in visited:
            continue
        visited.add(fn.qualname)
        accepted |= _string_constants(fn.node)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Name) and node.id in module_globals:
                referenced.add(node.id)
                accepted |= _string_constants(
                    module_globals[node.id].value
                )
        for call in fn.calls:
            helper = by_name.get(call.name)
            if helper is not None and helper.qualname not in visited:
                todo.append(helper)
    return accepted, referenced


def _required_keys(value: ast.AST) -> Set[str]:
    """String keys/elements of a ``*_FIELDS`` constant's value."""
    if isinstance(value, ast.Dict):
        return {
            k.value for k in value.keys
            if isinstance(k, ast.Constant) and isinstance(k.value, str)
        }
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        return {
            e.value for e in value.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        }
    return set()


def check_schema_drift(index: ProjectIndex) -> List[Finding]:
    out: List[Finding] = []
    for module_name in SCHEMA_MODULES:
        if module_name not in index.functions_by_module:
            continue
        funcs = index.functions_by_module[module_name]
        emitters = [f for f in funcs if _EMITTER_RE.match(f.name)]
        validators = [f for f in funcs if _VALIDATOR_RE.match(f.name)]
        if not emitters or not validators:
            continue  # no contract to check in this module
        mod = index.by_name[module_name]
        accepted, referenced = _validator_closure(
            index, module_name, validators
        )
        vnames = ", ".join(sorted(f.name for f in validators))

        emitted_all: Set[str] = set()
        for fn in emitters:
            for key, line, col in _emitted_keys(fn):
                emitted_all.add(key)
                if key not in accepted:
                    out.append(Finding(
                        RULE, mod.display, line, col,
                        f"result key '{key}' emitted by {fn.qualname}() "
                        f"is never checked by {vnames}; schema drift — "
                        "validate the key or drop it",
                    ))

        module_globals = index.globals.get(module_name, {})
        for gname in sorted(referenced):
            if _REQUIRED_CONST_RE.search(gname) is None:
                continue
            required = _required_keys(module_globals[gname].value)
            if not required or not (required & emitted_all):
                # Zero overlap: the document this constant validates is
                # built in another module; not this module's drift.
                continue
            for key in sorted(required - emitted_all):
                b = module_globals[gname]
                out.append(Finding(
                    RULE, mod.display, b.line, b.col,
                    f"validator constant {gname} requires key '{key}' "
                    f"that no to_*() builder in {module_name} emits; "
                    "schema drift — emit the key or retire it from the "
                    "validator",
                ))
    return out
