"""Suppression comments: ``# repro: allow[RULE]``.

A finding is suppressed when its line carries an allow comment naming
its rule id, or when the line immediately above is a standalone allow
comment::

    victims = set(candidates)
    for b in victims:  # repro: allow[DET003]
        ...

    # repro: allow[DET003]
    for b in victims:
        ...

Several rules may be listed, comma-separated: ``allow[DET001,DET002]``.
For the function-scoped rules (CS001/CS002), an allow comment anywhere
on the ``def`` — a decorator line, any line of a multi-line signature,
or the line just above — exempts the whole function (used for recovery
paths, which run with the injector disarmed).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Set

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


def suppression_map(source_lines: List[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids allowed on that line."""
    out: Dict[int, Set[str]] = {}
    for i, text in enumerate(source_lines, start=1):
        m = _ALLOW_RE.search(text)
        if m is None:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        out.setdefault(i, set()).update(rules)
        if text.lstrip().startswith("#"):
            # Standalone comment: also covers the next line.
            out.setdefault(i + 1, set()).update(rules)
    return out


def is_suppressed(supp: Dict[int, Set[str]], line: int, rule: str) -> bool:
    return rule in supp.get(line, ())


def def_line_span(node: ast.AST) -> range:
    """1-based line numbers making up a ``def``'s header: decorators
    plus the (possibly multi-line) signature, ending just before the
    first body statement.  One-liner defs span only the ``def`` line."""
    first = node.lineno
    for dec in getattr(node, "decorator_list", []):
        first = min(first, dec.lineno)
    body = getattr(node, "body", None)
    body_start = body[0].lineno if body else node.lineno
    last = node.lineno if body_start <= node.lineno else body_start - 1
    return range(first, last + 1)


def is_def_suppressed(
    supp: Dict[int, Set[str]], node: ast.AST, rule: str,
) -> bool:
    """True when ``allow[rule]`` appears anywhere on the def header.

    Historically only the exact ``def`` line worked, which silently
    dropped the exemption when a decorator or a wrapped signature pushed
    the comment off that line.
    """
    return any(rule in supp.get(i, ()) for i in def_line_span(node))
