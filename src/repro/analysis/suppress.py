"""Suppression comments: ``# repro: allow[RULE]``.

A finding is suppressed when its line carries an allow comment naming
its rule id, or when the line immediately above is a standalone allow
comment::

    victims = set(candidates)
    for b in victims:  # repro: allow[DET003]
        ...

    # repro: allow[DET003]
    for b in victims:
        ...

Several rules may be listed, comma-separated: ``allow[DET001,DET002]``.
For CS001 only, an allow comment on a ``def`` line exempts the whole
function (used for recovery paths, which run with the injector
disarmed).
"""

from __future__ import annotations

import re
from typing import Dict, List, Set

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


def suppression_map(source_lines: List[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids allowed on that line."""
    out: Dict[int, Set[str]] = {}
    for i, text in enumerate(source_lines, start=1):
        m = _ALLOW_RE.search(text)
        if m is None:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        out.setdefault(i, set()).update(rules)
        if text.lstrip().startswith("#"):
            # Standalone comment: also covers the next line.
            out.setdefault(i + 1, set()).update(rules)
    return out


def is_suppressed(supp: Dict[int, Set[str]], line: int, rule: str) -> bool:
    return rule in supp.get(line, ())
