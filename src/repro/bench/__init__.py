"""Benchmark harness: build a stack, run a workload, collect results."""

from repro.bench.harness import RunResult, run_workload, DEFAULT_GEOMETRY
from repro.bench.report import format_table, normalize

__all__ = [
    "RunResult",
    "run_workload",
    "DEFAULT_GEOMETRY",
    "format_table",
    "normalize",
]
