"""Run one workload against one file-system stack and collect metrics.

Setup (file-set preparation) is excluded from measurement: statistics are
reset and the measurement epoch recorded after ``workload.setup``.
Threads are interleaved event-driven: the runner always advances the
logical thread whose virtual clock is furthest behind, so device-level
contention (shared flash channels, the PCIe link, the firmware core)
shapes the aggregate throughput exactly as in a real multi-threaded run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.bytefs import build_stack
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import TimingModel
from repro.sim.clock import SEC
from repro.stats.traffic import (
    Direction,
    Interface,
    LatencyRecorder,
    StructKind,
    TrafficStats,
)
from repro.workloads.base import Workload

#: 256 MB of emulated flash: ample for the scaled-down workloads while
#: keeping Python memory modest (pages are stored sparsely).
DEFAULT_GEOMETRY = FlashGeometry(
    n_channels=8,
    ways_per_channel=1,
    blocks_per_way=128,
    pages_per_block=64,
    page_size=4096,
)


@dataclass
class RunResult:
    """Everything a figure needs from one (fs, workload) run."""

    fs_name: str
    workload: str
    ops: int
    elapsed_s: float
    latency: LatencyRecorder
    meta_write: int
    meta_read: int
    data_write: int
    data_read: int
    byte_write: int
    block_write: int
    flash_read: int
    flash_write: int
    app_write: int
    app_read: int
    counters: Dict[str, int] = field(default_factory=dict)
    #: per-StructKind host<->SSD bytes (Figure 1/8/9 breakdowns)
    write_breakdown: Dict[StructKind, int] = field(default_factory=dict)
    read_breakdown: Dict[StructKind, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Operations per simulated second."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.ops / self.elapsed_s

    @property
    def host_write(self) -> int:
        return self.meta_write + self.data_write

    @property
    def host_read(self) -> int:
        return self.meta_read + self.data_read

    @property
    def write_amplification(self) -> float:
        return self.host_write / self.app_write if self.app_write else float("nan")

    @property
    def read_amplification(self) -> float:
        return self.host_read / self.app_read if self.app_read else float("nan")


def run_workload(
    fs_name: str,
    workload: Workload,
    geometry: Optional[FlashGeometry] = None,
    timing: Optional[TimingModel] = None,
    log_bytes: int = 1 << 20,
    device_cache_bytes: int = 1 << 20,
    page_cache_pages: int = 512,
    unmount: bool = False,
) -> RunResult:
    """Build a fresh stack, run the workload, and collect metrics.

    The device DRAM defaults (1 MB write log / 1 MB baseline page cache)
    scale the paper's 256 MB SSD DRAM down by the same factor as the
    workloads, so cache/log pressure appears at the same relative point.
    """
    clock, stats, device, fs = build_stack(
        fs_name,
        geometry=geometry or DEFAULT_GEOMETRY,
        timing=timing,
        n_threads=workload.n_threads,
        log_bytes=log_bytes,
        device_cache_bytes=device_cache_bytes,
        page_cache_pages=page_cache_pages,
    )
    workload.setup(fs)
    # Measurement epoch: everything before this is free.
    clock.sync_all()
    stats.reset()
    t0 = clock.elapsed_ns
    flash_reads0 = device.flash.reads
    latency = LatencyRecorder()
    gens = {tid: gen for tid, gen in enumerate(workload.make_threads(fs))}
    ops = 0
    while gens:
        # Advance the thread that is furthest behind.
        tid = min(gens, key=clock.time_of)
        clock.switch(tid)
        t_start = clock.now
        try:
            op_name = next(gens[tid])
        except StopIteration:
            del gens[tid]
            continue
        latency.record(op_name, clock.now - t_start)
        ops += 1
    workload.teardown(fs)
    if unmount:
        fs.unmount()
    elapsed_s = (clock.elapsed_ns - t0) / SEC
    meta_w = stats.metadata_bytes(Direction.WRITE)
    meta_r = stats.metadata_bytes(Direction.READ)
    data_w = stats.data_bytes(Direction.WRITE)
    data_r = stats.data_bytes(Direction.READ)
    return RunResult(
        fs_name=fs_name,
        workload=workload.name,
        ops=ops,
        elapsed_s=elapsed_s,
        latency=latency,
        meta_write=meta_w,
        meta_read=meta_r,
        data_write=data_w,
        data_read=data_r,
        byte_write=stats.host_ssd_bytes(
            direction=Direction.WRITE, interface=Interface.BYTE
        ),
        block_write=stats.host_ssd_bytes(
            direction=Direction.WRITE, interface=Interface.BLOCK
        ),
        flash_read=stats.flash_bytes(direction=Direction.READ),
        flash_write=stats.flash_bytes(direction=Direction.WRITE),
        app_write=stats.app.get(Direction.WRITE, 0),
        app_read=stats.app.get(Direction.READ, 0),
        counters=dict(stats.counters),
        write_breakdown=stats.breakdown(Direction.WRITE),
        read_breakdown=stats.breakdown(Direction.READ),
    )
