"""Run one workload against one file-system stack and collect metrics.

Setup (file-set preparation) is excluded from measurement: statistics are
reset and the measurement epoch recorded after ``workload.setup``.
Threads are interleaved event-driven: the runner always advances the
logical thread whose virtual clock is furthest behind, so device-level
contention (shared flash channels, the PCIe link, the firmware core)
shapes the aggregate throughput exactly as in a real multi-threaded run.

With ``traced=True`` (or ``REPRO_TRACE=1`` in the environment) the
measured loop runs under an activated :class:`repro.trace.Tracer`: each
workload op becomes a root span whose start/end are the exact clock
reads that feed the :class:`LatencyRecorder`, so root span duration and
recorded latency agree to the float bit.  ``REPRO_TRACE`` attaches a
metrics-only tracer (histograms, no span retention) so long CI runs stay
memory-bounded; ``traced=True`` keeps the full span tree on
``RunResult.trace``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.bytefs import build_stack
from repro.devcache import DevCacheConfig
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import TimingModel
from repro.sim.clock import SEC
from repro.stats.traffic import (
    Direction,
    Interface,
    LatencyRecorder,
    StructKind,
    TrafficStats,
)
from repro.trace import tracer as trace
from repro.trace.tracer import Tracer
from repro.workloads.base import Workload

#: 256 MB of emulated flash: ample for the scaled-down workloads while
#: keeping Python memory modest (pages are stored sparsely).
DEFAULT_GEOMETRY = FlashGeometry(
    n_channels=8,
    ways_per_channel=1,
    blocks_per_way=128,
    pages_per_block=64,
    page_size=4096,
)


@dataclass
class RunResult:
    """Everything a figure needs from one (fs, workload) run."""

    fs_name: str
    workload: str
    ops: int
    elapsed_s: float
    latency: LatencyRecorder
    meta_write: int
    meta_read: int
    data_write: int
    data_read: int
    byte_write: int
    block_write: int
    flash_read: int
    flash_write: int
    app_write: int
    app_read: int
    counters: Dict[str, int] = field(default_factory=dict)
    #: per-StructKind host<->SSD bytes (Figure 1/8/9 breakdowns)
    write_breakdown: Dict[StructKind, int] = field(default_factory=dict)
    read_breakdown: Dict[StructKind, int] = field(default_factory=dict)
    #: JSON-ready traffic aggregates (TrafficStats.to_json)
    traffic: Dict[str, Dict] = field(default_factory=dict)
    #: the tracer used for the measured loop, when tracing was on
    trace: Optional[Tracer] = None
    #: resolved RNG seed of the workload (set only when the caller asks
    #: for a config echo; absent from JSON otherwise so byte-pinned
    #: golden fixtures are unaffected)
    seed: Optional[int] = None
    #: caller-supplied run-configuration echo (harness knobs, CLI args)
    config: Optional[Dict] = None

    @property
    def throughput(self) -> float:
        """Operations per simulated second."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.ops / self.elapsed_s

    @property
    def host_write(self) -> int:
        return self.meta_write + self.data_write

    @property
    def host_read(self) -> int:
        return self.meta_read + self.data_read

    @property
    def write_amplification(self) -> float:
        return self.host_write / self.app_write if self.app_write else float("nan")

    @property
    def read_amplification(self) -> float:
        return self.host_read / self.app_read if self.app_read else float("nan")

    def to_json(self) -> Dict:
        """A JSON-serialisable summary (``repro run --format=json``)."""

        def _num(x: float) -> Optional[float]:
            return None if isinstance(x, float) and not math.isfinite(x) else x

        doc = {
            "fs": self.fs_name,
            "workload": self.workload,
            "ops": self.ops,
            "elapsed_s": self.elapsed_s,
            "throughput_ops_s": _num(self.throughput),
            "write_amplification": _num(self.write_amplification),
            "read_amplification": _num(self.read_amplification),
            "bytes": {
                "meta_write": self.meta_write,
                "meta_read": self.meta_read,
                "data_write": self.data_write,
                "data_read": self.data_read,
                "byte_write": self.byte_write,
                "block_write": self.block_write,
                "flash_read": self.flash_read,
                "flash_write": self.flash_write,
                "app_write": self.app_write,
                "app_read": self.app_read,
            },
            "write_breakdown": {
                k.value: n for k, n in sorted(
                    self.write_breakdown.items(), key=lambda kv: kv[0].value
                )
            },
            "read_breakdown": {
                k.value: n for k, n in sorted(
                    self.read_breakdown.items(), key=lambda kv: kv[0].value
                )
            },
            "latency": {
                op: {k: _num(v) for k, v in self.latency.summary(op).items()}
                for op in self.latency.ops()
            },
            "traffic": self.traffic,
        }
        # Reproducibility echo: emitted only when the caller opted in, so
        # documents produced without it stay byte-identical (goldens).
        if self.seed is not None:
            doc["seed"] = self.seed
        if self.config is not None:
            doc["config"] = self.config
        return doc


def run_workload(
    fs_name: str,
    workload: Workload,
    geometry: Optional[FlashGeometry] = None,
    timing: Optional[TimingModel] = None,
    log_bytes: int = 1 << 20,
    device_cache_bytes: int = 1 << 20,
    page_cache_pages: int = 512,
    devcache: Optional[DevCacheConfig] = None,
    unmount: bool = False,
    traced: bool = False,
    stack_probe: Optional[Callable] = None,
    config_echo: Optional[Dict] = None,
) -> RunResult:
    """Build a fresh stack, run the workload, and collect metrics.

    The device DRAM defaults (1 MB write log / 1 MB baseline page cache)
    scale the paper's 256 MB SSD DRAM down by the same factor as the
    workloads, so cache/log pressure appears at the same relative point.

    ``traced=True`` records the full span tree of the measured loop on
    ``RunResult.trace``; when the ``REPRO_TRACE`` environment variable is
    set, every run gets a metrics-only tracer instead (histograms only).

    ``stack_probe`` is an observation hook for the perf harness
    (:mod:`repro.bench.perf`): it is called as
    ``stack_probe(phase, clock, stats, device, fs)`` with phase
    ``"measure-start"`` at the measurement epoch (right after setup and
    the stats reset) and ``"measure-end"`` right after the measured loop
    drains, bracketing exactly the measured region.  The probe must not
    mutate the stack.

    ``config_echo`` opts the result into the reproducibility echo: the
    dict is attached verbatim as ``RunResult.config`` and the workload's
    resolved RNG seed as ``RunResult.seed``, and both then appear in
    ``to_json()``.  Off by default so existing documents (and the golden
    differential fixtures) are byte-identical.
    """
    clock, stats, device, fs = build_stack(
        fs_name,
        geometry=geometry or DEFAULT_GEOMETRY,
        timing=timing,
        n_threads=workload.n_threads,
        log_bytes=log_bytes,
        device_cache_bytes=device_cache_bytes,
        page_cache_pages=page_cache_pages,
        devcache=devcache,
    )
    workload.setup(fs)
    # Measurement epoch: everything before this is free.
    clock.sync_all()
    stats.reset()
    t0 = clock.elapsed_ns
    if stack_probe is not None:
        stack_probe("measure-start", clock, stats, device, fs)
    latency = LatencyRecorder()
    tracer: Optional[Tracer] = None
    if traced:
        tracer = Tracer(clock, keep_spans=True)
    elif trace.AUTO:
        tracer = Tracer(clock, keep_spans=False)
    gens = {tid: gen for tid, gen in enumerate(workload.make_threads(fs))}
    ops = 0
    if tracer is not None:
        with trace.activated(tracer):
            ops = _measured_loop(clock, gens, latency, tracer)
        tracer.close_all()
    else:
        ops = _measured_loop(clock, gens, latency, None)
    if stack_probe is not None:
        stack_probe("measure-end", clock, stats, device, fs)
    workload.teardown(fs)
    if unmount:
        fs.unmount()
    elapsed_s = (clock.elapsed_ns - t0) / SEC
    meta_w = stats.metadata_bytes(Direction.WRITE)
    meta_r = stats.metadata_bytes(Direction.READ)
    data_w = stats.data_bytes(Direction.WRITE)
    data_r = stats.data_bytes(Direction.READ)
    return RunResult(
        fs_name=fs_name,
        workload=workload.name,
        ops=ops,
        elapsed_s=elapsed_s,
        latency=latency,
        meta_write=meta_w,
        meta_read=meta_r,
        data_write=data_w,
        data_read=data_r,
        byte_write=stats.host_ssd_bytes(
            direction=Direction.WRITE, interface=Interface.BYTE
        ),
        block_write=stats.host_ssd_bytes(
            direction=Direction.WRITE, interface=Interface.BLOCK
        ),
        flash_read=stats.flash_bytes(direction=Direction.READ),
        flash_write=stats.flash_bytes(direction=Direction.WRITE),
        app_write=stats.app.get(Direction.WRITE, 0),
        app_read=stats.app.get(Direction.READ, 0),
        counters=dict(stats.counters),
        write_breakdown=stats.breakdown(Direction.WRITE),
        read_breakdown=stats.breakdown(Direction.READ),
        traffic=stats.to_json(),
        trace=tracer,
        seed=workload.seed if config_echo is not None else None,
        config=config_echo,
    )


def _measured_loop(clock, gens, latency, tracer: Optional[Tracer]) -> int:
    """Advance the furthest-behind thread until every generator drains.

    When tracing, each op is wrapped in a root span opened and closed at
    the exact same clock reads the latency recorder uses, and named after
    the op the generator reports — so ``root.duration_ns`` equals the
    recorded latency exactly.

    The ready queue is a min-heap of ``(time, tid)``: an op only advances
    the running thread's timeline, so popping the heap top and re-pushing
    the updated entry always selects the furthest-behind thread — with
    ties broken toward the lowest tid, exactly like the linear
    ``min(gens, key=clock.time_of)`` scan this replaces.
    """
    ops = 0
    heap = [(clock.time_of(tid), tid) for tid in gens]
    heapq.heapify(heap)
    heappop = heapq.heappop
    heappush = heapq.heappush
    while heap:
        # Advance the thread that is furthest behind.
        _t, tid = heappop(heap)
        clock.switch(tid)
        t_start = clock.now
        root = tracer.begin("workload", "op") if tracer is not None else None
        try:
            op_name = next(gens[tid])
        except StopIteration:
            if root is not None:
                # The generator's tail (teardown between the last yield
                # and StopIteration) may have traced real work under this
                # root; keep it as an explicit drain span so no child is
                # left with a dangling parent.
                root.op = "drain"
                tracer.end(root)
            del gens[tid]
            continue
        if root is not None:
            root.op = op_name
            tracer.end(root)
        latency.record(op_name, clock.now - t_start)
        ops += 1
        heappush(heap, (clock.now, tid))
    return ops
