"""Wall-clock performance harness: how fast does the simulator itself run?

Everything else in ``repro.bench`` reports *simulated* quantities; this
module is the one place that reads the host's wall clock (it is
registered as a blessed DET001 clock consumer for exactly that reason).
It replays a pinned suite of (fs, workload) cases, counts the
device-level events each replay simulates, and reports **simulated ops
per wall-second** — the simulator's own throughput.  Two invariants make
the numbers trustworthy:

* the event counts come from the deterministic simulation (link lines,
  flash ops, DMA transfers, workload ops), so they are identical across
  hosts and repeats — only the wall-clock denominator varies;
* the golden differential test (``tests/test_golden_differential.py``)
  pins ``RunResult.to_json()`` byte-for-byte, so an optimization that
  changes *simulated* behaviour cannot masquerade as a speedup.

The ``repro bench`` CLI emits the ``repro.bench.simspeed/v1`` schema
(``BENCH_simspeed.json``); :func:`validate_simspeed` is the schema
validator (CI uses it the same way the trace job uses
``validate_chrome``), and :func:`compare_to_baseline` implements the
ratio-based regression gate: per-case ratios are normalized by their
median so a uniformly slower shared runner does not flap the build,
while any *single* case regressing relative to the others fails it.
"""

from __future__ import annotations

import gc
import json
import time  # wall clock: repro.bench.perf is a registered DET001 consumer
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.harness import RunResult, run_workload
from repro.devcache import DevCacheConfig
from repro.nand.geometry import FlashGeometry
from repro.workloads import (
    Fileserver,
    MicroCreate,
    MicroDelete,
    MmapStress,
    OLTP,
    Varmail,
    Webserver,
)
from repro.workloads.base import Workload

SCHEMA = "repro.bench.simspeed/v1"

#: 32 MB device, the same scale the tier-1 golden benches run at: large
#: enough to exercise GC and log cleaning, small enough for CI.
BENCH_GEOMETRY = FlashGeometry(
    n_channels=4,
    ways_per_channel=1,
    blocks_per_way=32,
    pages_per_block=64,
    page_size=4096,
)

#: Workload factories at smoke scale (fresh instance per run: setup
#: mutates workload state).
WORKLOADS: Dict[str, Callable[[], Workload]] = {
    "create": lambda: MicroCreate(n_files=150),
    "delete": lambda: MicroDelete(n_files=120),
    "varmail": lambda: Varmail(ops_per_thread=12),
    "fileserver": lambda: Fileserver(ops_per_thread=8),
    "webserver": lambda: Webserver(ops_per_thread=8),
    "oltp": lambda: OLTP(ops_per_thread=10),
    "mmap_stress": lambda: MmapStress(
        n_ops=600, n_threads=2, file_pages=96
    ),
}

#: Per-workload harness overrides.  mmap_stress shrinks the host page
#: cache so its working set spills to the device — that device-side
#: traffic is exactly what the ``+devcache`` companion case absorbs.
WORKLOAD_HARNESS_KW: Dict[str, Dict] = {
    "mmap_stress": {"page_cache_pages": 128},
}

#: Suffix selecting the device-DRAM cache tier for a suite case, e.g.
#: ``mmap_stress+devcache``: same workload, cache enabled.  The on/off
#: pair pins both simulator speed and the cache's simulated effect
#: (fewer flash ops in layer_calls = the hit-rate/write-absorption win).
DEVCACHE_SUFFIX = "+devcache"

#: The cache config behind ``+devcache`` cases: 1 MB LRU with the
#: stride prefetcher (the docs/CACHING.md defaults).
BENCH_DEVCACHE = DevCacheConfig(
    cache_bytes=1 << 20, policy="lru", prefetch=True
)

#: The pinned default suite: every file system, plus extra ByteFS cases
#: because its firmware (write log, skip-list index, log cleaning) is
#: the hottest Python path in the repo, plus one cluster-scale serving
#: case so ``repro bench --check`` gates serving throughput too.
DEFAULT_SUITE: Tuple[Tuple[str, str], ...] = (
    ("bytefs", "create"),
    ("bytefs", "varmail"),
    ("bytefs", "oltp"),
    ("bytefs", "fileserver"),
    ("ext4", "create"),
    ("ext4", "varmail"),
    ("f2fs", "webserver"),
    ("nova", "create"),
    ("pmfs", "varmail"),
    ("bytefs", "serve-32x4"),
    ("bytefs", "mmap_stress"),
    ("bytefs", "mmap_stress+devcache"),
)

#: Worker-scaling companions to the cluster case.  Deliberately NOT in
#: DEFAULT_SUITE: parallel speedup depends on the runner's core count,
#: so gating it in the median-normalized ``--check`` would flap shared
#: CI hosts.  ``repro bench --cluster-scaling`` appends them; the
#: measured curve is recorded in EXPERIMENTS.md and BENCH_simspeed.json.
CLUSTER_SCALING_SUITE: Tuple[Tuple[str, str], ...] = (
    ("bytefs", "serve-32x4-w2"),
    ("bytefs", "serve-32x4-w4"),
)

#: Requests per tenant in the ``serve-TxD`` bench cases (calibrated so
#: the serial drain takes ~1-2 s: long enough to dominate process
#: overheads in the scaling cases, short enough for CI).
CLUSTER_OPS_PER_TENANT = 40


@dataclass
class CaseResult:
    """One (fs, workload) case: deterministic counts + wall timings."""

    fs: str
    workload: str
    workload_ops: int
    sim_elapsed_s: float
    layer_calls: Dict[str, int]
    wall_s: List[float] = field(default_factory=list)

    @property
    def sim_ops(self) -> int:
        """Simulated device-level events plus workload ops."""
        return self.workload_ops + sum(self.layer_calls.values())

    @property
    def wall_s_best(self) -> float:
        return min(self.wall_s)

    @property
    def ops_per_wall_s(self) -> float:
        return self.sim_ops / self.wall_s_best

    def to_json(self) -> Dict:
        return {
            "fs": self.fs,
            "workload": self.workload,
            "workload_ops": self.workload_ops,
            "sim_ops": self.sim_ops,
            "sim_elapsed_s": self.sim_elapsed_s,
            "layer_calls": dict(sorted(self.layer_calls.items())),
            "wall_s": [round(w, 6) for w in self.wall_s],
            "wall_s_best": round(self.wall_s_best, 6),
            "ops_per_wall_s": round(self.ops_per_wall_s, 1),
        }


class _Probe:
    """Snapshots device counters at the measurement epoch and end.

    ``run_workload`` calls it with ("measure-start" | "measure-end");
    the diff is the measured region's per-layer call counts, and the
    perf_counter pair is the measured region's wall time — setup and
    teardown are excluded from both.
    """

    def __init__(self) -> None:
        self.layer_calls: Dict[str, int] = {}
        self.wall_s = 0.0
        self._start: Dict[str, int] = {}
        self._t0 = 0.0

    @staticmethod
    def _snapshot(device) -> Dict[str, int]:
        link = device.link
        flash = device.flash
        return {
            "link.mmio_read_lines": link.mmio_reads,
            "link.mmio_write_lines": link.mmio_writes,
            "link.dma_transfers": link.dma_transfers,
            "flash.reads": flash.reads,
            "flash.writes": flash.writes,
            "flash.erases": flash.erases,
        }

    def __call__(self, phase: str, clock, stats, device, fs) -> None:
        if phase == "measure-start":
            self._start = self._snapshot(device)
            self._t0 = time.perf_counter()
        elif phase == "measure-end":
            t1 = time.perf_counter()
            end = self._snapshot(device)
            self.wall_s = t1 - self._t0
            self.layer_calls = {
                k: end[k] - self._start[k] for k in end
            }


def _parse_cluster_case(workload_name: str) -> Tuple[int, int, int]:
    """``serve-<tenants>x<devices>[-w<workers>]`` -> (T, D, workers)."""
    body = workload_name[len("serve-"):]
    workers = 0
    if "-w" in body:
        body, w = body.split("-w", 1)
        workers = int(w)
    t, d = body.split("x", 1)
    return int(t), int(d), workers


def run_cluster_case(
    fs: str, workload_name: str, repeat: int = 1
) -> CaseResult:
    """Run one ``serve-TxD[-wK]`` cluster-serving case.

    The measured region is the drain phase only (``result.wall_s``:
    epoch start to last shard finished), so serial and worker cases
    time the same simulated work — setup, process spawn and result
    pickling are excluded, exactly as run_case excludes setup.
    """
    import dataclasses

    from repro.cluster.serve import serve_cluster
    from repro.cluster.tenant import default_tenants

    n_tenants, n_devices, workers = _parse_cluster_case(workload_name)
    case: Optional[CaseResult] = None
    for _ in range(max(1, repeat)):
        # Pin tenant i to device i % D: deterministic, perfectly
        # balanced shards, so worker speedup measures the harness and
        # not placement luck.
        tenants = [
            dataclasses.replace(spec, device=i % n_devices)
            for i, spec in enumerate(
                default_tenants(n_tenants, n_ops=CLUSTER_OPS_PER_TENANT)
            )
        ]
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            result = serve_cluster(
                tenants,
                fs_name=fs,
                n_devices=n_devices,
                sched="drr",
                geometry=BENCH_GEOMETRY,
                workers=workers,
            )
        finally:
            if gc_was_enabled:
                gc.enable()
        ops = sum(t.ops for t in result.tenants)
        if case is None:
            case = CaseResult(
                fs=fs,
                workload=workload_name,
                workload_ops=ops,
                sim_elapsed_s=result.elapsed_s,
                layer_calls=dict(result.layer_calls),
            )
        elif (case.workload_ops, case.layer_calls) != (
            ops, result.layer_calls
        ):  # pragma: no cover - determinism violation guard
            raise AssertionError(
                f"{fs}/{workload_name}: simulated counts differ between "
                "repeats — the stack is nondeterministic"
            )
        case.wall_s.append(result.wall_s)
    assert case is not None
    return case


def run_case(fs: str, workload_name: str, repeat: int = 1) -> CaseResult:
    """Run one suite case ``repeat`` times; keep every wall sample."""
    if workload_name.startswith("serve-"):
        return run_cluster_case(fs, workload_name, repeat=repeat)
    base_name = workload_name
    devcache = None
    if workload_name.endswith(DEVCACHE_SUFFIX):
        base_name = workload_name[: -len(DEVCACHE_SUFFIX)]
        devcache = BENCH_DEVCACHE
    if base_name not in WORKLOADS:
        raise ValueError(f"unknown bench workload {workload_name!r}")
    case: Optional[CaseResult] = None
    for _ in range(max(1, repeat)):
        probe = _Probe()
        # Standard timing hygiene (what pyperf does): start each sample
        # from a collected heap and keep the cyclic collector from firing
        # mid-measurement.  Simulated results are unaffected.
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            result: RunResult = run_workload(
                fs,
                WORKLOADS[base_name](),
                geometry=BENCH_GEOMETRY,
                stack_probe=probe,
                devcache=devcache,
                **WORKLOAD_HARNESS_KW.get(base_name, {}),
            )
        finally:
            if gc_was_enabled:
                gc.enable()
        if case is None:
            case = CaseResult(
                fs=fs,
                workload=workload_name,
                workload_ops=result.ops,
                sim_elapsed_s=result.elapsed_s,
                layer_calls=probe.layer_calls,
            )
        elif (case.workload_ops, case.layer_calls) != (
            result.ops, probe.layer_calls
        ):  # pragma: no cover - determinism violation guard
            raise AssertionError(
                f"{fs}/{workload_name}: simulated counts differ between "
                "repeats — the stack is nondeterministic"
            )
        case.wall_s.append(probe.wall_s)
    assert case is not None
    return case


def run_suite(
    suite: Tuple[Tuple[str, str], ...] = DEFAULT_SUITE,
    repeat: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> List[CaseResult]:
    out = []
    for fs, wl in suite:
        if progress is not None:
            progress(f"{fs}/{wl}")
        out.append(run_case(fs, wl, repeat=repeat))
    return out


def aggregate(cases: List[CaseResult]) -> Dict[str, float]:
    total_ops = sum(c.sim_ops for c in cases)
    total_wall = sum(c.wall_s_best for c in cases)
    return {
        "sim_ops": total_ops,
        "wall_s_best": round(total_wall, 6),
        "ops_per_wall_s": round(total_ops / total_wall, 1),
    }


def to_document(
    cases: List[CaseResult],
    repeat: int,
    baseline: Optional[Dict] = None,
) -> Dict:
    """The ``repro.bench.simspeed/v1`` document (BENCH_simspeed.json)."""
    doc = {
        "schema": SCHEMA,
        "repeat": repeat,
        "suite": [c.to_json() for c in cases],
        "aggregate": aggregate(cases),
    }
    if baseline is not None:
        agg = doc["aggregate"]["ops_per_wall_s"]
        base_agg = baseline.get("aggregate", {}).get("ops_per_wall_s")
        doc["baseline"] = {
            "ops_per_wall_s": base_agg,
            "speedup": round(agg / base_agg, 2) if base_agg else None,
        }
    return doc


# ---------------------------------------------------------------------- #
# schema validation (CI gate, like repro.trace.export.validate_chrome)
# ---------------------------------------------------------------------- #

_CASE_FIELDS = {
    "fs": str,
    "workload": str,
    "workload_ops": int,
    "sim_ops": int,
    "sim_elapsed_s": (int, float),
    "layer_calls": dict,
    "wall_s": list,
    "wall_s_best": (int, float),
    "ops_per_wall_s": (int, float),
}


def validate_simspeed(doc: Dict) -> List[str]:
    """Return a list of schema problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(doc.get("repeat"), int) or doc.get("repeat", 0) < 1:
        problems.append("repeat must be a positive integer")
    suite = doc.get("suite")
    if not isinstance(suite, list) or not suite:
        problems.append("suite must be a non-empty list")
        suite = []
    for i, case in enumerate(suite):
        if not isinstance(case, dict):
            problems.append(f"suite[{i}] is not an object")
            continue
        for key, typ in _CASE_FIELDS.items():
            if key not in case:
                problems.append(f"suite[{i}] missing {key!r}")
            elif not isinstance(case[key], typ) or isinstance(case[key], bool):
                problems.append(f"suite[{i}].{key} has wrong type")
        calls = case.get("layer_calls")
        if isinstance(calls, dict):
            for k, v in calls.items():
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    problems.append(
                        f"suite[{i}].layer_calls[{k!r}] must be a "
                        "non-negative integer"
                    )
        wall = case.get("wall_s")
        if isinstance(wall, list) and (
            not wall or any(
                not isinstance(w, (int, float)) or w <= 0 for w in wall
            )
        ):
            problems.append(f"suite[{i}].wall_s must be positive numbers")
    agg = doc.get("aggregate")
    if not isinstance(agg, dict):
        problems.append("aggregate must be an object")
    else:
        for key in ("sim_ops", "wall_s_best", "ops_per_wall_s"):
            if not isinstance(agg.get(key), (int, float)) \
                    or isinstance(agg.get(key), bool):
                problems.append(f"aggregate.{key} must be a number")
    base = doc.get("baseline")
    if base is not None:
        # optional section, present when the run was given --baseline
        if not isinstance(base, dict):
            problems.append("baseline must be an object or absent")
        else:
            for key in ("ops_per_wall_s", "speedup"):
                v = base.get(key)
                if v is not None and (
                    not isinstance(v, (int, float)) or isinstance(v, bool)
                ):
                    problems.append(
                        f"baseline.{key} must be a number or null"
                    )
    return problems


# ---------------------------------------------------------------------- #
# baseline comparison (ratio-based, median-normalized)
# ---------------------------------------------------------------------- #

def _median(xs: List[float]) -> float:
    s = sorted(xs)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2.0


def compare_to_baseline(
    current: Dict, baseline: Dict, max_regression: float = 0.30,
) -> Tuple[bool, List[str]]:
    """Gate: fail when any case's ops/wall-s regressed >``max_regression``
    relative to the suite median ratio.

    Normalizing by the median ratio cancels uniform host-speed
    differences (a loaded shared runner slows every case alike), so the
    gate only fires on *relative* regressions — one case getting slower
    than its peers, which is what a code regression looks like.
    """
    lines: List[str] = []
    base_by_key = {
        (c["fs"], c["workload"]): c for c in baseline.get("suite", [])
    }
    ratios: Dict[Tuple[str, str], float] = {}
    for case in current.get("suite", []):
        key = (case["fs"], case["workload"])
        base = base_by_key.get(key)
        if base is None or not base.get("ops_per_wall_s"):
            lines.append(f"{key[0]}/{key[1]}: no baseline case, skipped")
            continue
        ratios[key] = case["ops_per_wall_s"] / base["ops_per_wall_s"]
    if not ratios:
        return False, ["no comparable cases between current and baseline"]
    med = _median(list(ratios.values()))
    ok = True
    floor = (1.0 - max_regression) * med
    for key, ratio in sorted(ratios.items()):
        rel = ratio / med
        status = "ok"
        if ratio < floor:
            status = f"REGRESSED ({1 - rel:.0%} below suite median)"
            ok = False
        lines.append(
            f"{key[0]}/{key[1]}: {ratio:.2f}x vs baseline "
            f"(suite median {med:.2f}x) {status}"
        )
    return ok, lines


def render_text(doc: Dict) -> str:
    """Human-readable table for ``repro bench`` without ``--json``."""
    lines = [
        f"{'fs':<10} {'workload':<12} {'sim_ops':>9} {'wall ms':>9} "
        f"{'kops/wall-s':>12}"
    ]
    for case in doc["suite"]:
        lines.append(
            f"{case['fs']:<10} {case['workload']:<12} "
            f"{case['sim_ops']:>9} {case['wall_s_best'] * 1e3:>9.1f} "
            f"{case['ops_per_wall_s'] / 1e3:>12.1f}"
        )
    agg = doc["aggregate"]
    lines.append(
        f"{'aggregate':<23} {agg['sim_ops']:>9} "
        f"{agg['wall_s_best'] * 1e3:>9.1f} "
        f"{agg['ops_per_wall_s'] / 1e3:>12.1f}"
    )
    base = doc.get("baseline")
    if base and base.get("speedup"):
        lines.append(
            f"speedup vs baseline ({base['ops_per_wall_s']:.0f} ops/wall-s): "
            f"{base['speedup']:.2f}x"
        )
    return "\n".join(lines)


def load_document(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def dump_document(doc: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
