"""Text-table formatting for the benchmark harness (figures as rows)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def normalize(
    values: Mapping[str, float], baseline: str
) -> Dict[str, float]:
    """Normalize a {system: value} map to one system (paper-style)."""
    base = values[baseline]
    if base == 0:
        return {k: float("inf") for k in values}
    return {k: v / base for k, v in values.items()}


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence],
    col_width: int = 12,
) -> str:
    """Render an aligned text table with a title rule."""
    lines: List[str] = []
    lines.append("")
    lines.append(f"=== {title} ===")
    header = "".join(f"{c:>{col_width}}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(f"{cell:>{col_width}.2f}")
            else:
                cells.append(f"{str(cell):>{col_width}}")
        lines.append("".join(cells))
    return "\n".join(lines)
