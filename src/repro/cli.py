"""Command-line interface: run workloads and regenerate figures.

Usage::

    python -m repro list
    python -m repro run --fs bytefs --workload varmail
    python -m repro run --fs ext4 --workload ycsb-a
    python -m repro compare --workload create
    python -m repro crashsweep --fs bytefs --max-sites 100
    python -m repro crashsweep --fs ext4 --site 42 --torn
    python -m repro serve --tenants 4 --fault crash:dev0@ops=50 \\
        --out run.json --telemetry-out series.jsonl
    python -m repro top run.json --series series.jsonl
    python -m repro lint
    python -m repro lint src/repro/fs --format=json
    python -m repro trace create --ssd bytefs --out trace.json
    python -m repro trace varmail --out trace.jsonl --format=jsonl \\
        --report critical-path
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional

from repro.bench.harness import run_workload
from repro.bench.report import format_table, normalize
from repro.core.bytefs import FIRMWARE_FOR
from repro.devcache import DevCacheConfig
from repro.workloads import MACRO_WORKLOADS, MICRO_WORKLOADS, YCSB
from repro.workloads.base import Workload

#: --evict choices (hardcoded: the CLI is host code and may only import
#: *Config names from the device-internal repro.devcache package)
EVICT_CHOICES = ("lru", "clock", "hotcold")


def _parse_size(text: str) -> int:
    """Parse a byte size: plain int or k/m/g suffix (``4m`` = 4 MiB)."""
    text = text.strip().lower()
    factor = 1
    if text and text[-1] in "kmg":
        factor = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}[text[-1]]
        text = text[:-1]
    try:
        return int(text) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r} (expected e.g. 1048576, 256k, 4m)"
        )


def _add_devcache_args(p) -> None:
    p.add_argument(
        "--devcache", type=_parse_size, default=0, metavar="SIZE",
        help="device-DRAM page-frame cache between firmware and flash "
        "(bytes, k/m/g suffixes ok; 0 = disabled, the default)",
    )
    p.add_argument(
        "--evict", choices=EVICT_CHOICES, default="lru",
        help="devcache eviction policy (default lru)",
    )
    p.add_argument(
        "--prefetch", choices=("on", "off"), default="off",
        help="devcache speculative stride prefetcher (default off)",
    )


def _devcache_config(args) -> Optional[DevCacheConfig]:
    """The DevCacheConfig the --devcache/--evict/--prefetch flags ask
    for, or None when the cache is disabled."""
    if not args.devcache:
        return None
    return DevCacheConfig(
        cache_bytes=args.devcache,
        policy=args.evict,
        prefetch=args.prefetch == "on",
    )


def _make_workload(name: str) -> Workload:
    name = name.lower()
    if name in MICRO_WORKLOADS:
        return MICRO_WORKLOADS[name]()
    if name in MACRO_WORKLOADS:
        return MACRO_WORKLOADS[name]()
    if name.startswith("ycsb-"):
        return YCSB(name.split("-", 1)[1].upper(), n_records=600,
                    n_ops=600, n_threads=4, value_size=400)
    raise SystemExit(f"unknown workload {name!r}; try `repro list`")


def _cmd_list(_args) -> int:
    print("file systems :", ", ".join(sorted(FIRMWARE_FOR)))
    print("micro        :", ", ".join(sorted(MICRO_WORKLOADS)))
    print("macro        :", ", ".join(sorted(MACRO_WORKLOADS)))
    print("ycsb         :", ", ".join(f"ycsb-{x}" for x in "abcdef"))
    return 0


def _cmd_run(args) -> int:
    wl = _make_workload(args.workload)
    devcache = _devcache_config(args)
    config_echo = {
        "workload": args.workload,
        "log_bytes": args.log_bytes,
        "device_cache_bytes": args.device_cache_bytes,
    }
    if devcache is not None:
        # Echoed only when enabled so cache-off documents stay
        # byte-identical to pre-devcache ones.
        config_echo["devcache"] = {
            "cache_bytes": devcache.cache_bytes,
            "policy": devcache.policy,
            "prefetch": devcache.prefetch,
        }
    result = run_workload(
        args.fs, wl,
        log_bytes=args.log_bytes,
        device_cache_bytes=args.device_cache_bytes,
        devcache=devcache,
        # Reproducibility echo: the JSON document carries the resolved
        # seed and the harness knobs that produced it.
        config_echo=config_echo,
    )
    if args.format == "json":
        print(json.dumps(result.to_json(), sort_keys=True, indent=2))
        return 0
    rows = [
        ("throughput (ops/s)", result.throughput),
        ("simulated time (ms)", result.elapsed_s * 1000),
        ("write amplification", result.write_amplification),
        ("host writes (KB)", result.host_write / 1024),
        ("host reads (KB)", result.host_read / 1024),
        ("byte-interface writes (KB)", result.byte_write / 1024),
        ("flash writes (KB)", result.flash_write / 1024),
    ]
    print(format_table(
        f"{args.workload} on {args.fs}", ["metric", "value"], rows,
        col_width=28,
    ))
    for op in result.latency.ops():
        print(
            f"  {op:<16} n={result.latency.count(op):<6} "
            f"avg={result.latency.mean(op) / 1000:8.1f}us "
            f"p95={result.latency.percentile(op, 95) / 1000:8.1f}us"
        )
    return 0


def _cmd_serve(args) -> int:
    from repro.cluster import (
        ALL_OPS,
        default_tenants,
        serve_cluster,
        validate_cluster_run,
    )
    from repro.faults import parse_fault

    tenants = default_tenants(args.tenants, n_ops=args.ops)
    telemetry_on = args.telemetry_out is not None or args.listen is not None
    try:
        faults = [parse_fault(spec) for spec in (args.fault or ())]
        result = serve_cluster(
            tenants,
            fs_name=args.fs,
            n_devices=args.devices,
            sched=args.sched,
            seed=args.seed,
            queue_depth=args.queue_depth,
            max_queue=args.max_queue,
            quantum_ns=args.quantum_ns,
            devcache=_devcache_config(args),
            faults=faults,
            outage_policy=args.outage_policy,
            sample_every_ns=args.sample_ns if telemetry_on else None,
            workers=args.workers,
        )
    except ValueError as exc:
        # bad --fault spec / fault plan (device out of range, duplicate
        # device, unmirrorable workload): a usage error, not a crash
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    doc = result.to_json()
    problems = validate_cluster_run(doc)
    if problems:  # pragma: no cover - harness bug guard
        for p in problems:
            print(f"schema error: {p}", file=sys.stderr)
        return 2
    # Oracle verdicts gate the exit code: a recovery that lost
    # acked-durable data is a failed run even though it produced a
    # well-formed document.
    dirty = [r for r in result.recovery if not r["oracle"]["clean"]]
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.telemetry_out:
        from repro.telemetry import write_series

        n_rows = write_series(result.telemetry, args.telemetry_out)
        print(
            f"wrote {args.telemetry_out} ({n_rows} samples)",
            file=sys.stderr,
        )
    if args.format == "json":
        print(json.dumps(doc, sort_keys=True, indent=2))
        if args.listen is not None:
            _serve_metrics(result, args.listen)
        return 1 if dirty else 0
    rows = []
    for t in doc["tenants"]:
        lat = t["latency"].get(ALL_OPS) or {}
        rows.append((
            t["spec"]["name"],
            t["device"],
            t["ops"],
            t["rejected"],
            t["slo_violations"],
            (lat.get("p50") or 0.0) / 1000,
            (lat.get("p95") or 0.0) / 1000,
            (lat.get("p99") or 0.0) / 1000,
        ))
    print(format_table(
        f"{args.tenants} tenants on {args.devices}x {args.fs} "
        f"({args.sched})",
        ["tenant", "dev", "ops", "rej", "slo!", "p50 us", "p95 us",
         "p99 us"],
        rows,
        col_width=16,
    ))
    print(
        f"  total: {doc['ops']} ops in {doc['elapsed_s'] * 1000:.2f} ms "
        f"simulated, {doc['slo_violations']} SLO violations, "
        f"{doc['rejected']} rejected"
        + (
            f", {doc['lost_to_crash']} lost to crash"
            if doc["lost_to_crash"] else ""
        )
    )
    # result.recovery keeps the measured wall_s; the JSON document nulls
    # it so identical invocations stay byte-identical.
    for rec in result.recovery:
        oc = rec["oracle"]
        verdict = (
            "clean" if oc["clean"]
            else f"VIOLATED ({sum(len(v) for v in oc['errors'].values())})"
        )
        fired = rec["fired"]
        print(
            f"  recovery: dev{rec['device']} down at "
            f"{rec['t_down_ns'] / 1e6:.3f} ms "
            f"({'mid-' + fired['label'] if fired else 'between ops'}"
            f"{', torn' if fired and fired['torn_bytes'] else ''}), "
            f"back at {rec['t_up_ns'] / 1e6:.3f} ms "
            f"(+{rec['virtual_ns'] / 1e6:.3f} ms virtual, "
            f"wall {rec['wall_s'] * 1e3:.1f} ms), "
            f"oracle {verdict} over {len(oc['checked'])} tenant(s)"
        )
    if args.listen is not None:
        _serve_metrics(result, args.listen)
    return 1 if dirty else 0


def _serve_metrics(result, port: int) -> None:
    """Block on a /metrics + /healthz endpoint over the run's telemetry."""
    from repro.telemetry import make_server, render_prometheus

    srv = make_server(
        lambda: render_prometheus(result.telemetry), port=port
    )
    host, bound = srv.server_address[:2]
    print(
        f"telemetry: http://{host}:{bound}/metrics and /healthz "
        "(Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        srv.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        srv.server_close()


def _cmd_top(args) -> int:
    from repro.telemetry import load_series, render_top, validate_series

    with open(args.result, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    series = None
    if args.series:
        series = load_series(args.series)
        problems = validate_series(series)
        if problems:
            for p in problems:
                print(f"series error: {p}", file=sys.stderr)
            return 2
    print(render_top(doc, series=series, top_n=args.top))
    return 0


def _cmd_compare(args) -> int:
    systems = args.systems.split(",")
    tput: Dict[str, float] = {}
    for fs in systems:
        wl = _make_workload(args.workload)
        tput[fs] = run_workload(fs, wl).throughput
    norm = normalize(tput, args.baseline)
    rows = [(fs, tput[fs] / 1000, norm[fs]) for fs in systems]
    print(format_table(
        f"{args.workload}: throughput comparison",
        ["fs", "kops/s", f"vs {args.baseline}"],
        rows,
    ))
    return 0


def _cmd_crashsweep(args) -> int:
    from repro.faults import SweepConfig, run_crash, run_sweep

    config = SweepConfig(
        fs_name=args.fs,
        seed=args.seed,
        max_sites=args.max_sites,
        torn=not args.no_torn,
    )
    if args.site is not None:
        # Reproduce a single crash point (e.g. from a failing sweep).
        result = run_crash(config, args.site, torn=args.torn)
        print(result.describe())
        return 0 if result.ok else 1
    report = run_sweep(config)
    print(report.summary())
    for label, n in sorted(report.label_histogram.items()):
        print(f"  {label:<24} {n}")
    for failure in report.failures:
        print(failure.describe())
    return 0 if report.ok else 1


def _cmd_trace(args) -> int:
    from repro.trace.export import (
        to_chrome_json,
        validate_chrome,
        write_chrome,
        write_jsonl,
    )
    from repro.trace.report import render_breakdown, render_critical_path

    wl = _make_workload(args.workload)
    result = run_workload(
        args.fs, wl,
        log_bytes=args.log_bytes,
        device_cache_bytes=args.device_cache_bytes,
        traced=True,
    )
    tracer = result.trace
    meta = {"fs": args.fs, "workload": args.workload}
    if args.out:
        if args.format == "jsonl":
            write_jsonl(tracer, args.out, meta)
        else:
            write_chrome(tracer, args.out, meta)
            problems = validate_chrome(to_chrome_json(tracer, meta))
            if problems:  # pragma: no cover - exporter bug guard
                for p in problems:
                    print(f"schema error: {p}", file=sys.stderr)
                return 1
        print(
            f"wrote {len(tracer.spans)} spans / {len(tracer.events)} events "
            f"to {args.out} ({args.format})"
        )
    if args.report == "breakdown":
        print(render_breakdown(tracer))
    elif args.report == "critical-path":
        print(render_critical_path(tracer))
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import perf

    suite = perf.DEFAULT_SUITE
    if args.fs:
        wanted_fs = set(args.fs.split(","))
        suite = tuple(c for c in suite if c[0] in wanted_fs)
    if args.workload:
        wanted_wl = set(args.workload.split(","))
        suite = tuple(c for c in suite if c[1] in wanted_wl)
    if not suite:
        raise SystemExit("bench: filters matched no suite cases")
    if args.cluster_scaling:
        suite = suite + tuple(
            c for c in perf.CLUSTER_SCALING_SUITE if c not in suite
        )
    cases = perf.run_suite(
        suite,
        repeat=args.repeat,
        progress=None if args.json else (
            lambda name: print(f"bench: {name}", file=sys.stderr)
        ),
    )
    baseline = perf.load_document(args.baseline) if args.baseline else None
    doc = perf.to_document(cases, repeat=args.repeat, baseline=baseline)
    problems = perf.validate_simspeed(doc)
    if problems:  # pragma: no cover - harness bug guard
        for p in problems:
            print(f"schema error: {p}", file=sys.stderr)
        return 2
    if args.out:
        perf.dump_document(doc, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(doc, sort_keys=True, indent=2))
    else:
        print(perf.render_text(doc))
    if args.check:
        if baseline is None:
            raise SystemExit("bench: --check requires --baseline")
        ok, lines = perf.compare_to_baseline(doc, baseline)
        for line in lines:
            print(line)
        return 0 if ok else 1
    return 0


def _cmd_lint(args) -> int:
    import json as _json
    from pathlib import Path

    import repro
    from repro.analysis.baseline import (
        apply_baseline,
        load_baseline,
        render_baseline,
    )
    from repro.analysis.linter import lint_paths, render_json, render_text
    from repro.analysis.sarif import render_sarif

    paths = [Path(p) for p in args.paths] if args.paths else [
        Path(repro.__file__).parent
    ]
    rules = [r.strip() for r in args.rules.split(",")] if args.rules else []
    try:
        result = lint_paths(
            paths, rules, honor_suppressions=not args.no_suppressions
        )
    except ValueError as exc:
        raise SystemExit(str(exc))

    if args.coverage_out:
        if result.coverage is None:
            raise SystemExit(
                "--coverage-out requires the CS001/CS002 passes to run "
                "(drop --rules or include them)"
            )
        Path(args.coverage_out).write_text(
            _json.dumps(result.coverage, indent=2) + "\n", encoding="utf-8"
        )

    if args.update_baseline:
        if not args.baseline:
            raise SystemExit("--update-baseline requires --baseline PATH")
        Path(args.baseline).write_text(
            render_baseline(result.findings), encoding="utf-8"
        )
        print(
            f"wrote {len(result.findings)} baselined finding(s) "
            f"to {args.baseline}"
        )
        return 0
    if args.baseline:
        try:
            apply_baseline(result, load_baseline(Path(args.baseline)))
        except ValueError as exc:
            raise SystemExit(str(exc))

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    return result.exit_code


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ByteFS (ASPLOS'25) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list file systems and workloads")

    run_p = sub.add_parser("run", help="run one workload on one fs")
    run_p.add_argument("--fs", default="bytefs", choices=sorted(FIRMWARE_FOR))
    run_p.add_argument("--workload", default="varmail")
    run_p.add_argument("--log-bytes", type=int, default=1 << 20)
    run_p.add_argument("--device-cache-bytes", type=int, default=1 << 20)
    _add_devcache_args(run_p)
    run_p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="json: machine-readable run report (RunResult.to_json)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="multi-tenant serving run with QoS scheduling (repro.cluster)",
    )
    serve_p.add_argument(
        "--tenants", type=int, default=4,
        help="number of tenants (profiles cycle mixed/light/heavy/light)",
    )
    serve_p.add_argument(
        "--sched", default="drr", choices=("fifo", "drr", "token-bucket"),
        help="I/O scheduling policy arbitrating tenants per device",
    )
    serve_p.add_argument(
        "--devices", type=int, default=1,
        help="number of sharded M-SSD devices",
    )
    serve_p.add_argument(
        "--fs", default="bytefs", choices=sorted(FIRMWARE_FOR),
    )
    serve_p.add_argument("--seed", type=int, default=42)
    serve_p.add_argument(
        "--ops", type=int, default=200,
        help="requests submitted per tenant during the measured phase",
    )
    serve_p.add_argument(
        "--queue-depth", type=int, default=4,
        help="device submission-queue slots (concurrent in-flight ops)",
    )
    serve_p.add_argument(
        "--max-queue", type=int, default=64,
        help="per-tenant backlog cap; arrivals beyond it are rejected",
    )
    serve_p.add_argument(
        "--quantum-ns", type=float, default=None,
        help="DRR service quantum per weight unit (default 500us)",
    )
    _add_devcache_args(serve_p)
    serve_p.add_argument(
        "--fault", action="append", default=None, metavar="SPEC",
        help="crash and recover a device mid-run: 'crash:dev<k>@t=<s>' "
        "(virtual seconds after epoch start) or 'crash:dev<k>@ops=<n>' "
        "(after n dispatched requests), optional '+torn' suffix for a "
        "torn in-flight write; repeatable, at most one per device",
    )
    serve_p.add_argument(
        "--outage-policy", choices=("requeue", "reject"), default="requeue",
        help="arrivals landing while a device is down: wait for recovery "
        "(requeue, default) or count as rejected",
    )
    serve_p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="json: the repro.cluster.run/v2 document",
    )
    serve_p.add_argument(
        "--out", default=None,
        help="also write the JSON document to this path",
    )
    serve_p.add_argument(
        "--telemetry-out", default=None, metavar="PATH",
        help="sample live telemetry during the run and write the "
        "repro.telemetry.series/v1 JSONL to this path",
    )
    serve_p.add_argument(
        "--sample-ns", type=float, default=1_000_000,
        help="telemetry sampling interval in virtual ns (default 1ms)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="serve device shards in N worker processes and merge the "
        "fragments deterministically (byte-identical to the serial "
        "run); 0 (default) = in-process serial",
    )
    serve_p.add_argument(
        "--listen", type=int, default=None, metavar="PORT",
        help="after the run, serve Prometheus /metrics (+ /healthz) on "
        "127.0.0.1:PORT until interrupted (0 = ephemeral port)",
    )

    top_p = sub.add_parser(
        "top",
        help="terminal report over a serve result (+ telemetry series)",
    )
    top_p.add_argument(
        "result",
        help="repro.cluster.run JSON document (repro serve --out)",
    )
    top_p.add_argument(
        "--series", default=None, metavar="PATH",
        help="repro.telemetry.series/v1 JSONL (repro serve "
        "--telemetry-out) for timelines, GC storms, and outage windows",
    )
    top_p.add_argument(
        "--top", type=int, default=5,
        help="tenants per ranking table (default 5)",
    )

    tr_p = sub.add_parser(
        "trace",
        help="run one workload with span tracing and export the trace",
    )
    tr_p.add_argument("workload", help="workload name (see `repro list`)")
    tr_p.add_argument(
        "--fs", "--ssd", dest="fs", default="bytefs",
        choices=sorted(FIRMWARE_FOR),
    )
    tr_p.add_argument(
        "--out", default=None,
        help="output path; format chosen by --format",
    )
    tr_p.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome",
        help="chrome: Perfetto-loadable trace_event JSON; "
             "jsonl: one span/event per line",
    )
    tr_p.add_argument(
        "--report", choices=("breakdown", "critical-path", "none"),
        default="breakdown",
        help="latency-attribution report printed after the run",
    )
    tr_p.add_argument("--log-bytes", type=int, default=1 << 20)
    tr_p.add_argument("--device-cache-bytes", type=int, default=1 << 20)

    cmp_p = sub.add_parser("compare", help="compare systems on a workload")
    cmp_p.add_argument("--workload", default="create")
    cmp_p.add_argument(
        "--systems", default="ext4,f2fs,nova,pmfs,bytefs"
    )
    cmp_p.add_argument("--baseline", default="ext4")

    cs_p = sub.add_parser(
        "crashsweep",
        help="crash-point sweep with oracle-checked recovery",
    )
    cs_p.add_argument("--fs", default="bytefs", choices=sorted(FIRMWARE_FOR))
    cs_p.add_argument("--seed", type=int, default=0)
    cs_p.add_argument(
        "--max-sites", type=int, default=None,
        help="replay at most N sites (evenly spaced); default: all",
    )
    cs_p.add_argument(
        "--no-torn", action="store_true",
        help="skip torn-write variants during a sweep",
    )
    cs_p.add_argument(
        "--site", type=int, default=None,
        help="replay a single crash site instead of sweeping",
    )
    cs_p.add_argument(
        "--torn", action="store_true",
        help="with --site: inject the torn-write variant",
    )

    bench_p = sub.add_parser(
        "bench",
        help="wall-clock perf harness: simulated ops per wall-second",
    )
    bench_p.add_argument(
        "--repeat", type=int, default=1,
        help="run each case N times; report the best wall time",
    )
    bench_p.add_argument(
        "--fs", default=None,
        help="comma-separated fs filter on the pinned suite",
    )
    bench_p.add_argument(
        "--workload", default=None,
        help="comma-separated workload filter on the pinned suite",
    )
    bench_p.add_argument(
        "--json", action="store_true",
        help="print the repro.bench.simspeed/v1 document to stdout",
    )
    bench_p.add_argument(
        "--out", default=None,
        help="also write the document to this path (BENCH_simspeed.json)",
    )
    bench_p.add_argument(
        "--baseline", default=None,
        help="baseline BENCH_simspeed.json to embed a speedup against",
    )
    bench_p.add_argument(
        "--check", action="store_true",
        help="with --baseline: exit 1 on >30%% median-normalized "
             "per-case regression",
    )
    bench_p.add_argument(
        "--cluster-scaling", action="store_true",
        help="also run the serve worker-scaling cases (core-count "
        "sensitive, so they are excluded from the pinned suite)",
    )

    lint_p = sub.add_parser(
        "lint",
        help="static-analysis passes (crash-site, determinism, layering)",
    )
    lint_p.add_argument(
        "paths", nargs="*",
        help="files or directories to lint; default: installed repro pkg",
    )
    lint_p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
    )
    lint_p.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint_p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="grandfather findings listed in this baseline file; only "
             "new findings fail the run",
    )
    lint_p.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline PATH from the current findings and "
             "exit 0",
    )
    lint_p.add_argument(
        "--coverage-out", default=None, metavar="PATH",
        help="write the repro.lint.coverage/v1 crash-site coverage map "
             "(per mutation primitive: guarded sites + unguarded chains)",
    )
    lint_p.add_argument(
        "--no-suppressions", action="store_true",
        help="ignore every `# repro: allow[...]` comment (self-check "
             "mode)",
    )

    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "serve": _cmd_serve,
        "top": _cmd_top,
        "compare": _cmd_compare,
        "crashsweep": _cmd_crashsweep,
        "lint": _cmd_lint,
        "trace": _cmd_trace,
        "bench": _cmd_bench,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Reports like `repro top | head` close the pipe early; exit
        # quietly instead of tracebacking.  stdout is left unflushable,
        # so detach it from the interpreter-exit flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
