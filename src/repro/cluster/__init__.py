"""repro.cluster: a multi-tenant serving layer over the simulator.

Turns the single-tenant reproduction stack into a small "storage
service": N tenants with open-loop arrival processes and private
namespaces, striped across K simulated M-SSDs, arbitrated by a pluggable
I/O scheduler (FIFO / weighted-fair DRR / token-bucket rate limiting)
with admission control and per-tenant SLO accounting.

Entry points: :func:`serve_cluster` (library), ``repro serve`` (CLI).
"""

from repro.cluster.result import (
    ALL_OPS,
    SCHEMA,
    ClusterRunResult,
    TenantResult,
    validate_cluster_run,
)
from repro.cluster.sched import (
    SCHEDULERS,
    AdmissionQueue,
    DRRScheduler,
    FIFOScheduler,
    Scheduler,
    TokenBucketScheduler,
    make_scheduler,
)
from repro.cluster.serve import serve_cluster
from repro.cluster.shard import ShardedBackend, place_tenant
from repro.cluster.tenant import (
    DEFAULT_PROFILE_CYCLE,
    PROFILES,
    NamespacedFS,
    SyntheticTenantWorkload,
    TenantSpec,
    default_tenants,
    make_tenant_workload,
)

__all__ = [
    "ALL_OPS",
    "SCHEMA",
    "SCHEDULERS",
    "PROFILES",
    "DEFAULT_PROFILE_CYCLE",
    "AdmissionQueue",
    "ClusterRunResult",
    "DRRScheduler",
    "FIFOScheduler",
    "NamespacedFS",
    "Scheduler",
    "ShardedBackend",
    "SyntheticTenantWorkload",
    "TenantResult",
    "TenantSpec",
    "TokenBucketScheduler",
    "default_tenants",
    "make_scheduler",
    "make_tenant_workload",
    "place_tenant",
    "serve_cluster",
    "validate_cluster_run",
]
