"""The per-shard dispatch kernel of the serving layer.

One :func:`serve_device` call drains one device shard's tenants to
completion on the shared virtual clock — the self-contained unit that
:func:`repro.cluster.serve.serve_cluster` runs in-process for every
shard (``--workers 0``) and that :mod:`repro.cluster.worker` runs in
one OS process per shard group (``--workers N``).  The dispatch
semantics are documented on :mod:`repro.cluster.serve`; this module is
the mechanism.

**O(1) idle-time skip.**  The kernel never scans tenants to find the
next decision instant.  Two lazy min-heaps bound the next event:

* a *ready heap* of ``(r, tenant_index)`` where ``r = max(head-of-queue
  or next-unpumped-arrival, client-thread time)`` — the earliest
  instant the tenant could dispatch;
* an *arrivals heap* of ``(next_arrival, tenant_index)`` driving
  targeted arrival pumping (and the token-bucket hold-vs-next-arrival
  race).

Both follow the :meth:`repro.sim.clock.VirtualClock.next_thread`
discipline: every per-tenant quantity above is non-decreasing over the
run (queues carry sorted arrival times, client threads only move
forward, admission rejections only advance the arrival cursor), so a
stale top entry *under*-estimates its tenant and is revalidated in
place on pop.  An idle stretch of virtual time — every tenant's next
arrival far in the future — costs one heap peek instead of a scan per
tenant, and each heap holds at most one entry per tenant.

The kernel also owns the runtime state the loop mutates
(:class:`TenantRT`, :class:`DeviceFault`) and the crash/recovery
protocol (:func:`crash_and_recover`), so a worker process can import
everything it executes without pulling in the cluster orchestration.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis import fssan
from repro.faults.injector import FaultInjector
from repro.faults.oracle import OracleFS
from repro.faults.plan import DeviceCrash
from repro.sim.clock import MSEC, SEC, VirtualClock
from repro.sim.rng import make_rng
from repro.stats.traffic import Direction, LatencyRecorder, TrafficStats
from repro.telemetry import sampler as telem
from repro.trace import tracer as trace
from repro.trace.tracer import Tracer

from repro.cluster.result import ALL_OPS
from repro.cluster.sched import AdmissionQueue, Scheduler
from repro.cluster.tenant import CRASHED, TenantSpec, make_tenant_workload

_INF = float("inf")


@dataclass
class TenantRT:
    """Mutable per-tenant serving state."""

    index: int                       # global index == clock thread id
    spec: TenantSpec
    gen: object                      # the workload's op generator
    arrivals: List[float]            # absolute arrival times (ns)
    next_i: int = 0                  # first arrival not yet pumped
    queue: deque = field(default_factory=deque)
    deficit: float = 0.0             # DRR bookkeeping
    served: int = 0
    rejected: int = 0
    dropped: int = 0
    lost_to_crash: int = 0           # in flight when the shard lost power
    outage_rejected: int = 0         # rejections attributed to an outage
    slo_violations: int = 0
    slo_violations_outage: int = 0   # violations overlapping the outage
    done: bool = False               # workload generator exhausted
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    traffic: Dict[str, int] = field(default_factory=dict)
    #: namespace view and oracle mirror (faulted shards only)
    ns: Optional[object] = None
    oracle: Optional[OracleFS] = None
    #: arrivals inside [reject_from, reject_to) bounce ("reject" policy)
    reject_from: float = _INF
    reject_to: float = -_INF

    @property
    def tid(self) -> int:
        return self.index

    def submitted(self) -> int:
        return self.next_i

    def pump(self, t: float, max_queue: int) -> None:
        """Move arrivals up to ``t`` into the queue (admission control)."""
        arrivals = self.arrivals
        i = self.next_i
        n = len(arrivals)
        while i < n and arrivals[i] <= t:
            a = arrivals[i]
            if self.reject_from <= a < self.reject_to:
                # Arrived while the shard was down (policy "reject").
                self.rejected += 1
                self.outage_rejected += 1
            elif len(self.queue) >= max_queue:
                self.rejected += 1
            else:
                self.queue.append(a)
            i += 1
        self.next_i = i

    def finish(self) -> None:
        """Workload exhausted: abandon backlog and future arrivals."""
        self.done = True
        self.dropped += len(self.queue)
        self.queue.clear()
        del self.arrivals[self.next_i:]


_TRAFFIC_KEYS = (
    "host_write", "host_read", "flash_write", "flash_read",
    "app_write", "app_read",
)


def _traffic_totals(stats: TrafficStats) -> Tuple[float, ...]:
    hw = hr = 0
    for (_k, d, _i), n in stats.host_ssd.items():
        if d is Direction.WRITE:
            hw += n
        else:
            hr += n
    fw = fr = 0
    for (_k, d), n in stats.flash.items():
        if d is Direction.WRITE:
            fw += n
        else:
            fr += n
    return (
        hw, hr, fw, fr,
        stats.app.get(Direction.WRITE, 0),
        stats.app.get(Direction.READ, 0),
    )


def _attribute(tn: TenantRT, before: Tuple, after: Tuple) -> None:
    for key, b, a in zip(_TRAFFIC_KEYS, before, after):
        tn.traffic[key] = tn.traffic.get(key, 0) + (a - b)


def sanity(tn: TenantRT) -> None:
    fssan.check_queue_accounting(
        tn.spec.name, tn.submitted(), tn.served, len(tn.queue),
        tn.rejected, tn.dropped, tn.lost_to_crash,
    )


@dataclass
class DeviceFault:
    """Mutable runtime state of one planned device crash."""

    spec: DeviceCrash
    injector: FaultInjector
    t_crash: float = _INF            # absolute trigger time (ns); inf = ops
    armed: bool = False              # injector armed, crash op pending
    done: bool = False               # power-cycled and recovered
    dispatched: int = 0              # grants on this device so far
    t_down: float = 0.0
    t_up: float = 0.0
    wall_s: float = 0.0              # measured host time in recovery
    record: Optional[Dict] = None    # the result document's entry

    def due(self, t_dec: float) -> bool:
        if self.spec.after_ops is not None:
            return self.dispatched >= self.spec.after_ops
        return t_dec >= self.t_crash


def crash_and_recover(
    clock: VirtualClock,
    device: int,
    device_obj,
    fs,
    tenants: List[TenantRT],
    queue: AdmissionQueue,
    sched: Optional[Scheduler],
    stats: TrafficStats,
    fault: DeviceFault,
    outage_policy: str,
    tracer: Optional[Tracer],
) -> None:
    """Power-cycle one shard and bring it back on the virtual timeline.

    Runs synchronously on the current clock thread, at the instant power
    dropped: device DRAM state replays from its power-loss log, the file
    system runs its crash-recovery path (journal replay / log scan), and
    the durability oracle then scrubs every mirrored tenant namespace —
    the scrub's reads cost virtual time like a real verification pass,
    so recovery time includes it.  Other tenants see the outage through
    the admission queue: every slot is busy until recovery completes.
    """
    inj = fault.injector
    fired = inj.fired
    inj.disarm()
    t_down = clock.now
    smp = telem.active() if telem.ENABLED else None
    if smp is not None:
        # Pre-crash boundaries sample with up=1 before the window opens.
        smp.advance(device, t_down)
    stats.bump_fault("fault_power_cycles")
    if trace.ENABLED:
        trace.event(
            "cluster", "crash", device=device,
            site=fired.label if fired is not None else None,
        )
    span = (
        trace.begin("cluster", "recovery", device=device)
        if tracer is not None else None
    )
    wall0 = time.perf_counter()
    device_obj.power_fail()
    fs.crash()
    fw = fs.remount()
    checked: List[str] = []
    errors: Dict[str, List[str]] = {}
    for tn in sorted(tenants, key=lambda t: t.index):
        if tn.oracle is None:
            continue
        checked.append(tn.spec.name)
        bad = tn.oracle.check(tn.ns)
        if bad:
            errors[tn.spec.name] = bad
    fault.wall_s = time.perf_counter() - wall0
    t_up = clock.now
    if span is not None:
        trace.end(span)
    fault.done = True
    fault.t_down = t_down
    fault.t_up = t_up
    queue.outage_until(t_up)
    if sched is not None:
        sched.on_outage(t_down, t_up)
    if outage_policy == "reject":
        for tn in tenants:
            tn.reject_from = t_down
            tn.reject_to = t_up
    if smp is not None:
        # Boundaries inside [t_down, t_up) emit up=0: the crash and the
        # recovery show up as gauge transitions in the series.
        smp.mark_outage(device, t_down, t_up)
    fault.record = {
        "device": device,
        "trigger": fault.spec.to_json(),
        "fired": (
            {
                "site": fired.site,
                "label": fired.label,
                "nbytes": fired.nbytes,
                "torn_bytes": fired.torn_bytes,
            }
            if fired is not None else None
        ),
        "t_down_ns": t_down,
        "t_up_ns": t_up,
        "virtual_ns": t_up - t_down,
        "wall_s": fault.wall_s,
        "fw": {k: fw[k] for k in sorted(fw)},
        "oracle": {
            "checked": checked,
            "clean": not errors,
            "errors": errors,
        },
    }


def _live_ready(tn: TenantRT, time_of) -> Optional[float]:
    """The earliest instant ``tn`` could dispatch, or None if it never
    will again (no backlog, no future arrivals)."""
    if tn.queue:
        r = tn.queue[0]
    elif tn.next_i < len(tn.arrivals):
        r = tn.arrivals[tn.next_i]
    else:
        return None
    avail = time_of(tn.tid)
    return avail if avail > r else r


def serve_device(
    clock: VirtualClock,
    device: int,
    tenants: List[TenantRT],
    sched: Scheduler,
    queue: AdmissionQueue,
    stats: TrafficStats,
    max_queue: int,
    cluster_latency: LatencyRecorder,
    dispatch_log: Optional[List],
    tracer: Optional[Tracer],
    device_obj=None,
    fs=None,
    fault: Optional[DeviceFault] = None,
    outage_policy: str = "requeue",
    fault_seed: int = 0,
) -> None:
    """Drain one device's tenants to completion (see module docstring)."""
    time_of = clock.time_of
    smp = telem.active() if telem.ENABLED else None
    by_index = {tn.index: tn for tn in tenants}
    #: tenants with a non-empty queue, keyed by global index
    backlog: Dict[int, TenantRT] = {
        tn.index: tn for tn in tenants if tn.queue
    }
    ready: List[Tuple[float, int]] = []
    arrivals_heap: List[Tuple[float, int]] = []
    for tn in tenants:
        r = _live_ready(tn, time_of)
        if r is not None:
            ready.append((r, tn.index))
        if tn.next_i < len(tn.arrivals):
            arrivals_heap.append((tn.arrivals[tn.next_i], tn.index))
    heapq.heapify(ready)
    heapq.heapify(arrivals_heap)

    def _peek_ready() -> float:
        """Exact ``min(live r)`` over candidate tenants, or inf.

        Lazy revalidation: a top entry matching its tenant's live value
        is the true minimum because every other entry underestimates.
        """
        while ready:
            r, idx = ready[0]
            tn = by_index[idx]
            if tn.done:
                heapq.heappop(ready)
                continue
            live = _live_ready(tn, time_of)
            if live is None:
                heapq.heappop(ready)
                continue
            if live == r:
                return r
            heapq.heapreplace(ready, (live, idx))
        return _INF

    def _next_arrival() -> float:
        """Exact earliest unpumped arrival across tenants, or inf."""
        while arrivals_heap:
            a, idx = arrivals_heap[0]
            tn = by_index[idx]
            if tn.done or tn.next_i >= len(tn.arrivals):
                heapq.heappop(arrivals_heap)
                continue
            live = tn.arrivals[tn.next_i]
            if live != a:
                heapq.heapreplace(arrivals_heap, (live, idx))
                continue
            return a
        return _INF

    def _pump_until(t: float) -> None:
        """Pump exactly the tenants whose next arrival is <= ``t``.

        Per-tenant pumping is independent (admission control reads only
        the tenant's own queue and reject window), so pumping in global
        arrival order leaves the same state as a pump-every-tenant scan.
        """
        while arrivals_heap:
            a, idx = arrivals_heap[0]
            tn = by_index[idx]
            if tn.done or tn.next_i >= len(tn.arrivals):
                heapq.heappop(arrivals_heap)
                continue
            live = tn.arrivals[tn.next_i]
            if live != a:
                heapq.heapreplace(arrivals_heap, (live, idx))
                continue
            if a > t:
                break
            tn.pump(t, max_queue)
            if tn.queue and idx not in backlog:
                backlog[idx] = tn
            if tn.next_i < len(tn.arrivals):
                heapq.heapreplace(
                    arrivals_heap, (tn.arrivals[tn.next_i], idx)
                )
            else:
                heapq.heappop(arrivals_heap)

    while True:
        # 1. The earliest dispatchable request across tenants: arrived
        # AND the tenant's (single-threaded) client is free again.  One
        # heap peek — idle virtual time costs O(1), not a tenant scan.
        t_req = _peek_ready()
        if t_req == _INF:
            break
        t_free = queue.earliest_free()
        t_dec = t_req if t_req > t_free else t_free
        if smp is not None:
            # Pull-based sampling: emit every boundary crossed since the
            # last decision, stamped with the boundary's virtual time.
            smp.advance(device, t_dec)
        # Fault trigger check at the decision instant: the next dispatch
        # is the one in flight when power drops.
        if fault is not None and not fault.done and not fault.armed:
            if fault.due(t_dec):
                fault.injector.arm_next(
                    torn=fault.spec.torn, seed=fault_seed
                )
                fault.armed = True
        # 2. Pump arrivals (admission control) up to the decision instant.
        _pump_until(t_dec)
        eligible = [
            backlog[i] for i in sorted(backlog)
            if backlog[i].queue[0] <= t_dec
        ]
        if not eligible:
            # The min-r tenant's arrival was rejected at the full queue;
            # recompute from the new state.
            continue
        # 3. Policy decision.  A tenant with an op still in flight stays
        # schedulable — its queued requests live in the device queue, not
        # the client — but its grant can only *start* once the in-flight
        # op completes (per-tenant request ordering).  Under FIFO this is
        # exactly head-of-line blocking: later arrivals from everyone
        # else wait behind a backlogged tenant's older requests.
        tn = sched.pick(eligible, t_dec)
        start = t_dec
        avail = time_of(tn.tid)
        if avail > start:
            start = avail
        rel = sched.release(tn, t_dec)
        if rel > start:
            # Non-work-conserving hold: if any arrival lands before the
            # hold ends, it may belong to an unthrottled tenant — pump to
            # it and re-decide.
            nxt = _next_arrival()
            if nxt < rel:
                _pump_until(nxt)
                continue
            start = rel
        arrival = tn.queue.popleft()
        if not tn.queue:
            del backlog[tn.index]
        slot, grant = queue.admit(start)
        if fault is not None:
            fault.dispatched += 1
        clock.switch(tn.tid)
        clock.advance_to(grant)
        root = (
            trace.begin("cluster", "op", tenant=tn.spec.name, device=device)
            if tracer is not None else None
        )
        if root is not None and grant > arrival:
            trace.note_wait(queue.group, grant - arrival, 0.0)
        before = _traffic_totals(stats)
        try:
            op_name = next(tn.gen)
        except StopIteration:
            if root is not None:
                root.op = "drain"
                trace.end(root)
            tn.dropped += 1
            tn.finish()
            backlog.pop(tn.index, None)
            if fssan.ENABLED:
                sanity(tn)
            continue
        end = clock.now
        if root is not None:
            root.op = op_name
            trace.end(root)
        queue.complete(slot, grant, end)
        _attribute(tn, before, _traffic_totals(stats))
        if op_name == CRASHED:
            # The dispatched op was in flight when the shard lost power:
            # it was submitted but never served (lost to crash), and the
            # recovery protocol runs right here, at t_down = `end`.
            tn.lost_to_crash += 1
            if dispatch_log is not None:
                dispatch_log.append({
                    "device": device,
                    "tenant": tn.spec.name,
                    "op": op_name,
                    "arrival": arrival,
                    "begin": grant,
                    "end": end,
                })
            crash_and_recover(
                clock, device, device_obj, fs, tenants, queue, sched,
                stats, fault, outage_policy, tracer,
            )
            if fssan.ENABLED:
                sanity(tn)
            continue
        sched.on_dispatch(tn, grant)
        sched.charge(tn, end - grant)
        lat = end - arrival
        tn.served += 1
        tn.latency.record(op_name, lat)
        tn.latency.record(ALL_OPS, lat)
        cluster_latency.record(op_name, lat)
        cluster_latency.record(ALL_OPS, lat)
        if lat > tn.spec.slo_ms * MSEC:
            tn.slo_violations += 1
            if (
                fault is not None and fault.done
                and arrival < fault.t_up and end > fault.t_down
            ):
                tn.slo_violations_outage += 1
        if dispatch_log is not None:
            dispatch_log.append({
                "device": device,
                "tenant": tn.spec.name,
                "op": op_name,
                "arrival": arrival,
                "begin": grant,
                "end": end,
            })
        if fssan.ENABLED:
            sanity(tn)
        if fault is not None and fault.armed and not fault.done:
            # The crash op completed without reaching a device-visible
            # mutation (e.g. a cache-hit read): power drops at the op
            # boundary instead, with nothing in flight.
            crash_and_recover(
                clock, device, device_obj, fs, tenants, queue, sched,
                stats, fault, outage_policy, tracer,
            )
    if fault is not None and not fault.done:
        # The drain finished before the trigger was reached (or the
        # armed crash never saw another dispatch): the planned fault
        # still executes, as a between-ops power-off at drain end, so a
        # matrix cell always exercises the recovery path.
        tmax = max(time_of(tn.tid) for tn in tenants)
        clock.switch(tenants[0].tid)
        clock.advance_to(tmax)
        crash_and_recover(
            clock, device, device_obj, fs, tenants, queue, sched,
            stats, fault, outage_policy, tracer,
        )


# ---------------------------------------------------------------------- #
# shared setup / drain building blocks (serial path and shard workers)
# ---------------------------------------------------------------------- #

def setup_tenant(
    backend,
    clock: VirtualClock,
    index: int,
    spec: TenantSpec,
    device: int,
    faulted: bool,
    seed: int,
) -> TenantRT:
    """Mount, prepare and oracle-mirror one tenant on its shard.

    Runs on the tenant's own clock thread.  Setups of tenants on
    different devices touch disjoint state (per-device file system,
    resources, stats) and distinct clock threads, so any subset of them
    replays identically in a worker process.
    """
    clock.switch(index)
    ns = backend.mount_namespace(spec, device)
    workload = make_tenant_workload(spec, seed)
    oracle: Optional[OracleFS] = None
    if faulted:
        if not hasattr(workload, "attach_oracle"):
            raise ValueError(
                f"tenant {spec.name!r} runs workload "
                f"{spec.workload!r} on faulted device {device}; only "
                "profile/'synthetic' workloads can be oracle-"
                "mirrored through a crash"
            )
        oracle = OracleFS()
        workload.attach_oracle(oracle)
    workload.setup(ns)
    gen = workload.make_threads(ns)[0]
    return TenantRT(
        index=index, spec=spec, gen=gen, arrivals=[], ns=ns, oracle=oracle,
    )


def gen_arrivals(tn: TenantRT, seed: int, t0: float) -> None:
    """Seed the tenant's open-loop Poisson arrival stream from ``t0``."""
    rng = make_rng(seed, f"arrivals:{tn.spec.name}")
    t = t0
    rate = tn.spec.rate_ops_s
    if rate <= 0:
        raise ValueError(
            f"tenant {tn.spec.name!r} needs a positive rate_ops_s"
        )
    for _ in range(tn.spec.n_ops):
        t += rng.expovariate(rate) * SEC
        tn.arrivals.append(t)


def run_device_drain(
    clock: VirtualClock,
    device: int,
    tenants: List[TenantRT],
    sched: Scheduler,
    queue: AdmissionQueue,
    stats: TrafficStats,
    max_queue: int,
    cluster_latency: LatencyRecorder,
    dispatch_log: Optional[List],
    device_obj,
    fs,
    fault: Optional[DeviceFault],
    outage_policy: str,
    fault_seed: int,
    span_tracer: Optional[Tracer],
    auto_trace: bool,
):
    """Drain one device, under the right tracing regime.

    ``span_tracer`` (``traced=True`` runs) is a single span-keeping
    tracer already activated by the caller.  Otherwise, when
    ``auto_trace`` is set, the drain runs under its own metrics-only
    tracer and its registry is returned — per-device registries merged
    in device-index order are how the serial path and the sharded path
    produce bit-identical layer aggregates.
    """
    kwargs = dict(
        device_obj=device_obj, fs=fs, fault=fault,
        outage_policy=outage_policy, fault_seed=fault_seed,
    )
    if span_tracer is not None:
        serve_device(
            clock, device, tenants, sched, queue, stats, max_queue,
            cluster_latency, dispatch_log, span_tracer, **kwargs,
        )
        return None
    if auto_trace:
        tr = Tracer(clock, keep_spans=False)
        with trace.activated(tr):
            serve_device(
                clock, device, tenants, sched, queue, stats, max_queue,
                cluster_latency, dispatch_log, tr, **kwargs,
            )
        tr.close_all()
        return tr.metrics
    serve_device(
        clock, device, tenants, sched, queue, stats, max_queue,
        cluster_latency, dispatch_log, None, **kwargs,
    )
    return None


def run_orphan_crash(
    clock: VirtualClock,
    device: int,
    device_obj,
    fs,
    queue: AdmissionQueue,
    stats: TrafficStats,
    fault: DeviceFault,
    outage_policy: str,
    span_tracer: Optional[Tracer],
    auto_trace: bool,
):
    """Power-cycle a faulted device that served no tenants.

    Runs on thread 0 after the populated shards drained, so its
    recovery work never delays a tenant's timeline.  Same tracing
    regimes as :func:`run_device_drain`.
    """
    clock.switch(0)
    if span_tracer is not None:
        crash_and_recover(
            clock, device, device_obj, fs, [], queue, None, stats,
            fault, outage_policy, span_tracer,
        )
        return None
    if auto_trace:
        tr = Tracer(clock, keep_spans=False)
        with trace.activated(tr):
            crash_and_recover(
                clock, device, device_obj, fs, [], queue, None, stats,
                fault, outage_policy, tr,
            )
        tr.close_all()
        return tr.metrics
    crash_and_recover(
        clock, device, device_obj, fs, [], queue, None, stats,
        fault, outage_policy, None,
    )
    return None


def device_call_snapshot(device_obj) -> Dict[str, int]:
    """Cumulative per-layer call counters of one device stack.

    Mirrors the bench harness probe (`repro.bench.perf`), so the
    cluster-scale bench cases report sim-ops on the same scale as the
    single-device suite.
    """
    link = device_obj.link
    flash = device_obj.flash
    return {
        "link.mmio_read_lines": link.mmio_reads,
        "link.mmio_write_lines": link.mmio_writes,
        "link.dma_transfers": link.dma_transfers,
        "flash.reads": flash.reads,
        "flash.writes": flash.writes,
        "flash.erases": flash.erases,
    }
