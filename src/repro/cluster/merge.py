"""The deterministic reducer of the process-parallel serving path.

:func:`merge_shard_results` reassembles per-worker
:class:`~repro.cluster.worker.ShardResult` fragments into one
:class:`~repro.cluster.result.ClusterRunResult` whose serialized
``repro.cluster.run/v2`` document — and whose telemetry
``repro.telemetry.series/v1`` output — is byte-identical to the serial
(``workers=0``) run, regardless of worker count or completion order.

Why byte identity is achievable at all:

* every per-tenant and per-device quantity is produced by exactly one
  worker, from the same seeded state the serial run would have — the
  reducer only has to put fragments back into canonical order (tenants
  by global index, devices and recovery records by device index,
  outages in serial emission order);
* the two cross-shard aggregates are order-insensitive at the byte
  level: latency summaries are computed over *sorted* sample lists
  (any merge grouping yields the same bytes), and trace metric
  registries are merged in device-index order — the exact grouping the
  serial path uses — so even float accumulation order matches;
* telemetry rows re-sort at export (``sorted_rows``), so concatenation
  order is irrelevant.

Completion order never enters: the reducer iterates workers by id and
devices by index, never by arrival of their pipe messages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.sim.clock import SEC
from repro.stats.traffic import LatencyRecorder
from repro.telemetry.sampler import TelemetrySampler

from repro.cluster.result import ClusterRunResult, TenantResult


def merge_shard_results(
    results: List,
    *,
    fs_name: str,
    scheduler: Dict,
    n_devices: int,
    n_tenants: int,
    queue_depth: int,
    max_queue: int,
    seed: int,
    outage_policy: str,
    fault_plan: Optional[List[Dict]],
    devcache_echo: Optional[Dict],
    populated: Set[int],
    t0: float,
    t_end: float,
    wall_s: float,
    sample_every_ns: Optional[float],
    sampler_meta: Optional[Dict],
    auto_trace: bool,
) -> ClusterRunResult:
    """Reduce worker fragments into the canonical cluster result.

    ``populated`` is the set of devices that served at least one tenant
    (outage records of tenant-less faulted devices sort after it, the
    serial emission order).  ``sampler_meta`` is the header meta the
    serial path would have given its sampler.
    """
    ordered = sorted(results, key=lambda r: r.worker_id)

    tenant_by_index: Dict[int, TenantResult] = {}
    device_summaries: Dict[int, Dict] = {}
    recovery_by_device: Dict[int, Dict] = {}
    layer_calls: Dict[str, int] = {}
    latency = LatencyRecorder()
    for shard in ordered:
        for index, tres in shard.tenants:
            tenant_by_index[index] = tres
        device_summaries.update(shard.device_summaries)
        recovery_by_device.update(shard.recovery)
        for key in sorted(shard.layer_calls):
            layer_calls[key] = (
                layer_calls.get(key, 0) + shard.layer_calls[key]
            )
        latency.merge(shard.latency)
    missing_t = [i for i in range(n_tenants) if i not in tenant_by_index]
    if missing_t:
        raise RuntimeError(f"no shard served tenants {missing_t}")
    missing_d = [k for k in range(n_devices) if k not in device_summaries]
    if missing_d:
        raise RuntimeError(f"no shard summarized devices {missing_d}")

    merged_metrics = None
    if auto_trace:
        # Local import: the reducer must not force the trace subsystem
        # on plain runs.
        from repro.trace.metrics import MetricsRegistry

        metrics_by_device: Dict[int, object] = {}
        for shard in ordered:
            metrics_by_device.update(shard.metrics)
        merged_metrics = MetricsRegistry()
        for dev in sorted(metrics_by_device):
            merged_metrics.merge(metrics_by_device[dev])

    telemetry = None
    if sample_every_ns is not None:
        rows: List[Dict] = []
        outages: List[Dict] = []
        for shard in ordered:
            rows.extend(shard.telemetry_rows or ())
            outages.extend(shard.telemetry_outages or ())
        outages.sort(
            key=lambda o: (o["device"] not in populated, o["device"])
        )
        telemetry = TelemetrySampler.merged(
            t0, sample_every_ns, sampler_meta, rows, outages
        )
        telemetry.finalize(t_end, merged_metrics)

    return ClusterRunResult(
        fs_name=fs_name,
        scheduler=scheduler,
        n_devices=n_devices,
        queue_depth=queue_depth,
        max_queue=max_queue,
        seed=seed,
        elapsed_s=(t_end - t0) / SEC,
        tenants=[tenant_by_index[i] for i in range(n_tenants)],
        devices=[device_summaries[k] for k in range(n_devices)],
        latency=latency,
        trace=None,
        dispatch_log=_merge_dispatch_logs(ordered, n_devices),
        outage_policy=outage_policy,
        fault_plan=fault_plan,
        devcache=devcache_echo,
        recovery=[
            recovery_by_device[dev] for dev in sorted(recovery_by_device)
        ],
        telemetry=telemetry,
        wall_s=wall_s,
        layer_calls=layer_calls,
    )


def _merge_dispatch_logs(
    ordered: List, n_devices: int
) -> Optional[List[Dict]]:
    """Concatenate per-device log fragments in device-index order — the
    serial path drains devices in that order, so entry order matches."""
    if all(shard.dispatch_log is None for shard in ordered):
        return None
    log_by_device: Dict[int, List[Dict]] = {}
    for shard in ordered:
        log_by_device.update(shard.dispatch_log or {})
    merged: List[Dict] = []
    for dev in range(n_devices):
        merged.extend(log_by_device.get(dev, ()))
    return merged
