"""The versioned result document of a cluster serving run.

``repro serve --format=json`` emits the ``repro.cluster.run/v2`` schema:
per-tenant latency distributions (p50/p95/p99 of queueing + service),
SLO-violation and admission-rejection counts, per-tenant attributed
traffic, per-device aggregates, and a full config echo (seed, scheduler,
tenant specs) so any result file is reproducible from itself.

v2 adds the recovery section for faulted runs (``--fault``): a
``fault_plan`` echo, per-device recovery records (crash trigger, what
fired, outage window on the virtual timeline, remount firmware stats,
and the durability-oracle verdict per tenant), plus per-tenant
``lost_to_crash`` / ``outage_rejected`` / ``slo_violations_outage``
counters.  The extended request ledger is
``submitted == ops + rejected + dropped + lost_to_crash``.

One field is deliberately non-reproducible: each recovery record's
``wall_s`` (host wall-clock spent in the recovery protocol) is kept on
the live :attr:`ClusterRunResult.recovery` records but serialized as
``null``, so the JSON document stays byte-identical across identical
invocations (the CI determinism gate ``cmp``\\ s two runs).

:func:`validate_cluster_run` is the CI schema gate, in the same style as
``repro.bench.perf.validate_simspeed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.stats.traffic import LatencyRecorder

SCHEMA = "repro.cluster.run/v2"

#: LatencyRecorder key that aggregates every op of a tenant.
ALL_OPS = "all"


def _num(x):
    """NaN/inf are not JSON; map them to null like RunResult.to_json."""
    return None if isinstance(x, float) and not math.isfinite(x) else x


def _latency_json(latency: LatencyRecorder) -> Dict[str, Dict]:
    return {
        op: {k: _num(v) for k, v in latency.summary(op).items()}
        for op in latency.ops()
    }


@dataclass
class TenantResult:
    """Everything the run reports about one tenant."""

    spec: Dict                       # TenantSpec.to_json() echo
    device: int
    ops: int                         # requests served to completion
    submitted: int                   # arrivals processed (every bucket below)
    rejected: int                    # admission-control rejections
    dropped: int                     # arrivals abandoned (workload exhausted)
    slo_violations: int
    latency: LatencyRecorder
    #: host<->SSD / flash / app bytes attributed to this tenant's dispatches
    traffic: Dict[str, int] = field(default_factory=dict)
    #: requests in flight when the shard lost power (never completed)
    lost_to_crash: int = 0
    #: rejections attributed to arrivals landing inside an outage window
    #: (``--outage-policy reject``); always <= rejected
    outage_rejected: int = 0
    #: SLO violations whose [arrival, completion] overlapped an outage
    slo_violations_outage: int = 0

    @property
    def name(self) -> str:
        return self.spec["name"]

    def to_json(self, elapsed_s: float) -> Dict:
        throughput = self.ops / elapsed_s if elapsed_s > 0 else float("inf")
        app_w = self.traffic.get("app_write", 0)
        host_w = self.traffic.get("host_write", 0)
        wamp = host_w / app_w if app_w else float("nan")
        return {
            "spec": self.spec,
            "device": self.device,
            "ops": self.ops,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "dropped": self.dropped,
            "lost_to_crash": self.lost_to_crash,
            "outage_rejected": self.outage_rejected,
            "slo_violations": self.slo_violations,
            "slo_violations_outage": self.slo_violations_outage,
            "throughput_ops_s": _num(throughput),
            "write_amplification": _num(wamp),
            "latency": _latency_json(self.latency),
            "traffic": dict(sorted(self.traffic.items())),
        }


@dataclass
class ClusterRunResult:
    """The ``repro.cluster.run/v2`` document (plus live objects)."""

    fs_name: str
    scheduler: Dict                  # Scheduler.config_json()
    n_devices: int
    queue_depth: int
    max_queue: int
    seed: int
    elapsed_s: float
    tenants: List[TenantResult]
    devices: List[Dict]              # ShardedBackend.device_summary()
    latency: LatencyRecorder         # cluster-wide, keyed like per-tenant
    #: the tracer used for the measured phase, when tracing was on
    trace: Optional[object] = None
    #: optional per-dispatch log: (device, tenant, op, arrival, begin, end)
    dispatch_log: Optional[List] = None
    #: arrivals during an outage wait ("requeue") or bounce ("reject")
    outage_policy: str = "requeue"
    #: DeviceCrash.to_json() echo of the requested faults; None = no faults
    fault_plan: Optional[List[Dict]] = None
    #: DevCacheConfig echo when the device-DRAM cache tier was enabled;
    #: None (cache off) omits the key so pre-devcache documents are
    #: byte-identical
    devcache: Optional[Dict] = None
    #: one record per power-cycled device, in device order; ``wall_s`` on
    #: these live records is the measured host time (nulled in to_json)
    recovery: List[Dict] = field(default_factory=list)
    #: live-only: the run's TelemetrySampler when ``sample_every_ns`` was
    #: set (serialize via repro.telemetry.series, never into this doc)
    telemetry: Optional[object] = None
    #: live-only: measured host wall-clock of the drain phase (the bench
    #: harness reads it; never serialized — the doc stays deterministic)
    wall_s: Optional[float] = None
    #: live-only: per-layer device call-count deltas of the drain phase,
    #: summed over shards (same keys as the bench probe's layer_calls)
    layer_calls: Optional[Dict[str, int]] = None

    @property
    def ops(self) -> int:
        return sum(t.ops for t in self.tenants)

    @property
    def throughput(self) -> float:
        if self.elapsed_s <= 0:
            return float("inf")
        return self.ops / self.elapsed_s

    def tenant(self, name: str) -> TenantResult:
        for t in self.tenants:
            if t.name == name:
                return t
        raise KeyError(name)

    def to_json(self) -> Dict:
        doc = {
            "schema": SCHEMA,
            "fs": self.fs_name,
            "scheduler": self.scheduler,
            "n_devices": self.n_devices,
            "queue_depth": self.queue_depth,
            "max_queue": self.max_queue,
            "seed": self.seed,
            "elapsed_s": self.elapsed_s,
            "ops": self.ops,
            "throughput_ops_s": _num(self.throughput),
            "slo_violations": sum(t.slo_violations for t in self.tenants),
            "rejected": sum(t.rejected for t in self.tenants),
            "lost_to_crash": sum(t.lost_to_crash for t in self.tenants),
            "outage_policy": self.outage_policy,
            "fault_plan": self.fault_plan,
            "recovery": [{**r, "wall_s": None} for r in self.recovery],
            "latency": _latency_json(self.latency),
            "tenants": [t.to_json(self.elapsed_s) for t in self.tenants],
            "devices": self.devices,
        }
        if self.devcache is not None:
            doc["devcache"] = self.devcache
        return doc


# ---------------------------------------------------------------------- #
# schema validation (CI gate)
# ---------------------------------------------------------------------- #

_TOP_FIELDS = {
    "fs": str,
    "scheduler": dict,
    "n_devices": int,
    "queue_depth": int,
    "max_queue": int,
    "seed": int,
    "elapsed_s": (int, float),
    "ops": int,
    "slo_violations": int,
    "rejected": int,
    "lost_to_crash": int,
    "outage_policy": str,
    "recovery": list,
    "latency": dict,
    "tenants": list,
    "devices": list,
}

_TENANT_FIELDS = {
    "spec": dict,
    "device": int,
    "ops": int,
    "submitted": int,
    "rejected": int,
    "dropped": int,
    "lost_to_crash": int,
    "outage_rejected": int,
    "slo_violations": int,
    "slo_violations_outage": int,
    "latency": dict,
    "traffic": dict,
}

#: numeric virtual-timeline fields of one recovery record
_RECOVERY_NUM_FIELDS = ("t_down_ns", "t_up_ns", "virtual_ns")

_LATENCY_KEYS = ("count", "mean", "p50", "p95", "p99")


def _check_num_or_null(
    obj: Dict, key: str, where: str, problems: List[str],
) -> None:
    """Derived rates may serialize as null (inf/NaN via ``_num``)."""
    if key not in obj:
        problems.append(f"{where} missing {key!r}")
        return
    v = obj[key]
    if v is not None and (
        not isinstance(v, (int, float)) or isinstance(v, bool)
    ):
        problems.append(f"{where}.{key} must be a number or null")


def _check_latency(lat: Dict, where: str, problems: List[str]) -> None:
    for op, summary in lat.items():
        if not isinstance(summary, dict):
            problems.append(f"{where}.latency[{op!r}] is not an object")
            continue
        for key in _LATENCY_KEYS:
            v = summary.get(key)
            if v is not None and (
                not isinstance(v, (int, float)) or isinstance(v, bool)
            ):
                problems.append(
                    f"{where}.latency[{op!r}].{key} must be a number or null"
                )


def _check_recovery(doc: Dict, problems: List[str]) -> None:
    n_devices = doc.get("n_devices")
    for i, rec in enumerate(doc.get("recovery", ())):
        where = f"recovery[{i}]"
        if not isinstance(rec, dict):
            problems.append(f"{where} is not an object")
            continue
        dev = rec.get("device")
        if not isinstance(dev, int) or isinstance(dev, bool):
            problems.append(f"{where}.device must be an int")
        elif isinstance(n_devices, int) and not 0 <= dev < n_devices:
            problems.append(f"{where}.device out of range")
        for key in _RECOVERY_NUM_FIELDS:
            v = rec.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                problems.append(f"{where}.{key} must be a number")
        if all(
            isinstance(rec.get(k), (int, float)) for k in ("t_down_ns", "t_up_ns")
        ) and rec["t_up_ns"] < rec["t_down_ns"]:
            problems.append(f"{where}: t_up_ns precedes t_down_ns")
        wall = rec.get("wall_s")
        if wall is not None and (
            not isinstance(wall, (int, float)) or isinstance(wall, bool)
        ):
            problems.append(f"{where}.wall_s must be a number or null")
        if not isinstance(rec.get("trigger"), dict):
            problems.append(f"{where}.trigger must be an object")
        fired = rec.get("fired", 0)
        if fired is not None and not isinstance(fired, dict):
            problems.append(f"{where}.fired must be an object or null")
        if not isinstance(rec.get("fw"), dict):
            problems.append(f"{where}.fw must be an object")
        oracle = rec.get("oracle")
        if not isinstance(oracle, dict):
            problems.append(f"{where}.oracle must be an object")
            continue
        if not isinstance(oracle.get("clean"), bool):
            problems.append(f"{where}.oracle.clean must be a bool")
        if not isinstance(oracle.get("checked"), list):
            problems.append(f"{where}.oracle.checked must be a list")
        if not isinstance(oracle.get("errors"), dict):
            problems.append(f"{where}.oracle.errors must be an object")
        elif oracle.get("clean") is True and oracle["errors"]:
            problems.append(f"{where}.oracle clean but has errors")


def validate_cluster_run(doc: Dict) -> List[str]:
    """Return a list of schema problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}"
        )
    for key, typ in _TOP_FIELDS.items():
        if key not in doc:
            problems.append(f"missing {key!r}")
        elif not isinstance(doc[key], typ) or isinstance(doc[key], bool):
            problems.append(f"{key} has wrong type")
    _check_num_or_null(doc, "throughput_ops_s", "$", problems)
    if isinstance(doc.get("latency"), dict):
        _check_latency(doc["latency"], "$", problems)
    tenants = doc.get("tenants")
    if isinstance(tenants, list):
        if not tenants:
            problems.append("tenants must be non-empty")
        for i, t in enumerate(tenants):
            if not isinstance(t, dict):
                problems.append(f"tenants[{i}] is not an object")
                continue
            for key, typ in _TENANT_FIELDS.items():
                if key not in t:
                    problems.append(f"tenants[{i}] missing {key!r}")
                elif not isinstance(t[key], typ) or isinstance(t[key], bool):
                    problems.append(f"tenants[{i}].{key} has wrong type")
            _check_num_or_null(
                t, "throughput_ops_s", f"tenants[{i}]", problems
            )
            _check_num_or_null(
                t, "write_amplification", f"tenants[{i}]", problems
            )
            if isinstance(t.get("latency"), dict):
                _check_latency(t["latency"], f"tenants[{i}]", problems)
            if isinstance(t.get("spec"), dict) and "name" not in t["spec"]:
                problems.append(f"tenants[{i}].spec missing 'name'")
            ledger = (
                "ops", "submitted", "rejected", "dropped", "lost_to_crash",
            )
            if all(isinstance(t.get(k), int) for k in ledger) and (
                t["submitted"]
                != t["ops"] + t["rejected"] + t["dropped"]
                + t["lost_to_crash"]
            ):
                problems.append(
                    f"tenants[{i}]: submitted != ops + rejected + dropped "
                    "+ lost_to_crash"
                )
            for part, whole in (
                ("outage_rejected", "rejected"),
                ("slo_violations_outage", "slo_violations"),
            ):
                if (
                    isinstance(t.get(part), int)
                    and isinstance(t.get(whole), int)
                    and t[part] > t[whole]
                ):
                    problems.append(f"tenants[{i}]: {part} exceeds {whole}")
    devices = doc.get("devices")
    if isinstance(devices, list):
        n = doc.get("n_devices")
        if isinstance(n, int) and len(devices) != n:
            problems.append("devices list length disagrees with n_devices")
        for i, d in enumerate(devices):
            if not isinstance(d, dict) or d.get("device") != i:
                problems.append(f"devices[{i}] malformed or out of order")
    sched = doc.get("scheduler")
    if isinstance(sched, dict) and not isinstance(sched.get("policy"), str):
        problems.append("scheduler.policy must be a string")
    if doc.get("outage_policy") not in (None, "requeue", "reject"):
        problems.append("outage_policy must be 'requeue' or 'reject'")
    plan = doc.get("fault_plan", 0)
    if plan is not None and (
        not isinstance(plan, list)
        or not all(isinstance(f, dict) for f in plan)
    ):
        problems.append("fault_plan must be null or a list of objects")
    if isinstance(doc.get("recovery"), list):
        _check_recovery(doc, problems)
        if plan is None and doc["recovery"]:
            problems.append("recovery section present without a fault_plan")
    # the devcache echo is optional: absent means the cache tier was off
    devcache = doc.get("devcache")
    if devcache is not None:
        if not isinstance(devcache, dict):
            problems.append("devcache must be an object when present")
        else:
            if not isinstance(devcache.get("cache_bytes"), int):
                problems.append("devcache.cache_bytes must be an int")
            if not isinstance(devcache.get("policy"), str):
                problems.append("devcache.policy must be a string")
            if not isinstance(devcache.get("prefetch"), bool):
                problems.append("devcache.prefetch must be a bool")
    return problems
