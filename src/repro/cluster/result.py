"""The versioned result document of a cluster serving run.

``repro serve --format=json`` emits the ``repro.cluster.run/v1`` schema:
per-tenant latency distributions (p50/p95/p99 of queueing + service),
SLO-violation and admission-rejection counts, per-tenant attributed
traffic, per-device aggregates, and a full config echo (seed, scheduler,
tenant specs) so any result file is reproducible from itself.

:func:`validate_cluster_run` is the CI schema gate, in the same style as
``repro.bench.perf.validate_simspeed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.stats.traffic import LatencyRecorder

SCHEMA = "repro.cluster.run/v1"

#: LatencyRecorder key that aggregates every op of a tenant.
ALL_OPS = "all"


def _num(x):
    """NaN/inf are not JSON; map them to null like RunResult.to_json."""
    return None if isinstance(x, float) and not math.isfinite(x) else x


def _latency_json(latency: LatencyRecorder) -> Dict[str, Dict]:
    return {
        op: {k: _num(v) for k, v in latency.summary(op).items()}
        for op in latency.ops()
    }


@dataclass
class TenantResult:
    """Everything the run reports about one tenant."""

    spec: Dict                       # TenantSpec.to_json() echo
    device: int
    ops: int                         # requests served to completion
    submitted: int                   # arrivals processed (served+rejected+dropped)
    rejected: int                    # admission-control rejections
    dropped: int                     # arrivals abandoned (workload exhausted)
    slo_violations: int
    latency: LatencyRecorder
    #: host<->SSD / flash / app bytes attributed to this tenant's dispatches
    traffic: Dict[str, int] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec["name"]

    def to_json(self, elapsed_s: float) -> Dict:
        throughput = self.ops / elapsed_s if elapsed_s > 0 else float("inf")
        app_w = self.traffic.get("app_write", 0)
        host_w = self.traffic.get("host_write", 0)
        wamp = host_w / app_w if app_w else float("nan")
        return {
            "spec": self.spec,
            "device": self.device,
            "ops": self.ops,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "dropped": self.dropped,
            "slo_violations": self.slo_violations,
            "throughput_ops_s": _num(throughput),
            "write_amplification": _num(wamp),
            "latency": _latency_json(self.latency),
            "traffic": dict(sorted(self.traffic.items())),
        }


@dataclass
class ClusterRunResult:
    """The ``repro.cluster.run/v1`` document (plus live objects)."""

    fs_name: str
    scheduler: Dict                  # Scheduler.config_json()
    n_devices: int
    queue_depth: int
    max_queue: int
    seed: int
    elapsed_s: float
    tenants: List[TenantResult]
    devices: List[Dict]              # ShardedBackend.device_summary()
    latency: LatencyRecorder         # cluster-wide, keyed like per-tenant
    #: the tracer used for the measured phase, when tracing was on
    trace: Optional[object] = None
    #: optional per-dispatch log: (device, tenant, op, arrival, begin, end)
    dispatch_log: Optional[List] = None

    @property
    def ops(self) -> int:
        return sum(t.ops for t in self.tenants)

    @property
    def throughput(self) -> float:
        if self.elapsed_s <= 0:
            return float("inf")
        return self.ops / self.elapsed_s

    def tenant(self, name: str) -> TenantResult:
        for t in self.tenants:
            if t.name == name:
                return t
        raise KeyError(name)

    def to_json(self) -> Dict:
        return {
            "schema": SCHEMA,
            "fs": self.fs_name,
            "scheduler": self.scheduler,
            "n_devices": self.n_devices,
            "queue_depth": self.queue_depth,
            "max_queue": self.max_queue,
            "seed": self.seed,
            "elapsed_s": self.elapsed_s,
            "ops": self.ops,
            "throughput_ops_s": _num(self.throughput),
            "slo_violations": sum(t.slo_violations for t in self.tenants),
            "rejected": sum(t.rejected for t in self.tenants),
            "latency": _latency_json(self.latency),
            "tenants": [t.to_json(self.elapsed_s) for t in self.tenants],
            "devices": self.devices,
        }


# ---------------------------------------------------------------------- #
# schema validation (CI gate)
# ---------------------------------------------------------------------- #

_TOP_FIELDS = {
    "fs": str,
    "scheduler": dict,
    "n_devices": int,
    "queue_depth": int,
    "max_queue": int,
    "seed": int,
    "elapsed_s": (int, float),
    "ops": int,
    "slo_violations": int,
    "rejected": int,
    "latency": dict,
    "tenants": list,
    "devices": list,
}

_TENANT_FIELDS = {
    "spec": dict,
    "device": int,
    "ops": int,
    "submitted": int,
    "rejected": int,
    "dropped": int,
    "slo_violations": int,
    "latency": dict,
    "traffic": dict,
}

_LATENCY_KEYS = ("count", "mean", "p50", "p95", "p99")


def _check_latency(lat: Dict, where: str, problems: List[str]) -> None:
    for op, summary in lat.items():
        if not isinstance(summary, dict):
            problems.append(f"{where}.latency[{op!r}] is not an object")
            continue
        for key in _LATENCY_KEYS:
            v = summary.get(key)
            if v is not None and (
                not isinstance(v, (int, float)) or isinstance(v, bool)
            ):
                problems.append(
                    f"{where}.latency[{op!r}].{key} must be a number or null"
                )


def validate_cluster_run(doc: Dict) -> List[str]:
    """Return a list of schema problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}"
        )
    for key, typ in _TOP_FIELDS.items():
        if key not in doc:
            problems.append(f"missing {key!r}")
        elif not isinstance(doc[key], typ) or isinstance(doc[key], bool):
            problems.append(f"{key} has wrong type")
    if isinstance(doc.get("latency"), dict):
        _check_latency(doc["latency"], "$", problems)
    tenants = doc.get("tenants")
    if isinstance(tenants, list):
        if not tenants:
            problems.append("tenants must be non-empty")
        for i, t in enumerate(tenants):
            if not isinstance(t, dict):
                problems.append(f"tenants[{i}] is not an object")
                continue
            for key, typ in _TENANT_FIELDS.items():
                if key not in t:
                    problems.append(f"tenants[{i}] missing {key!r}")
                elif not isinstance(t[key], typ) or isinstance(t[key], bool):
                    problems.append(f"tenants[{i}].{key} has wrong type")
            if isinstance(t.get("latency"), dict):
                _check_latency(t["latency"], f"tenants[{i}]", problems)
            if isinstance(t.get("spec"), dict) and "name" not in t["spec"]:
                problems.append(f"tenants[{i}].spec missing 'name'")
            served = t.get("ops")
            if all(
                isinstance(t.get(k), int)
                for k in ("ops", "submitted", "rejected", "dropped")
            ) and t["submitted"] != served + t["rejected"] + t["dropped"]:
                problems.append(
                    f"tenants[{i}]: submitted != ops + rejected + dropped"
                )
    devices = doc.get("devices")
    if isinstance(devices, list):
        n = doc.get("n_devices")
        if isinstance(n, int) and len(devices) != n:
            problems.append("devices list length disagrees with n_devices")
        for i, d in enumerate(devices):
            if not isinstance(d, dict) or d.get("device") != i:
                problems.append(f"devices[{i}] malformed or out of order")
    sched = doc.get("scheduler")
    if isinstance(sched, dict) and not isinstance(sched.get("policy"), str):
        problems.append("scheduler.policy must be a string")
    return problems
