"""Pluggable I/O scheduling at the host→device boundary.

One :class:`Scheduler` instance runs per device.  The serving loop
(:mod:`repro.cluster.serve`) asks it which backlogged tenant's request
to grant the next device slot, at a *decision instant* ``t_dec`` — the
earliest virtual time at which both a request and a device queue slot
exist.  Policies:

* **fifo** — grant in arrival order (ties by tenant index).  This is
  the no-QoS baseline: a flooding tenant's backlog is served strictly
  before later arrivals.
* **drr** — deficit round robin over per-tenant queues, weighted.  Each
  tenant's turn grants it ``quantum_ns * weight`` of device service;
  actual (measured) service time is charged against the deficit after
  each op.  Work-conserving, starvation-free: a backlogged tenant is
  served at least once per round regardless of its neighbours' backlog.
* **token-bucket** — per-tenant rate caps (``limit_ops_s`` /
  ``burst_ops`` on the :class:`~repro.cluster.tenant.TenantSpec`).
  Deliberately *not* work-conserving: a tenant past its rate is held
  until its bucket refills, even if the device is idle.

Admission to the device is modelled by :class:`AdmissionQueue` — one
slot per queue-depth entry, implemented with the same
:class:`~repro.sim.resources.Resource` busy-until timelines the device
itself uses, so queueing delay at the host boundary lands in the same
wait-attribution machinery (``trace.note_wait``) as channel and link
contention, under a per-device contention group.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

# The admission queue is boundary infrastructure (it *is* the modelled
# host→device submission queue), so it shares the device's resource
# primitive for busy-until bookkeeping and wait attribution.
from repro.sim.resources import Resource  # repro: allow[LAY001]
from repro.trace import tracer as trace


class AdmissionQueue:
    """Per-device submission-queue model with ``depth`` slots.

    A request granted at time ``t`` takes the earliest-free slot; if all
    slots are busy the grant waits, and the wait is attributed to the
    queue's contention group on the open (tenant-root) span.
    """

    def __init__(self, device: int, depth: int) -> None:
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.device = device
        self.group = f"dev{device}.nvmeq"
        self.slots: List[Resource] = [
            Resource(f"dev{device}.nvmeq{i}", group=self.group)
            for i in range(depth)
        ]

    @property
    def depth(self) -> int:
        return len(self.slots)

    def earliest_free(self) -> float:
        """The earliest virtual time a slot frees up."""
        return min(s.busy_until for s in self.slots)

    def admit(self, t_request: float) -> Tuple[Resource, float]:
        """Pick the earliest-free slot for a request available at
        ``t_request``; returns (slot, grant time)."""
        slot = self.slots[0]
        best = slot.busy_until
        for cand in self.slots:
            if cand.busy_until < best:
                slot = cand
                best = cand.busy_until
        begin = t_request if t_request > best else best
        if trace.ENABLED and begin > t_request:
            trace.note_wait(self.group, begin - t_request, 0.0)
        return slot, begin

    def complete(self, slot: Resource, begin: float, end: float) -> None:
        """Occupy ``slot`` for the request's whole [begin, end) service."""
        slot.busy_until = end
        slot.total_busy_ns += end - begin

    def outage_until(self, t_up: float) -> None:
        """The submission queue did not survive a power cycle: no grant
        may start before the shard is back at ``t_up``.  (Never
        :meth:`reset` here — that would rewind the busy-until
        timelines.)"""
        for slot in self.slots:
            if slot.busy_until < t_up:
                slot.busy_until = t_up

    def reset(self) -> None:
        for slot in self.slots:
            slot.reset()


class Scheduler:
    """Base policy: one instance per device, over that device's tenants.

    ``tenants`` are the runtime tenant states of this device (objects
    with ``index``, ``spec``, ``queue`` — a deque of arrival times —
    and a mutable ``deficit`` float the DRR policy uses).
    """

    name = "base"

    def __init__(self, tenants: List) -> None:
        self.tenants = list(tenants)

    def pick(self, queued: List, t_dec: float):
        """Choose which backlogged tenant's head request to grant next."""
        raise NotImplementedError

    def release(self, tenant, t_dec: float) -> float:
        """Earliest time policy allows ``tenant`` to start (throttling)."""
        return t_dec

    def on_dispatch(self, tenant, begin: float) -> None:
        """Notification that ``tenant``'s request was granted at ``begin``."""

    def charge(self, tenant, service_ns: float) -> None:
        """Account measured service time after the op completes."""

    def on_outage(self, t_down: float, t_up: float) -> None:
        """The device power-cycled during ``[t_down, t_up)``.

        Policies may reset in-round state here; the default keeps
        everything (token buckets, for instance, refill across the
        outage exactly as they would across any idle period).
        """

    def config_json(self) -> Dict:
        return {"policy": self.name}


class FIFOScheduler(Scheduler):
    """Grant strictly in arrival order (ties broken by tenant index)."""

    name = "fifo"

    def pick(self, queued: List, t_dec: float):
        return min(queued, key=lambda t: (t.queue[0], t.index))


class DRRScheduler(Scheduler):
    """Weighted deficit round robin over per-tenant queues.

    The ring holds every tenant in index order.  When the round pointer
    reaches a backlogged tenant it earns ``quantum_ns * weight`` of
    deficit; it keeps the device while its deficit is positive, then the
    pointer moves on.  A tenant whose queue drains forfeits its leftover
    deficit (classic DRR), so an idle period never banks service.
    """

    name = "drr"

    def __init__(self, tenants: List, quantum_ns: float = 500_000.0) -> None:
        super().__init__(tenants)
        if quantum_ns <= 0:
            raise ValueError("quantum must be positive")
        self.quantum_ns = quantum_ns
        self._ring = sorted(self.tenants, key=lambda t: t.index)
        self._ptr = 0
        self._holder = None  # tenant currently spending its deficit

    def pick(self, queued: List, t_dec: float):
        backlogged = {t.index for t in queued}
        if (
            self._holder is not None
            and self._holder.index in backlogged
            and self._holder.deficit > 0
        ):
            return self._holder
        # The holder is done (deficit spent or queue drained): walk the
        # ring for the next backlogged tenant, granting each visited
        # tenant a fresh turn.  Bounded: some tenant in `queued` is in
        # the ring, and a visit always yields a positive deficit.
        if self._holder is not None and not (
            self._holder.index in backlogged
        ):
            self._holder.deficit = 0.0  # forfeit on queue drain
        self._holder = None
        n = len(self._ring)
        for _ in range(n + 1):
            self._ptr = (self._ptr + 1) % n
            cand = self._ring[self._ptr]
            if cand.index not in backlogged:
                cand.deficit = 0.0
                continue
            if cand.deficit <= 0:
                cand.deficit += self.quantum_ns * max(1, cand.spec.weight)
            self._holder = cand
            return cand
        raise RuntimeError("DRR ring scan found no backlogged tenant")

    def charge(self, tenant, service_ns: float) -> None:
        tenant.deficit -= service_ns

    def on_outage(self, t_down: float, t_up: float) -> None:
        # The round in progress died with the device: recovery starts a
        # fresh round rather than letting the pre-crash holder spend a
        # stale deficit earned before the power loss.
        self._holder = None
        for t in self._ring:
            t.deficit = 0.0

    def config_json(self) -> Dict:
        return {"policy": self.name, "quantum_ns": self.quantum_ns}


class TokenBucketScheduler(Scheduler):
    """Per-tenant rate caps: dispatch spends one token, tokens refill at
    ``limit_ops_s`` up to ``burst_ops``.  Tenants without a limit behave
    as under FIFO.  Among throttled tenants the earliest releasable
    request wins (ties by arrival, then index)."""

    name = "token-bucket"

    def __init__(self, tenants: List) -> None:
        super().__init__(tenants)
        self._tokens: Dict[int, float] = {
            t.index: float(t.spec.burst_ops) for t in self.tenants
        }
        self._refilled_at: Dict[int, float] = {
            t.index: 0.0 for t in self.tenants
        }

    def _refill(self, tenant, t: float) -> float:
        limit = tenant.spec.limit_ops_s
        tokens = self._tokens[tenant.index]
        last = self._refilled_at[tenant.index]
        if limit and t > last:
            tokens = min(
                float(tenant.spec.burst_ops),
                tokens + (t - last) * (limit / 1e9),
            )
            self._tokens[tenant.index] = tokens
            self._refilled_at[tenant.index] = t
        return tokens

    def release(self, tenant, t_dec: float) -> float:
        limit = tenant.spec.limit_ops_s
        if not limit:
            return t_dec
        tokens = self._refill(tenant, t_dec)
        if tokens >= 1.0:
            return t_dec
        return t_dec + (1.0 - tokens) / (limit / 1e9)

    def pick(self, queued: List, t_dec: float):
        return min(
            queued,
            key=lambda t: (
                max(self.release(t, t_dec), t.queue[0]),
                t.queue[0],
                t.index,
            ),
        )

    def on_dispatch(self, tenant, begin: float) -> None:
        if tenant.spec.limit_ops_s:
            self._refill(tenant, begin)
            self._tokens[tenant.index] -= 1.0


#: Policy registry: ``repro serve --sched <name>``.
SCHEDULERS: Dict[str, Type[Scheduler]] = {
    "fifo": FIFOScheduler,
    "drr": DRRScheduler,
    "token-bucket": TokenBucketScheduler,
}


def make_scheduler(
    name: str, tenants: List, quantum_ns: Optional[float] = None
) -> Scheduler:
    if name not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from "
            f"{', '.join(sorted(SCHEDULERS))}"
        )
    if name == "drr" and quantum_ns is not None:
        return DRRScheduler(tenants, quantum_ns=quantum_ns)
    return SCHEDULERS[name](tenants)
