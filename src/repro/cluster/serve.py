"""The multi-tenant serving harness.

:func:`serve_cluster` runs N tenants against a :class:`ShardedBackend`
under a pluggable I/O scheduler and returns a
:class:`~repro.cluster.result.ClusterRunResult`.

Unlike the single-tenant bench harness (closed loop: each thread issues
its next op the instant the previous one returns), tenants here are
**open loop**: each tenant's requests arrive by a seeded Poisson process
at ``spec.rate_ops_s`` on the virtual timeline, independent of service
progress.  Arrivals queue per tenant; backlog is what gives the
scheduler real choices, and per-op latency = queueing delay + service
time, measured from *arrival* to completion — so a noisy neighbour's
backlog shows up in its victims' tail latencies, which is the effect the
DRR and token-bucket policies exist to bound.

Dispatch semantics (per device, deterministic):

1. The next *decision instant* ``t_dec`` is the earliest virtual time at
   which some tenant has a dispatchable request (arrived, client thread
   free) **and** the admission queue has a free slot.
2. Arrivals up to ``t_dec`` are pumped into per-tenant queues;
   admission control rejects arrivals beyond ``max_queue``.
3. The scheduler picks among eligible backlogged tenants; the grant
   starts at ``t_dec`` (work-conserving policies) or at the tenant's
   token-release time (token bucket), and the op runs on the tenant's
   own clock thread so device-level contention is shared with any
   overlapping ops admitted through other queue slots.

The dispatch loop itself lives in :mod:`repro.cluster.kernel`
(:func:`~repro.cluster.kernel.serve_device`): a per-shard event kernel
that finds each decision instant with lazy min-heaps instead of tenant
scans, so idle virtual time is skipped in O(1).

**Process-parallel serving** (``workers=N`` / ``repro serve --workers``):
device shards are causally independent between two sync points (the
post-setup epoch ``t0`` and the run end ``t_end``), so the cluster can
run one worker process per shard group — see
:mod:`repro.cluster.worker` for the protocol and
:mod:`repro.cluster.merge` for the deterministic reducer.  ``workers=0``
(the default) keeps the in-process serial path, which is the reference:
``workers=K`` produces byte-identical result and telemetry documents
for every K.  ``traced=True`` (span-keeping) requires the serial path;
metrics-only auto tracing (``REPRO_TRACE=1``) works under both.

**Faults under load** (``faults=`` / ``repro serve --fault``): a
:class:`~repro.faults.plan.DeviceCrash` powers one shard off mid-run —
at a virtual time or after N dispatched requests — while tenants keep
arriving.  The crash lands on the first dispatch at/after the trigger:
if that op reaches a device-visible mutation the shard's injector fires
a :class:`~repro.faults.injector.CrashPoint` (optionally torn) with the
op in flight; an op that mutates nothing (e.g. a cache-hit read) has
power drop at the op boundary instead.  The in-flight op counts as
*lost to crash* (submitted, never served), the device queue is down
until recovery completes, and the file system's own crash-recovery path
(``fs.crash()`` + ``fs.remount()``) runs inside the outage window,
followed by a durability-oracle scrub of every tenant namespace on the
shard.  Arrivals landing inside the outage either wait (``requeue``,
the default — SLO damage accrues) or bounce (``reject``).  A trigger
the run never reaches fires at drain, so a planned fault always
executes.  The extended request ledger — checked by FSSAN-QUEUE — is
``submitted == served + pending + rejected + dropped + lost_to_crash``.

Everything is a pure function of (seed, config): two identical
``serve_cluster`` calls produce byte-identical result JSON.  The
measured wall-clock quantities (recovery ``wall_s``, the drain-phase
``result.wall_s``) therefore live only on the live result object; the
former serializes as ``null``, the latter not at all.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.analysis import fssan
from repro.faults.plan import DeviceCrash, check_fault_plan, plan_by_device
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import TimingModel
from repro.sim.clock import SEC, VirtualClock
from repro.stats.traffic import LatencyRecorder
from repro.telemetry import sampler as telem
from repro.trace import tracer as trace
from repro.trace.metrics import MetricsRegistry
from repro.trace.tracer import Tracer

from repro.cluster.kernel import (
    DeviceFault,
    TenantRT,
    device_call_snapshot,
    gen_arrivals,
    run_device_drain,
    run_orphan_crash,
    sanity,
    setup_tenant,
)
from repro.cluster.merge import merge_shard_results
from repro.cluster.result import ClusterRunResult, TenantResult
from repro.cluster.sched import Scheduler, make_scheduler
from repro.cluster.shard import ShardedBackend, place_tenant
from repro.cluster.tenant import TenantSpec, make_tenant_workload
from repro.cluster.worker import ShardTask, run_shard_workers

#: outage policies for arrivals landing inside [t_down, t_up)
OUTAGE_POLICIES = ("requeue", "reject")


def _devcache_echo(devcache) -> Optional[Dict]:
    # Config echo of the device-DRAM cache tier; None (cache off) keeps
    # the result document byte-identical to pre-devcache runs.
    if devcache is None:
        return None
    return {
        "cache_bytes": devcache.cache_bytes,
        "policy": devcache.policy,
        "prefetch": devcache.prefetch,
    }


def _sampler_meta(
    fs_name: str, sched: str, n_devices: int, queue_depth: int,
    max_queue: int, seed: int,
) -> Dict:
    return {
        "fs": fs_name,
        "scheduler": sched,
        "n_devices": n_devices,
        "queue_depth": queue_depth,
        "max_queue": max_queue,
        "seed": seed,
    }


def serve_cluster(
    tenants: List[TenantSpec],
    fs_name: str = "bytefs",
    n_devices: int = 1,
    sched: str = "drr",
    seed: int = 42,
    queue_depth: int = 4,
    max_queue: int = 64,
    quantum_ns: Optional[float] = None,
    geometry: Optional[FlashGeometry] = None,
    timing: Optional[TimingModel] = None,
    log_bytes: int = 1 << 20,
    device_cache_bytes: int = 1 << 20,
    page_cache_pages: int = 512,
    devcache=None,
    traced: bool = False,
    keep_dispatch_log: bool = False,
    unmount: bool = False,
    faults: Optional[Sequence[DeviceCrash]] = None,
    outage_policy: str = "requeue",
    sample_every_ns: Optional[float] = None,
    workers: int = 0,
) -> ClusterRunResult:
    """Run ``tenants`` against a sharded backend under scheduler ``sched``.

    Setup (namespace creation, file-set preparation) happens before the
    measurement epoch, exactly like the single-tenant harness: traffic
    stats reset and arrival processes start after all tenants are set up
    and every timeline is synchronized.

    ``faults`` crashes and recovers devices mid-run (see the module
    docstring); every tenant placed on a faulted device must use a
    profile/``synthetic`` workload, because only those can be mirrored
    into the durability oracle across a crash.

    ``sample_every_ns`` turns on live telemetry: a
    :class:`~repro.telemetry.sampler.TelemetrySampler` samples every
    shard at that virtual-time interval during the measured phase and is
    returned on the live-only ``result.telemetry`` field (serialize it
    with :func:`repro.telemetry.series.write_series`).  ``None`` (the
    default) leaves the serve loop's telemetry hooks dormant.

    ``workers`` > 0 runs ``min(workers, n_devices)`` shard worker
    processes and reduces their fragments deterministically; the
    returned result (and its telemetry series) is byte-identical to the
    in-process ``workers=0`` run.
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError("tenant names must be unique")
    if outage_policy not in OUTAGE_POLICIES:
        raise ValueError(
            f"unknown outage policy {outage_policy!r}; choose from "
            f"{', '.join(OUTAGE_POLICIES)}"
        )
    if workers < 0:
        raise ValueError("workers must be >= 0")
    fault_specs = check_fault_plan(list(faults or ()), n_devices)
    fault_for = plan_by_device(fault_specs)
    auto_trace = bool(trace.AUTO) and not traced
    if workers > 0:
        return _serve_parallel(
            tenants=tenants, fs_name=fs_name, n_devices=n_devices,
            sched=sched, seed=seed, queue_depth=queue_depth,
            max_queue=max_queue, quantum_ns=quantum_ns,
            geometry=geometry, timing=timing, log_bytes=log_bytes,
            device_cache_bytes=device_cache_bytes,
            page_cache_pages=page_cache_pages, devcache=devcache,
            traced=traced,
            keep_dispatch_log=keep_dispatch_log, unmount=unmount,
            fault_specs=fault_specs, outage_policy=outage_policy,
            sample_every_ns=sample_every_ns, workers=workers,
            auto_trace=auto_trace,
        )
    clock = VirtualClock(len(tenants))
    backend = ShardedBackend(
        fs_name,
        n_devices,
        clock,
        geometry=geometry,
        timing=timing,
        log_bytes=log_bytes,
        device_cache_bytes=device_cache_bytes,
        page_cache_pages=page_cache_pages,
        devcache=devcache,
        queue_depth=queue_depth,
        fault_devices=fault_for,
    )
    # -------------------- setup phase (un-measured) -------------------- #
    runtime: List[TenantRT] = []
    placement: List[int] = []
    for i, spec in enumerate(tenants):
        dev = backend.place(spec)
        placement.append(dev)
        runtime.append(setup_tenant(
            backend, clock, i, spec, dev, dev in fault_for, seed,
        ))
    # Measurement epoch: sync every timeline, zero every shard's stats.
    t0 = clock.sync_all()
    backend.reset_epoch()
    fault_rt: List[Optional[DeviceFault]] = [None] * n_devices
    for dev in sorted(fault_for):
        fspec = fault_for[dev]
        frt = DeviceFault(spec=fspec, injector=backend.injectors[dev])
        if fspec.at_s is not None:
            frt.t_crash = t0 + fspec.at_s * SEC
        fault_rt[dev] = frt
    # Open-loop Poisson arrivals, one independent stream per tenant.
    for tn in runtime:
        gen_arrivals(tn, seed, t0)
    # ------------------------- measured phase -------------------------- #
    by_device: List[List[TenantRT]] = [[] for _ in range(n_devices)]
    for tn, dev in zip(runtime, placement):
        by_device[dev].append(tn)
    scheds: List[Scheduler] = [
        make_scheduler(sched, group, quantum_ns) for group in by_device
    ]
    cluster_latency = LatencyRecorder()
    dispatch_log: Optional[List] = [] if keep_dispatch_log else None
    tracer: Optional[Tracer] = None
    if traced:
        tracer = Tracer(clock, keep_spans=True)
    #: per-device metrics registries (auto-trace runs; merged in device
    #: order so serial and sharded layer aggregates are bit-identical)
    metrics_by_device: Dict[int, MetricsRegistry] = {}
    sampler: Optional[telem.TelemetrySampler] = None
    if sample_every_ns is not None:
        sampler = telem.TelemetrySampler(
            t0, sample_every_ns,
            meta=_sampler_meta(
                fs_name, sched, n_devices, queue_depth, max_queue, seed,
            ),
        )
        for dev in range(n_devices):
            sampler.add_device(
                dev,
                gauges=backend.devices[dev].gauges,
                queue=backend.queues[dev],
                tenants=by_device[dev],
                stats=backend.stats[dev],
                time_of=clock.time_of,
            )

    def _drain() -> None:
        # Tenants never span devices, so shards are causally independent
        # and can be drained one after another on the shared clock.
        for dev in range(n_devices):
            if by_device[dev]:
                reg = run_device_drain(
                    clock, dev, by_device[dev], scheds[dev],
                    backend.queues[dev], backend.stats[dev], max_queue,
                    cluster_latency, dispatch_log,
                    backend.devices[dev], backend.filesystems[dev],
                    fault_rt[dev], outage_policy, seed,
                    tracer, auto_trace,
                )
                if reg is not None:
                    metrics_by_device[dev] = reg
        # A faulted device with no tenants still power-cycles (after the
        # populated shards drained, so its recovery work never delays a
        # tenant's timeline).
        for dev in range(n_devices):
            frt = fault_rt[dev]
            if frt is not None and not frt.done and not by_device[dev]:
                reg = run_orphan_crash(
                    clock, dev, backend.devices[dev],
                    backend.filesystems[dev], backend.queues[dev],
                    backend.stats[dev], frt, outage_policy,
                    tracer, auto_trace,
                )
                if reg is not None:
                    metrics_by_device[dev] = reg

    calls0 = [
        device_call_snapshot(backend.devices[k]) for k in range(n_devices)
    ]
    wall0 = time.perf_counter()
    if sampler is not None:
        telem.activate(sampler)
    try:
        if tracer is not None:
            with trace.activated(tracer):
                _drain()
            tracer.close_all()
        else:
            _drain()
    finally:
        if sampler is not None:
            telem.deactivate()
    wall_s = time.perf_counter() - wall0
    layer_calls: Dict[str, int] = {}
    for k in range(n_devices):
        snap = device_call_snapshot(backend.devices[k])
        for key in snap:
            layer_calls[key] = (
                layer_calls.get(key, 0) + snap[key] - calls0[k][key]
            )
    # Final queue-accounting audit, sanitizer or not: a broken invariant
    # here means the result's counters are lies.
    for tn in runtime:
        with fssan.sanitized():
            sanity(tn)
    result_tracer = tracer
    merged_metrics: Optional[MetricsRegistry] = None
    if auto_trace:
        merged_metrics = MetricsRegistry()
        for dev in sorted(metrics_by_device):
            merged_metrics.merge(metrics_by_device[dev])
        result_tracer = Tracer(clock, keep_spans=False,
                               metrics=merged_metrics)
    elapsed_s = (clock.elapsed_ns - t0) / SEC
    if sampler is not None:
        # Close every shard's timeline at the run end (equal-length
        # series per device) and bridge the per-layer latency histograms
        # into end-of-run layer rows.
        t_end = clock.elapsed_ns
        for dev in range(n_devices):
            sampler.advance(dev, t_end)
        sampler.finalize(
            t_end,
            tracer.metrics if tracer is not None else merged_metrics,
        )
    if unmount:
        backend.unmount()
    return ClusterRunResult(
        fs_name=fs_name,
        scheduler=scheds[0].config_json(),
        n_devices=n_devices,
        queue_depth=queue_depth,
        max_queue=max_queue,
        seed=seed,
        elapsed_s=elapsed_s,
        tenants=[
            TenantResult(
                spec=tn.spec.to_json(),
                device=placement[tn.index],
                ops=tn.served,
                submitted=tn.submitted(),
                rejected=tn.rejected,
                dropped=tn.dropped,
                slo_violations=tn.slo_violations,
                latency=tn.latency,
                traffic=dict(tn.traffic),
                lost_to_crash=tn.lost_to_crash,
                outage_rejected=tn.outage_rejected,
                slo_violations_outage=tn.slo_violations_outage,
            )
            for tn in runtime
        ],
        devices=[
            backend.device_summary(k, elapsed_s) for k in range(n_devices)
        ],
        latency=cluster_latency,
        trace=result_tracer,
        dispatch_log=dispatch_log,
        outage_policy=outage_policy,
        fault_plan=(
            [f.to_json() for f in fault_specs] if fault_specs else None
        ),
        devcache=_devcache_echo(devcache),
        recovery=[
            frt.record for frt in fault_rt
            if frt is not None and frt.record is not None
        ],
        telemetry=sampler,
        wall_s=wall_s,
        layer_calls=layer_calls,
    )


def _serve_parallel(
    *,
    tenants: List[TenantSpec],
    fs_name: str,
    n_devices: int,
    sched: str,
    seed: int,
    queue_depth: int,
    max_queue: int,
    quantum_ns: Optional[float],
    geometry: Optional[FlashGeometry],
    timing: Optional[TimingModel],
    log_bytes: int,
    device_cache_bytes: int,
    page_cache_pages: int,
    devcache,
    traced: bool,
    keep_dispatch_log: bool,
    unmount: bool,
    fault_specs: List[DeviceCrash],
    outage_policy: str,
    sample_every_ns: Optional[float],
    workers: int,
    auto_trace: bool,
) -> ClusterRunResult:
    """Shard the cluster over worker processes and reduce the fragments.

    Everything the serial path would reject with a ``ValueError`` is
    rejected here, before any process spawns, so the caller-visible
    error contract does not depend on ``workers``.
    """
    if traced:
        raise ValueError(
            "traced=True keeps one span tree on one tracer and requires "
            "the in-process serial path (workers=0); metrics-only auto "
            "tracing works with workers"
        )
    if sample_every_ns is not None and sample_every_ns <= 0:
        raise ValueError("sample_every_ns must be positive")
    # The scheduler name and the placement pins validate parent-side.
    scheduler_echo = make_scheduler(sched, [], quantum_ns).config_json()
    placement = [place_tenant(spec, n_devices) for spec in tenants]
    fault_for = plan_by_device(fault_specs)
    for spec, dev in zip(tenants, placement):
        if dev in fault_for and not hasattr(
            make_tenant_workload(spec, seed), "attach_oracle"
        ):
            raise ValueError(
                f"tenant {spec.name!r} runs workload "
                f"{spec.workload!r} on faulted device {dev}; only "
                "profile/'synthetic' workloads can be oracle-"
                "mirrored through a crash"
            )
        if spec.rate_ops_s <= 0:
            raise ValueError(
                f"tenant {spec.name!r} needs a positive rate_ops_s"
            )
    n_workers = min(workers, n_devices)
    populated = set(placement)
    owner = {dev: dev % n_workers for dev in range(n_devices)}
    # A faulted device with no tenants power-cycles on clock thread 0 at
    # drain end; only the worker serving tenant 0's device knows that
    # thread's post-drain time, so such devices move to that worker.
    home = owner[placement[0]]
    for dev in sorted(fault_for):
        if dev not in populated:
            owner[dev] = home
    tenant_entries = tuple(
        (i, spec, placement[i]) for i, spec in enumerate(tenants)
    )
    tasks = [
        ShardTask(
            worker_id=w,
            fs_name=fs_name,
            n_devices=n_devices,
            n_tenants=len(tenants),
            tenants=tenant_entries,
            owned_devices=tuple(
                dev for dev in range(n_devices) if owner[dev] == w
            ),
            sched=sched,
            seed=seed,
            queue_depth=queue_depth,
            max_queue=max_queue,
            quantum_ns=quantum_ns,
            geometry=geometry,
            timing=timing,
            log_bytes=log_bytes,
            device_cache_bytes=device_cache_bytes,
            page_cache_pages=page_cache_pages,
            devcache=devcache,
            faults=tuple(fault_specs),
            outage_policy=outage_policy,
            sample_every_ns=sample_every_ns,
            keep_dispatch_log=keep_dispatch_log,
            unmount=unmount,
            auto_trace=auto_trace,
        )
        for w in range(n_workers)
    ]
    t0, t_end, wall_s, results = run_shard_workers(tasks)
    return merge_shard_results(
        results,
        fs_name=fs_name,
        scheduler=scheduler_echo,
        n_devices=n_devices,
        n_tenants=len(tenants),
        queue_depth=queue_depth,
        max_queue=max_queue,
        seed=seed,
        outage_policy=outage_policy,
        fault_plan=(
            [f.to_json() for f in fault_specs] if fault_specs else None
        ),
        devcache_echo=_devcache_echo(devcache),
        populated=populated,
        t0=t0,
        t_end=t_end,
        wall_s=wall_s,
        sample_every_ns=sample_every_ns,
        sampler_meta=(
            _sampler_meta(
                fs_name, sched, n_devices, queue_depth, max_queue, seed,
            )
            if sample_every_ns is not None else None
        ),
        auto_trace=auto_trace,
    )
