"""The multi-tenant serving harness.

:func:`serve_cluster` runs N tenants against a :class:`ShardedBackend`
under a pluggable I/O scheduler and returns a
:class:`~repro.cluster.result.ClusterRunResult`.

Unlike the single-tenant bench harness (closed loop: each thread issues
its next op the instant the previous one returns), tenants here are
**open loop**: each tenant's requests arrive by a seeded Poisson process
at ``spec.rate_ops_s`` on the virtual timeline, independent of service
progress.  Arrivals queue per tenant; backlog is what gives the
scheduler real choices, and per-op latency = queueing delay + service
time, measured from *arrival* to completion — so a noisy neighbour's
backlog shows up in its victims' tail latencies, which is the effect the
DRR and token-bucket policies exist to bound.

Dispatch semantics (per device, deterministic):

1. The next *decision instant* ``t_dec`` is the earliest virtual time at
   which some tenant has a dispatchable request (arrived, client thread
   free) **and** the admission queue has a free slot.
2. Arrivals up to ``t_dec`` are pumped into per-tenant queues;
   admission control rejects arrivals beyond ``max_queue``.
3. The scheduler picks among eligible backlogged tenants; the grant
   starts at ``t_dec`` (work-conserving policies) or at the tenant's
   token-release time (token bucket), and the op runs on the tenant's
   own clock thread so device-level contention is shared with any
   overlapping ops admitted through other queue slots.

**Faults under load** (``faults=`` / ``repro serve --fault``): a
:class:`~repro.faults.plan.DeviceCrash` powers one shard off mid-run —
at a virtual time or after N dispatched requests — while tenants keep
arriving.  The crash lands on the first dispatch at/after the trigger:
if that op reaches a device-visible mutation the shard's injector fires
a :class:`~repro.faults.injector.CrashPoint` (optionally torn) with the
op in flight; an op that mutates nothing (e.g. a cache-hit read) has
power drop at the op boundary instead.  The in-flight op counts as
*lost to crash* (submitted, never served), the device queue is down
until recovery completes, and the file system's own crash-recovery path
(``fs.crash()`` + ``fs.remount()``) runs inside the outage window,
followed by a durability-oracle scrub of every tenant namespace on the
shard.  Arrivals landing inside the outage either wait (``requeue``,
the default — SLO damage accrues) or bounce (``reject``).  A trigger
the run never reaches fires at drain, so a planned fault always
executes.  The extended request ledger — checked by FSSAN-QUEUE — is
``submitted == served + pending + rejected + dropped + lost_to_crash``.

Everything is a pure function of (seed, config): two identical
``serve_cluster`` calls produce byte-identical result JSON.  The one
measured wall-clock quantity (recovery ``wall_s``) therefore lives only
on the live result object and serializes as ``null``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import fssan
from repro.faults.injector import FaultInjector
from repro.faults.oracle import OracleFS
from repro.faults.plan import DeviceCrash, check_fault_plan
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import TimingModel
from repro.sim.clock import MSEC, SEC, VirtualClock
from repro.sim.rng import make_rng
from repro.stats.traffic import Direction, LatencyRecorder, TrafficStats
from repro.telemetry import sampler as telem
from repro.trace import tracer as trace
from repro.trace.tracer import Tracer

from repro.cluster.result import ALL_OPS, ClusterRunResult, TenantResult
from repro.cluster.sched import AdmissionQueue, Scheduler, make_scheduler
from repro.cluster.shard import ShardedBackend
from repro.cluster.tenant import CRASHED, TenantSpec, make_tenant_workload

_INF = float("inf")

#: outage policies for arrivals landing inside [t_down, t_up)
OUTAGE_POLICIES = ("requeue", "reject")


@dataclass
class _TenantRT:
    """Mutable per-tenant serving state."""

    index: int                       # global index == clock thread id
    spec: TenantSpec
    gen: object                      # the workload's op generator
    arrivals: List[float]            # absolute arrival times (ns)
    next_i: int = 0                  # first arrival not yet pumped
    queue: deque = field(default_factory=deque)
    deficit: float = 0.0             # DRR bookkeeping
    served: int = 0
    rejected: int = 0
    dropped: int = 0
    lost_to_crash: int = 0           # in flight when the shard lost power
    outage_rejected: int = 0         # rejections attributed to an outage
    slo_violations: int = 0
    slo_violations_outage: int = 0   # violations overlapping the outage
    done: bool = False               # workload generator exhausted
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    traffic: Dict[str, int] = field(default_factory=dict)
    #: namespace view and oracle mirror (faulted shards only)
    ns: Optional[object] = None
    oracle: Optional[OracleFS] = None
    #: arrivals inside [reject_from, reject_to) bounce ("reject" policy)
    reject_from: float = _INF
    reject_to: float = -_INF

    @property
    def tid(self) -> int:
        return self.index

    def submitted(self) -> int:
        return self.next_i

    def pump(self, t: float, max_queue: int) -> None:
        """Move arrivals up to ``t`` into the queue (admission control)."""
        arrivals = self.arrivals
        i = self.next_i
        n = len(arrivals)
        while i < n and arrivals[i] <= t:
            a = arrivals[i]
            if self.reject_from <= a < self.reject_to:
                # Arrived while the shard was down (policy "reject").
                self.rejected += 1
                self.outage_rejected += 1
            elif len(self.queue) >= max_queue:
                self.rejected += 1
            else:
                self.queue.append(a)
            i += 1
        self.next_i = i

    def finish(self) -> None:
        """Workload exhausted: abandon backlog and future arrivals."""
        self.done = True
        self.dropped += len(self.queue)
        self.queue.clear()
        del self.arrivals[self.next_i:]


_TRAFFIC_KEYS = (
    "host_write", "host_read", "flash_write", "flash_read",
    "app_write", "app_read",
)


def _traffic_totals(stats: TrafficStats) -> Tuple[float, ...]:
    hw = hr = 0
    for (_k, d, _i), n in stats.host_ssd.items():
        if d is Direction.WRITE:
            hw += n
        else:
            hr += n
    fw = fr = 0
    for (_k, d), n in stats.flash.items():
        if d is Direction.WRITE:
            fw += n
        else:
            fr += n
    return (
        hw, hr, fw, fr,
        stats.app.get(Direction.WRITE, 0),
        stats.app.get(Direction.READ, 0),
    )


def _attribute(tn: _TenantRT, before: Tuple, after: Tuple) -> None:
    for key, b, a in zip(_TRAFFIC_KEYS, before, after):
        tn.traffic[key] = tn.traffic.get(key, 0) + (a - b)


def _sanity(tn: _TenantRT) -> None:
    fssan.check_queue_accounting(
        tn.spec.name, tn.submitted(), tn.served, len(tn.queue),
        tn.rejected, tn.dropped, tn.lost_to_crash,
    )


@dataclass
class _DeviceFault:
    """Mutable runtime state of one planned device crash."""

    spec: DeviceCrash
    injector: FaultInjector
    t_crash: float = _INF            # absolute trigger time (ns); inf = ops
    armed: bool = False              # injector armed, crash op pending
    done: bool = False               # power-cycled and recovered
    dispatched: int = 0              # grants on this device so far
    t_down: float = 0.0
    t_up: float = 0.0
    wall_s: float = 0.0              # measured host time in recovery
    record: Optional[Dict] = None    # the result document's entry

    def due(self, t_dec: float) -> bool:
        if self.spec.after_ops is not None:
            return self.dispatched >= self.spec.after_ops
        return t_dec >= self.t_crash


def _crash_and_recover(
    clock: VirtualClock,
    device: int,
    device_obj,
    fs,
    tenants: List[_TenantRT],
    queue: AdmissionQueue,
    sched: Optional[Scheduler],
    stats: TrafficStats,
    fault: _DeviceFault,
    outage_policy: str,
    tracer: Optional[Tracer],
) -> None:
    """Power-cycle one shard and bring it back on the virtual timeline.

    Runs synchronously on the current clock thread, at the instant power
    dropped: device DRAM state replays from its power-loss log, the file
    system runs its crash-recovery path (journal replay / log scan), and
    the durability oracle then scrubs every mirrored tenant namespace —
    the scrub's reads cost virtual time like a real verification pass,
    so recovery time includes it.  Other tenants see the outage through
    the admission queue: every slot is busy until recovery completes.
    """
    inj = fault.injector
    fired = inj.fired
    inj.disarm()
    t_down = clock.now
    smp = telem.active() if telem.ENABLED else None
    if smp is not None:
        # Pre-crash boundaries sample with up=1 before the window opens.
        smp.advance(device, t_down)
    stats.bump_fault("fault_power_cycles")
    if trace.ENABLED:
        trace.event(
            "cluster", "crash", device=device,
            site=fired.label if fired is not None else None,
        )
    span = (
        trace.begin("cluster", "recovery", device=device)
        if tracer is not None else None
    )
    wall0 = time.perf_counter()
    device_obj.power_fail()
    fs.crash()
    fw = fs.remount()
    checked: List[str] = []
    errors: Dict[str, List[str]] = {}
    for tn in sorted(tenants, key=lambda t: t.index):
        if tn.oracle is None:
            continue
        checked.append(tn.spec.name)
        bad = tn.oracle.check(tn.ns)
        if bad:
            errors[tn.spec.name] = bad
    fault.wall_s = time.perf_counter() - wall0
    t_up = clock.now
    if span is not None:
        trace.end(span)
    fault.done = True
    fault.t_down = t_down
    fault.t_up = t_up
    # The submission queue did not survive the power cycle: no grant may
    # start before the shard is back.  (Never Resource.reset() here —
    # that would rewind the busy-until timelines.)
    for slot in queue.slots:
        if slot.busy_until < t_up:
            slot.busy_until = t_up
    if sched is not None:
        sched.on_outage(t_down, t_up)
    if outage_policy == "reject":
        for tn in tenants:
            tn.reject_from = t_down
            tn.reject_to = t_up
    if smp is not None:
        # Boundaries inside [t_down, t_up) emit up=0: the crash and the
        # recovery show up as gauge transitions in the series.
        smp.mark_outage(device, t_down, t_up)
    fault.record = {
        "device": device,
        "trigger": fault.spec.to_json(),
        "fired": (
            {
                "site": fired.site,
                "label": fired.label,
                "nbytes": fired.nbytes,
                "torn_bytes": fired.torn_bytes,
            }
            if fired is not None else None
        ),
        "t_down_ns": t_down,
        "t_up_ns": t_up,
        "virtual_ns": t_up - t_down,
        "wall_s": fault.wall_s,
        "fw": {k: fw[k] for k in sorted(fw)},
        "oracle": {
            "checked": checked,
            "clean": not errors,
            "errors": errors,
        },
    }


def _serve_device(
    clock: VirtualClock,
    device: int,
    tenants: List[_TenantRT],
    sched: Scheduler,
    queue: AdmissionQueue,
    stats: TrafficStats,
    max_queue: int,
    cluster_latency: LatencyRecorder,
    dispatch_log: Optional[List],
    tracer: Optional[Tracer],
    device_obj=None,
    fs=None,
    fault: Optional[_DeviceFault] = None,
    outage_policy: str = "requeue",
    fault_seed: int = 0,
) -> None:
    """Drain one device's tenants to completion (see module docstring)."""
    time_of = clock.time_of
    smp = telem.active() if telem.ENABLED else None
    while True:
        # 1. Find the earliest dispatchable request across tenants.  A
        # tenant's next request is dispatchable once it has arrived AND
        # the tenant's (single-threaded) client is free again.
        t_req = _INF
        for tn in tenants:
            if tn.done:
                continue
            if tn.queue:
                r = tn.queue[0]
            elif tn.next_i < len(tn.arrivals):
                r = tn.arrivals[tn.next_i]
            else:
                continue
            avail = time_of(tn.tid)
            if avail > r:
                r = avail
            if r < t_req:
                t_req = r
        if t_req == _INF:
            break
        t_free = queue.earliest_free()
        t_dec = t_req if t_req > t_free else t_free
        if smp is not None:
            # Pull-based sampling: emit every boundary crossed since the
            # last decision, stamped with the boundary's virtual time.
            smp.advance(device, t_dec)
        # Fault trigger check at the decision instant: the next dispatch
        # is the one in flight when power drops.
        if fault is not None and not fault.done and not fault.armed:
            if fault.due(t_dec):
                fault.injector.arm_next(
                    torn=fault.spec.torn, seed=fault_seed
                )
                fault.armed = True
        # 2. Pump arrivals (admission control) up to the decision instant.
        for tn in tenants:
            if not tn.done:
                tn.pump(t_dec, max_queue)
        eligible = [tn for tn in tenants if tn.queue and tn.queue[0] <= t_dec]
        if not eligible:
            # The min-r tenant's arrival was rejected at the full queue;
            # recompute from the new state.
            continue
        # 3. Policy decision.  A tenant with an op still in flight stays
        # schedulable — its queued requests live in the device queue, not
        # the client — but its grant can only *start* once the in-flight
        # op completes (per-tenant request ordering).  Under FIFO this is
        # exactly head-of-line blocking: later arrivals from everyone
        # else wait behind a backlogged tenant's older requests.
        tn = sched.pick(eligible, t_dec)
        start = t_dec
        avail = time_of(tn.tid)
        if avail > start:
            start = avail
        rel = sched.release(tn, t_dec)
        if rel > start:
            # Non-work-conserving hold: if any arrival lands before the
            # hold ends, it may belong to an unthrottled tenant — pump to
            # it and re-decide.
            nxt = min(
                (t.arrivals[t.next_i] for t in tenants
                 if not t.done and t.next_i < len(t.arrivals)),
                default=_INF,
            )
            if nxt < rel:
                for t in tenants:
                    if not t.done:
                        t.pump(nxt, max_queue)
                continue
            start = rel
        arrival = tn.queue.popleft()
        slot, grant = queue.admit(start)
        if fault is not None:
            fault.dispatched += 1
        clock.switch(tn.tid)
        clock.advance_to(grant)
        root = (
            trace.begin("cluster", "op", tenant=tn.spec.name, device=device)
            if tracer is not None else None
        )
        if root is not None and grant > arrival:
            trace.note_wait(queue.group, grant - arrival, 0.0)
        before = _traffic_totals(stats)
        try:
            op_name = next(tn.gen)
        except StopIteration:
            if root is not None:
                root.op = "drain"
                trace.end(root)
            tn.dropped += 1
            tn.finish()
            if fssan.ENABLED:
                _sanity(tn)
            continue
        end = clock.now
        if root is not None:
            root.op = op_name
            trace.end(root)
        queue.complete(slot, grant, end)
        _attribute(tn, before, _traffic_totals(stats))
        if op_name == CRASHED:
            # The dispatched op was in flight when the shard lost power:
            # it was submitted but never served (lost to crash), and the
            # recovery protocol runs right here, at t_down = `end`.
            tn.lost_to_crash += 1
            if dispatch_log is not None:
                dispatch_log.append({
                    "device": device,
                    "tenant": tn.spec.name,
                    "op": op_name,
                    "arrival": arrival,
                    "begin": grant,
                    "end": end,
                })
            _crash_and_recover(
                clock, device, device_obj, fs, tenants, queue, sched,
                stats, fault, outage_policy, tracer,
            )
            if fssan.ENABLED:
                _sanity(tn)
            continue
        sched.on_dispatch(tn, grant)
        sched.charge(tn, end - grant)
        lat = end - arrival
        tn.served += 1
        tn.latency.record(op_name, lat)
        tn.latency.record(ALL_OPS, lat)
        cluster_latency.record(op_name, lat)
        cluster_latency.record(ALL_OPS, lat)
        if lat > tn.spec.slo_ms * MSEC:
            tn.slo_violations += 1
            if (
                fault is not None and fault.done
                and arrival < fault.t_up and end > fault.t_down
            ):
                tn.slo_violations_outage += 1
        if dispatch_log is not None:
            dispatch_log.append({
                "device": device,
                "tenant": tn.spec.name,
                "op": op_name,
                "arrival": arrival,
                "begin": grant,
                "end": end,
            })
        if fssan.ENABLED:
            _sanity(tn)
        if fault is not None and fault.armed and not fault.done:
            # The crash op completed without reaching a device-visible
            # mutation (e.g. a cache-hit read): power drops at the op
            # boundary instead, with nothing in flight.
            _crash_and_recover(
                clock, device, device_obj, fs, tenants, queue, sched,
                stats, fault, outage_policy, tracer,
            )
    if fault is not None and not fault.done:
        # The drain finished before the trigger was reached (or the
        # armed crash never saw another dispatch): the planned fault
        # still executes, as a between-ops power-off at drain end, so a
        # matrix cell always exercises the recovery path.
        tmax = max(time_of(tn.tid) for tn in tenants)
        clock.switch(tenants[0].tid)
        clock.advance_to(tmax)
        _crash_and_recover(
            clock, device, device_obj, fs, tenants, queue, sched,
            stats, fault, outage_policy, tracer,
        )


def serve_cluster(
    tenants: List[TenantSpec],
    fs_name: str = "bytefs",
    n_devices: int = 1,
    sched: str = "drr",
    seed: int = 42,
    queue_depth: int = 4,
    max_queue: int = 64,
    quantum_ns: Optional[float] = None,
    geometry: Optional[FlashGeometry] = None,
    timing: Optional[TimingModel] = None,
    log_bytes: int = 1 << 20,
    device_cache_bytes: int = 1 << 20,
    page_cache_pages: int = 512,
    traced: bool = False,
    keep_dispatch_log: bool = False,
    unmount: bool = False,
    faults: Optional[Sequence[DeviceCrash]] = None,
    outage_policy: str = "requeue",
    sample_every_ns: Optional[float] = None,
) -> ClusterRunResult:
    """Run ``tenants`` against a sharded backend under scheduler ``sched``.

    Setup (namespace creation, file-set preparation) happens before the
    measurement epoch, exactly like the single-tenant harness: traffic
    stats reset and arrival processes start after all tenants are set up
    and every timeline is synchronized.

    ``faults`` crashes and recovers devices mid-run (see the module
    docstring); every tenant placed on a faulted device must use a
    profile/``synthetic`` workload, because only those can be mirrored
    into the durability oracle across a crash.

    ``sample_every_ns`` turns on live telemetry: a
    :class:`~repro.telemetry.sampler.TelemetrySampler` samples every
    shard at that virtual-time interval during the measured phase and is
    returned on the live-only ``result.telemetry`` field (serialize it
    with :func:`repro.telemetry.series.write_series`).  ``None`` (the
    default) leaves the serve loop's telemetry hooks dormant.
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError("tenant names must be unique")
    if outage_policy not in OUTAGE_POLICIES:
        raise ValueError(
            f"unknown outage policy {outage_policy!r}; choose from "
            f"{', '.join(OUTAGE_POLICIES)}"
        )
    fault_specs = check_fault_plan(list(faults or ()), n_devices)
    fault_for: Dict[int, DeviceCrash] = {f.device: f for f in fault_specs}
    clock = VirtualClock(len(tenants))
    backend = ShardedBackend(
        fs_name,
        n_devices,
        clock,
        geometry=geometry,
        timing=timing,
        log_bytes=log_bytes,
        device_cache_bytes=device_cache_bytes,
        page_cache_pages=page_cache_pages,
        queue_depth=queue_depth,
        fault_devices=fault_for,
    )
    # -------------------- setup phase (un-measured) -------------------- #
    runtime: List[_TenantRT] = []
    placement: List[int] = []
    for i, spec in enumerate(tenants):
        dev = backend.place(spec)
        placement.append(dev)
        clock.switch(i)
        ns = backend.mount_namespace(spec, dev)
        workload = make_tenant_workload(spec, seed)
        oracle: Optional[OracleFS] = None
        if dev in fault_for:
            if not hasattr(workload, "attach_oracle"):
                raise ValueError(
                    f"tenant {spec.name!r} runs workload "
                    f"{spec.workload!r} on faulted device {dev}; only "
                    "profile/'synthetic' workloads can be oracle-"
                    "mirrored through a crash"
                )
            oracle = OracleFS()
            workload.attach_oracle(oracle)
        workload.setup(ns)
        gen = workload.make_threads(ns)[0]
        runtime.append(_TenantRT(
            index=i, spec=spec, gen=gen, arrivals=[], ns=ns, oracle=oracle,
        ))
    # Measurement epoch: sync every timeline, zero every shard's stats.
    t0 = clock.sync_all()
    backend.reset_epoch()
    fault_rt: List[Optional[_DeviceFault]] = [None] * n_devices
    for dev, fspec in fault_for.items():
        frt = _DeviceFault(spec=fspec, injector=backend.injectors[dev])
        if fspec.at_s is not None:
            frt.t_crash = t0 + fspec.at_s * SEC
        fault_rt[dev] = frt
    # Open-loop Poisson arrivals, one independent stream per tenant.
    for tn in runtime:
        rng = make_rng(seed, f"arrivals:{tn.spec.name}")
        t = t0
        rate = tn.spec.rate_ops_s
        if rate <= 0:
            raise ValueError(
                f"tenant {tn.spec.name!r} needs a positive rate_ops_s"
            )
        for _ in range(tn.spec.n_ops):
            t += rng.expovariate(rate) * SEC
            tn.arrivals.append(t)
    # ------------------------- measured phase -------------------------- #
    by_device: List[List[_TenantRT]] = [[] for _ in range(n_devices)]
    for tn, dev in zip(runtime, placement):
        by_device[dev].append(tn)
    scheds: List[Scheduler] = [
        make_scheduler(sched, group, quantum_ns) for group in by_device
    ]
    cluster_latency = LatencyRecorder()
    dispatch_log: Optional[List] = [] if keep_dispatch_log else None
    tracer: Optional[Tracer] = None
    if traced:
        tracer = Tracer(clock, keep_spans=True)
    elif trace.AUTO:
        tracer = Tracer(clock, keep_spans=False)
    sampler: Optional[telem.TelemetrySampler] = None
    if sample_every_ns is not None:
        sampler = telem.TelemetrySampler(
            t0, sample_every_ns,
            meta={
                "fs": fs_name,
                "scheduler": sched,
                "n_devices": n_devices,
                "queue_depth": queue_depth,
                "max_queue": max_queue,
                "seed": seed,
            },
        )
        for dev in range(n_devices):
            sampler.add_device(
                dev,
                gauges=backend.devices[dev].gauges,
                queue=backend.queues[dev],
                tenants=by_device[dev],
                stats=backend.stats[dev],
                time_of=clock.time_of,
            )

    def _drain() -> None:
        # Tenants never span devices, so shards are causally independent
        # and can be drained one after another on the shared clock.
        for dev in range(n_devices):
            if by_device[dev]:
                _serve_device(
                    clock, dev, by_device[dev], scheds[dev],
                    backend.queues[dev], backend.stats[dev], max_queue,
                    cluster_latency, dispatch_log, tracer,
                    device_obj=backend.devices[dev],
                    fs=backend.filesystems[dev],
                    fault=fault_rt[dev],
                    outage_policy=outage_policy,
                    fault_seed=seed,
                )
        # A faulted device with no tenants still power-cycles (after the
        # populated shards drained, so its recovery work never delays a
        # tenant's timeline).
        for dev in range(n_devices):
            frt = fault_rt[dev]
            if frt is not None and not frt.done and not by_device[dev]:
                clock.switch(0)
                _crash_and_recover(
                    clock, dev, backend.devices[dev],
                    backend.filesystems[dev], [], backend.queues[dev],
                    None, backend.stats[dev], frt, outage_policy, tracer,
                )

    if sampler is not None:
        telem.activate(sampler)
    try:
        if tracer is not None:
            with trace.activated(tracer):
                _drain()
            tracer.close_all()
        else:
            _drain()
    finally:
        if sampler is not None:
            telem.deactivate()
    # Final queue-accounting audit, sanitizer or not: a broken invariant
    # here means the result's counters are lies.
    for tn in runtime:
        with fssan.sanitized():
            _sanity(tn)
    elapsed_s = (clock.elapsed_ns - t0) / SEC
    if sampler is not None:
        # Close every shard's timeline at the run end (equal-length
        # series per device) and bridge the tracer's per-layer latency
        # histograms into end-of-run layer rows.
        t_end = clock.elapsed_ns
        for dev in range(n_devices):
            sampler.advance(dev, t_end)
        sampler.finalize(
            t_end, tracer.metrics if tracer is not None else None
        )
    if unmount:
        backend.unmount()
    return ClusterRunResult(
        fs_name=fs_name,
        scheduler=scheds[0].config_json(),
        n_devices=n_devices,
        queue_depth=queue_depth,
        max_queue=max_queue,
        seed=seed,
        elapsed_s=elapsed_s,
        tenants=[
            TenantResult(
                spec=tn.spec.to_json(),
                device=placement[tn.index],
                ops=tn.served,
                submitted=tn.submitted(),
                rejected=tn.rejected,
                dropped=tn.dropped,
                slo_violations=tn.slo_violations,
                latency=tn.latency,
                traffic=dict(tn.traffic),
                lost_to_crash=tn.lost_to_crash,
                outage_rejected=tn.outage_rejected,
                slo_violations_outage=tn.slo_violations_outage,
            )
            for tn in runtime
        ],
        devices=[
            backend.device_summary(k, elapsed_s) for k in range(n_devices)
        ],
        latency=cluster_latency,
        trace=tracer,
        dispatch_log=dispatch_log,
        outage_policy=outage_policy,
        fault_plan=(
            [f.to_json() for f in fault_specs] if fault_specs else None
        ),
        recovery=[
            frt.record for frt in fault_rt
            if frt is not None and frt.record is not None
        ],
        telemetry=sampler,
    )
