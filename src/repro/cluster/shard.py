"""Sharded multi-device backend for the serving layer.

A :class:`ShardedBackend` stripes tenant namespaces across ``n_devices``
independent :class:`~repro.ssd.device.MSSD` + file-system stacks that
share one :class:`~repro.sim.clock.VirtualClock`.  Each device gets its
own :class:`~repro.stats.traffic.TrafficStats` (so traffic and
amplification report per shard) and resource names prefixed with
``dev<k>.`` (so trace wait attribution distinguishes, say, ``dev0``'s
flash channels from ``dev1``'s).

Placement is deterministic: a tenant either pins a device index on its
spec or hashes its *name* (sha256, stable across runs and Python
processes — never ``hash()``, which is salted) onto a shard.  Tenants
never span devices; cross-tenant interference therefore only happens
between tenants placed on the same shard, which is exactly what the
scheduler policies arbitrate.
"""

from __future__ import annotations

import hashlib
from typing import Collection, Dict, List, Optional

from repro.core.bytefs import build_stack
from repro.devcache import DevCacheConfig
from repro.faults.injector import FaultInjector
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import TimingModel
from repro.sim.clock import VirtualClock
from repro.stats.traffic import Direction, TrafficStats

from repro.cluster.sched import AdmissionQueue
from repro.cluster.tenant import NamespacedFS, TenantSpec


def place_tenant(spec: TenantSpec, n_devices: int) -> int:
    """Deterministic shard for ``spec``: explicit pin or name hash."""
    if spec.device is not None:
        if not 0 <= spec.device < n_devices:
            raise ValueError(
                f"tenant {spec.name!r} pinned to device {spec.device}, "
                f"but the cluster has {n_devices} device(s)"
            )
        return spec.device
    digest = hashlib.sha256(spec.name.encode()).digest()
    return int.from_bytes(digest[:8], "little") % n_devices


class ShardedBackend:
    """``n_devices`` independent device+fs stacks on one virtual clock."""

    def __init__(
        self,
        fs_name: str,
        n_devices: int,
        clock: VirtualClock,
        geometry: Optional[FlashGeometry] = None,
        timing: Optional[TimingModel] = None,
        log_bytes: int = 1 << 20,
        device_cache_bytes: int = 1 << 20,
        page_cache_pages: int = 512,
        devcache: Optional[DevCacheConfig] = None,
        queue_depth: int = 4,
        fault_devices: Collection[int] = (),
    ) -> None:
        if n_devices < 1:
            raise ValueError("need at least one device")
        self.fs_name = fs_name
        self.clock = clock
        self.stats: List[TrafficStats] = []
        self.devices = []
        self.filesystems = []
        self.queues: List[AdmissionQueue] = []
        #: per-device crash injector; None unless the device is listed in
        #: ``fault_devices`` (the serving loop arms it mid-run)
        self.injectors: List[Optional[FaultInjector]] = []
        for k in range(n_devices):
            stats = TrafficStats()
            injector = (
                FaultInjector(stats) if k in fault_devices else None
            )
            _, _, device, fs = build_stack(
                fs_name,
                geometry=geometry,
                timing=timing,
                log_bytes=log_bytes,
                device_cache_bytes=device_cache_bytes,
                page_cache_pages=page_cache_pages,
                devcache=devcache,
                faults=injector,
                clock=clock,
                stats=stats,
                instance=f"dev{k}",
            )
            self.stats.append(stats)
            self.devices.append(device)
            self.filesystems.append(fs)
            self.queues.append(AdmissionQueue(k, queue_depth))
            self.injectors.append(injector)

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    def place(self, spec: TenantSpec) -> int:
        return place_tenant(spec, self.n_devices)

    def mount_namespace(self, spec: TenantSpec, device: int) -> NamespacedFS:
        """Create the tenant's private root on its shard and return the
        namespaced view."""
        fs = self.filesystems[device]
        ns = NamespacedFS(fs, f"tn-{spec.name}")
        if not fs.exists(ns.root):
            fs.mkdir(ns.root)
        return ns

    def reset_epoch(self) -> None:
        """Start the measured phase: zero every shard's traffic stats."""
        for stats in self.stats:
            stats.reset()

    def device_summary(self, device: int, elapsed_s: float) -> Dict:
        """Per-shard aggregates for the run result."""
        stats = self.stats[device]
        host_w = stats.host_ssd_bytes(direction=Direction.WRITE)
        host_r = stats.host_ssd_bytes(direction=Direction.READ)
        return {
            "device": device,
            "host_write": host_w,
            "host_read": host_r,
            "flash_write": stats.flash_bytes(direction=Direction.WRITE),
            "flash_read": stats.flash_bytes(direction=Direction.READ),
            "app_write": stats.app.get(Direction.WRITE, 0),
            "app_read": stats.app.get(Direction.READ, 0),
            "queue_depth": self.queues[device].depth,
            "fault_counters": {
                k: stats.fault_counters[k]
                for k in sorted(stats.fault_counters)
            },
        }

    def unmount(self) -> None:
        for fs in self.filesystems:
            fs.unmount()
