"""Tenant model for the multi-tenant serving layer.

A *tenant* is one simulated client of the cluster: it owns a namespace
(a private directory subtree on its shard's file system), a workload
generator that produces its operation stream, an **open-loop arrival
process** (requests arrive on the tenant's virtual timeline whether or
not earlier ones finished — this is what creates backlog and makes I/O
scheduling meaningful), and QoS parameters (DRR weight, optional
token-bucket rate cap, a latency SLO).

Tenant workloads come in two flavours:

* :class:`SyntheticTenantWorkload` — a controllable read/write mix over
  a private file set with Zipfian file popularity; the default for
  ``repro serve`` because its service-time profile is tunable per
  tenant (noisy vs. light neighbours).
* any single-threaded instantiation of the existing micro/Filebench
  workloads, adapted via :func:`make_tenant_workload`.

All randomness is derived from ``make_rng(seed, label)`` streams, so a
cluster run is a pure function of its seed and config.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.faults.injector import CrashPoint
from repro.faults.oracle import OracleFS
from repro.fs.vfs import O_CREAT, O_RDWR, BaseFileSystem
from repro.workloads.base import Workload
from repro.workloads.zipfian import ZipfianGenerator

#: Op name yielded by a crash-aware tenant generator when a
#: :class:`~repro.faults.injector.CrashPoint` unwound the op in flight.
#: The serving loop treats it as "this shard just lost power": the op is
#: lost-to-crash, the device power-cycles and remounts, and the tenant
#: keeps serving afterwards (the generator survives because it catches
#: the crash *inside* its own frame instead of letting it propagate).
CRASHED = "crashed"

#: Built-in tenant profiles: a service-demand shape plus default QoS
#: parameters.  ``rate_ops_s`` is the open-loop arrival rate on the
#: virtual timeline; ``slo_ms`` the per-op latency objective.
PROFILES: Dict[str, Dict] = {
    # mostly-read, small ops, gentle arrival rate
    "light": dict(
        read_fraction=0.8, op_bytes=4096, file_bytes=16 << 10,
        n_files=24, rate_ops_s=1_000.0, slo_ms=2.0,
    ),
    # balanced mix at a moderate rate
    "mixed": dict(
        read_fraction=0.5, op_bytes=8192, file_bytes=32 << 10,
        n_files=32, rate_ops_s=4_000.0, slo_ms=5.0,
    ),
    # write-heavy large ops arriving ~2x faster than the device can
    # serve them: the noisy neighbour, permanently backlogged
    "heavy": dict(
        read_fraction=0.1, op_bytes=64 << 10, file_bytes=128 << 10,
        n_files=16, rate_ops_s=50_000.0, slo_ms=50.0,
    ),
}

#: The rotation ``default_tenants`` cycles through.
DEFAULT_PROFILE_CYCLE = ("mixed", "light", "heavy", "light")


@dataclass
class TenantSpec:
    """Static description of one tenant (config echo: :meth:`to_json`)."""

    name: str
    #: a profile name from :data:`PROFILES` or a workload name
    #: (``create``/``varmail``/... run single-threaded in the namespace)
    workload: str = "mixed"
    #: open-loop arrival rate on the virtual timeline (requests/s)
    rate_ops_s: float = 4_000.0
    #: DRR weight (share of device service under weighted-fair)
    weight: int = 1
    #: token-bucket dispatch cap (requests/s); None = unlimited
    limit_ops_s: Optional[float] = None
    #: token-bucket burst allowance (whole requests)
    burst_ops: int = 8
    #: per-op latency objective; arrivals served later count as violations
    slo_ms: float = 5.0
    #: number of requests this tenant submits during the measured phase
    n_ops: int = 200
    #: pin the tenant to a device index; None = deterministic hash placement
    device: Optional[int] = None

    def to_json(self) -> Dict:
        return {
            "name": self.name,
            "workload": self.workload,
            "rate_ops_s": self.rate_ops_s,
            "weight": self.weight,
            "limit_ops_s": self.limit_ops_s,
            "burst_ops": self.burst_ops,
            "slo_ms": self.slo_ms,
            "n_ops": self.n_ops,
            "device": self.device,
        }


def default_tenants(n: int, n_ops: int = 200) -> list:
    """A deterministic tenant set cycling through the built-in profiles."""
    specs = []
    for i in range(n):
        profile = DEFAULT_PROFILE_CYCLE[i % len(DEFAULT_PROFILE_CYCLE)]
        params = PROFILES[profile]
        specs.append(TenantSpec(
            name=f"tn{i}-{profile}",
            workload=profile,
            rate_ops_s=params["rate_ops_s"],
            slo_ms=params["slo_ms"],
            n_ops=n_ops,
        ))
    return specs


class NamespacedFS:
    """A per-tenant view of a shared file system.

    Every path-taking call is rewritten under the tenant's private root
    (``/tn-<name>``); fd-based calls pass straight through.  This is the
    "per-tenant mount": two tenants on the same shard can both
    ``mkdir("/data")`` without colliding.
    """

    _PATH_1 = ("open", "mkdir", "rmdir", "unlink", "stat", "exists",
               "listdir")

    def __init__(self, fs: BaseFileSystem, root: str) -> None:
        self._fs = fs
        self._root = "/" + root.strip("/")

    @property
    def root(self) -> str:
        return self._root

    def _p(self, path: str) -> str:
        if not path.startswith("/"):
            path = "/" + path
        return self._root + path

    def __getattr__(self, name):
        # fd-based and global ops (read/write/fsync/close/sync/...)
        # delegate unchanged; path ops are defined explicitly below.
        return getattr(self._fs, name)

    def open(self, path: str, flags: int = 0) -> int:
        return self._fs.open(self._p(path), flags)

    def mkdir(self, path: str) -> None:
        self._fs.mkdir(self._p(path))

    def rmdir(self, path: str) -> None:
        self._fs.rmdir(self._p(path))

    def unlink(self, path: str) -> None:
        self._fs.unlink(self._p(path))

    def rename(self, src: str, dst: str) -> None:
        self._fs.rename(self._p(src), self._p(dst))

    def stat(self, path: str):
        return self._fs.stat(self._p(path))

    def exists(self, path: str) -> bool:
        return self._fs.exists(self._p(path))

    def listdir(self, path: str):
        return self._fs.listdir(self._p(path))


class SyntheticTenantWorkload(Workload):
    """A tunable single-threaded read/write mix over a private file set.

    ``setup`` creates ``n_files`` files of ``file_bytes`` each; the op
    stream then picks a file by Zipfian popularity (``theta``) and either
    ``pread``s or ``pwrite``+``fsync``s ``op_bytes`` at an aligned
    offset.  ``read_fraction`` sets the mix.
    """

    name = "synthetic"
    n_threads = 1

    def __init__(
        self,
        n_ops: int = 200,
        n_files: int = 32,
        file_bytes: int = 32 << 10,
        op_bytes: int = 8192,
        read_fraction: float = 0.5,
        theta: float = 0.99,
        seed: int = 42,
    ) -> None:
        super().__init__(seed)
        self.n_ops = n_ops
        self.n_files = n_files
        self.file_bytes = file_bytes
        self.op_bytes = min(op_bytes, file_bytes)
        self.read_fraction = read_fraction
        self.theta = theta
        self.oracle: Optional[OracleFS] = None

    def attach_oracle(self, oracle: OracleFS) -> None:
        """Mirror every op into ``oracle`` (namespace-relative paths).

        With an oracle attached the op stream also survives an injected
        :class:`CrashPoint`: the generator records exactly which sub-op
        was in flight (write pending vs. fsync not acked), yields
        :data:`CRASHED`, and resumes after the serving loop recovers the
        device — so ``oracle.check()`` against the remounted namespace
        verifies that every *acked-durable* op survived the power loss.
        """
        self.oracle = oracle

    def setup(self, fs: BaseFileSystem) -> None:
        ob = self.oracle
        fs.mkdir("/data")
        if ob is not None:
            ob.observe(("mkdir", "/data"))
        payload = b"s" * self.file_bytes
        for i in range(self.n_files):
            path = f"/data/f{i}"
            fd = fs.open(path, O_CREAT | O_RDWR)
            fs.write(fd, payload)
            fs.close(fd)
            if ob is not None:
                ob.observe(("create", path))
                ob.observe(("write", path, 0, payload))
        fs.sync()
        if ob is not None:
            ob.observe(("sync",))

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        rng = self.rng(f"ops{tid}")
        zipf = ZipfianGenerator(
            self.n_files, theta=self.theta, rng=self.rng(f"zipf{tid}")
        )
        n_slots = max(1, self.file_bytes // self.op_bytes)
        payload = b"W" * self.op_bytes
        ob = self.oracle
        for _ in range(self.n_ops):
            path = f"/data/f{zipf.next()}"
            offset = rng.randrange(n_slots) * self.op_bytes
            if rng.random() < self.read_fraction:
                try:
                    fd = fs.open(path, O_RDWR)
                    fs.pread(fd, offset, self.op_bytes)
                    fs.close(fd)
                except CrashPoint:
                    # Reads mutate nothing: power dropped, nothing to
                    # record as pending.
                    yield CRASHED
                    continue
                yield "read"
            else:
                # ``stage`` tells the oracle which sub-op the power loss
                # caught: 0 = pwrite possibly partial, 1 = data written
                # but the fsync ack never came back, 2 = fully acked.
                stage = 0
                try:
                    fd = fs.open(path, O_RDWR)
                    fs.pwrite(fd, offset, payload)
                    stage = 1
                    fs.fsync(fd)
                    stage = 2
                    fs.close(fd)
                except CrashPoint:
                    if ob is not None:
                        ob.observe(
                            ("write", path, offset, payload),
                            completed=stage >= 1,
                        )
                        ob.observe(("fsync", path), completed=stage >= 2)
                    yield CRASHED
                    continue
                if ob is not None:
                    ob.observe(("write", path, offset, payload))
                    ob.observe(("fsync", path))
                yield "write"


#: micro workloads take their op count under different ctor names
_MICRO_COUNT_ARG = {
    "create": "n_files",
    "delete": "n_files",
    "mkdir": "n_dirs",
    "rmdir": "n_dirs",
    "mmap_stress": "n_ops",
}


def make_tenant_workload(spec: TenantSpec, seed: int) -> Workload:
    """Instantiate the workload behind a :class:`TenantSpec`.

    Profiles map to :class:`SyntheticTenantWorkload`; micro/Filebench
    names run their standard single-threaded variant inside the tenant
    namespace.  The tenant's RNG stream is derived from the run seed and
    the tenant name, so tenants never perturb each other's streams.
    """
    from repro.workloads import MACRO_WORKLOADS, MICRO_WORKLOADS

    from repro.sim.rng import make_rng

    tenant_seed = make_rng(seed, f"tenant:{spec.name}").randrange(1 << 30)
    if spec.workload in PROFILES:
        params = PROFILES[spec.workload]
        return SyntheticTenantWorkload(
            n_ops=spec.n_ops,
            n_files=params["n_files"],
            file_bytes=params["file_bytes"],
            op_bytes=params["op_bytes"],
            read_fraction=params["read_fraction"],
            seed=tenant_seed,
        )
    if spec.workload == "synthetic":
        return SyntheticTenantWorkload(n_ops=spec.n_ops, seed=tenant_seed)
    if spec.workload in MICRO_WORKLOADS:
        kwargs = {
            _MICRO_COUNT_ARG[spec.workload]: spec.n_ops,
            "n_threads": 1,
            "seed": tenant_seed,
        }
        return MICRO_WORKLOADS[spec.workload](**kwargs)
    if spec.workload in MACRO_WORKLOADS:
        return MACRO_WORKLOADS[spec.workload](
            n_threads=1, ops_per_thread=spec.n_ops, seed=tenant_seed
        )
    raise ValueError(
        f"unknown tenant workload {spec.workload!r}; expected a profile "
        f"({', '.join(sorted(PROFILES))}), 'synthetic', or a "
        "micro/Filebench workload name"
    )
