"""Process-parallel shard workers for the serving layer.

``serve_cluster(..., workers=N)`` splits the cluster's device shards
over ``min(N, n_devices)`` OS processes.  Each :class:`ShardWorker`
process owns a disjoint set of devices end to end: it builds the full
backend (so the shared-clock setup offset of device construction
replays bit-exactly), sets up and drains only the tenants placed on its
devices, samples its devices' telemetry, and ships a picklable
:class:`ShardResult` fragment back over a pipe.  Workers never share
memory; the only cross-shard couplings of the serial semantics are two
scalar barriers, exchanged explicitly:

1. **setup barrier** — each worker reports its local post-setup clock
   maximum; the parent broadcasts the global maximum ``t0`` and every
   worker adopts it via :meth:`~repro.sim.clock.VirtualClock.sync_to`,
   reproducing the serial ``sync_all()`` epoch exactly;
2. **end barrier** — each worker reports its local post-drain elapsed
   time; the parent broadcasts the global maximum ``t_end`` so every
   worker closes its telemetry series at the same instant the serial
   run would.

Tenants never span devices, so between those barriers the per-shard
event streams are causally independent (the property the CONC001–003
lint passes certify); a faulted-but-tenant-less device is reassigned to
the worker that owns tenant 0's device, because its drain-end power
cycle runs on clock thread 0.  The deterministic reducer
(:mod:`repro.cluster.merge`) reassembles the fragments into documents
byte-identical to ``workers=0``, regardless of worker count or
completion order.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis import fssan
from repro.faults.plan import DeviceCrash, plan_by_device
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import TimingModel
from repro.sim.clock import SEC, VirtualClock
from repro.stats.traffic import LatencyRecorder
from repro.telemetry import sampler as telem

from repro.cluster.kernel import (
    DeviceFault,
    TenantRT,
    device_call_snapshot,
    gen_arrivals,
    run_device_drain,
    run_orphan_crash,
    sanity,
    setup_tenant,
)
from repro.cluster.result import TenantResult
from repro.cluster.sched import make_scheduler
from repro.cluster.shard import ShardedBackend
from repro.cluster.tenant import TenantSpec
from repro.devcache import DevCacheConfig


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker process needs, picklable for spawn."""

    worker_id: int
    fs_name: str
    n_devices: int
    n_tenants: int
    #: (global index, spec, device) for every tenant in the cluster;
    #: the worker sets up and serves only those on its owned devices
    tenants: Tuple[Tuple[int, TenantSpec, int], ...]
    owned_devices: Tuple[int, ...]
    sched: str
    seed: int
    queue_depth: int
    max_queue: int
    quantum_ns: Optional[float]
    geometry: Optional[FlashGeometry]
    timing: Optional[TimingModel]
    log_bytes: int
    device_cache_bytes: int
    page_cache_pages: int
    #: optional device-DRAM cache tier config (repro.devcache); frozen
    #: and picklable, so it crosses the spawn boundary verbatim
    devcache: Optional["DevCacheConfig"]
    #: the full fault plan — every worker builds an identical backend
    #: (injector wiring included) so device construction replays exactly
    faults: Tuple[DeviceCrash, ...]
    outage_policy: str
    sample_every_ns: Optional[float]
    keep_dispatch_log: bool
    unmount: bool
    #: the parent's trace.AUTO decision; the worker must not re-read the
    #: environment (the parent's flag may have been toggled in-process)
    auto_trace: bool


@dataclass
class ShardResult:
    """One worker's fragment of the cluster run, picklable."""

    worker_id: int
    #: (global index, result) for every tenant this worker served
    tenants: List[Tuple[int, TenantResult]] = field(default_factory=list)
    device_summaries: Dict[int, Dict] = field(default_factory=dict)
    #: recovery records of owned faulted devices (live wall_s included)
    recovery: Dict[int, Dict] = field(default_factory=dict)
    #: telemetry fragments of owned devices (None when sampling is off)
    telemetry_rows: Optional[List[Dict]] = None
    telemetry_outages: Optional[List[Dict]] = None
    #: per-device metrics registries (auto-trace runs only)
    metrics: Dict[int, object] = field(default_factory=dict)
    #: per-device dispatch-log fragments (None unless kept)
    dispatch_log: Optional[Dict[int, List[Dict]]] = None
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    layer_calls: Dict[str, int] = field(default_factory=dict)


def shard_worker_main(conn, task: ShardTask) -> None:
    """Child-process entry: run the shard protocol, ship the fragment."""
    try:
        result = _run_shard(conn, task)
        conn.send(("result", result))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _run_shard(conn, task: ShardTask) -> ShardResult:
    fault_for = plan_by_device(task.faults)
    clock = VirtualClock(task.n_tenants)
    backend = ShardedBackend(
        task.fs_name,
        task.n_devices,
        clock,
        geometry=task.geometry,
        timing=task.timing,
        log_bytes=task.log_bytes,
        device_cache_bytes=task.device_cache_bytes,
        page_cache_pages=task.page_cache_pages,
        devcache=task.devcache,
        queue_depth=task.queue_depth,
        fault_devices=fault_for,
    )
    owned = sorted(task.owned_devices)
    owned_set = set(owned)
    # ------------------ setup phase (global index order) ------------------ #
    runtime: Dict[int, TenantRT] = {}
    device_of: Dict[int, int] = {}
    for index, spec, dev in task.tenants:
        device_of[index] = dev
        if dev in owned_set:
            runtime[index] = setup_tenant(
                backend, clock, index, spec, dev, dev in fault_for,
                task.seed,
            )
    # Setup barrier: local maximum out, global epoch t0 back.
    conn.send(("setup", clock.elapsed_ns))
    t0 = conn.recv()
    clock.sync_to(t0)
    backend.reset_epoch()
    fault_rt: Dict[int, DeviceFault] = {}
    for dev in owned:
        fspec = fault_for.get(dev)
        if fspec is None:
            continue
        frt = DeviceFault(spec=fspec, injector=backend.injectors[dev])
        if fspec.at_s is not None:
            frt.t_crash = t0 + fspec.at_s * SEC
        fault_rt[dev] = frt
    for index in sorted(runtime):
        gen_arrivals(runtime[index], task.seed, t0)
    by_device: Dict[int, List[TenantRT]] = {dev: [] for dev in owned}
    for index in sorted(runtime):
        by_device[device_of[index]].append(runtime[index])
    scheds = {
        dev: make_scheduler(task.sched, by_device[dev], task.quantum_ns)
        for dev in owned
    }
    cluster_latency = LatencyRecorder()
    dispatch_log: Optional[Dict[int, List[Dict]]] = (
        {dev: [] for dev in owned} if task.keep_dispatch_log else None
    )
    sampler: Optional[telem.TelemetrySampler] = None
    if task.sample_every_ns is not None:
        sampler = telem.TelemetrySampler(t0, task.sample_every_ns)
        for dev in owned:
            sampler.add_device(
                dev,
                gauges=backend.devices[dev].gauges,
                queue=backend.queues[dev],
                tenants=by_device[dev],
                stats=backend.stats[dev],
                time_of=clock.time_of,
            )
    calls0 = {dev: device_call_snapshot(backend.devices[dev]) for dev in owned}
    metrics_by_device: Dict[int, object] = {}
    # ------------------------- measured phase ------------------------- #
    if sampler is not None:
        telem.activate(sampler)
    try:
        for dev in owned:
            if by_device[dev]:
                reg = run_device_drain(
                    clock, dev, by_device[dev], scheds[dev],
                    backend.queues[dev], backend.stats[dev],
                    task.max_queue, cluster_latency,
                    dispatch_log[dev] if dispatch_log is not None else None,
                    backend.devices[dev], backend.filesystems[dev],
                    fault_rt.get(dev), task.outage_policy, task.seed,
                    None, task.auto_trace,
                )
                if reg is not None:
                    metrics_by_device[dev] = reg
        # Owned faulted devices with no tenants power-cycle after the
        # populated shards drained (on thread 0, whose post-drain time
        # is exact here: orphan devices are owned by tenant 0's worker).
        for dev in owned:
            frt = fault_rt.get(dev)
            if frt is not None and not frt.done and not by_device[dev]:
                reg = run_orphan_crash(
                    clock, dev, backend.devices[dev],
                    backend.filesystems[dev], backend.queues[dev],
                    backend.stats[dev], frt, task.outage_policy,
                    None, task.auto_trace,
                )
                if reg is not None:
                    metrics_by_device[dev] = reg
    finally:
        if sampler is not None:
            telem.deactivate()
    # End barrier: local elapsed out, global run end t_end back.
    conn.send(("ran", clock.elapsed_ns))
    t_end = conn.recv()
    if sampler is not None:
        for dev in owned:
            sampler.advance(dev, t_end)
    # Final queue-accounting audit, sanitizer or not: a broken invariant
    # here means the result's counters are lies.
    for index in sorted(runtime):
        with fssan.sanitized():
            sanity(runtime[index])
    elapsed_s = (t_end - t0) / SEC
    layer_calls: Dict[str, int] = {}
    for dev in owned:
        snap = device_call_snapshot(backend.devices[dev])
        for key, v in snap.items():
            layer_calls[key] = layer_calls.get(key, 0) + (v - calls0[dev][key])
    result = ShardResult(
        worker_id=task.worker_id,
        tenants=[
            (index, _tenant_result(runtime[index], device_of[index]))
            for index in sorted(runtime)
        ],
        device_summaries={
            dev: backend.device_summary(dev, elapsed_s) for dev in owned
        },
        recovery={
            dev: frt.record
            for dev, frt in sorted(fault_rt.items())
            if frt.record is not None
        },
        telemetry_rows=list(sampler.rows) if sampler is not None else None,
        telemetry_outages=(
            sampler.outages if sampler is not None else None
        ),
        metrics=metrics_by_device,
        dispatch_log=dispatch_log,
        latency=cluster_latency,
        layer_calls=layer_calls,
    )
    if task.unmount:
        backend.unmount()
    return result


def _tenant_result(tn: TenantRT, device: int) -> TenantResult:
    return TenantResult(
        spec=tn.spec.to_json(),
        device=device,
        ops=tn.served,
        submitted=tn.submitted(),
        rejected=tn.rejected,
        dropped=tn.dropped,
        slo_violations=tn.slo_violations,
        latency=tn.latency,
        traffic=dict(tn.traffic),
        lost_to_crash=tn.lost_to_crash,
        outage_rejected=tn.outage_rejected,
        slo_violations_outage=tn.slo_violations_outage,
    )


# ---------------------------------------------------------------------- #
# parent-side orchestration
# ---------------------------------------------------------------------- #

def run_shard_workers(
    tasks: List[ShardTask],
) -> Tuple[float, float, float, List[ShardResult]]:
    """Run one process per task through the three-phase shard protocol.

    Returns ``(t0, t_end, wall_s, results)`` where ``wall_s`` measures
    only the parallel drain (t0 broadcast to the last "ran" ack) —
    process spawn, device construction and tenant setup are excluded,
    like the bench harness excludes setup from measured walls.
    """
    ctx = mp.get_context("spawn")
    procs: List = []
    conns: List = []
    try:
        for task in tasks:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=shard_worker_main,
                args=(child_conn, task),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            conns.append(parent_conn)
        t0 = max(
            _recv(conns[i], procs[i], "setup") for i in range(len(tasks))
        )
        for conn in conns:
            conn.send(t0)
        wall0 = time.perf_counter()
        t_end = max(
            _recv(conns[i], procs[i], "ran") for i in range(len(tasks))
        )
        wall_s = time.perf_counter() - wall0
        for conn in conns:
            conn.send(t_end)
        results = [
            _recv(conns[i], procs[i], "result") for i in range(len(tasks))
        ]
        for proc in procs:
            proc.join(timeout=30)
        return t0, t_end, wall_s, results
    finally:
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)


def _recv(conn, proc, expect: str):
    try:
        tag, payload = conn.recv()
    except EOFError:
        raise RuntimeError(
            f"shard worker pid={proc.pid} died before sending "
            f"{expect!r} (exit code {proc.exitcode})"
        ) from None
    if tag == "error":
        raise RuntimeError(f"shard worker failed:\n{payload}")
    if tag != expect:
        raise RuntimeError(
            f"shard protocol violation: expected {expect!r}, got {tag!r}"
        )
    return payload
