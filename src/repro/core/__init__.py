"""ByteFS — the paper's primary contribution.

:class:`ByteFS` is the host half of the software/hardware co-design: an
Ext4-derived file system (the paper modified Ext4, §4.9) that

* persists metadata with byte-granular MMIO stores (64 B inode halves,
  64 B bitmap groups, individual dentries, 16 B extent leaves);
* reads metadata and data with the block interface plus host caching;
* tracks buffered writes with CoW duplicate pages and picks the writeback
  interface by the modified ratio R (< 1/8 → byte interface);
* wraps multi-update operations in transactions carried by the firmware
  write log and committed with ``COMMIT(TxID)``.

Use :func:`build_stack` to construct a matched device + file system pair
for any of the evaluated systems ("bytefs", "bytefs-dual", "bytefs-log",
"ext4", "f2fs", "nova", "pmfs").
"""

from repro.core.bytefs import ByteFS, ByteFSVariant, build_stack

__all__ = ["ByteFS", "ByteFSVariant", "build_stack"]
