"""ByteFS construction and the §5.4 ablation variants."""

from __future__ import annotations

import enum
from dataclasses import replace
from typing import Optional, Tuple

from repro.devcache import DevCacheConfig
from repro.fs.extfs import ExtFS, ExtFSConfig
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import TimingModel
from repro.sim.clock import VirtualClock
from repro.ssd.device import MSSD, MSSDConfig
from repro.ssd.firmware.bytefs_fw import ByteFSFirmwareConfig
from repro.stats.traffic import TrafficStats


class ByteFSVariant(enum.Enum):
    """The three design points of Figure 12."""

    DUAL = "dual"   # dual interface for metadata only; page-granular device cache
    LOG = "log"     # DUAL + firmware log-structured memory and transactions
    FULL = "full"   # LOG + adaptive byte/block data path (the full design)


def bytefs_config(
    variant: ByteFSVariant = ByteFSVariant.FULL,
    base: Optional[ExtFSConfig] = None,
) -> ExtFSConfig:
    """The ExtFS feature flags for a ByteFS variant."""
    cfg = base or ExtFSConfig()
    cfg.metadata_byte = True
    cfg.fw_tx = variant in (ByteFSVariant.LOG, ByteFSVariant.FULL)
    cfg.data_byte_policy = variant is ByteFSVariant.FULL
    return cfg


class ByteFS(ExtFS):
    """The full ByteFS file system (host side of the co-design)."""

    name = "bytefs"

    def __init__(
        self,
        device: MSSD,
        variant: ByteFSVariant = ByteFSVariant.FULL,
        config: Optional[ExtFSConfig] = None,
        format_device: bool = True,
    ) -> None:
        self.variant = variant
        super().__init__(
            device, bytefs_config(variant, config), format_device
        )
        if variant is not ByteFSVariant.FULL:
            self.name = f"bytefs-{variant.value}"


#: Which firmware each evaluated file system runs on (§5.1: baselines run
#: on the M-SSD without firmware changes but with device data caching).
FIRMWARE_FOR = {
    "bytefs": "bytefs",
    "bytefs-log": "bytefs",
    "bytefs-dual": "baseline",
    "ext4": "baseline",
    "f2fs": "baseline",
    "nova": "baseline",
    "pmfs": "baseline",
}


def build_stack(
    fs_name: str,
    geometry: Optional[FlashGeometry] = None,
    timing: Optional[TimingModel] = None,
    n_threads: int = 1,
    mssd_config: Optional[MSSDConfig] = None,
    fs_config: Optional[ExtFSConfig] = None,
    log_bytes: Optional[int] = None,
    device_cache_bytes: Optional[int] = None,
    page_cache_pages: Optional[int] = None,
    devcache: Optional[DevCacheConfig] = None,
    faults=None,
    clock: Optional[VirtualClock] = None,
    stats: Optional[TrafficStats] = None,
    instance: str = "",
):
    """Build a (clock, stats, device, fs) tuple for one evaluated system.

    ``fs_name`` is one of: bytefs, bytefs-dual, bytefs-log, ext4, f2fs,
    nova, pmfs.

    ``clock``/``stats`` let multi-device stacks (repro.cluster) share one
    virtual clock across several devices while keeping per-device traffic
    accounting; ``instance`` prefixes the device's resource names so
    contention groups stay distinct in traces.
    """
    from repro.fs.f2fs import F2FS
    from repro.fs.nova import NovaFS
    from repro.fs.pmfs import PMFS

    if fs_name not in FIRMWARE_FOR:
        raise ValueError(f"unknown file system {fs_name!r}")
    clock = clock if clock is not None else VirtualClock(n_threads)
    stats = stats if stats is not None else TrafficStats()
    cfg = mssd_config or MSSDConfig()
    if geometry is not None:
        cfg.geometry = geometry
    if timing is not None:
        cfg.timing = timing
    if instance:
        cfg.instance = instance
    cfg.firmware = FIRMWARE_FOR[fs_name]
    if log_bytes is not None:
        cfg.bytefs_fw = replace(cfg.bytefs_fw, log_bytes=log_bytes)
    if device_cache_bytes is not None:
        cfg.baseline_fw = replace(
            cfg.baseline_fw, cache_bytes=device_cache_bytes
        )
    if devcache is not None:
        cfg.devcache = devcache
    device = MSSD(cfg, clock, stats, faults)
    if page_cache_pages is not None and fs_name in (
        "bytefs", "bytefs-log", "bytefs-dual", "ext4",
    ):
        fs_config = fs_config or ExtFSConfig()
        fs_config.page_cache_pages = page_cache_pages
    if fs_name == "bytefs":
        fs = ByteFS(device, ByteFSVariant.FULL, fs_config)
    elif fs_name == "bytefs-log":
        fs = ByteFS(device, ByteFSVariant.LOG, fs_config)
    elif fs_name == "bytefs-dual":
        fs = ByteFS(device, ByteFSVariant.DUAL, fs_config)
    elif fs_name == "ext4":
        fs = ExtFS(device, fs_config)
    elif fs_name == "f2fs":
        fs = F2FS(device, page_cache_pages=page_cache_pages or 2048)
    elif fs_name == "nova":
        fs = NovaFS(device)
    else:
        fs = PMFS(device)
    return clock, stats, device, fs
