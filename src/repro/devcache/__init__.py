"""`repro.devcache` — tiered device-DRAM page-frame cache for the
CXL.mem path, with pluggable eviction (LRU / CLOCK / hot-cold) and a
speculative stride prefetcher.  See docs/CACHING.md.

Host code (CLI, cluster, bench) imports only :class:`DevCacheConfig`;
the cache itself is device-internal (the layering lint fences off the
rest of this package from host modules).
"""

from repro.devcache.cache import DevCacheConfig, DeviceCache, LINE_BYTES
from repro.devcache.policy import (
    ClockPolicy,
    EvictionPolicy,
    EVICTION_POLICY_NAMES,
    HotColdPolicy,
    LRUPolicy,
    make_policy,
)
from repro.devcache.prefetch import StridePrefetcher

__all__ = [
    "DevCacheConfig",
    "DeviceCache",
    "LINE_BYTES",
    "EvictionPolicy",
    "EVICTION_POLICY_NAMES",
    "LRUPolicy",
    "ClockPolicy",
    "HotColdPolicy",
    "make_policy",
    "StridePrefetcher",
]
