"""Tiered device-DRAM page-frame cache on the CXL.mem path (ROADMAP
item 2; SNIPPETS Snippet 1's ``CxlSSD`` valid/dirty frames, Snippet 3's
three-tier hierarchy with prefetch-on-predicted-access).

:class:`DeviceCache` interposes between the firmware and the FTL: it
exposes the exact FTL surface the firmware variants consume
(``geometry``/``channels``/``read_page``/``read_pages``/``write_page``/
``trim``/``trim_many``/``drain_write_buffer``), so
:class:`~repro.ssd.device.MSSD` can slide it under either firmware
without the firmware knowing.  Reads hit device DRAM when the frame is
resident (one ``dram_access_ns`` instead of a flash read); writes are
absorbed as dirty frames and reach NAND only on eviction, watermark
write-back, or a drain barrier — repeated writes to the same page cost
one flash program instead of many (the write-amplification win the
bench cases measure).

Durability model: like the firmware write log and the FTL write buffer,
the cache lives in the SSD's battery-backed DRAM — frames survive
``power_fail()`` (the paper's §2.1 power-loss protection).  Dirty frames
therefore never lose acked data; the crash sites on eviction and
write-back (``devcache.evict`` / ``devcache.writeback`` /
``devcache.flush``) let the fault sweeps cut power *around* the NAND
programs and prove recovery is idempotent.

Determinism: no RNG, no wall clock; every dict iterates in insertion
order; eviction/prefetch decisions are pure functions of the op stream.
A run with the cache enabled is byte-identical across repeats and
worker counts, and with the cache disabled (``MSSDConfig.devcache is
None``) this module is never constructed, keeping golden fixtures
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.faults.injector import NULL_INJECTOR
from repro.ftl.ftl import FTL
from repro.nand.timing import TimingModel
from repro.sim.clock import VirtualClock
from repro.stats.traffic import StructKind, TrafficStats

from repro.devcache.policy import EvictionPolicy, make_policy
from repro.devcache.prefetch import StridePrefetcher

_OTHER = StructKind.OTHER

#: Valid/dirty bitmap granularity: one bit per 64 B cacheline, matching
#: the byte-interface transfer unit (Snippet 1 tracks the same pair of
#: flags per frame).
LINE_BYTES = 64


@dataclass(frozen=True)
class DevCacheConfig:
    """Device-DRAM cache tunables (CLI: ``--devcache/--evict/--prefetch``).

    Frozen and picklable: the config crosses the process boundary inside
    :class:`~repro.cluster.worker.ShardTask` for ``repro serve
    --workers N``.
    """

    cache_bytes: int = 1 << 20
    policy: str = "lru"
    prefetch: bool = False
    prefetch_degree: int = 2
    prefetch_min_confidence: int = 2
    prefetch_streams: int = 8
    prefetch_stream_shift: int = 8
    #: write-back starts above ``high`` dirty fraction, stops at ``low``
    dirty_high_watermark: float = 0.75
    dirty_low_watermark: float = 0.50
    #: hotcold policy: hot-queue share of frames / promotion reuse distance
    hot_fraction: float = 0.5
    hot_distance: int = 16


class _Frame:
    """One resident page frame with per-cacheline valid/dirty bitmaps."""

    __slots__ = ("data", "valid", "dirty", "prefetched")

    def __init__(
        self, data: bytes, valid: int, dirty: int, prefetched: bool
    ) -> None:
        self.data = bytearray(data)
        self.valid = valid
        self.dirty = dirty
        self.prefetched = prefetched


class DeviceCache:
    """Write-back page-frame cache wrapping the FTL read/write surface."""

    def __init__(
        self,
        ftl: FTL,
        config: DevCacheConfig,
        timing: TimingModel,
        clock: VirtualClock,
        stats: TrafficStats,
    ) -> None:
        self.ftl = ftl
        self.config = config
        self.timing = timing
        self.clock = clock
        self.stats = stats
        # Firmware-visible FTL surface (pass-through attributes).
        self.geometry = ftl.geometry
        self.channels = ftl.channels
        self.page_size = ftl.geometry.page_size
        self.capacity_frames = max(1, config.cache_bytes // self.page_size)
        self._lines_per_page = max(1, self.page_size // LINE_BYTES)
        self._full_mask = (1 << self._lines_per_page) - 1
        self._frames: Dict[int, _Frame] = {}
        self._dirty: Dict[int, None] = {}  # insertion-ordered dirty LPAs
        self._policy: EvictionPolicy = make_policy(
            config.policy,
            self.capacity_frames,
            config.hot_fraction,
            config.hot_distance,
        )
        self._prefetcher: Optional[StridePrefetcher] = (
            StridePrefetcher(
                degree=config.prefetch_degree,
                min_confidence=config.prefetch_min_confidence,
                max_streams=config.prefetch_streams,
                stream_shift=config.prefetch_stream_shift,
            )
            if config.prefetch
            else None
        )
        self._high_frames = config.dirty_high_watermark * self.capacity_frames
        self._low_frames = config.dirty_low_watermark * self.capacity_frames
        # Crash-site hooks; MSSD overwrites this with its own injector.
        self.faults = NULL_INJECTOR
        self.hits = 0
        self.misses = 0
        self.evictions_clean = 0
        self.evictions_dirty = 0
        self.writebacks = 0
        self.flushes = 0
        self.prefetch_issued = 0
        self.prefetch_hits = 0
        self.prefetch_wasted = 0

    # ------------------------------------------------------------------ #
    # small helpers
    # ------------------------------------------------------------------ #

    def _dram(self, n_accesses: int) -> None:
        """Charge the foreground for ``n_accesses`` device-DRAM hits."""
        self.clock.advance_to(
            self.clock.now + n_accesses * self.timing.dram_access_ns
        )

    def _hit(self, lpa: int, frame: _Frame) -> None:
        self.hits += 1
        if frame.prefetched:
            frame.prefetched = False
            self.prefetch_hits += 1
        self._policy.touch(lpa)

    def _install(
        self, lpa: int, data: bytes, dirty: bool, prefetched: bool
    ) -> None:
        self._evict_if_needed()
        self._frames[lpa] = _Frame(
            data,
            self._full_mask,
            self._full_mask if dirty else 0,
            prefetched,
        )
        self._policy.admit(lpa)
        if dirty:
            self._dirty[lpa] = None

    def _evict_if_needed(self) -> None:
        while len(self._frames) >= self.capacity_frames:
            self._evict_one()

    def _evict_one(self) -> None:
        lpa = self._policy.victim()
        frame = self._frames.pop(lpa)
        if frame.prefetched:
            self.prefetch_wasted += 1
        if frame.dirty:
            del self._dirty[lpa]
            self.faults.point("devcache.evict")
            self.evictions_dirty += 1
            # Evictions are one-page-at-a-time by design (like the
            # baseline firmware's page cache).
            self.ftl.write_page(  # repro: allow[PERF001]
                lpa, bytes(frame.data), _OTHER, background=True)
        else:
            self.evictions_clean += 1

    def _writeback_if_needed(self) -> None:
        """Clean dirty frames (oldest-dirtied first) past the watermark."""
        if len(self._dirty) <= self._high_frames:
            return
        while len(self._dirty) > self._low_frames:
            lpa = next(iter(self._dirty))
            del self._dirty[lpa]
            frame = self._frames[lpa]
            self.faults.point("devcache.writeback")
            self.writebacks += 1
            self.ftl.write_page(  # repro: allow[PERF001]
                lpa, bytes(frame.data), _OTHER, background=True)
            frame.dirty = 0

    def _maybe_prefetch(self, lpa: int, kind: StructKind) -> None:
        prefetcher = self._prefetcher
        if prefetcher is None:
            return
        predicted = prefetcher.observe(lpa)
        if not predicted:
            return
        wanted = [
            p
            for p in predicted
            if p >= 0 and p not in self._frames and self.ftl.is_mapped(p)
        ]
        if not wanted:
            return
        # Non-blocking: the flash reads occupy channels (later demand
        # reads queue behind them — mispredictions have a real cost) but
        # the demand op does not wait for them.
        datas = self.ftl.read_pages(wanted, kind, background=True)
        self.prefetch_issued += len(wanted)
        for p, data in zip(wanted, datas):
            self._install(p, data, dirty=False, prefetched=True)

    # ------------------------------------------------------------------ #
    # the FTL surface the firmware consumes
    # ------------------------------------------------------------------ #

    def read_page(
        self,
        lpa: int,
        kind: StructKind = _OTHER,
        background: bool = False,
    ) -> bytes:
        frame = self._frames.get(lpa)
        if frame is not None:
            self._hit(lpa, frame)
            if not background:
                self._dram(1)
            data = bytes(frame.data)
        else:
            self.misses += 1
            data = self.ftl.read_page(lpa, kind, background)
            self._install(lpa, data, dirty=False, prefetched=False)
        self._maybe_prefetch(lpa, kind)
        return data

    def read_pages(
        self,
        lpas: List[int],
        kind: StructKind = _OTHER,
        background: bool = False,
    ) -> List[bytes]:
        out: List[Optional[bytes]] = [None] * len(lpas)
        miss_at: List[int] = []
        miss_lpas: List[int] = []
        n_hits = 0
        for i, lpa in enumerate(lpas):
            frame = self._frames.get(lpa)
            if frame is not None:
                self._hit(lpa, frame)
                out[i] = bytes(frame.data)
                n_hits += 1
            else:
                self.misses += 1
                miss_at.append(i)
                miss_lpas.append(lpa)
        if miss_lpas:
            # Misses keep the FTL's channel striping; the caller waits
            # only for the slowest flash read, and the DRAM hits pipeline
            # behind it for free.
            datas = self.ftl.read_pages(miss_lpas, kind, background)
            for i, lpa, data in zip(miss_at, miss_lpas, datas):
                out[i] = data
                self._install(lpa, data, dirty=False, prefetched=False)
        elif n_hits and not background:
            self._dram(1)
        for lpa in lpas:
            self._maybe_prefetch(lpa, kind)
        return out  # type: ignore[return-value]

    def write_page(
        self,
        lpa: int,
        data: bytes,
        kind: StructKind = _OTHER,
        background: bool = True,
    ) -> None:
        frame = self._frames.get(lpa)
        if frame is not None:
            self._hit(lpa, frame)
            frame.data[:] = data
            if not frame.dirty:
                self._dirty[lpa] = None
            frame.valid = self._full_mask
            frame.dirty = self._full_mask
        else:
            self.misses += 1
            self._install(lpa, data, dirty=True, prefetched=False)
        if not background:
            self._dram(1)
        self._writeback_if_needed()

    def trim(self, lpa: int) -> None:
        self._discard(lpa)
        self.ftl.trim(lpa)

    def trim_many(self, lpa: int, n_pages: int) -> None:
        for p in range(lpa, lpa + n_pages):
            self._discard(p)
        self.ftl.trim_many(lpa, n_pages)

    def _discard(self, lpa: int) -> None:
        """Drop a frame without write-back (the page was trimmed dead)."""
        frame = self._frames.pop(lpa, None)
        if frame is None:
            return
        self._policy.forget(lpa)
        if frame.prefetched:
            self.prefetch_wasted += 1
        if frame.dirty:
            del self._dirty[lpa]

    def drain_write_buffer(self) -> None:
        """Barrier: flush every dirty frame, then drain the FTL buffer.

        Both firmwares call this from ``force_clean`` (unmount/sync) and
        ``recover`` — after it returns, NAND holds every acked byte.  A
        crash mid-flush leaves already-programmed pages both on flash and
        dirty-in-DRAM; re-flushing them on recovery is idempotent.
        """
        while self._dirty:
            lpa = next(iter(self._dirty))
            frame = self._frames[lpa]
            self.faults.point("devcache.flush")
            self.flushes += 1
            self.ftl.write_page(  # repro: allow[PERF001]
                lpa, bytes(frame.data), _OTHER, background=True)
            frame.dirty = 0
            del self._dirty[lpa]
        self.ftl.drain_write_buffer()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def gauges(self) -> Dict[str, float]:
        """Telemetry gauges merged into :meth:`MSSD.gauges` when the
        cache is enabled (so ``repro.telemetry.series/v1`` and the
        Prometheus exposition pick them up with no extra wiring)."""
        return {
            "devcache_frames": len(self._frames),
            "devcache_dirty_frames": len(self._dirty),
            "devcache_hits": self.hits,
            "devcache_misses": self.misses,
            "devcache_evictions_clean": self.evictions_clean,
            "devcache_evictions_dirty": self.evictions_dirty,
            "devcache_writebacks": self.writebacks,
            "devcache_flushes": self.flushes,
            "devcache_prefetch_issued": self.prefetch_issued,
            "devcache_prefetch_hits": self.prefetch_hits,
            "devcache_prefetch_wasted": self.prefetch_wasted,
        }

    def hit_rate(self) -> float:
        """Demand hit fraction (reads + writes); 0.0 before any access."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def check_invariants(self) -> None:
        """Structural invariants (exercised by tests and FSSan-style
        debugging): dirty ⊆ valid per frame, the dirty set matches the
        frames' dirty masks, and the policy tracks exactly the resident
        set."""
        for lpa, frame in self._frames.items():
            if frame.dirty & ~frame.valid:
                raise AssertionError(f"frame {lpa}: dirty lines not valid")
            if bool(frame.dirty) != (lpa in self._dirty):
                raise AssertionError(f"frame {lpa}: dirty-set mismatch")
        if len(self._policy) != len(self._frames):
            raise AssertionError("policy tracks a different resident set")
