"""Pluggable eviction policies for the device-DRAM page-frame cache.

Three policies behind one interface (ROADMAP item 2; SNIPPETS Snippet 1's
``EvictStrategy`` is the shape, Snippet 3's hot/cold classification the
third variant):

* ``lru``     — exact recency order;
* ``clock``   — one-bit second-chance approximation of LRU;
* ``hotcold`` — two-queue classifier: frames start *cold* and are
  promoted to the *hot* queue when re-referenced within a bounded reuse
  distance; victims come from the cold queue first, so scans (long reuse
  distance) cannot flush the hot set.

Every policy is a pure function of its call sequence — no randomness, no
wall clock — so cache behaviour is byte-deterministic for a given op
stream.  A policy tracks *which* resident LPA to evict next; frame
payloads stay in :class:`~repro.devcache.cache.DeviceCache`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

#: CLI-facing policy names (kept a tuple: the serve path imports this
#: module, and the concurrency lint rejects module-level mutable state).
EVICTION_POLICY_NAMES: Tuple[str, ...] = ("lru", "clock", "hotcold")


class EvictionPolicy:
    """Victim selection over the set of resident LPAs.

    The cache calls ``admit`` when a frame is installed, ``touch`` on
    every demand hit, ``forget`` when a frame leaves for any non-eviction
    reason (trim), and ``victim`` to select-and-remove the next frame to
    evict.  ``victim`` is only called while at least one LPA is resident.
    """

    name = "policy"

    def admit(self, lpa: int) -> None:
        raise NotImplementedError

    def touch(self, lpa: int) -> None:
        raise NotImplementedError

    def forget(self, lpa: int) -> None:
        raise NotImplementedError

    def victim(self) -> int:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Exact least-recently-used order."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[int, None]" = OrderedDict()

    def admit(self, lpa: int) -> None:
        self._order[lpa] = None

    def touch(self, lpa: int) -> None:
        self._order.move_to_end(lpa)

    def forget(self, lpa: int) -> None:
        self._order.pop(lpa, None)

    def victim(self) -> int:
        lpa, _ = self._order.popitem(last=False)
        return lpa

    def __len__(self) -> int:
        return len(self._order)


class ClockPolicy(EvictionPolicy):
    """Second-chance (CLOCK): one reference bit per frame.

    The ordered dict doubles as the clock's circular list: the hand sits
    at the head.  A referenced head frame loses its bit and rotates to
    the tail; the first unreferenced head frame is the victim.  Bounded:
    one full rotation clears every bit.
    """

    name = "clock"

    def __init__(self) -> None:
        self._ref: "OrderedDict[int, bool]" = OrderedDict()

    def admit(self, lpa: int) -> None:
        self._ref[lpa] = True

    def touch(self, lpa: int) -> None:
        self._ref[lpa] = True

    def forget(self, lpa: int) -> None:
        self._ref.pop(lpa, None)

    def victim(self) -> int:
        while True:
            lpa, referenced = self._ref.popitem(last=False)
            if referenced:
                self._ref[lpa] = False  # second chance: rotate to tail
                continue
            return lpa

    def __len__(self) -> int:
        return len(self._ref)


class HotColdPolicy(EvictionPolicy):
    """Two-queue hot/cold classifier keyed on reuse distance.

    Frames are admitted *cold*.  A touch whose logical reuse distance
    (accesses since the frame's last access) is at most ``hot_distance``
    promotes the frame to the *hot* queue; longer-distance touches only
    refresh its cold position.  The hot queue is capped at
    ``hot_fraction`` of ``capacity`` — promoting into a full hot queue
    demotes its LRU frame back to cold.  Victims come from the cold LRU
    end first, so a sequential scan evicts only other scan pages while
    the hot set stays resident.
    """

    name = "hotcold"

    def __init__(
        self,
        capacity: int,
        hot_fraction: float = 0.5,
        hot_distance: int = 16,
    ) -> None:
        self._cold: "OrderedDict[int, int]" = OrderedDict()  # lpa -> tick
        self._hot: "OrderedDict[int, int]" = OrderedDict()
        self._hot_max = max(1, int(capacity * hot_fraction))
        self._hot_distance = hot_distance
        self._tick = 0

    def admit(self, lpa: int) -> None:
        self._tick += 1
        self._cold[lpa] = self._tick

    def touch(self, lpa: int) -> None:
        self._tick += 1
        if lpa in self._hot:
            self._hot[lpa] = self._tick
            self._hot.move_to_end(lpa)
            return
        last = self._cold[lpa]
        if self._tick - last <= self._hot_distance:
            del self._cold[lpa]
            self._hot[lpa] = self._tick
            if len(self._hot) > self._hot_max:
                demoted, tick = self._hot.popitem(last=False)
                self._cold[demoted] = tick
                self._cold.move_to_end(demoted)
        else:
            self._cold[lpa] = self._tick
            self._cold.move_to_end(lpa)

    def forget(self, lpa: int) -> None:
        if self._cold.pop(lpa, None) is None:
            self._hot.pop(lpa, None)

    def victim(self) -> int:
        if self._cold:
            lpa, _ = self._cold.popitem(last=False)
            return lpa
        lpa, _ = self._hot.popitem(last=False)
        return lpa

    def is_hot(self, lpa: int) -> bool:
        """Introspection for tests: is the frame in the hot queue?"""
        return lpa in self._hot

    def __len__(self) -> int:
        return len(self._cold) + len(self._hot)


def make_policy(
    name: str,
    capacity: int,
    hot_fraction: float = 0.5,
    hot_distance: int = 16,
) -> EvictionPolicy:
    """Instantiate the eviction policy called ``name``."""
    if name == "lru":
        return LRUPolicy()
    if name == "clock":
        return ClockPolicy()
    if name == "hotcold":
        return HotColdPolicy(capacity, hot_fraction, hot_distance)
    raise ValueError(
        f"unknown eviction policy {name!r}; expected one of "
        f"{', '.join(EVICTION_POLICY_NAMES)}"
    )
