"""Speculative prefetcher for the device-DRAM cache (Snippet 3's
prefetch-on-predicted-access, scoped to this simulator).

A small table of *streams* watches the demand-read LPA sequence.  Each
stream covers one address region (``lpa >> stream_shift``); in the
multi-tenant cluster every tenant's namespace occupies its own LPA
range, so regions approximate per-tenant access streams without the
device knowing about tenants.  A stream tracks the last LPA and the last
inter-access stride; when the same non-zero stride repeats
``min_confidence`` times (sequential scans are stride 1, strided scans
stride k), the stream predicts the next ``degree`` LPAs on that stride.

The table is LRU-bounded to ``max_streams`` entries and entirely
deterministic: predictions are a pure function of the observed LPA
sequence.  Accuracy accounting (issued / hit / wasted) lives in
:class:`~repro.devcache.cache.DeviceCache`, which marks prefetched
frames and watches whether a demand access arrives before eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List


class _Stream:
    """Per-region stride detector state."""

    __slots__ = ("last_lpa", "stride", "confidence")

    def __init__(self, lpa: int) -> None:
        self.last_lpa = lpa
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    """Sequential/strided stream detection over demand reads."""

    def __init__(
        self,
        degree: int = 2,
        min_confidence: int = 2,
        max_streams: int = 8,
        stream_shift: int = 8,
    ) -> None:
        self.degree = degree
        self.min_confidence = min_confidence
        self.max_streams = max_streams
        self.stream_shift = stream_shift
        self._streams: "OrderedDict[int, _Stream]" = OrderedDict()

    def observe(self, lpa: int) -> List[int]:
        """Feed one demand read; return the predicted LPAs (maybe [])."""
        region = lpa >> self.stream_shift
        stream = self._streams.get(region)
        if stream is None:
            if len(self._streams) >= self.max_streams:
                self._streams.popitem(last=False)
            self._streams[region] = _Stream(lpa)
            return []
        self._streams.move_to_end(region)
        delta = lpa - stream.last_lpa
        stream.last_lpa = lpa
        if delta == 0:
            # Same page re-read: no direction signal, keep the stride.
            return []
        if delta == stream.stride:
            stream.confidence += 1
        else:
            stream.stride = delta
            stream.confidence = 1
        if stream.confidence < self.min_confidence:
            return []
        return [lpa + stream.stride * i for i in range(1, self.degree + 1)]
