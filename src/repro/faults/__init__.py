"""Crash-point fault injection and oracle-checked crash consistency.

The subsystem has three layers:

* :mod:`repro.faults.injector` — numbered crash sites hooked into every
  device-visible mutation (MMIO stores, NVMe block writes, ``COMMIT``,
  firmware log appends and log-clean steps), with torn-write injection;
* :mod:`repro.faults.oracle` — a trivially-correct in-memory oracle file
  system that tracks the durable prefix (fsync barriers) and decides
  whether a recovered file system is admissible;
* :mod:`repro.faults.sweep` — the driver: enumerate every crash point a
  workload reaches, then re-run the workload crashing at each point,
  remount, and check the recovery against the oracle;
* :mod:`repro.faults.plan` — cluster-level fault plans
  (:class:`DeviceCrash`): crash a whole device mid-serve at a virtual
  time or op count, executed by :func:`repro.cluster.serve.serve_cluster`
  (``repro serve --fault``).

See ``docs/FAULTS.md`` for the numbering scheme, the oracle semantics,
and how to reproduce a single failing crash point.
"""

from repro.faults.injector import (
    NULL_INJECTOR,
    CrashPoint,
    FaultInjector,
    FaultPlan,
    FiredCrash,
)
from repro.faults.oracle import OracleFS
from repro.faults.plan import DeviceCrash, check_fault_plan, parse_fault
from repro.faults.sweep import (
    CrashResult,
    SweepConfig,
    SweepReport,
    enumerate_sites,
    run_crash,
    run_sweep,
    standard_workload,
)

__all__ = [
    "CrashPoint",
    "CrashResult",
    "DeviceCrash",
    "FaultInjector",
    "FaultPlan",
    "FiredCrash",
    "NULL_INJECTOR",
    "OracleFS",
    "SweepConfig",
    "SweepReport",
    "check_fault_plan",
    "enumerate_sites",
    "parse_fault",
    "run_crash",
    "run_sweep",
    "standard_workload",
]
