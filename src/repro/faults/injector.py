"""Crash-site numbering and power-loss injection.

Every device-visible mutation in the stack is guarded by a *crash site*:
a call to :meth:`FaultInjector.site` (mutation with a payload) or
:meth:`FaultInjector.point` (state step with no payload).  Sites are
numbered in execution order, so a deterministic workload reaches the
same sites with the same indices on every run.  A driver can therefore

1. *enumerate* — run the workload once in counting mode and record every
   site reached, then
2. *replay* — re-run the workload with a :class:`FaultPlan` that fires a
   simulated power loss at one chosen site, optionally persisting only a
   torn prefix of the in-flight payload (partial 64 B log entry, partial
   flash page / DMA sector).

When a plan fires, :class:`CrashPoint` is raised.  It derives from
``BaseException`` so file-system code cannot accidentally swallow it,
and the injector goes *dead*: any further mutations reached while the
stack unwinds (e.g. a ``finally:`` block trying to commit a transaction)
are discarded, exactly as if the device had lost power.  The driver
catches the exception, calls :meth:`FaultInjector.disarm`, and only then
runs the crash/remount protocol — recovery-time writes apply normally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.sim.rng import make_rng


class CrashPoint(BaseException):
    """Simulated power loss at a numbered crash site.

    Derives from ``BaseException`` so that broad ``except Exception``
    handlers inside the file systems cannot swallow an injected crash.
    """

    def __init__(self, site: int, label: str, torn_bytes: int) -> None:
        super().__init__(
            f"power loss at crash site {site} ({label}"
            + (f", torn after {torn_bytes} B)" if torn_bytes else ")")
        )
        self.site = site
        self.label = label
        self.torn_bytes = torn_bytes


@dataclass(frozen=True)
class FaultPlan:
    """Crash at site ``crash_site``; if ``torn``, persist a partial
    prefix of the payload (cut deterministically from ``seed``)."""

    crash_site: int
    torn: bool = False
    seed: int = 0


@dataclass(frozen=True)
class FiredCrash:
    """Record of the crash a plan actually injected."""

    site: int
    label: str
    torn_bytes: int
    nbytes: int


@dataclass(frozen=True)
class SiteRecord:
    """One crash site observed during an enumeration run."""

    index: int
    label: str
    nbytes: int
    atom: int

    @property
    def tearable(self) -> bool:
        """Whether a torn-prefix variant exists at this site."""
        return self.atom > 0 and self.nbytes > self.atom


class FaultInjector:
    """Numbered crash sites with optional torn-write power loss.

    States:

    * **off** (default) — ``site()`` applies the mutation and returns;
      zero bookkeeping.  Every normal run uses this state.
    * **counting** — sites are numbered and recorded; nothing fires.
    * **armed** — sites are numbered; the planned site fires a crash.
    * **dead** — after firing: mutations are discarded (power is off).

    The *tearing* flag covers nested sites: applying a torn prefix may
    itself reach inner crash sites (e.g. a torn MMIO store still goes
    through the firmware log append).  Those inner mutations are part of
    the prefix and must apply fully, without being numbered or fired.
    """

    def __init__(self, stats=None) -> None:
        self.stats = stats
        self.plan: Optional[FaultPlan] = None
        self.active = False
        self.n_sites = 0
        self.trace: List[SiteRecord] = []
        self.record_trace = False
        self.fired: Optional[FiredCrash] = None
        self._dead = False
        self._tearing = False

    # ------------------------------------------------------------------ #
    # driver API
    # ------------------------------------------------------------------ #

    def start_count(self, record_trace: bool = True) -> None:
        """Enter counting mode: number and record sites, never fire."""
        self._reset()
        self.active = True
        self.record_trace = record_trace

    def arm(self, plan: FaultPlan) -> None:
        """Enter armed mode: crash when ``plan.crash_site`` is reached."""
        self._reset()
        self.active = True
        self.plan = plan

    def arm_next(self, torn: bool = False, seed: int = 0) -> None:
        """Arm mid-run: the *next* site reached fires a power loss.

        Unlike :meth:`arm` this does not reset the site counter, so it
        composes with a stack that has been serving with the injector
        off (the serving layer's crash-under-load path): whatever
        device-visible mutation happens next is the one in flight when
        power drops.  If no mutation is ever reached the injector simply
        stays armed; the driver decides what a between-ops power-off
        means (``fired`` stays ``None``).
        """
        self.plan = FaultPlan(self.n_sites, torn=torn, seed=seed)
        self.active = True
        self.fired = None
        self._dead = False
        self._tearing = False

    def disarm(self) -> None:
        """Stop injecting and counting; mutations apply normally again.

        Called by the driver after catching :class:`CrashPoint`, before
        running the crash/remount protocol, so that recovery-time device
        writes are not discarded.  ``fired`` and the counters survive
        for inspection.
        """
        self.active = False
        self.plan = None
        self._dead = False
        self._tearing = False

    def _reset(self) -> None:
        self.plan = None
        self.n_sites = 0
        self.trace = []
        self.record_trace = False
        self.fired = None
        self._dead = False
        self._tearing = False

    # ------------------------------------------------------------------ #
    # instrumentation API (called from the device stack)
    # ------------------------------------------------------------------ #

    def site(
        self,
        label: str,
        apply: Optional[Callable[[int], None]] = None,
        nbytes: int = 0,
        atom: int = 0,
    ) -> None:
        """One device-visible mutation of ``nbytes`` payload bytes.

        ``apply(k)`` persists the first ``k`` bytes of the payload;
        ``apply(nbytes)`` is the full mutation.  ``atom`` is the
        power-loss atomicity granule of the transport (64 B cachelines
        for MMIO stores, 512 B sectors for DMA, 8 B words for firmware
        log entries); torn prefixes are cut at multiples of it.  With
        ``atom == 0`` (or ``nbytes <= atom``) the mutation is
        all-or-nothing.
        """
        if self._dead:
            return  # power is off: the mutation is lost
        if self._tearing or not self.active:
            if apply is not None:
                apply(nbytes)
            return
        idx = self.n_sites
        self.n_sites += 1
        if self.record_trace:
            self.trace.append(SiteRecord(idx, label, nbytes, atom))
        if self.stats is not None:
            self.stats.bump_fault("fault_sites_reached")
        plan = self.plan
        if plan is not None and idx == plan.crash_site:
            torn_bytes = 0
            if plan.torn and apply is not None and atom > 0 and nbytes > atom:
                rng = make_rng(plan.seed, f"torn:{idx}:{label}")
                ncuts = (nbytes + atom - 1) // atom  # ceil
                torn_bytes = atom * rng.randrange(1, ncuts)
            self.fired = FiredCrash(idx, label, torn_bytes, nbytes)
            if self.stats is not None:
                self.stats.bump_fault("fault_crashes_injected")
                if torn_bytes:
                    self.stats.bump_fault("fault_torn_injected")
            if torn_bytes and apply is not None:
                self._tearing = True
                try:
                    apply(torn_bytes)
                finally:
                    self._tearing = False
            self._dead = True
            raise CrashPoint(idx, label, torn_bytes)
        if apply is not None:
            apply(nbytes)

    def point(self, label: str) -> None:
        """A crash site between steps, with no in-flight payload."""
        self.site(label)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def label_histogram(self) -> dict:
        """Site count per label (requires a recorded trace)."""
        out: dict = {}
        for rec in self.trace:
            out[rec.label] = out.get(rec.label, 0) + 1
        return out


class _NullInjector(FaultInjector):
    """Shared always-off injector: the default for every stack.

    It is a process-wide singleton, so arming it would leak injection
    into unrelated stacks — hence the guards.
    """

    def start_count(self, record_trace: bool = True) -> None:
        raise RuntimeError(
            "cannot arm the shared null injector; build the stack with "
            "an explicit FaultInjector instead"
        )

    arm = start_count  # type: ignore[assignment]

    def site(self, label, apply=None, nbytes=0, atom=0):  # type: ignore[override]
        if apply is not None:
            apply(nbytes)

    def point(self, label):  # type: ignore[override]
        pass


#: Always-off injector shared by stacks built without fault injection.
NULL_INJECTOR = _NullInjector()
