"""A trivially-correct in-memory oracle for crash-consistency checks.

The oracle mirrors the workload at the syscall level and tracks, per
path, two images:

* the **durable** image — the state guaranteed to survive a crash,
  promoted at completed durability barriers (``fsync``/``fdatasync``
  promote one file plus its ancestor directories; ``sync`` promotes
  everything);
* the **pending** op list — every data mutation since the file's last
  durable point.  Pending state *may* survive a crash (journal timers,
  writeback, DAX file systems persist eagerly) but is never required to.

After a crash + remount, :meth:`OracleFS.check` decides admissibility:

* every durably-existing file must exist, with its durable bytes intact
  wherever no pending write overlaps them;
* a file may only exist if it existed durably or was pending-created;
* recovered sizes must be reachable by applying some subsequence of the
  pending size-changing ops to the durable size;
* every recovered byte must come from the durable image (zero beyond
  it) or from a pending write covering that offset — garbage fails;
* pending writes are atomic at 64 B *fragment* granularity: within each
  64 B-aligned fragment of a pending write (excluding bytes overwritten
  by later pending writes), the bytes are either all from that write or
  none of them — a half-applied fragment is a torn write.  Workloads
  that keep unsynced writes inside one 64 B cacheline therefore get
  whole-op atomicity: unsynced data is absent or fully present, never
  torn.
* a pending rename must not lose both names, nor duplicate the file
  under both when the destination never existed.

The same class doubles as the reference model for differential testing:
:attr:`files`/:attr:`dirs` expose the current (volatile) visible state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: atomicity granule for pending-write fragments (one cacheline)
FRAGMENT = 64


@dataclass
class _Write:
    offset: int
    data: bytes


@dataclass
class _Trunc:
    size: int


@dataclass
class _SetImage:
    """Full-image pending op (rename destination)."""

    data: bytes


@dataclass
class _FileRec:
    #: durable image; None = not durably existing
    durable: Optional[bytes] = None
    #: current visible image; None = currently unlinked
    volatile: Optional[bytes] = None
    #: data ops since the durable snapshot (may or may not persist)
    pending: List[object] = field(default_factory=list)
    pending_create: bool = False
    pending_unlink: bool = False
    #: multiple incarnations between barriers: content checks skipped
    ambiguous: bool = False


@dataclass
class _DirRec:
    durable: bool = False
    volatile: bool = False
    pending_create: bool = False
    pending_unlink: bool = False


@dataclass
class _RenamePair:
    src: str
    dst: str
    image: bytes
    dst_existed: bool


class OracleFS:
    """In-memory reference file system with durable-prefix tracking."""

    def __init__(self) -> None:
        self._files: Dict[str, _FileRec] = {}
        self._dirs: Dict[str, _DirRec] = {
            "/": _DirRec(durable=True, volatile=True)
        }
        self._renames: List[_RenamePair] = []

    # ------------------------------------------------------------------ #
    # visible (volatile) state — the differential-test reference model
    # ------------------------------------------------------------------ #

    @property
    def files(self) -> Dict[str, bytes]:
        return {
            p: r.volatile
            for p, r in self._files.items()
            if r.volatile is not None
        }

    @property
    def dirs(self) -> Set[str]:
        return {p for p, r in self._dirs.items() if r.volatile}

    def content(self, path: str) -> Optional[bytes]:
        rec = self._files.get(path)
        return rec.volatile if rec is not None else None

    # ------------------------------------------------------------------ #
    # op observation
    # ------------------------------------------------------------------ #

    def observe(self, op: Tuple, completed: bool = True) -> None:
        """Record one workload op.

        ``completed=False`` marks the op in flight when the crash fired:
        its effects are *possible* (recorded as pending) but its
        completion guarantees (fsync durability, visible state) are not.
        """
        kind = op[0]
        handler = getattr(self, f"_op_{kind}")
        handler(op, completed)

    def _rec(self, path: str) -> _FileRec:
        return self._files.setdefault(path, _FileRec())

    def _op_create(self, op: Tuple, completed: bool) -> None:
        _, path = op
        rec = self._rec(path)
        if rec.volatile is not None:
            return  # open(O_CREAT) on an existing file: no-op
        if rec.pending_unlink or rec.pending:
            # delete-then-recreate (or rename churn) between barriers:
            # more than one incarnation could surface after the crash.
            rec.ambiguous = True
        if completed:
            rec.volatile = b""
        if rec.durable is None:
            rec.pending_create = True
        rec.pending = []

    def _op_mkdir(self, op: Tuple, completed: bool) -> None:
        _, path = op
        rec = self._dirs.setdefault(path, _DirRec())
        if completed:
            rec.volatile = True
        if not rec.durable:
            rec.pending_create = True

    def _op_write(self, op: Tuple, completed: bool) -> None:
        _, path, offset, data = op
        rec = self._rec(path)
        rec.pending.append(_Write(offset, bytes(data)))
        if completed and rec.volatile is not None:
            cur = rec.volatile
            if len(cur) < offset:
                cur = cur + bytes(offset - len(cur))
            rec.volatile = cur[:offset] + data + cur[offset + len(data):]

    def _op_trunc(self, op: Tuple, completed: bool) -> None:
        _, path, size = op
        rec = self._rec(path)
        rec.pending.append(_Trunc(size))
        if completed and rec.volatile is not None:
            cur = rec.volatile
            rec.volatile = (
                cur[:size] if size <= len(cur) else cur + bytes(size - len(cur))
            )

    def _op_unlink(self, op: Tuple, completed: bool) -> None:
        _, path = op
        rec = self._rec(path)
        if completed:
            rec.volatile = None
        if rec.durable is not None:
            rec.pending_unlink = True

    def _op_rename(self, op: Tuple, completed: bool) -> None:
        _, src, dst = op
        src_rec = self._rec(src)
        dst_rec = self._rec(dst)
        image = src_rec.volatile if src_rec.volatile is not None else b""
        if src_rec.pending or src_rec.ambiguous:
            # Renaming a file with unsynced data: its image is not a
            # single value, so the destination's content is ambiguous.
            dst_rec.ambiguous = True
        self._renames.append(
            _RenamePair(
                src,
                dst,
                image,
                dst_existed=dst_rec.durable is not None,
            )
        )
        if dst_rec.volatile is not None or dst_rec.pending:
            dst_rec.ambiguous = True
        if dst_rec.durable is None:
            dst_rec.pending_create = True
        dst_rec.pending = [_SetImage(image)]
        if src_rec.durable is not None:
            src_rec.pending_unlink = True
        if completed:
            dst_rec.volatile = image
            src_rec.volatile = None
        src_rec.pending = []
        src_rec.pending_create = False

    def _op_fsync(self, op: Tuple, completed: bool) -> None:
        _, path = op
        if not completed:
            return  # durability not guaranteed: everything stays pending
        rec = self._rec(path)
        if rec.volatile is None:
            raise ValueError(f"fsync of unlinked path {path!r}")
        rec.durable = rec.volatile
        rec.pending = []
        rec.pending_create = False
        rec.pending_unlink = False
        rec.ambiguous = False
        self._promote_ancestors(path)
        self._renames = [r for r in self._renames if path not in (r.src, r.dst)]

    _op_fdatasync = _op_fsync

    def _op_sync(self, op: Tuple, completed: bool) -> None:
        if not completed:
            return
        for rec in self._files.values():
            rec.durable = rec.volatile
            rec.pending = []
            rec.pending_create = False
            rec.pending_unlink = False
            rec.ambiguous = False
        for rec in self._dirs.values():
            rec.durable = rec.volatile
            rec.pending_create = False
            rec.pending_unlink = False
        self._renames = []

    def _promote_ancestors(self, path: str) -> None:
        parts = [p for p in path.split("/") if p]
        cur = ""
        for name in parts[:-1]:
            cur = f"{cur}/{name}"
            rec = self._dirs.setdefault(cur, _DirRec(volatile=True))
            rec.durable = True
            rec.pending_create = False

    # ------------------------------------------------------------------ #
    # post-recovery admissibility check
    # ------------------------------------------------------------------ #

    def check(self, fs) -> List[str]:
        """Check a recovered file system; return a list of violations."""
        errors: List[str] = []
        try:
            self._check_dirs(fs, errors)
            self._check_files(fs, errors)
            self._check_renames(fs, errors)
            self._check_unknown(fs, errors)
        except Exception as exc:  # recovered FS must at least be readable
            errors.append(f"recovered fs raised while checking: {exc!r}")
        return errors

    def _check_dirs(self, fs, errors: List[str]) -> None:
        for path, rec in self._dirs.items():
            if path == "/":
                continue
            exists = fs.exists(path)
            must = rec.durable and not rec.pending_unlink
            may = rec.durable or rec.pending_create
            if must and not exists:
                errors.append(f"durable directory {path} lost")
            elif exists and not may:
                errors.append(f"directory {path} resurrected")

    def _check_files(self, fs, errors: List[str]) -> None:
        from repro.fs.vfs import O_RDONLY

        for path, rec in self._files.items():
            exists = fs.exists(path)
            must = rec.durable is not None and not rec.pending_unlink
            may = rec.durable is not None or rec.pending_create
            if must and not exists:
                errors.append(f"durable file {path} lost")
                continue
            if exists and not may:
                errors.append(f"file {path} resurrected")
                continue
            if not exists:
                continue
            size = fs.stat(path).size
            fd = fs.open(path, O_RDONLY)
            content = fs.pread(fd, 0, size + 1)
            fs.close(fd)
            if len(content) != size:
                errors.append(
                    f"{path}: stat size {size} != readable bytes "
                    f"{len(content)}"
                )
            if rec.ambiguous:
                continue  # incarnation churn: existence checks only
            self._check_content(path, rec, content, errors)

    # ---- content admissibility ---------------------------------------- #

    def _check_content(
        self, path: str, rec: _FileRec, content: bytes, errors: List[str]
    ) -> None:
        durable = rec.durable if rec.durable is not None else b""
        sizes = self._achievable_sizes(len(durable), rec.pending)
        if len(content) not in sizes:
            errors.append(
                f"{path}: recovered size {len(content)} not reachable "
                f"from durable size {len(durable)} via pending ops "
                f"(admissible: {sorted(sizes)})"
            )
        writes = self._pending_writes(rec.pending)
        n = len(content)
        base = durable[:n] + bytes(max(0, n - len(durable)))
        # A pending shrink zeroes the file's tail in the page cache, and
        # the zeroed page can reach the device before the size update
        # commits — zeros past the smallest pending truncate size are
        # therefore admissible whatever the recovered size says.
        trunc_floor = min(
            (op.size for op in rec.pending if isinstance(op, _Trunc)),
            default=None,
        )
        # 1. every byte must have a source: durable image or a pending
        #    write covering it ("fsynced data intact" is the special case
        #    of offsets no pending write touches).
        unexplained = [i for i in range(n) if content[i] != base[i]]
        if unexplained:
            pend = set()
            for w in writes:
                lo, hi = w.offset, min(w.offset + len(w.data), n)
                for i in range(max(lo, 0), hi):
                    if content[i] == w.data[i - w.offset]:
                        pend.add(i)
            if trunc_floor is not None:
                for i in unexplained:
                    if i >= trunc_floor and content[i] == 0:
                        pend.add(i)
            bad = [i for i in unexplained if i not in pend]
            if bad:
                errors.append(
                    f"{path}: byte(s) at {bad[:8]} match neither the "
                    f"durable image nor any pending write"
                )
        # 2. fragment atomicity of each pending write.
        for wi, w in enumerate(writes):
            later = writes[wi + 1:]
            torn = self._torn_fragments(w, later, base, content, trunc_floor)
            if torn:
                errors.append(
                    f"{path}: pending write @{w.offset}+{len(w.data)} "
                    f"torn inside 64 B fragment(s) {torn[:4]}"
                )

    @staticmethod
    def _pending_writes(pending: List[object]) -> List[_Write]:
        out: List[_Write] = []
        for op in pending:
            if isinstance(op, _Write):
                out.append(op)
            elif isinstance(op, _SetImage):
                out.append(_Write(0, op.data))
        return out

    @staticmethod
    def _achievable_sizes(base: int, pending: List[object]) -> Set[int]:
        """Sizes reachable by applying any subsequence of pending ops."""
        frontier = {base}
        for op in pending:
            nxt = set(frontier)
            for s in sorted(frontier):
                if isinstance(op, _Write):
                    nxt.add(max(s, op.offset + len(op.data)))
                elif isinstance(op, _Trunc):
                    nxt.add(op.size)
                elif isinstance(op, _SetImage):
                    nxt.add(len(op.data))
            frontier = nxt
        return frontier

    @staticmethod
    def _torn_fragments(
        w: _Write,
        later: List[_Write],
        base: bytes,
        content: bytes,
        trunc_floor: Optional[int] = None,
    ) -> List[int]:
        """64 B-aligned fragments of ``w`` that are half-applied.

        A fragment is torn when at least one byte is unambiguously from
        ``w`` (matches the write, differs from the durable base) and at
        least one byte is unambiguously not (differs from the write).
        Bytes overwritten by later pending writes — or zeroed past a
        pending truncate size — are excluded.
        """
        n = len(content)
        lo, hi = w.offset, min(w.offset + len(w.data), n)
        if lo >= hi:
            return []
        shadow = bytearray(hi - lo)
        for lw in later:
            s = max(lo, lw.offset)
            e = min(hi, lw.offset + len(lw.data))
            for i in range(s, e):
                shadow[i - lo] = 1
        if trunc_floor is not None:
            for i in range(max(lo, trunc_floor), hi):
                if content[i] == 0:
                    shadow[i - lo] = 1
        torn: List[int] = []
        frag = (lo // FRAGMENT) * FRAGMENT
        while frag < hi:
            s, e = max(frag, lo), min(frag + FRAGMENT, hi)
            surely_w = False
            surely_not = False
            for i in range(s, e):
                if shadow[i - lo]:
                    continue
                is_w = content[i] == w.data[i - w.offset]
                if is_w and content[i] != base[i]:
                    surely_w = True
                elif not is_w:
                    surely_not = True
            if surely_w and surely_not:
                torn.append(frag)
            frag += FRAGMENT
        return torn

    # ---- namespace cross-checks --------------------------------------- #

    def _check_renames(self, fs, errors: List[str]) -> None:
        for pair in self._renames:
            src_there = fs.exists(pair.src)
            dst_there = fs.exists(pair.dst)
            src_rec = self._files.get(pair.src)
            if (
                not src_there
                and not dst_there
                and src_rec is not None
                and src_rec.durable is not None
            ):
                errors.append(
                    f"rename {pair.src} -> {pair.dst}: both names lost"
                )
            if src_there and dst_there and not pair.dst_existed:
                errors.append(
                    f"rename {pair.src} -> {pair.dst}: file duplicated "
                    f"under both names"
                )

    def _check_unknown(self, fs, errors: List[str]) -> None:
        """No paths the workload never created may appear."""
        known_files = set(self._files)
        known_dirs = set(self._dirs)
        stack = ["/"]
        while stack:
            d = stack.pop()
            for name in fs.listdir(d):
                child = f"{d.rstrip('/')}/{name}"
                if fs.stat(child).is_dir:
                    if child not in known_dirs:
                        errors.append(f"unknown directory {child} appeared")
                    else:
                        stack.append(child)
                elif child not in known_files:
                    errors.append(f"unknown file {child} appeared")
