"""Cluster-level fault plans: crash a device mid-serve, then recover.

While :class:`~repro.faults.injector.FaultPlan` targets one numbered
crash *site* inside a quiescent replay (the sweep driver), a
:class:`DeviceCrash` targets one *device* of a live serving run
(:func:`repro.cluster.serve.serve_cluster`): power the shard off at a
virtual time or after a number of dispatched requests, optionally with a
torn in-flight write, then run the file system's crash-recovery path and
keep serving.  The serving loop owns the mechanics (arming the shard's
injector, the power-cycle protocol, oracle verification); this module
only describes *what* should fail, so it stays importable from anywhere
without dragging in the cluster.

The CLI syntax (``repro serve --fault ...``) is::

    crash:dev<k>@t=<seconds>[+torn]      # virtual time since epoch start
    crash:dev<k>@ops=<n>[+torn]          # after n dispatched requests

``+torn`` asks for a torn-write power loss: the in-flight mutation
persists only a prefix cut at the transport's atomicity granule (see
:meth:`FaultInjector.site`).  A crash whose trigger the run never
reaches fires at drain instead, so a planned fault always executes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

_SPEC_RE = re.compile(
    r"^crash:dev(?P<dev>\d+)@(?P<kind>t|ops)=(?P<val>[0-9.]+)"
    r"(?P<torn>\+torn)?$"
)


@dataclass(frozen=True)
class DeviceCrash:
    """Crash one device mid-serve: at ``at_s`` virtual seconds after the
    measurement epoch starts, or after ``after_ops`` dispatched requests
    (exactly one of the two must be set)."""

    device: int
    at_s: Optional[float] = None
    after_ops: Optional[int] = None
    torn: bool = False

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ValueError("device index must be >= 0")
        if (self.at_s is None) == (self.after_ops is None):
            raise ValueError(
                "exactly one of at_s / after_ops must be set"
            )
        if self.at_s is not None and self.at_s < 0:
            raise ValueError("at_s must be >= 0")
        if self.after_ops is not None and self.after_ops < 0:
            raise ValueError("after_ops must be >= 0")

    def describe(self) -> str:
        """The CLI spec string this crash round-trips to."""
        trig = (
            f"t={self.at_s:g}" if self.at_s is not None
            else f"ops={self.after_ops}"
        )
        return f"crash:dev{self.device}@{trig}" + ("+torn" if self.torn else "")

    def to_json(self) -> Dict:
        return {
            "device": self.device,
            "at_s": self.at_s,
            "after_ops": self.after_ops,
            "torn": self.torn,
        }


def parse_fault(spec: str) -> DeviceCrash:
    """Parse one ``--fault`` spec (see module docstring for the syntax)."""
    m = _SPEC_RE.match(spec.strip())
    if m is None:
        raise ValueError(
            f"bad fault spec {spec!r}; expected "
            "'crash:dev<k>@t=<seconds>[+torn]' or "
            "'crash:dev<k>@ops=<n>[+torn]'"
        )
    device = int(m.group("dev"))
    torn = m.group("torn") is not None
    if m.group("kind") == "t":
        return DeviceCrash(device, at_s=float(m.group("val")), torn=torn)
    try:
        n = int(m.group("val"))
    except ValueError:
        raise ValueError(
            f"bad fault spec {spec!r}: ops trigger must be an integer"
        ) from None
    return DeviceCrash(device, after_ops=n, torn=torn)


def check_fault_plan(
    faults: Sequence[DeviceCrash], n_devices: int
) -> List[DeviceCrash]:
    """Validate a fault plan against a cluster size; returns it as a list.

    At most one crash per device (a shard power-cycles once per run),
    and every target must exist.
    """
    seen: Dict[int, DeviceCrash] = {}
    for f in faults:
        if not 0 <= f.device < n_devices:
            raise ValueError(
                f"fault {f.describe()!r} targets device {f.device}, but "
                f"the cluster has {n_devices} device(s)"
            )
        if f.device in seen:
            raise ValueError(
                f"device {f.device} has more than one planned crash"
            )
        seen[f.device] = f
    return list(faults)


def plan_by_device(
    faults: Sequence[DeviceCrash],
) -> Dict[int, DeviceCrash]:
    """Index a (checked) fault plan by target device.

    The serving layer and the shard workers both key runtime fault
    state this way; :func:`check_fault_plan` guarantees at most one
    crash per device, so the mapping is lossless.
    """
    return {f.device: f for f in faults}
