"""The crash-consistency sweep driver.

A sweep has two phases:

1. **Enumerate** — run the workload once with the injector in counting
   mode and record every crash site reached (index, label, payload size,
   atomicity granule).
2. **Replay** — for each selected site, rebuild the stack from scratch,
   re-run the same workload with a :class:`FaultPlan` armed, catch the
   injected :class:`CrashPoint`, run the crash protocol
   (``device.power_fail()`` / ``fs.crash()`` / ``fs.remount()``), and
   check the recovered file system against the :class:`OracleFS`.

Everything is deterministic (virtual clock, :func:`repro.sim.rng`), so
the same seed reaches the same sites with the same numbering on every
run — a failing crash point is reproduced with just
``(fs_name, seed, site, torn)``; see ``repro crashsweep --site``.

The injector stays *off* while the stack is built (mkfs is not part of
the crash surface), and is armed only for the workload proper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.faults.injector import (
    CrashPoint,
    FaultInjector,
    FaultPlan,
    FiredCrash,
    SiteRecord,
)
from repro.faults.oracle import OracleFS
from repro.fs.vfs import O_CREAT, O_RDWR
from repro.nand.geometry import FlashGeometry
from repro.sim.rng import make_rng

#: 32 MB device — identical to the unit-test geometry, instant to build.
SWEEP_GEOMETRY = FlashGeometry(
    n_channels=4,
    ways_per_channel=1,
    blocks_per_way=32,
    pages_per_block=64,
    page_size=4096,
)


@dataclass
class SweepConfig:
    fs_name: str = "bytefs"
    seed: int = 0
    #: cap on *sites replayed* (evenly spaced over the trace); None = all
    max_sites: Optional[int] = None
    #: additionally replay a torn-write variant at tearable sites
    torn: bool = True
    #: override the op list (default: :func:`standard_workload`)
    workload: Optional[List[Tuple]] = None


@dataclass
class CrashResult:
    """Outcome of one crash replay."""

    fs_name: str
    site: int
    torn: bool
    fired: Optional[FiredCrash]
    n_ops_completed: int
    errors: List[str]

    @property
    def ok(self) -> bool:
        return not self.errors

    def describe(self) -> str:
        where = (
            f"site {self.site} ({self.fired.label}"
            + (f", torn after {self.fired.torn_bytes} B)" if self.torn else ")")
            if self.fired
            else f"site {self.site} (never reached)"
        )
        status = "ok" if self.ok else "; ".join(self.errors)
        return f"[{self.fs_name}] {where}: {status}"


@dataclass
class SweepReport:
    fs_name: str
    seed: int
    #: total sites the workload reached during enumeration
    n_sites: int
    #: site indices actually replayed
    sites_tested: List[int] = field(default_factory=list)
    results: List[CrashResult] = field(default_factory=list)
    label_histogram: dict = field(default_factory=dict)

    @property
    def failures(self) -> List[CrashResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        return (
            f"{self.fs_name}: {self.n_sites} sites enumerated, "
            f"{len(self.sites_tested)} replayed "
            f"({len(self.results)} runs incl. torn), "
            f"{len(self.failures)} failures"
        )


# ---------------------------------------------------------------------- #
# workload
# ---------------------------------------------------------------------- #


def standard_workload(seed: int = 0) -> List[Tuple]:
    """The standard mixed workload for crash sweeps.

    Op tuples: ``("mkdir", p)``, ``("create", p)``,
    ``("write", p, off, data)``, ``("trunc", p, size)``,
    ``("fsync"|"fdatasync", p)``, ``("sync",)``, ``("unlink", p)``,
    ``("rename", src, dst)``.

    Deliberate shape:

    * ``synced`` files take large writes and truncates, each immediately
      followed by a barrier — their content is durable everywhere except
      the one in-flight op;
    * ``unsynced`` files take 64 B-aligned single-cacheline writes with
      no barrier — the oracle's fragment rule makes those all-or-nothing
      (absent or fully present, never torn);
    * namespace churn (rename, unlink) only touches fully-synced files;
    * a trailing ``sync`` plus two more unsynced writes exercises crash
      sites in the quiesced state.
    """
    rng = make_rng(seed, "faults:standard-workload")
    ops: List[Tuple] = [("mkdir", "/d0"), ("mkdir", "/d1")]
    files = [f"/d{i % 2}/f{i}" for i in range(6)]
    for path in files:
        ops.append(("create", path))
    for i, path in enumerate(files):
        ops.append(("write", path, 0, bytes([0x41 + i]) * (512 + 256 * i)))
        ops.append(("fsync", path))
    synced, unsynced = files[:4], files[4:]
    for step in range(20):
        r = step % 4
        if r == 0:
            path = unsynced[(step // 4) % 2]
            off = 64 * rng.randrange(0, 8)
            ops.append(("write", path, off, bytes([0x61 + step]) * 64))
        elif r == 1:
            path = synced[rng.randrange(0, len(synced))]
            off = 128 * rng.randrange(0, 16)
            data = bytes([0x30 + step % 10]) * (256 * (1 + step % 4))
            ops.append(("write", path, off, data))
            ops.append(("fsync", path))
        elif r == 2:
            path = synced[rng.randrange(0, len(synced))]
            ops.append(("trunc", path, 256 + 64 * step))
            ops.append(("fsync", path))
        else:
            path = synced[rng.randrange(0, len(synced))]
            ops.append(("write", path, 0, bytes([0x70 + step]) * 256))
            ops.append(("fdatasync", path))
    ops.append(("rename", synced[0], "/d1/renamed"))
    ops.append(("unlink", synced[1]))
    ops.append(("create", "/d0/late"))
    ops.append(("write", "/d0/late", 0, b"L" * 64))
    ops.append(("sync",))
    ops.append(("write", "/d0/late", 64, b"T" * 64))
    ops.append(("write", unsynced[0], 0, b"U" * 64))
    return ops


def apply_op(fs, op: Tuple) -> None:
    """Execute one workload op through the POSIX-like FS API."""
    kind = op[0]
    if kind == "mkdir":
        fs.mkdir(op[1])
    elif kind == "create":
        fs.close(fs.open(op[1], O_CREAT | O_RDWR))
    elif kind == "write":
        fd = fs.open(op[1], O_RDWR)
        try:
            fs.pwrite(fd, op[2], op[3])
        finally:
            fs.close(fd)
    elif kind == "trunc":
        fd = fs.open(op[1], O_RDWR)
        try:
            fs.ftruncate(fd, op[2])
        finally:
            fs.close(fd)
    elif kind in ("fsync", "fdatasync"):
        fd = fs.open(op[1], O_RDWR)
        try:
            getattr(fs, kind)(fd)
        finally:
            fs.close(fd)
    elif kind == "unlink":
        fs.unlink(op[1])
    elif kind == "rename":
        fs.rename(op[1], op[2])
    elif kind == "sync":
        fs.sync()
    else:
        raise ValueError(f"unknown workload op {kind!r}")


def replay_workload(fs, ops: Sequence[Tuple]) -> OracleFS:
    """Run a workload against ``fs`` while mirroring it into an oracle.

    Returns the oracle; on an injected :class:`CrashPoint` the in-flight
    op is recorded as incomplete and the exception re-raised with the
    oracle attached (``exc.oracle``, ``exc.n_ops_completed``).
    """
    oracle = OracleFS()
    for i, op in enumerate(ops):
        try:
            apply_op(fs, op)
        except CrashPoint as exc:
            oracle.observe(op, completed=False)
            exc.oracle = oracle
            exc.n_ops_completed = i
            raise
        oracle.observe(op, completed=True)
    return oracle


# ---------------------------------------------------------------------- #
# drivers
# ---------------------------------------------------------------------- #


def _build(fs_name: str, faults: FaultInjector):
    # Imported lazily: repro.core.bytefs pulls in repro.ssd.device, which
    # itself imports repro.faults — a module-level import would cycle.
    from repro.core.bytefs import build_stack

    return build_stack(fs_name, geometry=SWEEP_GEOMETRY, faults=faults)


def enumerate_sites(config: SweepConfig) -> List[SiteRecord]:
    """Phase 1: count every crash site the workload reaches."""
    ops = config.workload or standard_workload(config.seed)
    injector = FaultInjector()
    _clock, _stats, _device, fs = _build(config.fs_name, injector)
    injector.start_count()
    for op in ops:
        apply_op(fs, op)
    injector.disarm()
    return injector.trace


def run_crash(
    config: SweepConfig, crash_site: int, torn: bool = False
) -> CrashResult:
    """Phase 2 body: replay the workload crashing at ``crash_site``."""
    ops = config.workload or standard_workload(config.seed)
    injector = FaultInjector()
    _clock, _stats, device, fs = _build(config.fs_name, injector)
    injector.arm(FaultPlan(crash_site, torn=torn, seed=config.seed))
    n_done = len(ops)
    try:
        oracle = replay_workload(fs, ops)
    except CrashPoint as exc:
        oracle = exc.oracle
        n_done = exc.n_ops_completed
    injector.disarm()  # recovery-time device writes must apply
    device.power_fail()
    fs.crash()
    fs.remount()
    errors = oracle.check(fs)
    return CrashResult(
        fs_name=config.fs_name,
        site=crash_site,
        torn=torn,
        fired=injector.fired,
        n_ops_completed=n_done,
        errors=errors,
    )


def select_sites(
    trace: Sequence[SiteRecord], max_sites: Optional[int]
) -> List[SiteRecord]:
    """Evenly-spaced subset of the trace, honouring ``max_sites``."""
    n = len(trace)
    if max_sites is None or max_sites >= n:
        return list(trace)
    if max_sites <= 0:
        return []
    if max_sites == 1:
        return [trace[0]]
    picked = sorted(
        {round(i * (n - 1) / (max_sites - 1)) for i in range(max_sites)}
    )
    return [trace[i] for i in picked]


def run_sweep(config: SweepConfig) -> SweepReport:
    """Enumerate, then replay every selected site (plus torn variants)."""
    trace = enumerate_sites(config)
    hist: dict = {}
    for rec in trace:
        hist[rec.label] = hist.get(rec.label, 0) + 1
    report = SweepReport(
        fs_name=config.fs_name,
        seed=config.seed,
        n_sites=len(trace),
        label_histogram=hist,
    )
    for rec in select_sites(trace, config.max_sites):
        report.sites_tested.append(rec.index)
        report.results.append(run_crash(config, rec.index, torn=False))
        if config.torn and rec.tearable:
            report.results.append(run_crash(config, rec.index, torn=True))
    return report
