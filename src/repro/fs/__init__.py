"""File systems: the common VFS plus the four baselines.

* :mod:`repro.fs.vfs` — the POSIX-like API shared by every file system.
* :mod:`repro.fs.extfs` — the Ext4-family implementation; with all feature
  flags off it *is* the Ext4 baseline, and :mod:`repro.core` layers the
  ByteFS flags on top (the paper built ByteFS by modifying Ext4).
* :mod:`repro.fs.f2fs` — log-structured flash file system baseline.
* :mod:`repro.fs.nova` — NOVA-like per-inode-log NVM file system baseline.
* :mod:`repro.fs.pmfs` — PMFS-like in-place NVM file system baseline.
"""

from repro.fs.errors import (
    FSError,
    FileNotFound,
    FileExists,
    NotADirectory,
    IsADirectory,
    DirectoryNotEmpty,
    NoSpace,
    BadFileDescriptor,
    InvalidArgument,
)
from repro.fs.vfs import (
    BaseFileSystem,
    O_RDONLY,
    O_WRONLY,
    O_RDWR,
    O_CREAT,
    O_TRUNC,
    O_APPEND,
    O_DIRECT,
    O_EXCL,
)

__all__ = [
    "FSError",
    "FileNotFound",
    "FileExists",
    "NotADirectory",
    "IsADirectory",
    "DirectoryNotEmpty",
    "NoSpace",
    "BadFileDescriptor",
    "InvalidArgument",
    "BaseFileSystem",
    "O_RDONLY",
    "O_WRONLY",
    "O_RDWR",
    "O_CREAT",
    "O_TRUNC",
    "O_APPEND",
    "O_DIRECT",
    "O_EXCL",
]
