"""File-system exceptions (POSIX errno analogues)."""

from __future__ import annotations


class FSError(Exception):
    """Base class for all file-system errors."""


class FileNotFound(FSError):
    """ENOENT."""


class FileExists(FSError):
    """EEXIST."""


class NotADirectory(FSError):
    """ENOTDIR."""


class IsADirectory(FSError):
    """EISDIR."""


class DirectoryNotEmpty(FSError):
    """ENOTEMPTY."""


class NoSpace(FSError):
    """ENOSPC."""


class BadFileDescriptor(FSError):
    """EBADF."""


class InvalidArgument(FSError):
    """EINVAL."""


class ReadOnly(FSError):
    """EROFS / write to an O_RDONLY descriptor."""
