"""The Ext4-family file system (§4.5, §4.6).

With every feature flag off this is the **Ext4 baseline**: all metadata
persisted through the block interface under a JBD2 ordered-mode journal,
file data through the host page cache with whole-page writebacks.

:mod:`repro.core.bytefs` layers the ByteFS flags on top (the paper built
ByteFS by modifying Ext4, §4.9):

* ``metadata_byte``   — metadata updates persisted as byte-granular MMIO
  stores (64 B inode halves, 64 B bitmap groups, individual dentries,
  16 B extent leaves) instead of journaled whole blocks;
* ``fw_tx``           — transactions ride the firmware write log + TxLog
  (requires the ByteFS firmware) instead of JBD2;
* ``data_byte_policy``— CoW page tracking with the modified-ratio policy
  (R < 1/8 → byte-interface writeback of dirty cachelines);
* ``data_journal``    — JBD2 data journaling combined with ByteFS commit
  entries (§4.6).

Everything is really serialized to the device (see
:mod:`repro.fs.layout`), so crash/recovery tests re-parse on-device state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.fs import layout
from repro.fs.errors import (
    DirectoryNotEmpty,
    FileExists,
    FSError,
    NoSpace,
)
from repro.fs.jbd2 import JBD2
from repro.fs.layout import (
    Extent,
    FT_DIR,
    FT_FILE,
    INLINE_EXTENTS,
    INODE_HALF,
    INODE_SIZE,
    Inode,
    SuperblockLayout,
)
from repro.fs.vfs import BaseFileSystem, Stat
from repro.host.page_cache import CACHELINE, CachedPage, PageCache
from repro.ssd.device import MSSD
from repro.stats.traffic import StructKind
from repro.trace import tracer as trace


@dataclass
class ExtFSConfig:
    """Feature flags and tunables for the Ext4 family."""

    n_inodes: Optional[int] = None
    journal_blocks: int = 64
    page_cache_pages: int = 2048
    # --- ByteFS flags (all False = the Ext4 baseline) ---
    metadata_byte: bool = False
    fw_tx: bool = False
    data_byte_policy: bool = False
    data_journal: bool = False
    byte_ratio_threshold: float = 1.0 / 8.0   # R threshold (§4.6)
    direct_byte_max: int = 512                # direct-I/O byte cutoff (§3.3)
    #: metadata ops between automatic journal commits (stands in for
    #: JBD2's 5-second commit timer, which virtual time cannot model)
    commit_interval_ops: int = 32
    #: updates after which an open per-inode transaction is committed
    #: (bounds TxLog growth for never-fsynced files)
    inode_tx_max_updates: int = 64


class _DEntry:
    __slots__ = ("ino", "ftype", "blkno", "offset", "size")

    def __init__(self, ino: int, ftype: int, blkno: int, offset: int, size: int):
        self.ino = ino
        self.ftype = ftype
        self.blkno = blkno
        self.offset = offset
        self.size = size


class _DirCache:
    """Parsed view of a directory's blocks (radix-tree analogue, §4.5)."""

    def __init__(self) -> None:
        self.entries: Dict[str, _DEntry] = {}
        self.fill: Dict[int, int] = {}        # blkno -> append offset
        self.free: List[Tuple[int, int, int]] = []  # (blkno, offset, size)


class TxTable:
    """Host-side transaction table (§4.3): TxIDs from a global counter."""

    def __init__(self) -> None:
        self._next = 1
        self.open: Set[int] = set()

    def begin(self) -> int:
        txid = self._next
        self._next += 1
        self.open.add(txid)
        return txid

    def finish(self, txid: int) -> None:
        self.open.discard(txid)


class ExtFS(BaseFileSystem):
    """Ext4 baseline and the chassis ByteFS is built on."""

    name = "ext4"

    def __init__(
        self,
        device: MSSD,
        config: Optional[ExtFSConfig] = None,
        format_device: bool = True,
    ) -> None:
        super().__init__(device.clock, device.stats, device.config.timing)
        self.device = device
        self.cfg = config or ExtFSConfig()
        self.P = device.page_size
        if self.cfg.fw_tx and device.config.firmware != "bytefs":
            raise FSError("fw_tx requires the ByteFS firmware")
        self.page_cache = PageCache(self.cfg.page_cache_pages, self.P)
        self._reset_caches()
        if format_device:
            self.mkfs()
        else:
            self.mount()

    # ------------------------------------------------------------------ #
    # state and mount
    # ------------------------------------------------------------------ #

    def _reset_caches(self) -> None:
        self._sb: Optional[SuperblockLayout] = None
        self._ibmap = bytearray()
        self._bbmap = bytearray()
        self._itable: Dict[int, bytearray] = {}
        self._inodes: Dict[int, Inode] = {}
        self._extent_raw: Dict[int, bytearray] = {}
        self._dirs: Dict[int, _DirCache] = {}
        self._dir_raw: Dict[int, bytearray] = {}
        self._ordered: Set[int] = set()
        self._ino_tx: Dict[int, int] = {}
        self._cur_tx: Optional[int] = None
        self._barrier_pending = False
        self._ops_since_commit = 0
        self._ino_tx_updates: Dict[int, int] = {}
        self._ns_tx: Optional[int] = None
        self._ns_ops = 0
        #: freed blocks awaiting TRIM, keyed by the transaction whose
        #: commit makes the free durable (None = the jbd2 running tx).
        #: Issuing TRIM before that commit would destroy data that the
        #: still-durable metadata references if we crash in between.
        self._pending_trims: Dict[Optional[int], Set[int]] = {}
        self._txtable = TxTable()
        self._alloc_cursor = 0
        self.jbd2: Optional[JBD2] = None

    def mkfs(self) -> None:
        """Format the device and mount."""
        sb = SuperblockLayout.compute(
            self.device.capacity_blocks,
            self.P,
            self.cfg.n_inodes,
            self.cfg.journal_blocks,
        )
        self._sb = sb
        self._ibmap = bytearray(sb.inode_bitmap_blocks * self.P)
        self._bbmap = bytearray(sb.block_bitmap_blocks * self.P)
        # Reserve metadata region and the out-of-range tail of the bitmap.
        for b in range(sb.data_start):
            self._bbmap[b // 8] |= 1 << (b % 8)
        for b in range(sb.total_blocks, sb.block_bitmap_blocks * self.P * 8):
            self._bbmap[b // 8] |= 1 << (b % 8)
        # ino 0 reserved, ino 1 = root directory.
        self._ibmap[0] |= 0b11
        root = Inode(1, mode=FT_DIR, links=2)
        self._inodes[1] = root
        blk = self._inode_blkno(1)
        self._itable[blk] = bytearray(self.P)
        self._encode_inode_into_raw(root)
        self._dirs[1] = _DirCache()
        self._alloc_cursor = sb.data_start
        # Write the initial images to the device.
        self.device.write_blocks(0, sb.encode(self.P), StructKind.SUPERBLOCK)
        self._write_bitmap_blocks()
        self.device.write_blocks(blk, bytes(self._itable[blk]), StructKind.INODE)
        self.jbd2 = JBD2(self, sb.journal_start, sb.journal_blocks)
        self.jbd2._write_header()

    def mount(self) -> None:
        """Read the superblock and bitmaps from the device."""
        raw = self.device.read_blocks(0, 1, StructKind.SUPERBLOCK)
        sb = SuperblockLayout.decode(raw)
        self._sb = sb
        self._ibmap = bytearray(
            self.device.read_blocks(
                sb.inode_bitmap_start, sb.inode_bitmap_blocks, StructKind.BITMAP
            )
        )
        self._bbmap = bytearray(
            self.device.read_blocks(
                sb.block_bitmap_start, sb.block_bitmap_blocks, StructKind.BITMAP
            )
        )
        self._alloc_cursor = sb.data_start
        self.jbd2 = JBD2(self, sb.journal_start, sb.journal_blocks)

    # ------------------------------------------------------------------ #
    # transaction plumbing
    # ------------------------------------------------------------------ #

    def _txid(self) -> Optional[int]:
        return self._cur_tx if self.cfg.fw_tx else None

    def _ns_begin(self) -> None:
        if self.cfg.fw_tx:
            if self._ns_tx is None:
                self._ns_tx = self._txtable.begin()
            self._cur_tx = self._ns_tx

    def _ns_commit(self) -> None:
        """End a namespace operation.

        Namespace updates share one running transaction that commits
        every ``commit_interval_ops`` operations (and on every fsync /
        sync), mirroring how JBD2 batches Ext4's metadata commits —
        durability semantics for un-fsynced namespace ops are therefore
        the same as Ext4's.
        """
        if self.cfg.fw_tx:
            self._cur_tx = None
            self._ns_ops += 1
            if self._ns_ops >= self.cfg.commit_interval_ops:
                self._commit_ns_tx()
        else:
            self._op_barrier()
            self._periodic_commit()

    def _commit_ns_tx(self) -> None:
        if self._ns_tx is not None:
            txid = self._ns_tx
            self.device.commit(txid)
            self._txtable.finish(txid)
            self._ns_tx = None
            self._flush_trims(txid)
        self._ns_ops = 0

    def _periodic_commit(self) -> None:
        """Approximate JBD2's periodic commit timer with an op counter."""
        if self.cfg.metadata_byte or self.jbd2 is None:
            return
        self._ops_since_commit += 1
        if (
            self._ops_since_commit >= self.cfg.commit_interval_ops
            and self.jbd2.has_running()
        ):
            self.jbd2.commit()
            self._flush_trims(None)
            self._ops_since_commit = 0

    def _inode_tx(self, ino: int) -> Optional[int]:
        """The running transaction covering un-synced writes to ``ino``."""
        if not self.cfg.fw_tx:
            return None
        txid = self._ino_tx.get(ino)
        if txid is None:
            txid = self._txtable.begin()
            self._ino_tx[ino] = txid
        return txid

    def _commit_inode_tx(self, ino: int) -> None:
        if not self.cfg.fw_tx:
            return
        self._ino_tx_updates.pop(ino, None)
        txid = self._ino_tx.pop(ino, None)
        if txid is not None:
            self.device.commit(txid)
            self._txtable.finish(txid)
            self._flush_trims(txid)

    # ------------------------------------------------------------------ #
    # metadata persistence primitives
    # ------------------------------------------------------------------ #

    def _persist_meta(
        self, blkno: int, offset: int, data: bytes, kind: StructKind
    ) -> None:
        """Persist a metadata mutation whose raw image is already updated.

        With firmware transactions (fw_tx) the stores are posted and the
        durability barrier is deferred to COMMIT (Fig 4).  Without them
        (ByteFS-Dual) every persistent write pays the §4.2 two-step
        barrier itself, since ordering between dependent metadata updates
        has nothing else to ride on.
        """
        if self.cfg.metadata_byte:
            txid = self._txid()
            self.device.store(
                blkno * self.P + offset,
                data,
                kind,
                txid=txid,
                persist=txid is None and not self.cfg.fw_tx,
            )
            if txid is not None:
                self._barrier_pending = True
        else:
            self.jbd2.mark_dirty(blkno, kind)

    def _op_barrier(self) -> None:
        """Drain posted stores that are not covered by a pending commit."""
        if self._barrier_pending and not self.cfg.fw_tx:
            self.device.link.persist_barrier(1)
        self._barrier_pending = False

    def _snapshot_block(self, blkno: int) -> bytes:
        """Current image of a managed metadata block (for JBD2)."""
        sb = self._sb
        if blkno == 0:
            return sb.encode(self.P)
        if sb.inode_bitmap_start <= blkno < sb.inode_bitmap_start + sb.inode_bitmap_blocks:
            off = (blkno - sb.inode_bitmap_start) * self.P
            return bytes(self._ibmap[off : off + self.P])
        if sb.block_bitmap_start <= blkno < sb.block_bitmap_start + sb.block_bitmap_blocks:
            off = (blkno - sb.block_bitmap_start) * self.P
            return bytes(self._bbmap[off : off + self.P])
        if blkno in self._itable:
            return bytes(self._itable[blkno])
        if blkno in self._extent_raw:
            return bytes(self._extent_raw[blkno])
        if blkno in self._dir_raw:
            return bytes(self._dir_raw[blkno])
        raise FSError(f"snapshot of unmanaged block {blkno}")

    def _write_bitmap_blocks(self) -> None:
        sb = self._sb
        self.device.write_blocks(
            sb.inode_bitmap_start, bytes(self._ibmap), StructKind.BITMAP
        )
        self.device.write_blocks(
            sb.block_bitmap_start, bytes(self._bbmap), StructKind.BITMAP
        )

    def _persist_bitmap_bit(self, is_inode_bitmap: bool, bit: int) -> None:
        """Persist the 64 B bitmap group containing ``bit`` (§4.5)."""
        sb = self._sb
        bmap = self._ibmap if is_inode_bitmap else self._bbmap
        start = sb.inode_bitmap_start if is_inode_bitmap else sb.block_bitmap_start
        byte_off = bit // 8
        group = (byte_off // 64) * 64
        blkno = start + group // self.P
        in_block = group % self.P
        self._persist_meta(
            blkno, in_block, bytes(bmap[group : group + 64]), StructKind.BITMAP
        )

    # ------------------------------------------------------------------ #
    # inode management
    # ------------------------------------------------------------------ #

    def _inode_blkno(self, ino: int) -> int:
        per_block = self.P // INODE_SIZE
        return self._sb.itable_start + ino // per_block

    def _inode_offset(self, ino: int) -> int:
        per_block = self.P // INODE_SIZE
        return (ino % per_block) * INODE_SIZE

    def _load_itable_block(self, blkno: int) -> bytearray:
        raw = self._itable.get(blkno)
        if raw is None:
            raw = bytearray(
                self.device.read_blocks(blkno, 1, StructKind.INODE)
            )
            self._itable[blkno] = raw
        return raw

    def _get_inode(self, ino: int) -> Inode:
        inode = self._inodes.get(ino)
        if inode is not None:
            return inode
        blkno = self._inode_blkno(ino)
        raw = self._load_itable_block(blkno)
        off = self._inode_offset(ino)
        inode, count = Inode.decode(ino, bytes(raw[off : off + INODE_SIZE]))
        if count > INLINE_EXTENTS and inode.extent_block:
            eraw = bytearray(
                self.device.read_blocks(
                    inode.extent_block, 1, StructKind.DATA_PTR
                )
            )
            self._extent_raw[inode.extent_block] = eraw
            inode.extents = inode.extents[:INLINE_EXTENTS] + (
                layout.decode_extent_block(bytes(eraw), count)[INLINE_EXTENTS:]
            )
        self._inodes[ino] = inode
        return inode

    def _encode_inode_into_raw(self, inode: Inode) -> Tuple[int, int]:
        blkno = self._inode_blkno(inode.ino)
        raw = self._itable.setdefault(blkno, bytearray(self.P))
        off = self._inode_offset(inode.ino)
        raw[off : off + INODE_SIZE] = inode.encode()
        return blkno, off

    def _persist_inode(
        self, inode: Inode, lower: bool = True, upper: bool = False
    ) -> None:
        """Persist one or both 64 B inode halves (§4.5)."""
        blkno, off = self._encode_inode_into_raw(inode)
        if lower:
            self._persist_meta(
                blkno,
                off,
                self._itable[blkno][off : off + INODE_HALF],
                StructKind.INODE,
            )
        if upper:
            self._persist_meta(
                blkno,
                off + INODE_HALF,
                self._itable[blkno][off + INODE_HALF : off + INODE_SIZE],
                StructKind.INODE,
            )

    def _alloc_ino(self) -> int:
        sb = self._sb
        for ino in range(2, sb.n_inodes):
            if not self._ibmap[ino // 8] & (1 << (ino % 8)):
                self._ibmap[ino // 8] |= 1 << (ino % 8)
                self._persist_bitmap_bit(True, ino)
                return ino
        raise NoSpace("out of inodes")

    def _free_ino(self, ino: int) -> None:
        self._ibmap[ino // 8] &= ~(1 << (ino % 8))
        self._persist_bitmap_bit(True, ino)
        self._inodes.pop(ino, None)

    # ------------------------------------------------------------------ #
    # block allocation (extent-based, §4.5)
    # ------------------------------------------------------------------ #

    def _block_used(self, b: int) -> bool:
        return bool(self._bbmap[b // 8] & (1 << (b % 8)))

    def _set_block(self, b: int, used: bool) -> None:
        if used:
            self._bbmap[b // 8] |= 1 << (b % 8)
        else:
            self._bbmap[b // 8] &= ~(1 << (b % 8))

    def _alloc_blocks(self, n: int) -> List[Extent]:
        """Allocate ``n`` blocks as few contiguous extents as possible,
        first-fit from a rotating cursor (the per-CPU free lists of the
        paper collapse to one allocator in this single-address-space
        simulation)."""
        sb = self._sb
        out: List[Extent] = []
        remaining = n

        def scan(start: int, stop: int) -> None:
            nonlocal remaining
            b = start
            while b < stop and remaining > 0:
                if self._block_used(b):
                    b += 1
                    continue
                run = b
                while (
                    b < stop
                    and not self._block_used(b)
                    and (b - run) < remaining
                ):
                    b += 1
                out.append(Extent(0, run, b - run))
                remaining -= b - run

        scan(self._alloc_cursor, sb.total_blocks)
        if remaining > 0:
            scan(sb.data_start, min(self._alloc_cursor, sb.total_blocks))
        if remaining > 0:
            raise NoSpace(f"cannot allocate {n} blocks")
        groups_touched: Set[int] = set()
        for ext in out:
            for b in range(ext.start, ext.start + ext.length):
                self._set_block(b, True)
                groups_touched.add(b // (64 * 8))
                # A reused block must not be trimmed by an older free.
                for queue in self._pending_trims.values():
                    queue.discard(b)
        for g in sorted(groups_touched):
            self._persist_bitmap_bit(False, g * 64 * 8)
        last = out[-1]
        self._alloc_cursor = last.start + last.length
        if self._alloc_cursor >= sb.total_blocks:
            self._alloc_cursor = sb.data_start
        return out

    def _free_extent(self, ext: Extent) -> None:
        groups: Set[int] = set()
        trim_key = self._cur_tx if self.cfg.fw_tx else None
        queue = self._pending_trims.setdefault(trim_key, set())
        for b in range(ext.start, ext.start + ext.length):
            self._set_block(b, False)
            groups.add(b // (64 * 8))
            queue.add(b)
            if self.jbd2 is not None:
                self.jbd2.forget(b)
        # Sorted so bitmap persists hit the device in a replayable order
        # regardless of hash seed (lint DET003).
        for g in sorted(groups):
            self._persist_bitmap_bit(False, g * 64 * 8)

    def _flush_trims(self, trim_key: Optional[int]) -> None:
        """Issue the TRIMs deferred behind ``trim_key``'s commit
        (discard-after-commit, like Ext4's ``-o discard``)."""
        blocks = self._pending_trims.pop(trim_key, None)
        if blocks:
            # Contiguous runs collapse into one ranged TRIM each; the
            # device processes a range in ascending order, so this is
            # identical to trimming block by block in sorted order.
            ordered = sorted(blocks)
            start = prev = ordered[0]
            for b in ordered[1:]:
                if b != prev + 1:
                    self.device.trim(start, prev - start + 1)
                    start = b
                prev = b
            self.device.trim(start, prev - start + 1)

    # ------------------------------------------------------------------ #
    # file extents
    # ------------------------------------------------------------------ #

    def _block_of(self, inode: Inode, page_idx: int) -> Optional[int]:
        for ext in inode.extents:
            if ext.logical <= page_idx < ext.logical_end:
                return ext.start + (page_idx - ext.logical)
        return None

    def _max_mapped_page(self, inode: Inode) -> int:
        return max((e.logical_end for e in inode.extents), default=0)

    def _persist_extents(self, inode: Inode) -> None:
        """Persist the extent list: inode upper half plus spill block."""
        if len(inode.extents) > INLINE_EXTENTS:
            if inode.extent_block == 0:
                ext = self._alloc_blocks(1)[0]
                inode.extent_block = ext.start
            image = layout.encode_extent_block(inode.extents, self.P)
            self._extent_raw[inode.extent_block] = bytearray(image)
            if self.cfg.metadata_byte:
                # Persist only the spilled leaves (16 B each).
                start = INLINE_EXTENTS * layout.EXTENT_SIZE
                end = len(inode.extents) * layout.EXTENT_SIZE
                self.device.store(
                    inode.extent_block * self.P + start,
                    image[start:end],
                    StructKind.DATA_PTR,
                    txid=self._txid(),
                )
            else:
                self.jbd2.mark_dirty(inode.extent_block, StructKind.DATA_PTR)
        self._persist_inode(inode, lower=False, upper=True)

    def _ensure_blocks(self, inode: Inode, up_to_page: int) -> None:
        """Allocate blocks so pages [0, up_to_page) are all mapped."""
        mapped = self._max_mapped_page(inode)
        if up_to_page <= mapped:
            return
        need = up_to_page - mapped
        new_extents = self._alloc_blocks(need)
        changed = False
        for ext in new_extents:
            ext.logical = mapped
            mapped += ext.length
            last = inode.extents[-1] if inode.extents else None
            if (
                last is not None
                and last.logical_end == ext.logical
                and last.start + last.length == ext.start
            ):
                last.length += ext.length
            else:
                inode.extents.append(ext)
            changed = True
        if len(inode.extents) > INLINE_EXTENTS + (
            self.P // layout.EXTENT_SIZE
        ):
            raise NoSpace("file too fragmented for one extent block")
        if changed:
            self._persist_extents(inode)

    # ------------------------------------------------------------------ #
    # directories
    # ------------------------------------------------------------------ #

    def _dir_blocks(self, inode: Inode) -> List[int]:
        blocks: List[int] = []
        for ext in sorted(inode.extents, key=lambda e: e.logical):
            blocks.extend(range(ext.start, ext.start + ext.length))
        return blocks

    def _load_dir(self, ino: int) -> _DirCache:
        cache = self._dirs.get(ino)
        if cache is not None:
            return cache
        inode = self._get_inode(ino)
        cache = _DirCache()
        for blkno in self._dir_blocks(inode):
            raw = bytearray(
                self.device.read_blocks(blkno, 1, StructKind.DENTRY)
            )
            self._dir_raw[blkno] = raw
            fill = 0
            for off, size, entry_ino, ftype, name in layout.decode_dentries(
                bytes(raw)
            ):
                fill = off + size
                if entry_ino == 0:
                    cache.free.append((blkno, off, size))
                else:
                    cache.entries[name] = _DEntry(
                        entry_ino, ftype, blkno, off, size
                    )
            cache.fill[blkno] = fill
        self._dirs[ino] = cache
        return cache

    def _dir_add(self, dir_ino: int, name: str, ino: int, ftype: int) -> None:
        cache = self._load_dir(dir_ino)
        if name in cache.entries:
            raise FileExists(name)
        record = layout.encode_dentry(ino, ftype, name)
        size = len(record)
        slot: Optional[Tuple[int, int, int]] = None
        for i, (blkno, off, free_size) in enumerate(cache.free):
            if free_size >= size:
                slot = cache.free.pop(i)
                break
        if slot is not None:
            blkno, off, free_size = slot
            record = record + bytes(free_size - size)
            size = free_size
        else:
            blkno, off = self._dir_append_slot(dir_ino, cache, size)
        raw = self._dir_raw[blkno]
        raw[off : off + size] = record
        cache.entries[name] = _DEntry(ino, ftype, blkno, off, size)
        self._persist_meta(blkno, off, bytes(record), StructKind.DENTRY)

    def _dir_append_slot(
        self, dir_ino: int, cache: _DirCache, size: int
    ) -> Tuple[int, int]:
        inode = self._get_inode(dir_ino)
        for blkno in self._dir_blocks(inode):
            fill = cache.fill.get(blkno, 0)
            if fill + size <= self.P:
                cache.fill[blkno] = fill + size
                return blkno, fill
        # Need a fresh directory block.
        before = self._max_mapped_page(inode)
        self._ensure_blocks(inode, before + 1)
        blkno = self._block_of(inode, before)
        self._dir_raw[blkno] = bytearray(self.P)
        inode.size = (before + 1) * self.P
        inode.mtime = self.clock.now
        self._persist_inode(inode, lower=True)
        cache.fill[blkno] = size
        return blkno, 0

    def _dir_remove(self, dir_ino: int, name: str) -> _DEntry:
        cache = self._load_dir(dir_ino)
        entry = cache.entries.pop(name)
        raw = self._dir_raw[entry.blkno]
        # Tombstone: zero the 4 B inode field, keep the record skippable.
        raw[entry.offset : entry.offset + 4] = b"\x00\x00\x00\x00"
        cache.free.append((entry.blkno, entry.offset, entry.size))
        self._persist_meta(
            entry.blkno, entry.offset, b"\x00\x00\x00\x00", StructKind.DENTRY
        )
        return entry

    # ------------------------------------------------------------------ #
    # BaseFileSystem hooks: namespace
    # ------------------------------------------------------------------ #

    def _root_ino(self) -> int:
        return 1

    def _is_dir(self, ino: int) -> bool:
        return self._get_inode(ino).is_dir

    def _dir_lookup(self, dir_ino: int, name: str) -> Optional[int]:
        cache = self._load_dir(dir_ino)
        entry = cache.entries.get(name)
        return entry.ino if entry is not None else None

    def _create_file(self, dir_ino: int, name: str) -> int:
        self._ns_begin()
        try:
            ino = self._alloc_ino()
            inode = Inode(ino, mode=FT_FILE, links=1)
            inode.ctime = inode.mtime = self.clock.now
            self._inodes[ino] = inode
            self._persist_inode(inode, lower=True, upper=True)
            self._dir_add(dir_ino, name, ino, FT_FILE)
            self._touch_dir(dir_ino)
            return ino
        finally:
            self._ns_commit()

    def _create_dir(self, dir_ino: int, name: str) -> int:
        self._ns_begin()
        try:
            ino = self._alloc_ino()
            inode = Inode(ino, mode=FT_DIR, links=2)
            inode.ctime = inode.mtime = self.clock.now
            self._inodes[ino] = inode
            self._dirs[ino] = _DirCache()
            self._persist_inode(inode, lower=True, upper=True)
            self._dir_add(dir_ino, name, ino, FT_DIR)
            self._touch_dir(dir_ino)
            return ino
        finally:
            self._ns_commit()

    def _touch_dir(self, dir_ino: int) -> None:
        dinode = self._get_inode(dir_ino)
        dinode.mtime = self.clock.now
        self._persist_inode(dinode, lower=True)

    def _remove_file(self, dir_ino: int, name: str, ino: int) -> None:
        self._ns_begin()
        try:
            inode = self._get_inode(ino)
            self._dir_remove(dir_ino, name)
            inode.links -= 1
            if inode.links <= 0:
                self._release_inode(inode)
            else:
                self._persist_inode(inode, lower=True)
            self._touch_dir(dir_ino)
        finally:
            self._ns_commit()

    def _release_inode(self, inode: Inode) -> None:
        self.page_cache.drop_inode(inode.ino)
        for ext in inode.extents:
            self._free_extent(ext)
        if inode.extent_block:
            self._free_extent(Extent(0, inode.extent_block, 1))
            self._extent_raw.pop(inode.extent_block, None)
            inode.extent_block = 0
        inode.extents = []
        inode.links = 0
        inode.mode = 0
        inode.size = 0
        self._persist_inode(inode, lower=True, upper=True)
        self._free_ino(inode.ino)
        self._ino_tx.pop(inode.ino, None)
        self._ordered.discard(inode.ino)

    def _remove_dir(self, dir_ino: int, name: str, ino: int) -> None:
        cache = self._load_dir(ino)
        if cache.entries:
            raise DirectoryNotEmpty(name)
        self._ns_begin()
        try:
            inode = self._get_inode(ino)
            self._dir_remove(dir_ino, name)
            for blkno in self._dir_blocks(inode):
                self._dir_raw.pop(blkno, None)
            self._dirs.pop(ino, None)
            self._release_inode(inode)
            self._touch_dir(dir_ino)
        finally:
            self._ns_commit()

    def _rename(
        self, src_dir: int, src_name: str, dst_dir: int, dst_name: str
    ) -> None:
        self._ns_begin()
        try:
            entry = self._load_dir(src_dir).entries[src_name]
            ino, ftype = entry.ino, entry.ftype
            dst_cache = self._load_dir(dst_dir)
            existing = dst_cache.entries.get(dst_name)
            if existing is not None:
                if self._get_inode(existing.ino).is_dir:
                    raise FileExists(dst_name)
                self._dir_remove(dst_dir, dst_name)
                target = self._get_inode(existing.ino)
                target.links -= 1
                if target.links <= 0:
                    self._release_inode(target)
            self._dir_remove(src_dir, src_name)
            self._dir_add(dst_dir, dst_name, ino, ftype)
            self._touch_dir(src_dir)
            if dst_dir != src_dir:
                self._touch_dir(dst_dir)
        finally:
            self._ns_commit()

    def _readdir(self, ino: int) -> List[str]:
        return sorted(self._load_dir(ino).entries)

    def _stat(self, ino: int) -> Stat:
        inode = self._get_inode(ino)
        return Stat(
            ino=ino,
            size=inode.size,
            is_dir=inode.is_dir,
            nlink=inode.links,
            mtime_ns=inode.mtime,
            ctime_ns=inode.ctime,
        )

    def _file_size(self, ino: int) -> int:
        return self._get_inode(ino).size

    # ------------------------------------------------------------------ #
    # data path
    # ------------------------------------------------------------------ #

    def _read(self, ino: int, offset: int, length: int, direct: bool) -> bytes:
        inode = self._get_inode(ino)
        if offset >= inode.size:
            return b""
        length = min(length, inode.size - offset)
        if direct:
            return self._read_direct(inode, offset, length)
        out = bytearray()
        pos = offset
        while pos < offset + length:
            pidx = pos // self.P
            poff = pos % self.P
            n = min(self.P - poff, offset + length - pos)
            page = self.page_cache.lookup(ino, pidx)
            if page is None:
                data = self._read_page_from_device(inode, pidx)
                page = self.page_cache.install(
                    ino, pidx, data, self._evict_writeback
                )
            else:
                self.clock.advance(self.timing.host_cache_hit_ns)
            out += page.data[poff : poff + n]
            pos += n
        self.clock.advance(self.timing.host_memcpy_ns(length))
        return bytes(out)

    def _read_page_from_device(self, inode: Inode, pidx: int) -> bytes:
        blk = self._block_of(inode, pidx)
        if blk is None:
            return bytes(self.P)
        return self.device.read_blocks(blk, 1, StructKind.DATA)

    def _read_direct(self, inode: Inode, offset: int, length: int) -> bytes:
        """O_DIRECT read: byte interface for small requests (§4.6)."""
        if (
            self.cfg.data_byte_policy
            and length <= self.cfg.direct_byte_max
            and offset // self.P == (offset + length - 1) // self.P
        ):
            blk = self._block_of(inode, offset // self.P)
            if blk is None:
                return bytes(length)
            return self.device.load(
                blk * self.P + offset % self.P, length, StructKind.DATA
            )
        out = bytearray()
        pos = offset
        while pos < offset + length:
            pidx = pos // self.P
            poff = pos % self.P
            n = min(self.P - poff, offset + length - pos)
            data = self._read_page_from_device(inode, pidx)
            out += data[poff : poff + n]
            pos += n
        return bytes(out)

    def _write(self, ino: int, offset: int, data: bytes, direct: bool) -> int:
        inode = self._get_inode(ino)
        if self.cfg.fw_tx:
            self._cur_tx = self._inode_tx(ino)
        end = offset + len(data)
        self._ensure_blocks(inode, -(-end // self.P))
        if direct:
            written = self._write_direct(inode, offset, data)
        else:
            written = self._write_buffered(inode, offset, data)
        if end > inode.size:
            inode.size = end
        inode.mtime = self.clock.now
        self._persist_inode(inode, lower=True)
        self._ordered.add(ino)
        if self.cfg.fw_tx:
            self._cur_tx = None
            # Bound open transactions for never-fsynced files so the
            # TxLog and uncommitted-entry migration cannot grow unbounded.
            self._ino_tx_updates[ino] = self._ino_tx_updates.get(ino, 0) + 1
            if self._ino_tx_updates[ino] >= self.cfg.inode_tx_max_updates:
                self._commit_inode_tx(ino)
        else:
            self._op_barrier()
            self._periodic_commit()
        return written

    def _write_buffered(self, inode: Inode, offset: int, data: bytes) -> int:
        pos = offset
        i = 0
        nbytes = len(data)
        P = self.P
        cache = self.page_cache
        cow = self.cfg.data_byte_policy
        while i < nbytes:
            pidx = pos // P
            poff = pos % P
            n = min(P - poff, nbytes - i)
            page = cache.lookup(inode.ino, pidx)
            if page is None:
                if n < P and pos < inode.size:
                    base = self._read_page_from_device(inode, pidx)
                else:
                    base = bytes(P)
                page = cache.install(
                    inode.ino, pidx, base, self._evict_writeback
                )
            cache.mark_page_dirty(page, cow)
            page.data[poff : poff + n] = data[i : i + n]
            i += n
            pos += n
        self.clock.advance(self.timing.host_memcpy_ns(nbytes))
        return nbytes

    def _write_direct(self, inode: Inode, offset: int, data: bytes) -> int:
        """O_DIRECT write: byte interface when <= 512 B (§4.6)."""
        use_byte = (
            self.cfg.data_byte_policy
            and len(data) <= self.cfg.direct_byte_max
            and offset // self.P == (offset + len(data) - 1) // self.P
        )
        if use_byte:
            blk = self._block_of(inode, offset // self.P)
            self.device.store(
                blk * self.P + offset % self.P,
                data,
                StructKind.DATA,
                txid=self._txid(),
            )
            # Keep any cached copy coherent with the direct write.
            cached = self.page_cache.lookup(inode.ino, offset // self.P)
            if cached is not None:
                poff = offset % self.P
                cached.data[poff : poff + len(data)] = data
            return len(data)
        pos = offset
        i = 0
        while i < len(data):
            pidx = pos // self.P
            poff = pos % self.P
            n = min(self.P - poff, len(data) - i)
            blk = self._block_of(inode, pidx)
            if n < self.P:
                base = bytearray(self._read_page_from_device(inode, pidx))
                base[poff : poff + n] = data[i : i + n]
                image = bytes(base)
            else:
                image = bytes(data[i : i + n])
            self.device.write_blocks(blk, image, StructKind.DATA)
            # Keep the page cache coherent with the direct write.
            cached = self.page_cache.lookup(inode.ino, pidx)
            if cached is not None:
                cached.data[poff : poff + n] = data[i : i + n]
            i += n
            pos += n
        return len(data)

    # ------------------------------------------------------------------ #
    # writeback and the interface-selection policy (§4.6)
    # ------------------------------------------------------------------ #

    def _writeback_page(
        self,
        ino: int,
        pidx: int,
        page: CachedPage,
        txid: Optional[int],
        journal_ok: bool = True,
    ) -> None:
        if not trace.ENABLED:
            self._writeback_page_inner(ino, pidx, page, txid, journal_ok)
            return
        _sp = trace.begin("pagecache", "writeback", ino=ino, pidx=pidx)
        try:
            policy = self._writeback_page_inner(
                ino, pidx, page, txid, journal_ok
            )
            _sp.attrs = dict(_sp.attrs or {}, policy=policy)
        finally:
            trace.end(_sp)

    def _writeback_page_inner(
        self,
        ino: int,
        pidx: int,
        page: CachedPage,
        txid: Optional[int],
        journal_ok: bool = True,
    ) -> str:
        """§4.6 interface selection; returns the policy taken."""
        inode = self._get_inode(ino)
        blk = self._block_of(inode, pidx)
        if blk is None:
            page.clean()
            return "none"
        if self.cfg.data_byte_policy and page.original is not None:
            # XOR the duplicate against the page to find dirty lines.
            # One diff serves both the ratio and the chunk list (the
            # page cannot change between the two uses).
            self.clock.advance(self.timing.xor_page_ns)
            chunks = page.dirty_chunks()
            ratio = sum(
                -(-length // CACHELINE) for _off, length in chunks
            ) / (len(page.data) // CACHELINE)
            if ratio < self.cfg.byte_ratio_threshold:
                view = memoryview(page.data)
                for off, length in chunks:
                    self.device.store(
                        blk * self.P + off,
                        bytes(view[off : off + length]),
                        StructKind.DATA,
                        txid=txid,
                    )
                page.clean()
                self.stats.bump("bytefs_byte_writebacks")
                return "byte"
        if self.cfg.data_journal and self.jbd2 is not None and journal_ok:
            # Data journaling: the image goes to the journal at commit and
            # in place only at checkpoint (double write, §4.6).
            self.jbd2.mark_dirty_data(blk, bytes(page.data))
            page.clean()
            self.stats.bump("journaled_data_writebacks")
            return "journal"
        self.device.write_blocks(blk, bytes(page.data), StructKind.DATA)
        page.clean()
        self.stats.bump("block_writebacks")
        return "block"

    def _evict_writeback(self, ino: int, pidx: int, page: CachedPage) -> None:
        # Evictions bypass the data journal: the page may be re-read from
        # the device before the next commit, so it must be in place now.
        self._writeback_page(ino, pidx, page, txid=None, journal_ok=False)

    def _flush_inode_pages(self, ino: int, txid: Optional[int]) -> None:
        for pidx, page in self.page_cache.dirty_pages(ino):
            self._writeback_page(ino, pidx, page, txid)

    def _flush_ordered(self) -> None:
        """Ordered mode: write all transaction-ordered data before the
        journal commit."""
        for ino in sorted(self._ordered):
            self._flush_inode_pages(ino, txid=None)
        self._ordered.clear()

    # ------------------------------------------------------------------ #
    # sync / fsync
    # ------------------------------------------------------------------ #

    def _fsync(self, ino: int, data_only: bool) -> None:
        txid = self._ino_tx.get(ino) if self.cfg.fw_tx else None
        self._flush_inode_pages(ino, txid)
        self._ordered.discard(ino)
        if self.cfg.fw_tx:
            if (
                self.cfg.data_journal
                and self.jbd2 is not None
                and self.jbd2.has_running()
            ):
                # §4.6: JBD2 journals the large data blocks; the ByteFS
                # transaction commit marks the record committed.
                self.jbd2.commit()
            # fsync durability covers the file's creation too: commit the
            # running namespace transaction before the inode's.
            self._commit_ns_tx()
            self._commit_inode_tx(ino)
        elif self.jbd2 is not None and self.jbd2.has_running():
            # fdatasync commits too: size/mtime updates ride the same
            # running transaction in this implementation.
            self.jbd2.commit()
            self._flush_trims(None)
        self._op_barrier()

    def _sync(self) -> None:
        for ino, pidx, page in self.page_cache.all_dirty():
            self._writeback_page(
                ino, pidx, page,
                self._ino_tx.get(ino) if self.cfg.fw_tx else None,
            )
        self._ordered.clear()
        if self.cfg.fw_tx:
            if (
                self.cfg.data_journal
                and self.jbd2 is not None
                and self.jbd2.has_running()
            ):
                self.jbd2.commit()
            self._commit_ns_tx()
            for ino in list(self._ino_tx):
                self._commit_inode_tx(ino)
        elif self.jbd2 is not None:
            self.jbd2.commit()
            self._flush_trims(None)
        self._op_barrier()

    def _truncate(self, ino: int, size: int) -> None:
        inode = self._get_inode(ino)
        if self.cfg.fw_tx:
            self._cur_tx = self._inode_tx(ino)
        if size < inode.size:
            keep_pages = -(-size // self.P)
            new_extents: List[Extent] = []
            for ext in sorted(inode.extents, key=lambda e: e.logical):
                if ext.logical_end <= keep_pages:
                    new_extents.append(ext)
                elif ext.logical < keep_pages:
                    keep = keep_pages - ext.logical
                    self._free_extent(
                        Extent(0, ext.start + keep, ext.length - keep)
                    )
                    new_extents.append(Extent(ext.logical, ext.start, keep))
                else:
                    self._free_extent(ext)
            inode.extents = new_extents
            space = self.page_cache.space(ino)
            for pidx in [p for p in space.pages if p >= keep_pages]:
                space.drop(pidx)
            self._persist_extents(inode)
            self._zero_truncated_tail(inode, size)
        inode.size = size
        inode.mtime = self.clock.now
        self._persist_inode(inode, lower=True)
        if self.cfg.fw_tx:
            self._cur_tx = None
        else:
            self._op_barrier()

    def _zero_truncated_tail(self, inode: Inode, size: int) -> None:
        """Zero the partial tail page after a shrinking truncate, so a
        later extension reads zeros (POSIX) instead of stale bytes."""
        poff = size % self.P
        if poff == 0:
            return
        pidx = size // self.P
        if self._block_of(inode, pidx) is None:
            return
        page = self.page_cache.lookup(inode.ino, pidx)
        if page is None:
            data = self._read_page_from_device(inode, pidx)
            page = self.page_cache.install(
                inode.ino, pidx, data, self._evict_writeback
            )
        self.page_cache.mark_page_dirty(page, cow=self.cfg.data_byte_policy)
        page.data[poff:] = bytes(self.P - poff)

    # ------------------------------------------------------------------ #
    # memory-mapped I/O (§4.6)
    # ------------------------------------------------------------------ #

    def mmap(self, fd: int, offset: int = 0, length: Optional[int] = None):
        """Map a file region; loads/stores hit cached DRAM pages and
        msync applies the byte/block writeback policy."""
        from repro.host.mmap import MappedRegion

        self._syscall()
        handle = self._handle(fd)
        inode = self._get_inode(handle.ino)
        if length is None:
            length = max(0, inode.size - offset)
        # Ensure backing blocks exist for the whole mapping.
        if length > 0:
            if self.cfg.fw_tx:
                self._cur_tx = self._inode_tx(handle.ino)
            self._ensure_blocks(inode, -(-(offset + length) // self.P))
            if self.cfg.fw_tx:
                self._cur_tx = None
        return MappedRegion(self, handle.ino, offset, length)

    # ------------------------------------------------------------------ #
    # unmount / crash / remount
    # ------------------------------------------------------------------ #

    def unmount(self) -> None:
        self._sync()
        if self.jbd2 is not None and (
            not self.cfg.fw_tx or self.cfg.data_journal
        ):
            self.jbd2.checkpoint()
        self.device.write_blocks(
            0, self._sb.encode(self.P), StructKind.SUPERBLOCK
        )
        self.device.flush_all()

    def crash(self) -> None:
        """Power failure: all host-volatile state disappears."""
        super().crash()
        self.page_cache.drop_all()
        sb = self._sb
        self._reset_caches()
        self._sb = sb

    def remount(self) -> Dict[str, float]:
        """Crash recovery: firmware RECOVER() then journal replay (§4.7)."""
        fw_stats = self.device.recover()
        self.mount()
        replayed = 0
        if not self.cfg.metadata_byte or self.cfg.data_journal:
            replayed = self.jbd2.replay()
            # The bitmaps may have been rewritten by replay; reload them.
            sb = self._sb
            self._ibmap = bytearray(
                self.device.read_blocks(
                    sb.inode_bitmap_start,
                    sb.inode_bitmap_blocks,
                    StructKind.BITMAP,
                )
            )
            self._bbmap = bytearray(
                self.device.read_blocks(
                    sb.block_bitmap_start,
                    sb.block_bitmap_blocks,
                    StructKind.BITMAP,
                )
            )
        fw_stats["journal_txs_replayed"] = replayed
        return fw_stats
