"""A simplified F2FS baseline: log-structured, out-of-place, block interface.

Captures the traffic shape §3 attributes to F2FS:

* all writes are out of place into active log segments (separate node and
  data logs), so data-pointer (node) updates are frequent — up to 26 % of
  F2FS's write traffic in the paper;
* the node address table (NAT) maps node ids to block addresses and the
  segment information table (SIT) tracks per-segment valid counts; both
  are persisted at **checkpoints** (sync/unmount and every
  ``checkpoint_interval`` node writes);
* no journal: crash recovery loads the last checkpoint, then *rolls
  forward* fsync-marked nodes from the node log (reattaching their
  dentries via the parent/name footer each node carries, as in F2FS);
* segment cleaning migrates valid blocks out of the victim segment.

On-device layout (blocks):
``[0 superblock][checkpoint x2][NAT][SIT][main area segments...]``

A node block holds one inode plus up to ``_DIRECT_PTRS`` data pointers,
followed by chained indirect node ids for larger files.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Set, Tuple

from repro.fs import layout
from repro.fs.errors import DirectoryNotEmpty, FileExists, FSError, NoSpace
from repro.fs.vfs import BaseFileSystem, Stat
from repro.host.page_cache import CachedPage, PageCache
from repro.ssd.device import MSSD
from repro.stats.traffic import StructKind

_SB_MAGIC = 0xF2F50001
_SB_FMT = "<IIQQQQQQQ"
_CP_FMT = "<IIQQ"
# magic, ino, cp_version, seq, fsynced, mode, links, pad, size, mtime,
# nptrs, nindirect
_NODE_HDR_FMT = "<IIIQHHHHQdII"
_NODE_MAGIC = 0xF2F5A0DE
# indirect pointer block header: magic, nid, cp_version, seq, count
_IND_HDR_FMT = "<IIIQI"
_IND_HDR = 24
_SEGMENT_BLOCKS = 64
_PTR_BYTES = 4
_NODE_HDR = 160  # header + parent/name footer for fsync recovery
_NAME_CAP = 80
FT_FILE = layout.FT_FILE
FT_DIR = layout.FT_DIR

_INDIRECT_BASE = 1 << 24


def _indirect_nid(ino: int, index: int) -> int:
    """Node id for the index-th indirect pointer block of ``ino``."""
    return _INDIRECT_BASE + ino * 256 + index


def _owner_ino(nid: int) -> int:
    """The inode that owns a node id (itself, or an indirect block's)."""
    if nid < _INDIRECT_BASE:
        return nid
    return (nid - _INDIRECT_BASE) // 256


class _Node:
    """In-memory node: one file/dir's inode + data pointers."""

    def __init__(self, ino: int, mode: int = FT_FILE) -> None:
        self.ino = ino
        self.mode = mode
        self.links = 1 if mode == FT_FILE else 2
        self.size = 0
        self.mtime = 0.0
        self.ptrs: List[int] = []  # page index -> block address (0 = hole)
        # parent directory + name, persisted in the node footer so
        # roll-forward recovery can reattach the dentry (as in F2FS)
        self.parent = 0
        self.name = ""
        self.dirty = True

    @property
    def is_dir(self) -> bool:
        return self.mode == FT_DIR


class F2FS(BaseFileSystem):
    """Log-structured flash file system baseline."""

    name = "f2fs"

    def __init__(
        self,
        device: MSSD,
        format_device: bool = True,
        page_cache_pages: int = 2048,
        checkpoint_interval: int = 256,
    ) -> None:
        super().__init__(device.clock, device.stats, device.config.timing)
        self.device = device
        self.P = device.page_size
        self.page_cache = PageCache(page_cache_pages, self.P)
        self.checkpoint_interval = checkpoint_interval
        self._direct_ptrs = (self.P - _NODE_HDR) // _PTR_BYTES // 2
        self._indirect_ptrs = self.P // _PTR_BYTES
        self._reset_caches()
        if format_device:
            self.mkfs()
        else:
            self.mount()

    # ------------------------------------------------------------------ #
    # layout / mount
    # ------------------------------------------------------------------ #

    def _reset_caches(self) -> None:
        self._nat: Dict[int, int] = {}       # node id -> block address
        self._sit_valid: Dict[int, int] = {}  # segment -> valid block count
        self._seg_free: List[int] = []
        self._nodes: Dict[int, _Node] = {}
        self._indirect: Dict[int, List[int]] = {}  # node id -> ptr block
        self._dirs: Dict[int, Dict[str, Tuple[int, int]]] = {}
        self._block_owner: Dict[int, Tuple[int, int]] = {}  # blk -> (ino,pidx)
        self._node_block_of: Dict[int, int] = {}   # blk -> node id
        # Blocks freed since the last checkpoint must stay intact until the
        # checkpoint lands, or a crash would roll NAT back to trimmed blocks.
        self._pending_trim: List[int] = []
        self._pending_free_segs: List[int] = []
        self._active_node_seg: Optional[int] = None
        self._active_node_off = 0
        self._active_data_seg: Optional[int] = None
        self._active_data_off = 0
        self._next_ino = 2
        self._next_indirect_id = 1 << 24
        self._dirty_since_cp = 0
        self._cp_version = 0
        self._node_seq = 0
        # Node ids whose NAT entry is covered by the last durable
        # checkpoint, and nodes fsync-marked since then (recoverable by
        # roll-forward without another checkpoint).
        self._cp_nids: Set[int] = set()
        self._fsynced_since_cp: Set[int] = set()
        self._writing_fsync_node = False
        self._cleaning = False

    def mkfs(self) -> None:
        total = self.device.capacity_blocks
        nat_blocks = max(1, total // (self.P // _PTR_BYTES) // 4)
        n_segments = (total - 3 - 2 * nat_blocks - 8) // _SEGMENT_BLOCKS
        sit_blocks = max(1, -(-n_segments // (self.P // 8)))
        # NAT and SIT are ping-ponged (two copies each): a checkpoint
        # writes the *inactive* copy and only then the CP block that
        # names it, so a crash mid-checkpoint always leaves the previous
        # copy intact (real F2FS's two checkpoint packs).
        self._cp_start = 1
        self._nat_start = 3
        self._nat_blocks = nat_blocks
        self._sit_start = 3 + 2 * nat_blocks
        self._sit_blocks = sit_blocks
        self._main_start = self._sit_start + 2 * sit_blocks
        self._n_segments = (total - self._main_start) // _SEGMENT_BLOCKS
        sb = struct.pack(
            _SB_FMT,
            _SB_MAGIC,
            1,
            total,
            self._cp_start,
            self._nat_start,
            self._nat_blocks,
            self._sit_start,
            self._sit_blocks,
            self._main_start,
        )
        self.device.write_blocks(
            0, sb + bytes(self.P - len(sb)), StructKind.SUPERBLOCK
        )
        self._seg_free = list(range(self._n_segments))
        root = _Node(1, FT_DIR)
        self._nodes[1] = root
        self._dirs[1] = {}
        self._nat[1] = 0
        self._write_node(root)
        self.checkpoint()

    def mount(self) -> None:
        raw = self.device.read_blocks(0, 1, StructKind.SUPERBLOCK)
        fields = struct.unpack_from(_SB_FMT, raw)
        if fields[0] != _SB_MAGIC:
            raise FSError("not an F2FS device")
        (_m, _v, total, cp, nat_s, nat_b, sit_s, sit_b, main_s) = fields
        self._cp_start = cp
        self._nat_start = nat_s
        self._nat_blocks = nat_b
        self._sit_start = sit_s
        self._sit_blocks = sit_b
        self._main_start = main_s
        self._n_segments = (total - main_s) // _SEGMENT_BLOCKS
        self._load_checkpoint()

    def _nat_copy_start(self, version: int) -> int:
        return self._nat_start + (version % 2) * self._nat_blocks

    def _sit_copy_start(self, version: int) -> int:
        return self._sit_start + (version % 2) * self._sit_blocks

    # ------------------------------------------------------------------ #
    # checkpointing (NAT + SIT + CP pack)
    # ------------------------------------------------------------------ #

    def checkpoint(self) -> None:
        """Persist NAT, SIT, and the checkpoint block (§3.2 'F2FS manages
        node and data blocks with a log structure')."""
        # NAT: array of (node_id, blkaddr) pairs, dense encoding.
        nat_img = bytearray(self._nat_blocks * self.P)
        items = sorted(self._nat.items())
        struct.pack_into("<I", nat_img, 0, len(items))
        off = 4
        for node_id, blk in items:
            if off + 8 > len(nat_img):
                raise NoSpace("NAT overflow")
            struct.pack_into("<II", nat_img, off, node_id, blk)
            off += 8
        # Write the copies the *next* CP version names; the active
        # copies stay intact until the CP block lands.
        version = self._cp_version + 1
        self.device.write_blocks(
            self._nat_copy_start(version), bytes(nat_img), StructKind.DATA_PTR
        )
        # SIT: valid count per segment (2 B each).
        sit_img = bytearray(self._sit_blocks * self.P)
        for seg, valid in self._sit_valid.items():
            struct.pack_into("<H", sit_img, seg * 2, valid)
        self.device.write_blocks(
            self._sit_copy_start(version), bytes(sit_img), StructKind.BITMAP
        )
        self._cp_version += 1
        cp = struct.pack(
            _CP_FMT, _SB_MAGIC, 1, self._cp_version, self._next_ino
        )
        slot = self._cp_start + (self._cp_version % 2)
        self.device.write_blocks(
            slot, cp + bytes(self.P - len(cp)), StructKind.SUPERBLOCK
        )
        # The checkpoint is durable: stale pre-checkpoint blocks can go.
        # Ascending runs that are adjacent in the free order collapse
        # into one ranged TRIM; the free order itself is preserved (the
        # firmware's invalidation bookkeeping is order-sensitive).
        pending = self._pending_trim
        if pending:
            start = prev = pending[0]
            for blk in pending[1:]:
                if blk != prev + 1:
                    self.device.trim(start, prev - start + 1)
                    start = blk
                prev = blk
            self.device.trim(start, prev - start + 1)
        self._pending_trim.clear()
        self._seg_free.extend(self._pending_free_segs)
        self._pending_free_segs.clear()
        self._dirty_since_cp = 0
        self._cp_nids = set(self._nat)
        self._fsynced_since_cp.clear()

    def _load_checkpoint(self) -> None:
        best_version = 0
        best_next_ino = 2
        for slot in (self._cp_start, self._cp_start + 1):
            raw = self.device.read_blocks(slot, 1, StructKind.SUPERBLOCK)
            magic, _v, version, next_ino = struct.unpack_from(_CP_FMT, raw)
            if magic == _SB_MAGIC and version > best_version:
                best_version = version
                best_next_ino = next_ino
        self._cp_version = best_version
        self._next_ino = best_next_ino
        nat_img = self.device.read_blocks(
            self._nat_copy_start(best_version),
            self._nat_blocks,
            StructKind.DATA_PTR,
        )
        (count,) = struct.unpack_from("<I", nat_img, 0)
        self._nat = {}
        off = 4
        for _ in range(count):
            node_id, blk = struct.unpack_from("<II", nat_img, off)
            self._nat[node_id] = blk
            off += 8
        sit_img = self.device.read_blocks(
            self._sit_copy_start(best_version),
            self._sit_blocks,
            StructKind.BITMAP,
        )
        self._sit_valid = {}
        used_segs: Set[int] = set()
        for seg in range(self._n_segments):
            (valid,) = struct.unpack_from("<H", sit_img, seg * 2)
            if valid:
                self._sit_valid[seg] = valid
                used_segs.add(seg)
        self._seg_free = [
            s for s in range(self._n_segments) if s not in used_segs
        ]
        self._node_block_of = {blk: nid for nid, blk in self._nat.items()}
        self._cp_nids = set(self._nat)
        self._fsynced_since_cp = set()
        self._active_node_seg = None
        self._active_data_seg = None

    def _maybe_checkpoint(self) -> None:
        self._dirty_since_cp += 1
        if self._dirty_since_cp >= self.checkpoint_interval:
            self.checkpoint()

    # ------------------------------------------------------------------ #
    # segment allocation and cleaning
    # ------------------------------------------------------------------ #

    def _seg_base(self, seg: int) -> int:
        return self._main_start + seg * _SEGMENT_BLOCKS

    def _alloc_block(self, for_node: bool) -> int:
        if for_node:
            seg, off = self._active_node_seg, self._active_node_off
        else:
            seg, off = self._active_data_seg, self._active_data_off
        if seg is None or off >= _SEGMENT_BLOCKS:
            seg = self._take_free_segment()
            off = 0
        blk = self._seg_base(seg) + off
        off += 1
        if for_node:
            self._active_node_seg, self._active_node_off = seg, off
        else:
            self._active_data_seg, self._active_data_off = seg, off
        self._sit_valid[seg] = self._sit_valid.get(seg, 0) + 1
        return blk

    def _take_free_segment(self) -> int:
        if len(self._seg_free) <= 2 and not self._cleaning:
            self._clean_segment()
        if not self._seg_free and self._pending_free_segs:
            # Force a checkpoint to release the pending segments.
            self.checkpoint()
        if not self._seg_free:
            raise NoSpace("no free segments")
        return self._seg_free.pop(0)

    def _invalidate_block(self, blk: int) -> None:
        if blk <= 0:
            return
        seg = (blk - self._main_start) // _SEGMENT_BLOCKS
        if seg in self._sit_valid:
            self._sit_valid[seg] -= 1
            if self._sit_valid[seg] <= 0:
                del self._sit_valid[seg]
                if seg not in (self._active_node_seg, self._active_data_seg):
                    self._pending_free_segs.append(seg)
        self._block_owner.pop(blk, None)
        self._node_block_of.pop(blk, None)
        self._pending_trim.append(blk)

    def _clean_segment(self) -> None:
        """Migrate valid data blocks out of the fullest-invalid segment."""
        victim = None
        best = _SEGMENT_BLOCKS + 1
        for seg, valid in self._sit_valid.items():
            if seg in (self._active_node_seg, self._active_data_seg):
                continue
            if valid < best:
                victim, best = seg, valid
        if victim is None:
            return
        base = self._seg_base(victim)
        self.stats.bump("f2fs_segment_cleanings")
        # Guard against re-entry: migrations allocate blocks, which must
        # not trigger a nested cleaning pass.
        self._cleaning = True
        try:
            self._migrate_segment(victim, base)
        finally:
            self._cleaning = False

    def _migrate_segment(self, victim: int, base: int) -> None:
        for blk in range(base, base + _SEGMENT_BLOCKS):
            owner = self._block_owner.get(blk)
            if owner is not None:
                ino, pidx = owner
                node = self._get_node(ino)
                if pidx < len(node.ptrs) and node.ptrs[pidx] == blk:
                    data = self.device.read_blocks(blk, 1, StructKind.DATA)
                    new_blk = self._alloc_block(for_node=False)
                    self.device.write_blocks(new_blk, data, StructKind.DATA)
                    node.ptrs[pidx] = new_blk
                    self._block_owner[new_blk] = (ino, pidx)
                    node.dirty = True
                self._invalidate_block(blk)
                continue
            nid = self._node_block_of.get(blk)
            if nid is not None and self._nat.get(nid) == blk:
                # Migrate a live node block by rewriting the whole node.
                ino = _owner_ino(nid)
                try:
                    node = self._get_node(ino)
                except FSError:
                    self._invalidate_block(blk)
                    continue
                self._write_node(node)
        self._sit_valid.pop(victim, None)
        self._pending_free_segs.append(victim)

    # ------------------------------------------------------------------ #
    # node I/O
    # ------------------------------------------------------------------ #

    def _encode_node(self, node: _Node) -> Tuple[bytes, List[List[int]]]:
        """Returns (inode node block image, indirect pointer block images)."""
        direct = node.ptrs[: self._direct_ptrs]
        rest = node.ptrs[self._direct_ptrs :]
        indirect_blocks: List[List[int]] = []
        while rest:
            indirect_blocks.append(rest[: self._indirect_ptrs])
            rest = rest[self._indirect_ptrs :]
        self._node_seq += 1
        hdr = struct.pack(
            _NODE_HDR_FMT,
            _NODE_MAGIC,
            node.ino,
            self._cp_version + 1,
            self._node_seq,
            1 if self._writing_fsync_node else 0,
            node.mode,
            node.links,
            0,
            node.size,
            node.mtime,
            len(direct),
            len(indirect_blocks),
        )
        body = bytearray(hdr)
        raw_name = node.name.encode()[:_NAME_CAP]
        body += struct.pack("<IH", node.parent, len(raw_name)) + raw_name
        body += bytes(_NODE_HDR - len(body))
        for p in direct:
            body += struct.pack("<I", p)
        body += bytes(self.P - len(body))
        return bytes(body[: self.P]), indirect_blocks

    def _write_node(self, node: _Node, fsync: bool = False) -> None:
        """Write a node (and its indirect blocks) out of place.

        ``fsync`` marks the node block so roll-forward recovery (§ crash
        semantics) can restore it from the node log after a crash, even
        though the NAT entry only lands at the next checkpoint.
        """
        self._writing_fsync_node = fsync
        image, indirect_blocks = self._encode_node(node)
        self._writing_fsync_node = False
        # Indirect pointer blocks first, recorded in the NAT.
        indirect_ids = []
        for i, ptr_list in enumerate(indirect_blocks):
            nid = _indirect_nid(node.ino, i)
            blk = self._alloc_block(for_node=True)
            self._node_seq += 1
            img = bytearray(
                struct.pack(
                    _IND_HDR_FMT, _NODE_MAGIC, nid, self._cp_version + 1,
                    self._node_seq, len(ptr_list),
                )
            )
            for p in ptr_list:
                img += struct.pack("<I", p)
            img += bytes(self.P - len(img))
            old = self._nat.get(nid, 0)
            self.device.write_blocks(blk, bytes(img), StructKind.DATA_PTR)
            if old:
                self._invalidate_block(old)
            self._nat[nid] = blk
            self._node_block_of[blk] = nid
            indirect_ids.append(nid)
        blk = self._alloc_block(for_node=True)
        old = self._nat.get(node.ino, 0)
        self.device.write_blocks(blk, image, StructKind.INODE)
        if old:
            self._invalidate_block(old)
        self._nat[node.ino] = blk
        self._node_block_of[blk] = node.ino
        node.dirty = False
        self._maybe_checkpoint()

    def _get_node(self, ino: int) -> _Node:
        node = self._nodes.get(ino)
        if node is not None:
            return node
        blk = self._nat.get(ino)
        if blk is None or blk == 0:
            raise FSError(f"node {ino} not found")
        raw = self.device.read_blocks(blk, 1, StructKind.INODE)
        (
            magic, nino, _cpv, _seq, _fsynced, mode, links, _pad,
            size, mtime, nptrs, nindirect,
        ) = struct.unpack_from(_NODE_HDR_FMT, raw)
        if magic != _NODE_MAGIC:
            raise FSError(f"node {ino}: bad node block at {blk}")
        node = _Node(nino, mode)
        node.links = links
        node.size = size
        node.mtime = mtime
        hdr_len = struct.calcsize(_NODE_HDR_FMT)
        parent, name_len = struct.unpack_from("<IH", raw, hdr_len)
        node.parent = parent
        node.name = raw[hdr_len + 6 : hdr_len + 6 + name_len].decode(
            errors="replace"
        )
        node.ptrs = [
            struct.unpack_from("<I", raw, _NODE_HDR + i * 4)[0]
            for i in range(nptrs)
        ]
        for i in range(nindirect):
            nid = _indirect_nid(ino, i)
            iblk = self._nat.get(nid)
            if iblk:
                iraw = self.device.read_blocks(iblk, 1, StructKind.DATA_PTR)
                (_m, _nid, _cpv2, _seq2, count) = struct.unpack_from(
                    _IND_HDR_FMT, iraw
                )
                node.ptrs.extend(
                    struct.unpack_from("<I", iraw, _IND_HDR + j * 4)[0]
                    for j in range(count)
                )
        node.dirty = False
        for pidx, b in enumerate(node.ptrs):
            if b:
                self._block_owner[b] = (ino, pidx)
        self._nodes[ino] = node
        return node

    # ------------------------------------------------------------------ #
    # directories (dentry blocks are ordinary file data, rewritten
    # out-of-place on every change)
    # ------------------------------------------------------------------ #

    def _load_dir(self, ino: int) -> Dict[str, Tuple[int, int]]:
        cached = self._dirs.get(ino)
        if cached is not None:
            return cached
        node = self._get_node(ino)
        entries: Dict[str, Tuple[int, int]] = {}
        for blk in node.ptrs:
            if not blk:
                continue
            raw = self.device.read_blocks(blk, 1, StructKind.DENTRY)
            for _off, _size, entry_ino, ftype, name in layout.decode_dentries(
                raw
            ):
                if entry_ino:
                    entries[name] = (entry_ino, ftype)
        self._dirs[ino] = entries
        return entries

    def _flush_dir(self, ino: int) -> None:
        """Rewrite the directory's dentry blocks out of place."""
        node = self._get_node(ino)
        entries = self._dirs[ino]
        records = b"".join(
            layout.encode_dentry(eino, ftype, name)
            for name, (eino, ftype) in sorted(entries.items())
        )
        n_blocks = max(1, -(-len(records) // self.P))
        for old in node.ptrs:
            self._invalidate_block(old)
        node.ptrs = []
        for i in range(n_blocks):
            chunk = records[i * self.P : (i + 1) * self.P]
            blk = self._alloc_block(for_node=False)
            self.device.write_blocks(
                blk, chunk + bytes(self.P - len(chunk)), StructKind.DENTRY
            )
            node.ptrs.append(blk)
            self._block_owner[blk] = (ino, i)
        node.size = len(records)
        node.mtime = self.clock.now
        self._write_node(node)

    # ------------------------------------------------------------------ #
    # BaseFileSystem hooks
    # ------------------------------------------------------------------ #

    def _root_ino(self) -> int:
        return 1

    def _is_dir(self, ino: int) -> bool:
        return self._get_node(ino).is_dir

    def _dir_lookup(self, dir_ino: int, name: str) -> Optional[int]:
        entry = self._load_dir(dir_ino).get(name)
        return entry[0] if entry else None

    def _alloc_ino(self) -> int:
        ino = self._next_ino
        self._next_ino += 1
        return ino

    def _create_file(self, dir_ino: int, name: str) -> int:
        return self._create(dir_ino, name, FT_FILE)

    def _create_dir(self, dir_ino: int, name: str) -> int:
        return self._create(dir_ino, name, FT_DIR)

    def _create(self, dir_ino: int, name: str, ftype: int) -> int:
        entries = self._load_dir(dir_ino)
        if name in entries:
            raise FileExists(name)
        ino = self._alloc_ino()
        node = _Node(ino, ftype)
        node.mtime = self.clock.now
        node.parent = dir_ino
        node.name = name
        self._nodes[ino] = node
        if ftype == FT_DIR:
            self._dirs[ino] = {}
        self._write_node(node)
        entries[name] = (ino, ftype)
        self._flush_dir(dir_ino)
        return ino

    def _remove_file(self, dir_ino: int, name: str, ino: int) -> None:
        node = self._get_node(ino)
        entries = self._load_dir(dir_ino)
        del entries[name]
        self._flush_dir(dir_ino)
        node.links -= 1
        if node.links <= 0:
            self._release(node)
        else:
            self._write_node(node)

    def _release(self, node: _Node) -> None:
        self.page_cache.drop_inode(node.ino)
        for blk in node.ptrs:
            self._invalidate_block(blk)
        old = self._nat.pop(node.ino, None)
        if old:
            self._invalidate_block(old)
        i = 0
        while _indirect_nid(node.ino, i) in self._nat:
            self._invalidate_block(self._nat.pop(_indirect_nid(node.ino, i)))
            i += 1
        self._nodes.pop(node.ino, None)
        self._dirs.pop(node.ino, None)
        self._maybe_checkpoint()

    def _remove_dir(self, dir_ino: int, name: str, ino: int) -> None:
        if self._load_dir(ino):
            raise DirectoryNotEmpty(name)
        entries = self._load_dir(dir_ino)
        del entries[name]
        self._flush_dir(dir_ino)
        self._release(self._get_node(ino))

    def _rename(
        self, src_dir: int, src_name: str, dst_dir: int, dst_name: str
    ) -> None:
        src_entries = self._load_dir(src_dir)
        ino, ftype = src_entries.pop(src_name)
        dst_entries = self._load_dir(dst_dir)
        existing = dst_entries.get(dst_name)
        if existing is not None:
            target = self._get_node(existing[0])
            if target.is_dir:
                raise FileExists(dst_name)
            target.links -= 1
            if target.links <= 0:
                self._release(target)
        dst_entries[dst_name] = (ino, ftype)
        moved = self._get_node(ino)
        moved.parent = dst_dir
        moved.name = dst_name
        moved.dirty = True
        self._flush_dir(src_dir)
        if dst_dir != src_dir:
            self._flush_dir(dst_dir)

    def _readdir(self, ino: int) -> List[str]:
        return sorted(self._load_dir(ino))

    def _stat(self, ino: int) -> Stat:
        node = self._get_node(ino)
        return Stat(
            ino=ino,
            size=node.size,
            is_dir=node.is_dir,
            nlink=node.links,
            mtime_ns=node.mtime,
            ctime_ns=node.mtime,
        )

    def _file_size(self, ino: int) -> int:
        return self._get_node(ino).size

    # ------------------------------------------------------------------ #
    # data path (out-of-place)
    # ------------------------------------------------------------------ #

    def _read(self, ino: int, offset: int, length: int, direct: bool) -> bytes:
        node = self._get_node(ino)
        if offset >= node.size:
            return b""
        length = min(length, node.size - offset)
        out = bytearray()
        pos = offset
        while pos < offset + length:
            pidx = pos // self.P
            poff = pos % self.P
            n = min(self.P - poff, offset + length - pos)
            page = None if direct else self.page_cache.lookup(ino, pidx)
            if page is None:
                blk = node.ptrs[pidx] if pidx < len(node.ptrs) else 0
                data = (
                    self.device.read_blocks(blk, 1, StructKind.DATA)
                    if blk
                    else bytes(self.P)
                )
                if not direct:
                    page = self.page_cache.install(
                        ino, pidx, data, self._evict_writeback
                    )
                    out += page.data[poff : poff + n]
                else:
                    out += data[poff : poff + n]
            else:
                self.clock.advance(self.timing.host_cache_hit_ns)
                out += page.data[poff : poff + n]
            pos += n
        self.clock.advance(self.timing.host_memcpy_ns(length))
        return bytes(out)

    def _write(self, ino: int, offset: int, data: bytes, direct: bool) -> int:
        node = self._get_node(ino)
        end = offset + len(data)
        pos = offset
        i = 0
        while i < len(data):
            pidx = pos // self.P
            poff = pos % self.P
            n = min(self.P - poff, len(data) - i)
            while len(node.ptrs) <= pidx:
                node.ptrs.append(0)
            page = self.page_cache.lookup(ino, pidx)
            if page is None:
                old_blk = node.ptrs[pidx]
                if old_blk and (poff or n < self.P) and pos < node.size:
                    base = self.device.read_blocks(old_blk, 1, StructKind.DATA)
                else:
                    base = bytes(self.P)
                page = self.page_cache.install(
                    ino, pidx, base, self._evict_writeback
                )
            self.page_cache.mark_page_dirty(page, cow=False)
            page.data[poff : poff + n] = data[i : i + n]
            i += n
            pos += n
        self.clock.advance(self.timing.host_memcpy_ns(len(data)))
        if end > node.size:
            node.size = end
        node.mtime = self.clock.now
        node.dirty = True
        if direct:
            self._flush_pages(ino)
            self._write_node(node)
        return len(data)

    def _flush_pages(self, ino: int) -> None:
        """Write dirty pages out of place and update pointers."""
        node = self._get_node(ino)
        changed = False
        for pidx, page in self.page_cache.dirty_pages(ino):
            old = node.ptrs[pidx] if pidx < len(node.ptrs) else 0
            blk = self._alloc_block(for_node=False)
            self.device.write_blocks(blk, bytes(page.data), StructKind.DATA)
            while len(node.ptrs) <= pidx:
                node.ptrs.append(0)
            node.ptrs[pidx] = blk
            self._block_owner[blk] = (ino, pidx)
            if old:
                self._invalidate_block(old)
            page.clean()
            changed = True
        if changed:
            node.dirty = True

    def _evict_writeback(self, ino: int, pidx: int, page: CachedPage) -> None:
        node = self._get_node(ino)
        old = node.ptrs[pidx] if pidx < len(node.ptrs) else 0
        blk = self._alloc_block(for_node=False)
        self.device.write_blocks(blk, bytes(page.data), StructKind.DATA)
        while len(node.ptrs) <= pidx:
            node.ptrs.append(0)
        node.ptrs[pidx] = blk
        self._block_owner[blk] = (ino, pidx)
        if old:
            self._invalidate_block(old)
        node.dirty = True
        page.clean()

    def _truncate(self, ino: int, size: int) -> None:
        node = self._get_node(ino)
        keep = -(-size // self.P)
        for pidx in range(keep, len(node.ptrs)):
            self._invalidate_block(node.ptrs[pidx])
        node.ptrs = node.ptrs[:keep]
        space = self.page_cache.space(ino)
        for pidx in [p for p in space.pages if p >= keep]:
            space.drop(pidx)
        # Zero the partial tail page so extension reads zeros (POSIX).
        # The tail may live only in the page cache (blocks are allocated
        # lazily at flush time), so the check must not require a block.
        poff = size % self.P
        if poff:
            pidx = keep - 1
            page = self.page_cache.lookup(ino, pidx)
            if page is None and pidx < len(node.ptrs) and node.ptrs[pidx]:
                data = self.device.read_blocks(
                    node.ptrs[pidx], 1, StructKind.DATA
                )
                page = self.page_cache.install(
                    ino, pidx, data, self._evict_writeback
                )
            if page is not None:
                self.page_cache.mark_page_dirty(page, cow=False)
                page.data[poff:] = bytes(self.P - poff)
        node.size = size
        node.mtime = self.clock.now
        self._write_node(node)

    def _fsync(self, ino: int, data_only: bool) -> None:
        node = self._get_node(ino)
        self._flush_pages(ino)
        # Roll-forward recovery reattaches this node through its
        # parent/name footer, which only works if the parent itself is
        # reachable from the checkpointed NAT.  Real F2FS falls back to
        # a full checkpoint in that case (need_do_checkpoint(): parent
        # i_pino not checkpointed).
        parent_cp = (
            node.parent == 0
            or node.parent in self._cp_nids
            or node.parent in self._fsynced_since_cp
        )
        if not parent_cp:
            if node.dirty:
                self._write_node(node)
            self.checkpoint()
            return
        # A clean node can still be unrecoverable: its latest image may
        # have been written without the fsync mark and its NAT entry not
        # yet checkpointed, so roll-forward would skip it.
        recoverable = (
            ino in self._cp_nids or ino in self._fsynced_since_cp
        )
        if node.dirty or not recoverable:
            self._write_node(node, fsync=True)
            self._fsynced_since_cp.add(ino)

    def _sync(self) -> None:
        for ino, pidx, page in self.page_cache.all_dirty():
            self._evict_writeback(ino, pidx, page)
        for node in list(self._nodes.values()):
            if node.dirty:
                self._write_node(node)
        self.checkpoint()

    # ------------------------------------------------------------------ #
    # unmount / crash / remount
    # ------------------------------------------------------------------ #

    def unmount(self) -> None:
        self._sync()
        self.device.flush_all()

    def crash(self) -> None:
        super().crash()
        self.page_cache.drop_all()
        self._reset_caches()

    def remount(self) -> Dict[str, float]:
        """Recover: load the last checkpoint, then roll forward fsynced
        nodes written after it (F2FS's fsync recovery)."""
        fw_stats = self.device.recover()
        self.mount()
        fw_stats["rolled_forward"] = self._roll_forward()
        return fw_stats

    def _roll_forward(self) -> int:
        """Scan the node log for fsync-marked nodes newer than the loaded
        checkpoint and re-adopt them into the NAT/SIT.

        Real F2FS chains fsynced node blocks from the checkpointed log
        position; this scan walks the whole main area instead (same
        result, simpler bookkeeping) and charges the flash reads.
        """
        target_version = self._cp_version + 1
        hdr_len = struct.calcsize(_NODE_HDR_FMT)
        # newest (by seq) recovered image per node id
        found_nodes: Dict[int, Tuple[int, int, bytes]] = {}
        found_indirect: Dict[int, Tuple[int, int, bytes]] = {}
        total_blocks = self._n_segments * _SEGMENT_BLOCKS
        chunk = 32
        for base in range(0, total_blocks, chunk):
            n = min(chunk, total_blocks - base)
            raw = self.device.read_blocks(
                self._main_start + base, n, StructKind.INODE
            )
            for i in range(n):
                page = raw[i * self.P : (i + 1) * self.P]
                if len(page) < hdr_len:
                    continue
                magic = struct.unpack_from("<I", page)[0]
                if magic != _NODE_MAGIC:
                    continue
                blk = self._main_start + base + i
                fields = struct.unpack_from(_NODE_HDR_FMT, page)
                _m, nid, cpv, seq = fields[0], fields[1], fields[2], fields[3]
                fsynced = fields[4]
                if cpv >= target_version and nid < _INDIRECT_BASE:
                    if fsynced and (
                        nid not in found_nodes
                        or found_nodes[nid][0] < seq
                    ):
                        found_nodes[nid] = (seq, blk, page)
                elif cpv >= target_version:
                    _m2, nid2, _c2, seq2, _count = struct.unpack_from(
                        _IND_HDR_FMT, page
                    )
                    if (
                        nid2 not in found_indirect
                        or found_indirect[nid2][0] < seq2
                    ):
                        found_indirect[nid2] = (seq2, blk, page)
        if not found_nodes:
            return 0
        # Adopt the recovered nodes: NAT entries plus SIT valid counts for
        # the node blocks, their indirect blocks, and their data blocks.
        def mark_used(blk: int) -> None:
            seg = (blk - self._main_start) // _SEGMENT_BLOCKS
            self._sit_valid[seg] = self._sit_valid.get(seg, 0) + 1
            if seg in self._seg_free:
                self._seg_free.remove(seg)

        recovered = 0
        for nid, (seq, blk, page) in sorted(found_nodes.items()):
            fields = struct.unpack_from(_NODE_HDR_FMT, page)
            nindirect = fields[11]
            self._nat[nid] = blk
            self._node_block_of[blk] = nid
            mark_used(blk)
            for i in range(nindirect):
                ind_nid = _indirect_nid(nid, i)
                if ind_nid in found_indirect:
                    _iseq, iblk, _ipage = found_indirect[ind_nid]
                    self._nat[ind_nid] = iblk
                    self._node_block_of[iblk] = ind_nid
                    mark_used(iblk)
            self._next_ino = max(self._next_ino, nid + 1)
            node = self._get_node(nid)
            for ptr in node.ptrs:
                if ptr:
                    mark_used(ptr)
            recovered += 1
        # Reattach dentries for recovered nodes whose parent rolled back
        # (F2FS stores parent + name in the node for exactly this).
        for nid in sorted(found_nodes):
            node = self._get_node(nid)
            if not node.parent or not node.name:
                continue
            try:
                entries = self._load_dir(node.parent)
            except FSError:
                continue  # parent unrecoverable: orphan node
            if node.name not in entries:
                entries[node.name] = (nid, node.mode)
                self._flush_dir(node.parent)
        # Persist the recovered state so a second crash keeps it.
        self.checkpoint()
        self._nodes.clear()
        self._dirs.clear()
        self._block_owner.clear()
        return recovered
