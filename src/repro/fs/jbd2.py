"""A JBD2-style physical block journal (Ext4 ordered mode, §3.3).

Commit writes a descriptor block, the images of every dirty metadata
block, and a commit block into the on-device journal area — the *double
write* the paper charges Ext4 with (30.7 % of its traffic on average).
Checkpointing later writes the journaled images in place; it is deferred
until the journal area fills (or unmount), so crash recovery genuinely
replays the journal.

Journal record format (all little-endian):

* descriptor: magic ``0x1BD20001``, type 1, seq (8 B), count (4 B),
  then ``count`` target block numbers (8 B each);
* followed by ``count`` raw block images;
* commit block: magic, type 2, seq.

Journal block 0 is a header holding the sequence number up to which
transactions have been checkpointed.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.stats.traffic import StructKind
from repro.trace import tracer as trace

JMAGIC = 0x1BD20001
_DESC_FMT = "<IIQI"
_COMMIT_FMT = "<IIQ"
_HEADER_FMT = "<IIQ"
TYPE_DESC = 1
TYPE_COMMIT = 2
TYPE_HEADER = 3


class JournalFullError(Exception):
    pass


class JBD2:
    """The journaling layer.  ``fs`` must provide:

    * ``device`` with ``read_blocks``/``write_blocks``;
    * ``_snapshot_block(blkno) -> bytes`` returning the current image of a
      managed metadata block;
    * ``_flush_ordered()`` writing back dirty data pages of inodes touched
      since the last commit (ordered mode: data before metadata).
    """

    def __init__(self, fs, journal_start: int, journal_blocks: int) -> None:
        if journal_blocks < 8:
            raise ValueError("journal too small")
        self.fs = fs
        self.start = journal_start
        self.nblocks = journal_blocks
        self.page_size = fs.device.page_size
        self.seq = 1
        self.head = 1  # next free slot within the journal area
        self.checkpoint_seq = 0
        #: blocks committed to the journal but not yet written in place:
        #: blkno -> (image at commit time, kind)
        self.pending: Dict[int, Tuple[bytes, StructKind]] = {}
        #: blocks dirtied since the last commit: blkno -> kind
        self.running: Dict[int, StructKind] = {}
        #: journaled *data* block images (ByteFS data-journaling mode,
        #: §4.6: JBD2 combined with ByteFS transactions)
        self.running_data: Dict[int, bytes] = {}
        self.commits = 0
        self.checkpoints = 0

    # ------------------------------------------------------------------ #

    def mark_dirty(self, blkno: int, kind: StructKind) -> None:
        self.running[blkno] = kind

    def mark_dirty_data(self, blkno: int, image: bytes) -> None:
        """Stage a data block image for journaling (data-journal mode)."""
        self.running_data[blkno] = bytes(image)

    def forget(self, blkno: int) -> None:
        """Drop a freed block from the journal (JBD2's 'forget')."""
        self.running.pop(blkno, None)
        self.running_data.pop(blkno, None)
        self.pending.pop(blkno, None)

    def has_running(self) -> bool:
        return bool(self.running) or bool(self.running_data)

    def commit(self) -> None:
        """Commit the running transaction (ordered mode)."""
        if not self.running and not self.running_data:
            return
        _sp = trace.begin(
            "journal", "commit",
            n_blocks=len(self.running) + len(self.running_data),
        ) if trace.ENABLED else None
        try:
            self._commit()
        finally:
            if _sp is not None:
                trace.end(_sp)

    def _commit(self) -> None:
        self.fs._flush_ordered()
        images = {b: self.fs._snapshot_block(b) for b in self.running}
        for blkno, image in self.running_data.items():
            images.setdefault(blkno, image)
            self.running.setdefault(blkno, StructKind.DATA)
        self.running_data.clear()
        blknos = sorted(images)
        needed = 1 + len(blknos) + 1
        if needed > self.nblocks - 1:
            raise JournalFullError(
                f"transaction of {len(blknos)} blocks exceeds journal size"
            )
        if self.head + needed > self.nblocks:
            # Wrap: everything live must be checkpointed before reuse.
            self.checkpoint()
            self.head = 1
        desc = struct.pack(_DESC_FMT, JMAGIC, TYPE_DESC, self.seq, len(blknos))
        desc += b"".join(struct.pack("<Q", b) for b in blknos)
        desc += bytes(self.page_size - len(desc))
        commit = struct.pack(_COMMIT_FMT, JMAGIC, TYPE_COMMIT, self.seq)
        commit += bytes(self.page_size - len(commit))
        record = desc + b"".join(images[b] for b in blknos) + commit
        self.fs.device.write_blocks(
            self.start + self.head, record, StructKind.JOURNAL
        )
        self.head += needed
        for b in blknos:
            self.pending[b] = (images[b], self.running[b])
        self.running.clear()
        self.seq += 1
        self.commits += 1

    def checkpoint(self) -> None:
        """Write journaled images in place and advance the header."""
        if not self.pending:
            return
        _sp = trace.begin("journal", "checkpoint",
                          n_blocks=len(self.pending)) \
            if trace.ENABLED else None
        try:
            for blkno in sorted(self.pending):
                image, kind = self.pending[blkno]
                self.fs.device.write_blocks(blkno, image, kind)
            self.pending.clear()
            self.checkpoint_seq = self.seq - 1
            self._write_header()
            self.checkpoints += 1
        finally:
            if _sp is not None:
                trace.end(_sp)

    def _write_header(self) -> None:
        hdr = struct.pack(_HEADER_FMT, JMAGIC, TYPE_HEADER, self.checkpoint_seq)
        hdr += bytes(self.page_size - len(hdr))
        self.fs.device.write_blocks(self.start, hdr, StructKind.JOURNAL)

    # ------------------------------------------------------------------ #
    # crash recovery
    # ------------------------------------------------------------------ #

    def replay(self) -> int:
        """Scan the journal area and re-apply committed transactions.

        Returns the number of transactions replayed.  Incomplete records
        (descriptor without a matching commit block) are discarded, which
        is what makes un-fsynced Ext4 operations vanish after a crash.
        """
        _sp = trace.begin("journal", "replay") if trace.ENABLED else None
        try:
            return self._replay()
        finally:
            if _sp is not None:
                trace.end(_sp)

    def _replay(self) -> int:
        device = self.fs.device
        header = device.read_blocks(self.start, 1, StructKind.JOURNAL)
        checkpoint_seq = 0
        magic, btype, seq = struct.unpack_from(_HEADER_FMT, header)
        if magic == JMAGIC and btype == TYPE_HEADER:
            checkpoint_seq = seq
        txs: List[Tuple[int, Dict[int, bytes], Dict[int, StructKind]]] = []
        off = 1
        while off < self.nblocks:
            block = device.read_blocks(self.start + off, 1, StructKind.JOURNAL)
            magic, btype, seq, count = (
                struct.unpack_from(_DESC_FMT, block)
                if len(block) >= struct.calcsize(_DESC_FMT)
                else (0, 0, 0, 0)
            )
            if magic != JMAGIC or btype != TYPE_DESC:
                break
            blknos = [
                struct.unpack_from("<Q", block, struct.calcsize(_DESC_FMT) + 8 * i)[0]
                for i in range(count)
            ]
            if off + 1 + count + 1 > self.nblocks:
                break
            images_raw = device.read_blocks(
                self.start + off + 1, count, StructKind.JOURNAL
            )
            commit_block = device.read_blocks(
                self.start + off + 1 + count, 1, StructKind.JOURNAL
            )
            cmagic, ctype, cseq = struct.unpack_from(_COMMIT_FMT, commit_block)
            if cmagic != JMAGIC or ctype != TYPE_COMMIT or cseq != seq:
                break  # incomplete transaction: discard it and stop
            images = {
                b: images_raw[i * self.page_size : (i + 1) * self.page_size]
                for i, b in enumerate(blknos)
            }
            txs.append((seq, images, {}))
            off += 1 + count + 1
        replayed = 0
        for seq, images, _kinds in sorted(txs, key=lambda t: t[0]):
            if seq <= checkpoint_seq:
                continue
            for blkno in sorted(images):
                device.write_blocks(blkno, images[blkno], StructKind.JOURNAL)
            replayed += 1
        self.seq = max([t[0] for t in txs], default=0) + 1
        self.checkpoint_seq = self.seq - 1
        self.head = 1
        self.pending.clear()
        self.running.clear()
        if replayed:
            self._write_header()
        return replayed
