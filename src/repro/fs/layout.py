"""On-disk serialization for the Ext4-family file systems (§4.5).

Everything the file system persists has a real byte encoding, so crash
tests exercise genuine parse-from-device recovery:

* **superblock** — one page at block 0;
* **inode** — 128 B, split into a frequently-updated *lower* 64 B half
  (size, times, link count) and an *upper* half (extents), so a common
  metadata update touches a single 64 B line (ByteFS §4.5);
* **extents** — 16 B leaf nodes (logical page 8 B, start block 4 B,
  length 4 B); three fit inline in the inode's upper half, the rest spill
  into a dedicated extent block;
* **directory entries** — ino 4 B, file type 2 B, name length 2 B, name
  (≤ 255 B) padded to 8 B alignment; deletion writes a 4 B tombstone.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

SUPERBLOCK_MAGIC = 0xB17EF500
INODE_SIZE = 128
INODE_HALF = 64
INLINE_EXTENTS = 3
EXTENT_SIZE = 16
DENTRY_HEADER = 8
DENTRY_ALIGN = 8
MAX_NAME = 255

FT_FILE = 1
FT_DIR = 2

_SB_FMT = "<IIQQQQQQQQQQB"
_LOWER_FMT = "<QddHHI"          # size, mtime, ctime, links, mode, flags
_EXTENT_FMT = "<QII"            # logical page, start block, length
_UPPER_HDR_FMT = "<HHI"         # extent count, pad, extent block


@dataclass(frozen=True)
class SuperblockLayout:
    """Region offsets, all in absolute device blocks."""

    total_blocks: int
    n_inodes: int
    inode_bitmap_start: int
    inode_bitmap_blocks: int
    block_bitmap_start: int
    block_bitmap_blocks: int
    itable_start: int
    itable_blocks: int
    journal_start: int
    journal_blocks: int
    data_start: int
    clean: bool = True

    @staticmethod
    def compute(
        total_blocks: int,
        page_size: int,
        n_inodes: Optional[int] = None,
        journal_blocks: int = 64,
    ) -> "SuperblockLayout":
        """Lay out the metadata regions for a device of ``total_blocks``."""
        if n_inodes is None:
            n_inodes = max(64, total_blocks // 4)
        inodes_per_block = page_size // INODE_SIZE
        bits_per_block = page_size * 8
        ib_blocks = -(-n_inodes // bits_per_block)
        bb_blocks = -(-total_blocks // bits_per_block)
        it_blocks = -(-n_inodes // inodes_per_block)
        pos = 1
        ib_start = pos
        pos += ib_blocks
        bb_start = pos
        pos += bb_blocks
        it_start = pos
        pos += it_blocks
        j_start = pos
        pos += journal_blocks
        if pos >= total_blocks:
            raise ValueError(
                f"device too small: metadata needs {pos} of "
                f"{total_blocks} blocks"
            )
        return SuperblockLayout(
            total_blocks=total_blocks,
            n_inodes=n_inodes,
            inode_bitmap_start=ib_start,
            inode_bitmap_blocks=ib_blocks,
            block_bitmap_start=bb_start,
            block_bitmap_blocks=bb_blocks,
            itable_start=it_start,
            itable_blocks=it_blocks,
            journal_start=j_start,
            journal_blocks=journal_blocks,
            data_start=pos,
        )

    def encode(self, page_size: int) -> bytes:
        packed = struct.pack(
            _SB_FMT,
            SUPERBLOCK_MAGIC,
            1,
            self.total_blocks,
            self.n_inodes,
            self.inode_bitmap_start,
            self.inode_bitmap_blocks,
            self.block_bitmap_start,
            self.block_bitmap_blocks,
            self.itable_start,
            self.itable_blocks,
            self.journal_start,
            self.journal_blocks,
            1 if self.clean else 0,
        )
        return packed + bytes(page_size - len(packed))

    @staticmethod
    def decode(data: bytes) -> "SuperblockLayout":
        fields = struct.unpack_from(_SB_FMT, data)
        if fields[0] != SUPERBLOCK_MAGIC:
            raise ValueError("bad superblock magic: device not formatted")
        (
            _magic,
            _version,
            total_blocks,
            n_inodes,
            ib_start,
            ib_blocks,
            bb_start,
            bb_blocks,
            it_start,
            it_blocks,
            j_start,
            j_blocks,
            clean,
        ) = fields
        layout = SuperblockLayout(
            total_blocks=total_blocks,
            n_inodes=n_inodes,
            inode_bitmap_start=ib_start,
            inode_bitmap_blocks=ib_blocks,
            block_bitmap_start=bb_start,
            block_bitmap_blocks=bb_blocks,
            itable_start=it_start,
            itable_blocks=it_blocks,
            journal_start=j_start,
            journal_blocks=j_blocks,
            data_start=j_start + j_blocks,
            clean=bool(clean),
        )
        return layout


@dataclass
class Extent:
    """A run of contiguous file pages: file pages [logical, logical+length)
    live in device blocks [start, start+length)."""

    logical: int
    start: int
    length: int

    @property
    def logical_end(self) -> int:
        return self.logical + self.length

    def encode(self) -> bytes:
        return struct.pack(_EXTENT_FMT, self.logical, self.start, self.length)

    @staticmethod
    def decode(data: bytes) -> "Extent":
        logical, start, length = struct.unpack_from(_EXTENT_FMT, data)
        return Extent(logical, start, length)


@dataclass
class Inode:
    """In-memory inode, serialized as two 64 B halves."""

    ino: int
    mode: int = FT_FILE
    links: int = 1
    size: int = 0
    mtime: float = 0.0
    ctime: float = 0.0
    flags: int = 0
    extents: List[Extent] = field(default_factory=list)
    extent_block: int = 0  # 0 = none

    @property
    def is_dir(self) -> bool:
        return self.mode == FT_DIR

    # -- lower half: size, times, links, mode --------------------------- #

    def encode_lower(self) -> bytes:
        packed = struct.pack(
            _LOWER_FMT,
            self.size,
            self.mtime,
            self.ctime,
            self.links,
            self.mode,
            self.flags,
        )
        return packed + bytes(INODE_HALF - len(packed))

    def decode_lower(self, data: bytes) -> None:
        (
            self.size,
            self.mtime,
            self.ctime,
            self.links,
            self.mode,
            self.flags,
        ) = struct.unpack_from(_LOWER_FMT, data)

    # -- upper half: extent header + 3 inline extents ------------------- #

    def encode_upper(self) -> bytes:
        hdr = struct.pack(
            _UPPER_HDR_FMT, len(self.extents), 0, self.extent_block
        )
        body = b"".join(
            e.encode() for e in self.extents[:INLINE_EXTENTS]
        )
        packed = hdr + body
        return packed + bytes(INODE_HALF - len(packed))

    def decode_upper(self, data: bytes) -> int:
        """Parse the upper half; returns the total extent count (extents
        beyond the inline ones must be read from ``extent_block``)."""
        count, _pad, self.extent_block = struct.unpack_from(
            _UPPER_HDR_FMT, data
        )
        self.extents = []
        hdr = struct.calcsize(_UPPER_HDR_FMT)
        for i in range(min(count, INLINE_EXTENTS)):
            off = hdr + i * EXTENT_SIZE
            self.extents.append(Extent.decode(data[off : off + EXTENT_SIZE]))
        return count

    def encode(self) -> bytes:
        return self.encode_lower() + self.encode_upper()

    @staticmethod
    def decode(ino: int, data: bytes) -> Tuple["Inode", int]:
        """Returns (inode, total extent count)."""
        inode = Inode(ino)
        inode.decode_lower(data[:INODE_HALF])
        count = inode.decode_upper(data[INODE_HALF:INODE_SIZE])
        return inode, count

    def is_allocated(self) -> bool:
        return self.links > 0 and self.mode != 0


def encode_extent_block(extents: List[Extent], page_size: int) -> bytes:
    """Spilled extents (beyond the 3 inline ones) as one block image."""
    body = b"".join(e.encode() for e in extents)
    if len(body) > page_size:
        raise ValueError("too many extents for one extent block")
    return body + bytes(page_size - len(body))


def decode_extent_block(data: bytes, count: int) -> List[Extent]:
    out = []
    for i in range(count):
        off = i * EXTENT_SIZE
        out.append(Extent.decode(data[off : off + EXTENT_SIZE]))
    return out


# ---------------------------------------------------------------------- #
# directory entries
# ---------------------------------------------------------------------- #


def dentry_record_size(name_len: int) -> int:
    """Bytes one record occupies (header + name, 8 B aligned)."""
    return DENTRY_HEADER + -(-name_len // DENTRY_ALIGN) * DENTRY_ALIGN


# Pure memo cache: the value is a function of the key alone, so
# per-process copies diverging across shard workers can never change
# the encoded bytes — safe to keep module-level.
_DENTRY_CACHE: dict = {}  # repro: allow[CONC001]


def encode_dentry(ino: int, ftype: int, name: str) -> bytes:
    # Pure function of its arguments, and directory flushes re-encode
    # every live entry on each rewrite — memoize the record bytes.
    key = (ino, ftype, name)
    rec = _DENTRY_CACHE.get(key)
    if rec is not None:
        return rec
    raw = name.encode()
    if not 0 < len(raw) <= MAX_NAME:
        raise ValueError(f"bad name length {len(raw)}")
    rec = struct.pack("<IHH", ino, ftype, len(raw)) + raw
    size = dentry_record_size(len(raw))
    rec = rec + bytes(size - len(rec))
    if len(_DENTRY_CACHE) >= 65536:
        _DENTRY_CACHE.clear()
    _DENTRY_CACHE[key] = rec
    return rec


def decode_dentries(block: bytes):
    """Yield (offset, record_size, ino, ftype, name) for every record slot
    in a directory block, including tombstones (ino == 0)."""
    off = 0
    while off + DENTRY_HEADER <= len(block):
        ino, ftype, name_len = struct.unpack_from("<IHH", block, off)
        if ino == 0 and name_len == 0:
            break  # end of records in this block
        size = dentry_record_size(max(1, name_len))
        name = block[off + DENTRY_HEADER : off + DENTRY_HEADER + name_len].decode(
            errors="replace"
        )
        yield off, size, ino, ftype, name
        off += size
