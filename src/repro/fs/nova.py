"""A NOVA-like baseline: per-inode log-structured NVM file system.

NOVA (FAST '16) targets byte-addressable NVM; the paper mounts it on the
M-SSD by BAR-mapping the whole device (§5.1).  The properties that drive
its behaviour in the evaluation:

* **pure byte interface** — every access is an MMIO load/store; there is
  no host page cache (DAX), so reads always cross the interconnect and
  pay the high PCIe cacheline-read latency (NOVA "fails to exploit the
  spatial locality with the block interface", §5.2);
* **per-inode metadata logs** — every metadata change appends a log entry
  (out-of-place), doubling metadata write traffic relative to in-place
  schemes (§5.3);
* **copy-on-write data** — overwrites allocate fresh pages and write them
  whole, which is the page-granular CoW write amplification Figure 9
  charges NOVA with;
* writes are durable at completion, so ``fsync`` is a no-op.

On-device layout (pages): ``[0 superblock][inode table][log+data pages]``.
Free-space tracking is in DRAM and rebuilt on mount by walking the logs,
as in real NOVA.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Set, Tuple

from repro.fs.errors import (
    DirectoryNotEmpty,
    FileExists,
    FSError,
    NoSpace,
)
from repro.fs.vfs import BaseFileSystem, Stat
from repro.ssd.device import MSSD
from repro.stats.traffic import StructKind

_SB_MAGIC = 0x0A04A001
_SB_FMT = "<IIQQQ"
_NJ_MAGIC = 0x0A04A10E
_NJ_HDR = "<IH"             # magic, active record count
_INODE_FMT = "<HHHHQdIII"   # valid, mode, links, pad, size, mtime,
                            # log_head, log_tail_page, log_tail_off
_INODE_BYTES = 64
_ENTRY_HDR = "<HH"          # type, length
_E_ATTR = 1
_E_WRITE = 2
_E_DADD = 3
_E_DDEL = 4
_LOG_PAGE_DATA = 4088       # last 8 B of a log page: next-page pointer

FT_FILE = 1
FT_DIR = 2


class _MemInode:
    __slots__ = (
        "ino", "mode", "links", "size", "mtime",
        "log_head", "log_tail_page", "log_tail_off",
        "pages", "entries_loaded", "log_pages",
    )

    def __init__(self, ino: int, mode: int) -> None:
        self.ino = ino
        self.mode = mode
        self.links = 1 if mode == FT_FILE else 2
        self.size = 0
        self.mtime = 0.0
        self.log_head = 0
        self.log_tail_page = 0
        self.log_tail_off = 0
        self.pages: Dict[int, int] = {}   # file page idx -> device page
        self.entries_loaded = False
        self.log_pages: List[int] = []

    @property
    def is_dir(self) -> bool:
        return self.mode == FT_DIR


class NovaFS(BaseFileSystem):
    """NOVA-like per-inode-log file system over the byte interface."""

    name = "nova"

    def __init__(
        self,
        device: MSSD,
        format_device: bool = True,
        n_inodes: int = 4096,
    ) -> None:
        super().__init__(device.clock, device.stats, device.config.timing)
        self.device = device
        self.P = device.page_size
        self.n_inodes = n_inodes
        self._itable_start = 1
        self._itable_pages = -(-n_inodes * _INODE_BYTES // self.P)
        # One page of lite journal between the inode table and data.
        self._journal_page = self._itable_start + self._itable_pages
        self._data_start = self._journal_page + 1
        self._inodes: Dict[int, _MemInode] = {}
        self._dirs: Dict[int, Dict[str, Tuple[int, int]]] = {}
        self._free_cursor = self._data_start
        self._free_pages: List[int] = []
        self._used_pages: Set[int] = set()
        self._next_ino = 2
        self._journal_active = False
        self._pending_frees: Set[int] = set()
        if format_device:
            self.mkfs()
        else:
            self.mount()

    # ------------------------------------------------------------------ #
    # format / mount
    # ------------------------------------------------------------------ #

    def mkfs(self) -> None:
        sb = struct.pack(
            _SB_FMT, _SB_MAGIC, 1, self.n_inodes,
            self._itable_start, self._data_start,
        )
        self.device.write_blocks(
            0, sb + bytes(self.P - len(sb)), StructKind.SUPERBLOCK
        )
        # Zero the inode table region (block interface at mkfs time only).
        self.device.write_blocks(
            self._itable_start,
            bytes((self._itable_pages + 1) * self.P),
            StructKind.INODE,
        )
        root = _MemInode(1, FT_DIR)
        root.entries_loaded = True
        self._inodes[1] = root
        self._dirs[1] = {}
        self._persist_inode_entry(root)

    def mount(self) -> None:
        raw = self.device.read_blocks(0, 1, StructKind.SUPERBLOCK)
        magic, _v, n_inodes, itable, data_start = struct.unpack_from(
            _SB_FMT, raw
        )
        if magic != _SB_MAGIC:
            raise FSError("not a NOVA device")
        self.n_inodes = n_inodes
        self._itable_start = itable
        self._data_start = data_start
        self._journal_page = data_start - 1
        self._itable_pages = self._journal_page - itable
        self._inodes = {}
        self._dirs = {}
        self._used_pages = set()
        self._free_pages = []
        self._free_cursor = self._data_start
        self._next_ino = 2
        self._journal_active = False
        self._pending_frees = set()
        # Undo any interrupted multi-inode update before trusting the
        # inode table (NOVA's lite-journal recovery).
        self._lite_journal_rollback()
        # Rebuild DRAM state by scanning the inode table and walking every
        # valid inode's log (NOVA's recovery scan).
        for ino in range(1, self.n_inodes):
            entry = self._load_inode_entry(ino)
            if entry is None:
                continue
            self._inodes[ino] = entry
            self._replay_log(entry)
            self._next_ino = max(self._next_ino, ino + 1)
        if self._used_pages:
            self._free_cursor = max(self._used_pages) + 1

    # ------------------------------------------------------------------ #
    # inode table entries (64 B each, byte interface)
    # ------------------------------------------------------------------ #

    def _inode_addr(self, ino: int) -> int:
        return self._itable_start * self.P + ino * _INODE_BYTES

    def _persist_inode_entry(self, inode: _MemInode) -> None:
        packed = struct.pack(
            _INODE_FMT,
            1, inode.mode, inode.links, 0,
            inode.size, inode.mtime,
            inode.log_head, inode.log_tail_page, inode.log_tail_off,
        )
        packed += bytes(_INODE_BYTES - len(packed))
        self.device.store(self._inode_addr(inode.ino), packed, StructKind.INODE)

    def _persist_tail(self, inode: _MemInode) -> None:
        """Persist just the log-tail/size fields (one 64 B line anyway)."""
        self._persist_inode_entry(inode)

    def _invalidate_inode_entry(self, ino: int) -> None:
        self.device.store(self._inode_addr(ino), b"\x00\x00", StructKind.INODE)

    # ------------------------------------------------------------------ #
    # lite journal (NOVA's mechanism for atomic multi-inode updates,
    # e.g. cross-directory rename): snapshot the affected 64 B inode
    # table entries, mutate, then clear.  Log appends past a persisted
    # tail are invisible, so rolling the entries back undoes everything.
    # ------------------------------------------------------------------ #

    def _lite_journal_begin(self, inos: List[int]) -> None:
        base = self._journal_page * self.P
        for i, ino in enumerate(inos):
            addr = self._inode_addr(ino)
            old = self.device.load(addr, _INODE_BYTES, StructKind.JOURNAL)
            self.device.store(
                base + 64 + 72 * i,
                struct.pack("<Q", addr) + old,
                StructKind.JOURNAL,
            )
        # Records first, header (one cacheline, atomic) second.
        self.device.store(
            base, struct.pack(_NJ_HDR, _NJ_MAGIC, len(inos)),
            StructKind.JOURNAL,
        )
        self._journal_active = True

    def _lite_journal_commit(self) -> None:
        self.device.store(
            self._journal_page * self.P,
            struct.pack(_NJ_HDR, _NJ_MAGIC, 0),
            StructKind.JOURNAL,
        )
        self._journal_active = False
        pending = sorted(self._pending_frees)
        if pending:
            start = prev = pending[0]
            for page in pending:
                self._used_pages.discard(page)
                self._free_pages.append(page)
                # Contiguous runs collapse into one ranged TRIM each.
                if page > prev + 1:
                    self.device.trim(start, prev - start + 1)
                    start = page
                prev = page
            self.device.trim(start, prev - start + 1)
        self._pending_frees.clear()

    def _lite_journal_rollback(self) -> None:
        base = self._journal_page * self.P
        raw = self.device.load(
            base, struct.calcsize(_NJ_HDR), StructKind.JOURNAL
        )
        magic, count = struct.unpack(_NJ_HDR, raw)
        if magic != _NJ_MAGIC or count == 0:
            return
        for i in reversed(range(count)):
            rec = self.device.load(
                base + 64 + 72 * i, 72, StructKind.JOURNAL
            )
            (addr,) = struct.unpack_from("<Q", rec)
            self.device.store(addr, rec[8:], StructKind.INODE)
        self.device.store(
            base, struct.pack(_NJ_HDR, _NJ_MAGIC, 0), StructKind.JOURNAL
        )
        self.stats.bump("nova_journal_rollbacks")

    def _load_inode_entry(self, ino: int) -> Optional[_MemInode]:
        raw = self.device.load(self._inode_addr(ino), _INODE_BYTES, StructKind.INODE)
        valid, mode, links, _pad, size, mtime, head, tpage, toff = (
            struct.unpack_from(_INODE_FMT, raw)
        )
        if not valid:
            return None
        inode = _MemInode(ino, mode)
        inode.links = links
        inode.size = size
        inode.mtime = mtime
        inode.log_head = head
        inode.log_tail_page = tpage
        inode.log_tail_off = toff
        return inode

    # ------------------------------------------------------------------ #
    # page allocation
    # ------------------------------------------------------------------ #

    def _alloc_page(self) -> int:
        if self._free_pages:
            page = self._free_pages.pop()
        else:
            if self._free_cursor >= self.device.capacity_blocks:
                raise NoSpace("NOVA: out of pages")
            page = self._free_cursor
            self._free_cursor += 1
        self._used_pages.add(page)
        return page

    def _free_page(self, page: int) -> None:
        if page not in self._used_pages:
            return
        if self._journal_active:
            # A rollback may resurrect references to this page, so it
            # must stay allocated and untrimmed until the journal
            # commits (keeping it out of _free_pages also stops the
            # journaled update itself from recycling it).
            self._pending_frees.add(page)
            return
        self._used_pages.discard(page)
        self._free_pages.append(page)
        self.device.trim(page)

    # ------------------------------------------------------------------ #
    # per-inode logs
    # ------------------------------------------------------------------ #

    def _append_entry(
        self,
        inode: _MemInode,
        payload: bytes,
        kind: StructKind,
        persist_tail: bool = True,
    ) -> None:
        """Append one log entry and persist the new tail (out-of-place
        metadata update: entry store + tail store, each durable).

        With ``persist_tail=False`` the entry is written but stays
        invisible until the caller persists the inode entry — the hook
        the lite journal uses to make multi-log updates atomic.
        """
        size = len(payload)
        if size > _LOG_PAGE_DATA:
            raise FSError("log entry too large")
        if inode.log_head == 0:
            page = self._alloc_page()
            inode.log_head = page
            inode.log_tail_page = page
            inode.log_tail_off = 0
            inode.log_pages = [page]
        elif inode.log_tail_off + size > _LOG_PAGE_DATA:
            new_page = self._alloc_page()
            # Link from the old page's trailing next pointer.
            self.device.store(
                inode.log_tail_page * self.P + _LOG_PAGE_DATA,
                struct.pack("<I", new_page),
                kind,
            )
            inode.log_tail_page = new_page
            inode.log_tail_off = 0
            inode.log_pages.append(new_page)
        addr = inode.log_tail_page * self.P + inode.log_tail_off
        self.device.store(addr, payload, kind)
        inode.log_tail_off += size
        if persist_tail:
            self._persist_tail(inode)

    def _iter_log(self, inode: _MemInode):
        """Yield (type, payload bytes) for every entry in the inode's log,
        reading through the byte interface."""
        page = inode.log_head
        pages = []
        while page:
            pages.append(page)
            if (
                page == inode.log_tail_page
            ):
                break
            nxt_raw = self.device.load(
                page * self.P + _LOG_PAGE_DATA, 4, StructKind.INODE
            )
            (page,) = struct.unpack("<I", nxt_raw)
        inode.log_pages = pages
        for pg in pages:
            limit = (
                inode.log_tail_off
                if pg == inode.log_tail_page
                else _LOG_PAGE_DATA
            )
            off = 0
            while off + 4 <= limit:
                hdr = self.device.load(
                    pg * self.P + off, 4, StructKind.INODE
                )
                etype, elen = struct.unpack(_ENTRY_HDR, hdr)
                if etype == 0 or elen == 0:
                    break
                payload = self.device.load(
                    pg * self.P + off, elen, StructKind.INODE
                )
                yield etype, payload
                off += elen

    def _replay_log(self, inode: _MemInode) -> None:
        """Rebuild the in-DRAM radix tree / dentry map from the log."""
        if inode.log_head:
            self._used_pages.add(inode.log_head)
        if inode.is_dir:
            self._dirs[inode.ino] = {}
        for etype, payload in self._iter_log(inode):
            if etype == _E_WRITE:
                _t, _l, pidx, count = struct.unpack_from("<HHQI", payload)
                pages = struct.unpack_from(f"<{count}I", payload, 16)
                for i in range(count):
                    old = inode.pages.get(pidx + i)
                    if old:
                        self._used_pages.discard(old)
                        self._free_pages.append(old)
                    inode.pages[pidx + i] = pages[i]
                    self._used_pages.add(pages[i])
            elif etype == _E_DADD:
                _t, _l, ino, ftype, nlen = struct.unpack_from(
                    "<HHIHH", payload
                )
                name = payload[12 : 12 + nlen].decode(errors="replace")
                self._dirs[inode.ino][name] = (ino, ftype)
            elif etype == _E_DDEL:
                _t, _l, nlen = struct.unpack_from("<HHH", payload)
                name = payload[6 : 6 + nlen].decode(errors="replace")
                self._dirs[inode.ino].pop(name, None)
        for pg in inode.log_pages:
            self._used_pages.add(pg)
        inode.entries_loaded = True

    def _free_log(self, inode: _MemInode) -> None:
        for pg in inode.log_pages:
            self._free_page(pg)
        inode.log_pages = []
        inode.log_head = 0

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _get_inode(self, ino: int) -> _MemInode:
        inode = self._inodes.get(ino)
        if inode is None:
            inode = self._load_inode_entry(ino)
            if inode is None:
                raise FSError(f"inode {ino} not found")
            self._inodes[ino] = inode
            self._replay_log(inode)
        elif not inode.entries_loaded:
            self._replay_log(inode)
        return inode

    def _dir_entries(self, ino: int) -> Dict[str, Tuple[int, int]]:
        self._get_inode(ino)
        return self._dirs.setdefault(ino, {})

    # ------------------------------------------------------------------ #
    # BaseFileSystem hooks
    # ------------------------------------------------------------------ #

    def _root_ino(self) -> int:
        return 1

    def _is_dir(self, ino: int) -> bool:
        return self._get_inode(ino).is_dir

    def _dir_lookup(self, dir_ino: int, name: str) -> Optional[int]:
        entry = self._dir_entries(dir_ino).get(name)
        return entry[0] if entry else None

    def _create_file(self, dir_ino: int, name: str) -> int:
        return self._create(dir_ino, name, FT_FILE)

    def _create_dir(self, dir_ino: int, name: str) -> int:
        return self._create(dir_ino, name, FT_DIR)

    def _create(self, dir_ino: int, name: str, ftype: int) -> int:
        entries = self._dir_entries(dir_ino)
        if name in entries:
            raise FileExists(name)
        if self._next_ino >= self.n_inodes:
            raise NoSpace("out of inodes")
        ino = self._next_ino
        self._next_ino += 1
        inode = _MemInode(ino, ftype)
        inode.mtime = self.clock.now
        inode.entries_loaded = True
        self._inodes[ino] = inode
        if ftype == FT_DIR:
            self._dirs[ino] = {}
        self._persist_inode_entry(inode)
        parent = self._get_inode(dir_ino)
        raw_name = name.encode()
        payload = struct.pack(
            "<HHIHH", _E_DADD, _align8(12 + len(raw_name)), ino, ftype,
            len(raw_name),
        ) + raw_name
        payload += bytes(_align8(12 + len(raw_name)) - len(payload))
        self._append_entry(parent, payload, StructKind.DENTRY)
        entries[name] = (ino, ftype)
        return ino

    def _remove_dentry(
        self, dir_ino: int, name: str, persist_tail: bool = True
    ) -> None:
        parent = self._get_inode(dir_ino)
        raw_name = name.encode()
        payload = struct.pack(
            "<HHH", _E_DDEL, _align8(6 + len(raw_name)), len(raw_name)
        ) + raw_name
        payload += bytes(_align8(6 + len(raw_name)) - len(payload))
        self._append_entry(
            parent, payload, StructKind.DENTRY, persist_tail=persist_tail
        )
        self._dir_entries(dir_ino).pop(name, None)

    def _remove_file(self, dir_ino: int, name: str, ino: int) -> None:
        inode = self._get_inode(ino)
        self._remove_dentry(dir_ino, name)
        inode.links -= 1
        if inode.links <= 0:
            self._release(inode)
        else:
            self._persist_inode_entry(inode)

    def _release(self, inode: _MemInode) -> None:
        for page in inode.pages.values():
            self._free_page(page)
        inode.pages.clear()
        self._free_log(inode)
        self._invalidate_inode_entry(inode.ino)
        self._inodes.pop(inode.ino, None)
        self._dirs.pop(inode.ino, None)

    def _remove_dir(self, dir_ino: int, name: str, ino: int) -> None:
        if self._dir_entries(ino):
            raise DirectoryNotEmpty(name)
        self._remove_dentry(dir_ino, name)
        self._release(self._get_inode(ino))

    def _rename(
        self, src_dir: int, src_name: str, dst_dir: int, dst_name: str
    ) -> None:
        entries = self._dir_entries(src_dir)
        ino, ftype = entries[src_name]
        dst_entries = self._dir_entries(dst_dir)
        existing = dst_entries.get(dst_name)
        if existing is not None and self._get_inode(existing[0]).is_dir:
            raise FileExists(dst_name)
        src_parent = self._get_inode(src_dir)
        dst_parent = self._get_inode(dst_dir)
        # Lite-journal every inode entry this update touches, then
        # append to both dir logs with the tails held back: nothing is
        # visible until both entries are persisted and the journal
        # cleared, so a crash anywhere rolls the whole rename back.
        inos = [src_dir]
        if dst_dir != src_dir:
            inos.append(dst_dir)
        if existing is not None:
            inos.append(existing[0])
        self._lite_journal_begin(inos)
        if existing is not None:
            target = self._get_inode(existing[0])
            target.links -= 1
            if target.links <= 0:
                self._release(target)
            else:
                self._persist_inode_entry(target)
            self._remove_dentry(dst_dir, dst_name, persist_tail=False)
        self._remove_dentry(src_dir, src_name, persist_tail=False)
        raw_name = dst_name.encode()
        payload = struct.pack(
            "<HHIHH", _E_DADD, _align8(12 + len(raw_name)), ino, ftype,
            len(raw_name),
        ) + raw_name
        payload += bytes(_align8(12 + len(raw_name)) - len(payload))
        self._append_entry(
            dst_parent, payload, StructKind.DENTRY, persist_tail=False
        )
        dst_entries[dst_name] = (ino, ftype)
        self._persist_inode_entry(src_parent)
        if dst_dir != src_dir:
            self._persist_inode_entry(dst_parent)
        self._lite_journal_commit()

    def _readdir(self, ino: int) -> List[str]:
        return sorted(self._dir_entries(ino))

    def _stat(self, ino: int) -> Stat:
        inode = self._get_inode(ino)
        return Stat(
            ino=ino,
            size=inode.size,
            is_dir=inode.is_dir,
            nlink=inode.links,
            mtime_ns=inode.mtime,
            ctime_ns=inode.mtime,
        )

    def _file_size(self, ino: int) -> int:
        return self._get_inode(ino).size

    # ------------------------------------------------------------------ #
    # data path: CoW writes, DAX reads
    # ------------------------------------------------------------------ #

    def _read(self, ino: int, offset: int, length: int, direct: bool) -> bytes:
        inode = self._get_inode(ino)
        if offset >= inode.size:
            return b""
        length = min(length, inode.size - offset)
        out = bytearray()
        pos = offset
        while pos < offset + length:
            pidx = pos // self.P
            poff = pos % self.P
            n = min(self.P - poff, offset + length - pos)
            dpage = inode.pages.get(pidx)
            if dpage is None:
                out += bytes(n)
            else:
                out += self.device.load(
                    dpage * self.P + poff, n, StructKind.DATA
                )
            pos += n
        return bytes(out)

    def _write(self, ino: int, offset: int, data: bytes, direct: bool) -> int:
        """Copy-on-write: every touched page gets a fresh device page."""
        inode = self._get_inode(ino)
        first_pidx = offset // self.P
        last_pidx = (offset + len(data) - 1) // self.P
        count = last_pidx - first_pidx + 1
        if count > 500:
            # Split huge writes so each log entry fits in one log page.
            half = (count // 2) * self.P - (offset % self.P)
            self._write(ino, offset, data[:half], direct)
            self._write(ino, offset + half, data[half:], direct)
            return len(data)
        # Allocate the new pages (contiguous when the allocator allows).
        new_pages = [self._alloc_page() for _ in range(count)]
        for j, pidx in enumerate(range(first_pidx, last_pidx + 1)):
            page_start = pidx * self.P
            lo = max(offset, page_start)
            hi = min(offset + len(data), page_start + self.P)
            image = bytearray(self.P)
            old = inode.pages.get(pidx)
            if old is not None and (lo > page_start or hi < page_start + self.P):
                # Partial overwrite: read-merge the old page (MMIO loads).
                image[:] = self.device.load(
                    old * self.P, self.P, StructKind.DATA
                )
            image[lo - page_start : hi - page_start] = data[
                lo - offset : hi - offset
            ]
            self.device.store(
                new_pages[j] * self.P, bytes(image), StructKind.DATA,
                persist=False,
            )
        self.device.link.persist_barrier(count)
        # One write entry covers the run, listing each new data page.
        elen = _align8(16 + 4 * count)
        payload = struct.pack("<HHQI", _E_WRITE, elen, first_pidx, count)
        payload += struct.pack(f"<{count}I", *new_pages)
        payload += bytes(elen - len(payload))
        self._append_entry(inode, payload, StructKind.DATA_PTR)
        for j, pidx in enumerate(range(first_pidx, last_pidx + 1)):
            old = inode.pages.get(pidx)
            if old is not None:
                self._free_page(old)
            inode.pages[pidx] = new_pages[j]
        if offset + len(data) > inode.size:
            inode.size = offset + len(data)
        inode.mtime = self.clock.now
        self._persist_tail(inode)
        return len(data)

    def _truncate(self, ino: int, size: int) -> None:
        inode = self._get_inode(ino)
        keep = -(-size // self.P)
        inode.size = size
        inode.mtime = self.clock.now
        # Zero the partial tail of the last page (CoW to a fresh page).
        poff = size % self.P
        last = inode.pages.get(keep - 1) if poff else None
        if last is not None:
            image = bytearray(
                self.device.load(last * self.P, self.P, StructKind.DATA)
            )
            image[poff:] = bytes(self.P - poff)
            new_page = self._alloc_page()
            self.device.store(
                new_page * self.P, bytes(image), StructKind.DATA
            )
            elen = _align8(16 + 4)
            payload = struct.pack("<HHQI", _E_WRITE, elen, keep - 1, 1)
            payload += struct.pack("<I", new_page)
            payload += bytes(elen - len(payload))
            self._append_entry(inode, payload, StructKind.DATA_PTR)
            inode.pages[keep - 1] = new_page
        # New size durable first; only then drop (and trim) the tail
        # pages, or a crash in between zeroes data the old size still
        # covers.
        self._persist_inode_entry(inode)
        if last is not None:
            self._free_page(last)
        for pidx in [p for p in inode.pages if p >= keep]:
            self._free_page(inode.pages.pop(pidx))

    def _fsync(self, ino: int, data_only: bool) -> None:
        # NOVA writes are durable at completion; fsync is a no-op.
        return

    def _sync(self) -> None:
        return

    def unmount(self) -> None:
        self.device.flush_all()

    def crash(self) -> None:
        super().crash()
        self._inodes.clear()
        self._dirs.clear()

    def remount(self) -> Dict[str, float]:
        fw_stats = self.device.recover()
        t0 = self.clock.now
        self.mount()
        fw_stats["scan_ns"] = self.clock.now - t0
        return fw_stats


def _align8(n: int) -> int:
    return -(-n // 8) * 8
