"""A PMFS-like baseline: in-place NVM file system with an undo journal.

PMFS (EuroSys '14) properties that drive its behaviour in the paper:

* **pure byte interface / DAX** — no host page cache; reads pay the PCIe
  cacheline-read latency every time;
* **in-place updates with undo journaling** — before any metadata is
  modified in place, the old bytes are logged to a journal region and
  made durable, then the in-place write lands; that is the metadata
  double-write Figure 8 charges PMFS with;
* data writes go in place through the byte interface (bulk posted stores
  plus one durability barrier), so small overwrites are cheap but large
  sequential I/O cannot use the block engine's parallelism;
* ``fsync`` is a no-op (writes are durable at completion).

On-device layout (pages):
``[0 superblock][undo journal][inode table][data pages]``

Inodes are 128 B with direct page pointers plus two indirect pointer
pages.  The free-page allocator lives in DRAM and is rebuilt on mount by
walking the inode table (as in real PMFS).
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from typing import Dict, List, Optional, Set, Tuple

from repro.fs.errors import (
    DirectoryNotEmpty,
    FileExists,
    FSError,
    NoSpace,
)
from repro.fs import layout
from repro.fs.vfs import BaseFileSystem, Stat
from repro.ssd.device import MSSD
from repro.stats.traffic import StructKind

_SB_MAGIC = 0x9AF50001
_SB_FMT = "<IIQQQQ"
_INODE_FMT = "<HHHHQd"      # valid, mode, links, pad, size, mtime
_INODE_BYTES = 128
_N_DIRECT = 16
_N_INDIRECT = 2
_JOURNAL_HDR = "<IQ"        # magic, active length
_JREC_HDR = "<QH"           # address, length
_J_MAGIC = 0x9AF5104A

FT_FILE = 1
FT_DIR = 2


class _MemInode:
    __slots__ = ("ino", "mode", "links", "size", "mtime", "ptrs", "indirect")

    def __init__(self, ino: int, mode: int) -> None:
        self.ino = ino
        self.mode = mode
        self.links = 1 if mode == FT_FILE else 2
        self.size = 0
        self.mtime = 0.0
        self.ptrs: List[int] = []        # file page idx -> device page
        self.indirect: List[int] = []    # indirect pointer pages

    @property
    def is_dir(self) -> bool:
        return self.mode == FT_DIR


class PMFS(BaseFileSystem):
    """PMFS-like in-place file system over the byte interface."""

    name = "pmfs"

    def __init__(
        self,
        device: MSSD,
        format_device: bool = True,
        n_inodes: int = 4096,
        journal_pages: int = 16,
    ) -> None:
        super().__init__(device.clock, device.stats, device.config.timing)
        self.device = device
        self.P = device.page_size
        self.n_inodes = n_inodes
        self._journal_start = 1
        self._journal_pages = journal_pages
        self._itable_start = 1 + journal_pages
        self._itable_pages = -(-n_inodes * _INODE_BYTES // self.P)
        self._data_start = self._itable_start + self._itable_pages
        self._ptrs_per_indirect = self.P // 4
        self._inodes: Dict[int, _MemInode] = {}
        self._dirs: Dict[int, Dict[str, Tuple[int, int, int]]] = {}
        self._dir_free: Dict[int, List[Tuple[int, int]]] = {}
        self._free_cursor = self._data_start
        self._free_pages: List[int] = []
        self._used_pages: Set[int] = set()
        self._next_ino = 2
        self._journal_off = 0
        self._tx_depth = 0
        self._pending_trims: Set[int] = set()
        if format_device:
            self.mkfs()
        else:
            self.mount()

    # ------------------------------------------------------------------ #
    # format / mount
    # ------------------------------------------------------------------ #

    def mkfs(self) -> None:
        sb = struct.pack(
            _SB_FMT, _SB_MAGIC, 1, self.n_inodes,
            self._journal_start, self._itable_start, self._data_start,
        )
        self.device.write_blocks(
            0, sb + bytes(self.P - len(sb)), StructKind.SUPERBLOCK
        )
        self.device.write_blocks(
            self._journal_start,
            bytes(self._journal_pages * self.P),
            StructKind.JOURNAL,
        )
        self._write_journal_header(0)
        self.device.write_blocks(
            self._itable_start,
            bytes(self._itable_pages * self.P),
            StructKind.INODE,
        )
        root = _MemInode(1, FT_DIR)
        self._inodes[1] = root
        self._dirs[1] = {}
        self._dir_free[1] = []
        self._persist_inode(root)

    def mount(self) -> None:
        raw = self.device.read_blocks(0, 1, StructKind.SUPERBLOCK)
        magic, _v, n_inodes, jstart, itable, data_start = struct.unpack_from(
            _SB_FMT, raw
        )
        if magic != _SB_MAGIC:
            raise FSError("not a PMFS device")
        self.n_inodes = n_inodes
        self._journal_start = jstart
        self._itable_start = itable
        self._data_start = data_start
        self._inodes = {}
        self._dirs = {}
        self._dir_free = {}
        self._used_pages = set()
        self._free_pages = []
        self._free_cursor = self._data_start
        self._next_ino = 2
        self._journal_off = 0
        self._tx_depth = 0
        self._pending_trims = set()
        # Undo any metadata transaction the crash interrupted *before*
        # trusting the inode table.
        self._journal_rollback()
        for ino in range(1, self.n_inodes):
            inode = self._load_inode(ino)
            if inode is None:
                continue
            self._inodes[ino] = inode
            for pg in inode.ptrs:
                if pg:
                    self._used_pages.add(pg)
            for pg in inode.indirect:
                self._used_pages.add(pg)
            self._next_ino = max(self._next_ino, ino + 1)
        if self._used_pages:
            self._free_cursor = max(self._used_pages) + 1

    # ------------------------------------------------------------------ #
    # undo journal (§3.3: PMFS's metadata double writes)
    # ------------------------------------------------------------------ #

    def _write_journal_header(self, active_len: int) -> None:
        hdr = struct.pack(_JOURNAL_HDR, _J_MAGIC, active_len)
        self.device.store(
            self._journal_start * self.P, hdr, StructKind.JOURNAL
        )

    @contextmanager
    def _tx(self):
        """Undo-journal transaction bracket for compound metadata ops.

        Every logged in-place write inside the bracket is undone by
        recovery if the commit record (header active length reset to 0)
        never lands — that is what makes rename/create/unlink atomic on
        crash.  Page trims are deferred to after commit so rollback can
        still restore metadata that referenced them.
        """
        self._tx_begin()
        try:
            yield
        finally:
            self._tx_commit()

    def _tx_begin(self) -> None:
        self._tx_depth += 1
        if self._tx_depth == 1:
            self._journal_off = 0

    def _tx_commit(self) -> None:
        self._tx_depth -= 1
        if self._tx_depth > 0:
            return
        if self._journal_off:
            # Commit: invalidate the undo records in one atomic store.
            self._write_journal_header(0)
            self._journal_off = 0
        pending = sorted(self._pending_trims)
        if pending:
            # Contiguous runs become one ranged TRIM each (ascending
            # processing inside the device matches page-by-page calls).
            start = prev = pending[0]
            for page in pending[1:]:
                if page != prev + 1:
                    self.device.trim(start, prev - start + 1)
                    start = page
                prev = page
            self.device.trim(start, prev - start + 1)
        self._pending_trims.clear()

    def _journal_undo(self, addr: int, length: int) -> None:
        """Log the old contents of [addr, addr+length) before an in-place
        metadata overwrite, and make the record durable."""
        old = self.device.load(addr, length, StructKind.JOURNAL)
        rec = struct.pack(_JREC_HDR, addr, length) + old
        rec += bytes(_align8(len(rec)) - len(rec))
        cap = self._journal_pages * self.P - self.P  # page 0 is the header
        if self._journal_off + len(rec) > cap:
            raise NoSpace("PMFS journal overflow (transaction too large)")
        addr_j = (self._journal_start + 1) * self.P + self._journal_off
        self.device.store(addr_j, rec, StructKind.JOURNAL)
        self._journal_off += len(rec)
        # Record first, header second: a torn record not yet covered by
        # the 12 B (single-cacheline, atomic) header is simply ignored.
        self._write_journal_header(self._journal_off)
        self.stats.bump("pmfs_undo_records")

    def _meta_store(self, addr: int, data: bytes, kind: StructKind) -> None:
        """Journaled in-place metadata write (undo log, then new bytes)."""
        with self._tx():
            self._journal_undo(addr, len(data))
            self.device.store(addr, data, kind)

    def _journal_rollback(self) -> None:
        """Mount-time recovery: apply active undo records in reverse."""
        raw = self.device.load(
            self._journal_start * self.P,
            struct.calcsize(_JOURNAL_HDR),
            StructKind.JOURNAL,
        )
        magic, active_len = struct.unpack(_JOURNAL_HDR, raw)
        if magic != _J_MAGIC or active_len == 0:
            return
        base = (self._journal_start + 1) * self.P
        records: List[Tuple[int, bytes]] = []
        off = 0
        hdr_len = struct.calcsize(_JREC_HDR)
        while off + hdr_len <= active_len:
            rec = self.device.load(base + off, hdr_len, StructKind.JOURNAL)
            addr, length = struct.unpack(_JREC_HDR, rec)
            old = self.device.load(
                base + off + hdr_len, length, StructKind.JOURNAL
            )
            records.append((addr, old))
            off += _align8(hdr_len + length)
        for addr, old in reversed(records):
            self.device.store(addr, old, StructKind.JOURNAL)
        self._write_journal_header(0)
        self.stats.bump("pmfs_journal_rollbacks")

    # ------------------------------------------------------------------ #
    # inodes
    # ------------------------------------------------------------------ #

    def _inode_addr(self, ino: int) -> int:
        return self._itable_start * self.P + ino * _INODE_BYTES

    def _encode_inode(self, inode: _MemInode) -> bytes:
        hdr = struct.pack(
            _INODE_FMT, 1, inode.mode, inode.links, 0, inode.size,
            inode.mtime,
        )
        body = bytearray(hdr)
        for i in range(_N_DIRECT):
            body += struct.pack(
                "<I", inode.ptrs[i] if i < len(inode.ptrs) else 0
            )
        for i in range(_N_INDIRECT):
            body += struct.pack(
                "<I", inode.indirect[i] if i < len(inode.indirect) else 0
            )
        body += bytes(_INODE_BYTES - len(body))
        return bytes(body)

    def _persist_inode(self, inode: _MemInode, header_only: bool = False) -> None:
        """Journaled in-place inode update.

        PMFS journals at fine granularity: a pure attribute change (size,
        mtime, links) logs and rewrites only the 24 B header, not the
        whole 128 B inode.
        """
        image = self._encode_inode(inode)
        if header_only:
            image = image[: struct.calcsize(_INODE_FMT)]
        self._meta_store(self._inode_addr(inode.ino), image, StructKind.INODE)

    def _persist_indirects(self, inode: _MemInode) -> None:
        """Write the indirect pointer pages for files beyond _N_DIRECT."""
        extra = inode.ptrs[_N_DIRECT:]
        needed = -(-len(extra) // self._ptrs_per_indirect) if extra else 0
        if needed > _N_INDIRECT:
            raise NoSpace("file exceeds PMFS max size")
        fresh = set()
        while len(inode.indirect) < needed:
            page = self._alloc_page()
            fresh.add(page)
            inode.indirect.append(page)
        for i in range(needed):
            chunk = extra[
                i * self._ptrs_per_indirect : (i + 1) * self._ptrs_per_indirect
            ]
            img = struct.pack("<I", len(chunk)) + b"".join(
                struct.pack("<I", p) for p in chunk
            )
            addr = inode.indirect[i] * self.P
            if inode.indirect[i] in fresh:
                # Unreferenced until the inode lands; no undo needed.
                self.device.store(addr, img, StructKind.DATA_PTR)
            else:
                # In-place rewrite of live pointers must be journaled or
                # a torn store corrupts data the inode already maps.
                self._meta_store(addr, img, StructKind.DATA_PTR)

    def _load_inode(self, ino: int) -> Optional[_MemInode]:
        raw = self.device.load(
            self._inode_addr(ino), _INODE_BYTES, StructKind.INODE
        )
        valid, mode, links, _pad, size, mtime = struct.unpack_from(
            _INODE_FMT, raw
        )
        if not valid:
            return None
        inode = _MemInode(ino, mode)
        inode.links = links
        inode.size = size
        inode.mtime = mtime
        base = struct.calcsize(_INODE_FMT)
        ptrs = [
            struct.unpack_from("<I", raw, base + 4 * i)[0]
            for i in range(_N_DIRECT)
        ]
        indirect = [
            struct.unpack_from("<I", raw, base + 4 * (_N_DIRECT + i))[0]
            for i in range(_N_INDIRECT)
        ]
        inode.indirect = [p for p in indirect if p]
        for ipage in inode.indirect:
            img = self.device.load(ipage * self.P, 4, StructKind.DATA_PTR)
            (count,) = struct.unpack("<I", img)
            body = self.device.load(
                ipage * self.P + 4, 4 * count, StructKind.DATA_PTR
            )
            ptrs.extend(
                struct.unpack_from("<I", body, 4 * j)[0] for j in range(count)
            )
        while ptrs and ptrs[-1] == 0:
            ptrs.pop()
        inode.ptrs = ptrs
        return inode

    def _get_inode(self, ino: int) -> _MemInode:
        inode = self._inodes.get(ino)
        if inode is None:
            inode = self._load_inode(ino)
            if inode is None:
                raise FSError(f"inode {ino} not found")
            self._inodes[ino] = inode
        return inode

    # ------------------------------------------------------------------ #
    # page allocation
    # ------------------------------------------------------------------ #

    def _alloc_page(self) -> int:
        if self._free_pages:
            page = self._free_pages.pop()
            # A page freed earlier in this (or an uncommitted) op must
            # not be trimmed after commit once it holds live data again.
            self._pending_trims.discard(page)
        else:
            if self._free_cursor >= self.device.capacity_blocks:
                raise NoSpace("PMFS: out of pages")
            page = self._free_cursor
            self._free_cursor += 1
        self._used_pages.add(page)
        return page

    def _free_page(self, page: int) -> None:
        if page in self._used_pages:
            self._used_pages.discard(page)
            self._free_pages.append(page)
            # Trim only after the freeing transaction commits: until
            # then a crash rolls metadata back to referencing this page.
            self._pending_trims.add(page)

    # ------------------------------------------------------------------ #
    # directories: in-place dentry arrays in dir data pages
    # ------------------------------------------------------------------ #

    def _load_dir(self, ino: int) -> Dict[str, Tuple[int, int, int]]:
        cached = self._dirs.get(ino)
        if cached is not None:
            return cached
        inode = self._get_inode(ino)
        entries: Dict[str, Tuple[int, int, int]] = {}
        free: List[Tuple[int, int]] = []
        for pidx, page in enumerate(inode.ptrs):
            if not page:
                continue
            raw = self.device.load(page * self.P, self.P, StructKind.DENTRY)
            for off, size, entry_ino, ftype, name in layout.decode_dentries(
                raw
            ):
                addr = page * self.P + off
                if entry_ino == 0:
                    free.append((addr, size))
                else:
                    entries[name] = (entry_ino, ftype, addr)
        self._dirs[ino] = entries
        self._dir_free[ino] = free
        return entries

    def _dir_add(self, dir_ino: int, name: str, ino: int, ftype: int) -> None:
        entries = self._load_dir(dir_ino)
        if name in entries:
            raise FileExists(name)
        record = layout.encode_dentry(ino, ftype, name)
        free = self._dir_free.setdefault(dir_ino, [])
        addr = None
        for i, (a, size) in enumerate(free):
            if size >= len(record):
                addr = a
                record = record + bytes(size - len(record))
                free.pop(i)
                break
        if addr is None:
            addr = self._dir_append_addr(dir_ino, len(record))
        self._meta_store(addr, record, StructKind.DENTRY)
        entries[name] = (ino, ftype, addr)

    def _dir_append_addr(self, dir_ino: int, size: int) -> int:
        inode = self._get_inode(dir_ino)
        fill = inode.size
        page_idx = fill // self.P
        if fill % self.P + size > self.P:
            page_idx += 1
            fill = page_idx * self.P
        while len(inode.ptrs) <= page_idx:
            inode.ptrs.append(0)
        if inode.ptrs[page_idx] == 0:
            inode.ptrs[page_idx] = self._alloc_page()
        inode.size = fill + size
        inode.mtime = self.clock.now
        self._persist_inode(inode)
        return inode.ptrs[page_idx] * self.P + fill % self.P

    def _dir_remove(self, dir_ino: int, name: str) -> None:
        entries = self._load_dir(dir_ino)
        _ino, _ftype, addr = entries.pop(name)
        self._meta_store(addr, b"\x00\x00\x00\x00", StructKind.DENTRY)
        # The record stays skippable; remember the slot for reuse.
        self._dir_free.setdefault(dir_ino, []).append((addr, 0))

    # ------------------------------------------------------------------ #
    # BaseFileSystem hooks
    # ------------------------------------------------------------------ #

    def _root_ino(self) -> int:
        return 1

    def _is_dir(self, ino: int) -> bool:
        return self._get_inode(ino).is_dir

    def _dir_lookup(self, dir_ino: int, name: str) -> Optional[int]:
        entry = self._load_dir(dir_ino).get(name)
        return entry[0] if entry else None

    def _create_file(self, dir_ino: int, name: str) -> int:
        return self._create(dir_ino, name, FT_FILE)

    def _create_dir(self, dir_ino: int, name: str) -> int:
        return self._create(dir_ino, name, FT_DIR)

    def _create(self, dir_ino: int, name: str, ftype: int) -> int:
        if self._next_ino >= self.n_inodes:
            raise NoSpace("out of inodes")
        ino = self._next_ino
        self._next_ino += 1
        inode = _MemInode(ino, ftype)
        inode.mtime = self.clock.now
        self._inodes[ino] = inode
        if ftype == FT_DIR:
            self._dirs[ino] = {}
            self._dir_free[ino] = []
        with self._tx():
            self._persist_inode(inode)
            self._dir_add(dir_ino, name, ino, ftype)
        return ino

    def _remove_file(self, dir_ino: int, name: str, ino: int) -> None:
        inode = self._get_inode(ino)
        with self._tx():
            self._dir_remove(dir_ino, name)
            inode.links -= 1
            if inode.links <= 0:
                self._release(inode)
            else:
                self._persist_inode(inode)

    def _release(self, inode: _MemInode) -> None:
        for page in inode.ptrs:
            if page:
                self._free_page(page)
        for page in inode.indirect:
            self._free_page(page)
        inode.ptrs = []
        inode.indirect = []
        self._meta_store(
            self._inode_addr(inode.ino), b"\x00\x00", StructKind.INODE
        )
        self._inodes.pop(inode.ino, None)
        self._dirs.pop(inode.ino, None)
        self._dir_free.pop(inode.ino, None)

    def _remove_dir(self, dir_ino: int, name: str, ino: int) -> None:
        if self._load_dir(ino):
            raise DirectoryNotEmpty(name)
        with self._tx():
            self._dir_remove(dir_ino, name)
            self._release(self._get_inode(ino))

    def _rename(
        self, src_dir: int, src_name: str, dst_dir: int, dst_name: str
    ) -> None:
        entries = self._load_dir(src_dir)
        ino, ftype, _addr = entries[src_name]
        dst_entries = self._load_dir(dst_dir)
        existing = dst_entries.get(dst_name)
        if existing is not None and self._get_inode(existing[0]).is_dir:
            raise FileExists(dst_name)
        with self._tx():
            if existing is not None:
                target = self._get_inode(existing[0])
                self._dir_remove(dst_dir, dst_name)
                target.links -= 1
                if target.links <= 0:
                    self._release(target)
                else:
                    self._persist_inode(target)
            self._dir_remove(src_dir, src_name)
            self._dir_add(dst_dir, dst_name, ino, ftype)

    def _readdir(self, ino: int) -> List[str]:
        return sorted(self._load_dir(ino))

    def _stat(self, ino: int) -> Stat:
        inode = self._get_inode(ino)
        return Stat(
            ino=ino,
            size=inode.size,
            is_dir=inode.is_dir,
            nlink=inode.links,
            mtime_ns=inode.mtime,
            ctime_ns=inode.mtime,
        )

    def _file_size(self, ino: int) -> int:
        return self._get_inode(ino).size

    # ------------------------------------------------------------------ #
    # data path: in-place byte-interface reads and writes (DAX)
    # ------------------------------------------------------------------ #

    def _read(self, ino: int, offset: int, length: int, direct: bool) -> bytes:
        inode = self._get_inode(ino)
        if offset >= inode.size:
            return b""
        length = min(length, inode.size - offset)
        out = bytearray()
        pos = offset
        while pos < offset + length:
            pidx = pos // self.P
            poff = pos % self.P
            n = min(self.P - poff, offset + length - pos)
            page = inode.ptrs[pidx] if pidx < len(inode.ptrs) else 0
            if page:
                out += self.device.load(
                    page * self.P + poff, n, StructKind.DATA
                )
            else:
                out += bytes(n)
            pos += n
        return bytes(out)

    def _write(self, ino: int, offset: int, data: bytes, direct: bool) -> int:
        inode = self._get_inode(ino)
        end = offset + len(data)
        first_pidx = offset // self.P
        last_pidx = (end - 1) // self.P
        grew = False
        while len(inode.ptrs) <= last_pidx:
            inode.ptrs.append(0)
        for pidx in range(first_pidx, last_pidx + 1):
            if inode.ptrs[pidx] == 0:
                inode.ptrs[pidx] = self._alloc_page()
                grew = True
        # In-place data stores: posted, one barrier at the end.
        pos = offset
        i = 0
        lines = 0
        while i < len(data):
            pidx = pos // self.P
            poff = pos % self.P
            n = min(self.P - poff, len(data) - i)
            self.device.store(
                inode.ptrs[pidx] * self.P + poff,
                data[i : i + n],
                StructKind.DATA,
                persist=False,
            )
            lines += -(-n // 64)
            i += n
            pos += n
        self.device.link.persist_barrier(max(1, lines))
        if end > inode.size:
            inode.size = end
            grew = True
        inode.mtime = self.clock.now
        if grew:
            self._persist_indirects(inode)
        self._persist_inode(inode, header_only=not grew)
        return len(data)

    def _truncate(self, ino: int, size: int) -> None:
        inode = self._get_inode(ino)
        keep = -(-size // self.P)
        with self._tx():
            for pidx in range(keep, len(inode.ptrs)):
                if inode.ptrs[pidx]:
                    self._free_page(inode.ptrs[pidx])
            inode.ptrs = inode.ptrs[:keep]
            # Zero the partial tail in place (byte interface).
            poff = size % self.P
            if poff and keep - 1 < len(inode.ptrs) and inode.ptrs[keep - 1]:
                self.device.store(
                    inode.ptrs[keep - 1] * self.P + poff,
                    bytes(self.P - poff),
                    StructKind.DATA,
                )
            inode.size = size
            inode.mtime = self.clock.now
            self._persist_indirects(inode)
            self._persist_inode(inode)

    def _fsync(self, ino: int, data_only: bool) -> None:
        return  # writes are durable at completion

    def _sync(self) -> None:
        return

    def unmount(self) -> None:
        self.device.flush_all()

    def crash(self) -> None:
        super().crash()
        self._inodes.clear()
        self._dirs.clear()
        self._dir_free.clear()

    def remount(self) -> Dict[str, float]:
        fw_stats = self.device.recover()
        t0 = self.clock.now
        self.mount()
        fw_stats["scan_ns"] = self.clock.now - t0
        return fw_stats


def _align8(n: int) -> int:
    return -(-n // 8) * 8
