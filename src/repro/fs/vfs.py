"""The virtual file system layer: POSIX-like API, fd table, path walking.

Every file system in the reproduction subclasses :class:`BaseFileSystem`
and implements the inode-level hooks; the base class provides open flags,
descriptor management, path resolution, application-traffic recording (the
denominator of the paper's amplification factors), and the per-syscall CPU
cost.
"""

from __future__ import annotations

import abc
import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fs.errors import (
    BadFileDescriptor,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    ReadOnly,
)
from repro.nand.timing import TimingModel
from repro.sim.clock import VirtualClock
from repro.stats.traffic import Direction, TrafficStats
from repro.trace import tracer as trace


def _traced(fn):
    """Wrap a public syscall in a ``vfs`` span when tracing is active.

    With tracing off this is one attribute load plus a branch — the same
    zero-cost guard every other instrumentation site uses.
    """
    op = fn.__name__

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        if not trace.ENABLED:
            return fn(self, *args, **kwargs)
        _sp = trace.begin("vfs", op)
        try:
            return fn(self, *args, **kwargs)
        finally:
            trace.end(_sp)

    return wrapper

O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_EXCL = 0x80
O_TRUNC = 0x200
O_APPEND = 0x400
O_DIRECT = 0x4000

_ACCMODE = 0x3


@dataclass
class Stat:
    ino: int
    size: int
    is_dir: bool
    nlink: int
    mtime_ns: float
    ctime_ns: float


class FileHandle:
    """One open descriptor."""

    __slots__ = ("fd", "ino", "flags", "pos")

    def __init__(self, fd: int, ino: int, flags: int) -> None:
        self.fd = fd
        self.ino = ino
        self.flags = flags
        self.pos = 0

    @property
    def readable(self) -> bool:
        return (self.flags & _ACCMODE) in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & _ACCMODE) in (O_WRONLY, O_RDWR)

    @property
    def direct(self) -> bool:
        return bool(self.flags & O_DIRECT)


def split_path(path: str) -> List[str]:
    """Normalize an absolute path into components."""
    if not path.startswith("/"):
        raise InvalidArgument(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p and p != "."]
    out: List[str] = []
    for p in parts:
        if p == "..":
            if out:
                out.pop()
        else:
            out.append(p)
    return out


class BaseFileSystem(abc.ABC):
    """Common machinery for every simulated file system."""

    name = "base"

    def __init__(
        self,
        clock: VirtualClock,
        stats: TrafficStats,
        timing: TimingModel,
    ) -> None:
        self.clock = clock
        self.stats = stats
        self.timing = timing
        self._handles: Dict[int, FileHandle] = {}
        self._next_fd = 3

    # ------------------------------------------------------------------ #
    # hooks each file system must implement (inode level)
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _root_ino(self) -> int: ...

    @abc.abstractmethod
    def _dir_lookup(self, dir_ino: int, name: str) -> Optional[int]: ...

    @abc.abstractmethod
    def _is_dir(self, ino: int) -> bool: ...

    @abc.abstractmethod
    def _create_file(self, dir_ino: int, name: str) -> int: ...

    @abc.abstractmethod
    def _create_dir(self, dir_ino: int, name: str) -> int: ...

    @abc.abstractmethod
    def _remove_file(self, dir_ino: int, name: str, ino: int) -> None: ...

    @abc.abstractmethod
    def _remove_dir(self, dir_ino: int, name: str, ino: int) -> None: ...

    @abc.abstractmethod
    def _rename(
        self, src_dir: int, src_name: str, dst_dir: int, dst_name: str
    ) -> None: ...

    @abc.abstractmethod
    def _read(self, ino: int, offset: int, length: int, direct: bool) -> bytes: ...

    @abc.abstractmethod
    def _write(
        self, ino: int, offset: int, data: bytes, direct: bool
    ) -> int: ...

    @abc.abstractmethod
    def _truncate(self, ino: int, size: int) -> None: ...

    @abc.abstractmethod
    def _file_size(self, ino: int) -> int: ...

    @abc.abstractmethod
    def _fsync(self, ino: int, data_only: bool) -> None: ...

    @abc.abstractmethod
    def _sync(self) -> None: ...

    @abc.abstractmethod
    def _readdir(self, ino: int) -> List[str]: ...

    @abc.abstractmethod
    def _stat(self, ino: int) -> Stat: ...

    # ------------------------------------------------------------------ #
    # path resolution
    # ------------------------------------------------------------------ #

    def _resolve(self, path: str) -> int:
        """Walk ``path`` to an inode number or raise FileNotFound."""
        ino = self._root_ino()
        for name in split_path(path):
            if not self._is_dir(ino):
                raise NotADirectory(path)
            child = self._dir_lookup(ino, name)
            if child is None:
                raise FileNotFound(path)
            ino = child
        return ino

    def _resolve_parent(self, path: str) -> Tuple[int, str]:
        parts = split_path(path)
        if not parts:
            raise InvalidArgument(f"cannot operate on root: {path!r}")
        ino = self._root_ino()
        for name in parts[:-1]:
            if not self._is_dir(ino):
                raise NotADirectory(path)
            child = self._dir_lookup(ino, name)
            if child is None:
                raise FileNotFound(path)
            ino = child
        if not self._is_dir(ino):
            raise NotADirectory(path)
        return ino, parts[-1]

    # ------------------------------------------------------------------ #
    # public POSIX-like API
    # ------------------------------------------------------------------ #

    def _syscall(self) -> None:
        self.clock.advance(self.timing.syscall_ns)

    @_traced
    def open(self, path: str, flags: int = O_RDONLY) -> int:
        from repro.fs.errors import FileExists  # local to avoid cycle noise

        self._syscall()
        parent, name = self._resolve_parent(path)
        ino = self._dir_lookup(parent, name)
        if ino is None:
            if not flags & O_CREAT:
                raise FileNotFound(path)
            ino = self._create_file(parent, name)
        else:
            if flags & O_CREAT and flags & O_EXCL:
                raise FileExists(path)
            if self._is_dir(ino) and (flags & _ACCMODE) != O_RDONLY:
                raise IsADirectory(path)
        if flags & O_TRUNC and not self._is_dir(ino):
            self._truncate(ino, 0)
        fd = self._next_fd
        self._next_fd += 1
        handle = FileHandle(fd, ino, flags)
        if flags & O_APPEND:
            handle.pos = self._file_size(ino)
        self._handles[fd] = handle
        return fd

    @_traced
    def close(self, fd: int) -> None:
        self._syscall()
        self._handle(fd)
        del self._handles[fd]

    def _handle(self, fd: int) -> FileHandle:
        handle = self._handles.get(fd)
        if handle is None:
            raise BadFileDescriptor(f"fd {fd}")
        return handle

    def read(self, fd: int, length: int) -> bytes:
        handle = self._handle(fd)
        data = self.pread(fd, handle.pos, length)
        handle.pos += len(data)
        return data

    @_traced
    def pread(self, fd: int, offset: int, length: int) -> bytes:
        self._syscall()
        handle = self._handle(fd)
        if not handle.readable:
            raise ReadOnly(f"fd {fd} not readable")
        if length < 0 or offset < 0:
            raise InvalidArgument("negative offset/length")
        data = self._read(handle.ino, offset, length, handle.direct)
        self.stats.record_app(Direction.READ, len(data))
        return data

    def write(self, fd: int, data: bytes) -> int:
        handle = self._handle(fd)
        if handle.flags & O_APPEND:
            handle.pos = self._file_size(handle.ino)
        n = self.pwrite(fd, handle.pos, data)
        handle.pos += n
        return n

    @_traced
    def pwrite(self, fd: int, offset: int, data: bytes) -> int:
        self._syscall()
        handle = self._handle(fd)
        if not handle.writable:
            raise ReadOnly(f"fd {fd} not writable")
        if offset < 0:
            raise InvalidArgument("negative offset")
        n = self._write(handle.ino, offset, bytes(data), handle.direct)
        self.stats.record_app(Direction.WRITE, n)
        return n

    def lseek(self, fd: int, pos: int) -> int:
        handle = self._handle(fd)
        if pos < 0:
            raise InvalidArgument("negative seek")
        handle.pos = pos
        return pos

    @_traced
    def fsync(self, fd: int) -> None:
        self._syscall()
        handle = self._handle(fd)
        self._fsync(handle.ino, data_only=False)

    @_traced
    def fdatasync(self, fd: int) -> None:
        self._syscall()
        handle = self._handle(fd)
        self._fsync(handle.ino, data_only=True)

    @_traced
    def sync(self) -> None:
        self._syscall()
        self._sync()

    @_traced
    def ftruncate(self, fd: int, size: int) -> None:
        self._syscall()
        handle = self._handle(fd)
        if size < 0:
            raise InvalidArgument("negative size")
        self._truncate(handle.ino, size)

    @_traced
    def mkdir(self, path: str) -> None:
        from repro.fs.errors import FileExists

        self._syscall()
        parent, name = self._resolve_parent(path)
        if self._dir_lookup(parent, name) is not None:
            raise FileExists(path)
        self._create_dir(parent, name)

    @_traced
    def rmdir(self, path: str) -> None:
        self._syscall()
        parent, name = self._resolve_parent(path)
        ino = self._dir_lookup(parent, name)
        if ino is None:
            raise FileNotFound(path)
        if not self._is_dir(ino):
            raise NotADirectory(path)
        self._remove_dir(parent, name, ino)

    @_traced
    def unlink(self, path: str) -> None:
        self._syscall()
        parent, name = self._resolve_parent(path)
        ino = self._dir_lookup(parent, name)
        if ino is None:
            raise FileNotFound(path)
        if self._is_dir(ino):
            raise IsADirectory(path)
        self._remove_file(parent, name, ino)

    @_traced
    def rename(self, src: str, dst: str) -> None:
        self._syscall()
        src_dir, src_name = self._resolve_parent(src)
        if self._dir_lookup(src_dir, src_name) is None:
            raise FileNotFound(src)
        dst_dir, dst_name = self._resolve_parent(dst)
        self._rename(src_dir, src_name, dst_dir, dst_name)

    @_traced
    def stat(self, path: str) -> Stat:
        self._syscall()
        return self._stat(self._resolve(path))

    def exists(self, path: str) -> bool:
        try:
            self._resolve(path)
            return True
        except (FileNotFound, NotADirectory):
            return False

    @_traced
    def listdir(self, path: str) -> List[str]:
        self._syscall()
        ino = self._resolve(path)
        if not self._is_dir(ino):
            raise NotADirectory(path)
        return self._readdir(ino)

    def unmount(self) -> None:
        """Flush all volatile state; the default just syncs."""
        self._sync()

    # crash protocol ------------------------------------------------------

    def crash(self) -> None:
        """Drop host-volatile state (page caches, metadata caches, open
        fds).  Device-side state is handled by MSSD.power_fail()."""
        self._handles.clear()
        self._next_fd = 3

    def remount(self) -> Dict[str, float]:
        """Recover after a crash; returns recovery statistics."""
        return {}
