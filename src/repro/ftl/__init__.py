"""Flash translation layer: page-level mapping, write buffering, GC.

The FTL is shared by both firmware variants (baseline page-cache firmware
and the ByteFS log-structured firmware).  It performs out-of-place page
writes with per-channel active blocks, drains a bounded write buffer to
flash in the background (foreground stalls only when the buffer is full),
and garbage-collects blocks greedily by invalid-page count.
"""

from repro.ftl.mapping import PageMap
from repro.ftl.ftl import FTL, FTLConfig

__all__ = ["PageMap", "FTL", "FTLConfig"]
