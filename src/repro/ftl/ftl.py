"""The flash translation layer shared by both firmware variants."""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis import fssan
from repro.ftl.mapping import PageMap
from repro.nand.chip import FlashArray, FlashError
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import TimingModel
from repro.sim.clock import VirtualClock
from repro.sim.resources import ChannelArray
from repro.stats.traffic import Direction, StructKind, TrafficStats
from repro.trace import tracer as trace


@dataclass(frozen=True)
class FTLConfig:
    """FTL tunables (paper §4.9: 16 MB write buffer, greedy GC)."""

    write_buffer_pages: int = 16          # 16 MB in the paper, scaled down
    gc_free_block_low: int = 2            # per-channel GC trigger watermark
    gc_reserved_blocks: int = 1           # blocks GC always keeps in reserve


class _BlockState:
    """Per-block bookkeeping: write pointer and valid-page count."""

    __slots__ = ("block_id", "next_page", "valid")

    def __init__(self, block_id: int) -> None:
        self.block_id = block_id
        self.next_page = 0
        self.valid = 0


class FTL:
    """Out-of-place page-mapped FTL with background drain and greedy GC."""

    def __init__(
        self,
        geometry: FlashGeometry,
        flash: FlashArray,
        channels: ChannelArray,
        timing: TimingModel,
        clock: VirtualClock,
        stats: TrafficStats,
        config: Optional[FTLConfig] = None,
    ) -> None:
        self.geometry = geometry
        self.flash = flash
        self.channels = channels
        self.timing = timing
        self.clock = clock
        self.stats = stats
        self.config = config or FTLConfig()
        self.page_map = PageMap()

        # Per-channel free block lists and active (partially written) blocks.
        self._free_blocks: List[List[int]] = [[] for _ in range(len(channels))]
        self._active: List[Optional[_BlockState]] = [None] * len(channels)
        self._blocks: Dict[int, _BlockState] = {}
        self._next_channel = 0

        for block_id in range(geometry.total_blocks):
            ch = geometry.channel_of_block(block_id)
            self._free_blocks[ch].append(block_id)

        # Write-buffer occupancy: completion times of in-flight drains,
        # kept as a min-heap; _inflight_max tracks the latest completion
        # (valid whenever the heap is non-empty: the max entry can only
        # be popped once every entry is poppable).
        self._inflight: List[float] = []
        self._inflight_max = 0.0
        self._n_channels = len(channels)
        self._in_gc = False
        # Hot-path bindings: geometry/timing are frozen and the
        # collaborators are never replaced after construction.
        self._flash_write_ns = timing.flash_write_ns
        self._flash_read_ns = timing.flash_read_ns
        self._page_size = geometry.page_size
        self._block_id_of = geometry.block_id_of
        self._ch_occupy = channels.occupy
        self._record_flash = stats.record_flash
        self._pm_bind = self.page_map.bind
        self._program_page = flash.program_page
        self._wb_capacity = self.config.write_buffer_pages

        self.gc_runs = 0
        self.gc_migrated_pages = 0

    # ------------------------------------------------------------------ #
    # public API (called by firmware)
    # ------------------------------------------------------------------ #

    def read_page(
        self,
        lpa: int,
        kind: StructKind = StructKind.OTHER,
        background: bool = False,
    ) -> bytes:
        """Read the flash page backing ``lpa`` (zeros if never written)."""
        _sp = trace.begin("ftl", "read_page", lpa=lpa) \
            if trace.ENABLED else None
        try:
            ppa = self.page_map.lookup(lpa)
            self._record_flash(kind, Direction.READ, self._page_size)
            if ppa is None:
                # Unwritten logical page: no flash op needed, data is zeros.
                return bytes(self._page_size)
            ch = self.geometry.channel_of(ppa)
            read_ns = self._flash_read_ns
            end = self.channels.serve(ch, self.clock.now, read_ns)
            if trace.ENABLED:
                trace.span_at(
                    "nand", "flash_read", end - read_ns, end,
                    background=background, ch=ch,
                )
            if not background:
                self.clock.advance_to(end)
            return self.flash.read_page(ppa)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def read_pages(
        self,
        lpas: List[int],
        kind: StructKind = StructKind.OTHER,
        background: bool = False,
    ) -> List[bytes]:
        """Read several pages in parallel: all flash reads are issued from
        the same start time and stripe across channels; the caller waits
        only for the slowest one."""
        _sp = trace.begin("ftl", "read_pages", n_pages=len(lpas)) \
            if trace.ENABLED else None
        try:
            start = self.clock.now
            datas: List[bytes] = []
            max_end = start
            for lpa in lpas:
                self.stats.record_flash(
                    kind, Direction.READ, self.geometry.page_size
                )
                ppa = self.page_map.lookup(lpa)
                if ppa is None:
                    datas.append(bytes(self.geometry.page_size))
                    continue
                ch = self.geometry.channel_of(ppa)
                end = self.channels.serve(ch, start, self.timing.flash_read_ns)
                if trace.ENABLED:
                    trace.span_at(
                        "nand", "flash_read",
                        end - self.timing.flash_read_ns, end,
                        background=background, ch=ch,
                    )
                max_end = max(max_end, end)
                datas.append(self.flash.read_page(ppa))
            if not background:
                self.clock.advance_to(max_end)
            return datas
        finally:
            if _sp is not None:
                trace.end(_sp)

    def write_page(
        self,
        lpa: int,
        data: bytes,
        kind: StructKind = StructKind.OTHER,
        background: bool = True,
    ) -> None:
        """Write one page out of place.

        By default the program itself happens in the background through the
        write buffer (the foreground stalls only if the buffer is full),
        matching how both firmware variants hide flash program latency.
        """
        _sp = trace.begin("ftl", "write_page", lpa=lpa) \
            if trace.ENABLED else None
        try:
            self._write_page(lpa, data, kind, background)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def _write_page(
        self, lpa: int, data: bytes, kind: StructKind, background: bool
    ) -> None:
        self._reserve_buffer_slot()
        ppa, ch = self._allocate_ppa()
        write_ns = self._flash_write_ns
        end = self._ch_occupy(ch, self.clock.now, write_ns)
        if trace.ENABLED:
            trace.span_at(
                "nand", "flash_program", end - write_ns, end,
                background=background, ch=ch,
            )
        heappush(self._inflight, end)
        if end > self._inflight_max:
            self._inflight_max = end
        if not background:
            self.clock.advance_to(end)
        # Local binding keeps the call spelled by its real name (the
        # crash-site lint resolves callers by bare name).
        program_page = self._program_page
        program_page(ppa, data)
        old = self._pm_bind(lpa, ppa)
        if old is not None:
            self._invalidate_ppa(old)
        self._blocks[self._block_id_of(ppa)].valid += 1
        self._record_flash(kind, Direction.WRITE, self._page_size)

    def trim(self, lpa: int) -> None:
        """Drop the mapping for ``lpa`` (file system freed the block)."""
        ppa = self.page_map.unbind(lpa)
        if ppa is not None:
            self._invalidate_ppa(ppa)

    def trim_many(self, lpa: int, n_pages: int) -> None:
        """Drop the mappings of ``n_pages`` consecutive LPAs in one call
        (one map crossing per batched device trim)."""
        unbind = self.page_map.unbind
        invalidate = self._invalidate_ppa
        for p in range(lpa, lpa + n_pages):
            ppa = unbind(p)
            if ppa is not None:
                invalidate(ppa)

    def is_mapped(self, lpa: int) -> bool:
        return lpa in self.page_map

    def drain_write_buffer(self) -> None:
        """Barrier: wait for every in-flight flash program to complete."""
        if self._inflight:
            self.clock.advance_to(self._inflight_max)
            self._inflight.clear()
            self._inflight_max = 0.0

    def free_page_estimate(self) -> int:
        total = 0
        for ch, blocks in enumerate(self._free_blocks):
            total += len(blocks) * self.geometry.pages_per_block
            active = self._active[ch]
            if active is not None:
                total += self.geometry.pages_per_block - active.next_page
        return total

    def gauges(self) -> Dict[str, float]:
        """FTL telemetry gauges (sampled via :meth:`MSSD.gauges`)."""
        return {
            "gc_runs": self.gc_runs,
            "gc_migrated_pages": self.gc_migrated_pages,
            "free_pages": self.free_page_estimate(),
            "write_buffer_inflight": len(self._inflight),
        }

    # ------------------------------------------------------------------ #
    # allocation and GC
    # ------------------------------------------------------------------ #

    def _allocate_ppa(self) -> Tuple[int, int]:
        """Pick the next PPA, round-robining channels for parallelism."""
        n_channels = self._n_channels
        for _ in range(n_channels):
            ch = self._next_channel
            self._next_channel = (self._next_channel + 1) % n_channels
            ppa = self._alloc_on_channel(ch)
            if ppa is not None:
                return ppa, ch
        raise FlashError("device out of space: GC could not free any block")

    def _alloc_on_channel(self, ch: int) -> Optional[int]:
        active = self._active[ch]
        if active is None or active.next_page >= self.geometry.pages_per_block:
            if (
                not self._in_gc
                and len(self._free_blocks[ch]) <= self.config.gc_free_block_low
            ):
                self._garbage_collect(ch)
            if not self._free_blocks[ch]:
                return None
            block_id = self._free_blocks[ch].pop(0)
            active = _BlockState(block_id)
            self._active[ch] = active
            self._blocks[block_id] = active
        base = self.geometry.block_base_ppa(active.block_id)
        ppa = base + active.next_page
        active.next_page += 1
        return ppa

    def _invalidate_ppa(self, ppa: int) -> None:
        block_id = self._block_id_of(ppa)
        state = self._blocks.get(block_id)
        if state is not None and state.valid > 0:
            state.valid -= 1

    def _garbage_collect(self, ch: int) -> None:
        """Greedy GC on one channel: victim = fewest valid pages."""
        victim = self._pick_victim(ch)
        if victim is None:
            return
        self._in_gc = True
        try:
            self._collect_block(ch, victim)
        finally:
            self._in_gc = False

    def _collect_block(self, ch: int, victim: "_BlockState") -> None:
        _sp = trace.begin("ftl", "gc", ch=ch, block=victim.block_id) \
            if trace.ENABLED else None
        try:
            self._collect_block_inner(ch, victim)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def _collect_block_inner(self, ch: int, victim: "_BlockState") -> None:
        self.gc_runs += 1
        base = self.geometry.block_base_ppa(victim.block_id)
        # Migrate still-valid pages (background reads + writes).
        for ppa in range(base, base + self.geometry.pages_per_block):
            lpa = self.page_map.reverse(ppa)
            if lpa is None:
                continue
            end = self.channels.occupy(
                ch, self.clock.now, self.timing.flash_read_ns
            )
            if trace.ENABLED:
                trace.span_at(
                    "nand", "flash_read",
                    end - self.timing.flash_read_ns, end,
                    background=True, ch=ch,
                )
            data = self.flash.read_page(ppa)
            self.stats.record_flash(
                StructKind.OTHER, Direction.READ, self.geometry.page_size
            )
            self.stats.bump("gc_page_migrations")
            self.gc_migrated_pages += 1
            # Re-write through normal allocation on any channel but the
            # victim's being-erased block.
            new_ppa, new_ch = self._allocate_ppa()
            end = self.channels.occupy(
                new_ch, self.clock.now, self.timing.flash_write_ns
            )
            if trace.ENABLED:
                trace.span_at(
                    "nand", "flash_program",
                    end - self.timing.flash_write_ns, end,
                    background=True, ch=new_ch,
                )
            # GC migration rebinds each page to a fresh ppa chosen one
            # step at a time; relocation has no batched form.
            self.flash.program_page(new_ppa, data)  # repro: allow[PERF001]
            self.page_map.bind(lpa, new_ppa)
            self._blocks[self.geometry.block_id_of(new_ppa)].valid += 1
            self.stats.record_flash(
                StructKind.OTHER, Direction.WRITE, self.geometry.page_size
            )
        if fssan.ENABLED:
            fssan.check_gc_victim_clear(
                self.page_map.reverse,
                base,
                self.geometry.pages_per_block,
                victim.block_id,
            )
        end = self.channels.occupy(
            ch, self.clock.now, self.timing.flash_erase_ns
        )
        if trace.ENABLED:
            trace.span_at(
                "nand", "erase",
                end - self.timing.flash_erase_ns, end,
                background=True, ch=ch,
            )
        self.flash.erase_block(victim.block_id)
        self._blocks.pop(victim.block_id, None)
        self._free_blocks[ch].append(victim.block_id)
        self.stats.bump("gc_runs")

    def _pick_victim(self, ch: int) -> Optional[_BlockState]:
        best: Optional[_BlockState] = None
        for block_id, state in self._blocks.items():
            if self.geometry.channel_of_block(block_id) != ch:
                continue
            if self._active[ch] is state:
                continue  # never collect the open block
            if state.next_page == 0:
                continue
            if best is None or state.valid < best.valid:
                best = state
        return best

    # ------------------------------------------------------------------ #
    # write buffer
    # ------------------------------------------------------------------ #

    def _reserve_buffer_slot(self) -> None:
        """Stall the foreground thread if the write buffer is full."""
        inflight = self._inflight
        if len(inflight) < self._wb_capacity:
            return
        # Drop entries that have already drained at this thread's time.
        now = self.clock.now
        while inflight and inflight[0] <= now:
            heappop(inflight)
        if not inflight:
            self._inflight_max = 0.0
        while len(inflight) >= self._wb_capacity:
            earliest = inflight[0]
            if trace.ENABLED and earliest > self.clock.now:
                trace.note_wait(
                    "ftl-write-buffer", earliest - self.clock.now, 0.0
                )
            self.clock.advance_to(earliest)
            self.stats.bump("write_buffer_stalls")
            now = self.clock.now
            while inflight and inflight[0] <= now:
                heappop(inflight)
            if not inflight:
                self._inflight_max = 0.0
