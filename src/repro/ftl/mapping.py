"""Page-level logical-to-physical mapping with a reverse map for GC."""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis import fssan


class PageMap:
    """LPA -> PPA map plus the PPA -> LPA reverse map GC needs."""

    def __init__(self) -> None:
        self._l2p: Dict[int, int] = {}
        self._p2l: Dict[int, int] = {}

    def lookup(self, lpa: int) -> Optional[int]:
        return self._l2p.get(lpa)

    def reverse(self, ppa: int) -> Optional[int]:
        return self._p2l.get(ppa)

    def bind(self, lpa: int, ppa: int) -> Optional[int]:
        """Map ``lpa`` to ``ppa``; return the PPA it previously mapped to
        (now invalid), or None."""
        if fssan.ENABLED:
            fssan.check_map_steal(self._p2l, lpa, ppa)
        old = self._l2p.get(lpa)
        if old is not None:
            self._p2l.pop(old, None)
        self._l2p[lpa] = ppa
        self._p2l[ppa] = lpa
        if fssan.ENABLED:
            fssan.check_map_bind(self._l2p, self._p2l, lpa, ppa)
        return old

    def unbind(self, lpa: int) -> Optional[int]:
        """Drop the mapping for ``lpa`` (trim); return the freed PPA."""
        ppa = self._l2p.pop(lpa, None)
        if ppa is not None:
            self._p2l.pop(ppa, None)
        return ppa

    def mapped_lpas(self):
        return self._l2p.keys()

    def __len__(self) -> int:
        return len(self._l2p)

    def __contains__(self, lpa: int) -> bool:
        return lpa in self._l2p
