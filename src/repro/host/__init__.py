"""Host-side memory: the page cache with copy-on-write diff tracking."""

from repro.host.page_cache import AddressSpace, CachedPage, PageCache

__all__ = ["AddressSpace", "CachedPage", "PageCache"]
