"""Memory-mapped file I/O (§4.6, "Memory-Mapped I/O").

ByteFS maps cached DRAM pages into the application's address space; the
interface-selection mechanism (CoW + modified ratio) applies to mapped
pages exactly as to buffered writes.  ``msync`` triggers the same
policy-driven writeback as ``fsync``.

The mapping object below stands in for the mapped region: loads and
stores hit the host page cache directly (no syscall cost), faulting
pages in from the device on first touch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.fs.errors import InvalidArgument

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.extfs import ExtFS


class MappedRegion:
    """A file region mapped into simulated application memory."""

    def __init__(self, fs: "ExtFS", ino: int, offset: int, length: int):
        if offset % fs.P != 0:
            raise InvalidArgument("mmap offset must be page aligned")
        self.fs = fs
        self.ino = ino
        self.offset = offset
        self.length = length
        self.closed = False

    def _check(self, off: int, n: int) -> None:
        if self.closed:
            raise InvalidArgument("mapping is closed")
        if off < 0 or off + n > self.length:
            raise InvalidArgument(
                f"access [{off}, {off + n}) outside mapping of "
                f"{self.length} bytes"
            )

    def _fault_page(self, pidx: int):
        """Fault a page into the cache (the mmap page-fault path)."""
        fs = self.fs
        page = fs.page_cache.lookup(self.ino, pidx)
        if page is None:
            inode = fs._get_inode(self.ino)
            data = fs._read_page_from_device(inode, pidx)
            page = fs.page_cache.install(
                self.ino, pidx, data, fs._evict_writeback
            )
            fs.stats.bump("mmap_page_faults")
        return page

    def load(self, off: int, n: int) -> bytes:
        """Read ``n`` bytes at mapping offset ``off`` (plain loads)."""
        self._check(off, n)
        out = bytearray()
        pos = self.offset + off
        end = pos + n
        while pos < end:
            pidx = pos // self.fs.P
            poff = pos % self.fs.P
            take = min(self.fs.P - poff, end - pos)
            page = self._fault_page(pidx)
            out += page.data[poff : poff + take]
            pos += take
        self.fs.clock.advance(self.fs.timing.host_memcpy_ns(n))
        return bytes(out)

    def store(self, off: int, data: bytes) -> None:
        """Write ``data`` at mapping offset ``off`` (plain stores; CoW
        tracks the dirty cachelines for the msync policy)."""
        self._check(off, len(data))
        pos = self.offset + off
        i = 0
        while i < len(data):
            pidx = pos // self.fs.P
            poff = pos % self.fs.P
            take = min(self.fs.P - poff, len(data) - i)
            page = self._fault_page(pidx)
            self.fs.page_cache.mark_dirty(
                self.ino, pidx, cow=self.fs.cfg.data_byte_policy
            )
            page.data[poff : poff + take] = data[i : i + take]
            pos += take
            i += take
        inode = self.fs._get_inode(self.ino)
        end_off = self.offset + off + len(data)
        if end_off > inode.size:
            inode.size = end_off
        self.fs.clock.advance(self.fs.timing.host_memcpy_ns(len(data)))

    def msync(self) -> None:
        """Flush the mapping durably (same policy path as fsync)."""
        if self.closed:
            raise InvalidArgument("mapping is closed")
        self.fs._syscall()
        self.fs._fsync(self.ino, data_only=False)

    def close(self) -> None:
        self.closed = True
