"""The host page cache with copy-on-write modified-ratio tracking (§4.6).

ByteFS tracks writes to cached pages by duplicating the original page on
first modification (CoW).  At writeback time it XORs the duplicate against
the current page to find dirty 64 B chunks and computes the modified ratio
``R``; pages with ``R < 1/8`` are persisted through the byte interface,
others through the block interface.  The duplicate pages are tracked in an
XArray-like per-inode index (``address_space``) just like normal cached
pages.

Ext4/F2FS use the same cache without CoW (they always write back whole
pages over the block interface).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

CACHELINE = 64


class CachedPage:
    """One cached file page, with an optional CoW duplicate."""

    __slots__ = ("data", "dirty", "original")

    def __init__(self, data: bytes, page_size: int) -> None:
        if len(data) < page_size:
            data = data + bytes(page_size - len(data))
        self.data = bytearray(data)
        self.dirty = False
        self.original: Optional[bytes] = None  # CoW duplicate page

    def mark_dirty(self, cow: bool) -> None:
        if cow and self.original is None:
            # First modification: duplicate the pristine page (§4.6).
            self.original = bytes(self.data)
        self.dirty = True

    def dirty_chunks(self) -> List[Tuple[int, int]]:
        """(offset, length) runs of modified 64 B cachelines, via XOR diff.

        Without a CoW duplicate the whole page is considered modified.
        """
        if self.original is None:
            return [(0, len(self.data))]
        runs: List[Tuple[int, int]] = []
        run_start = -1
        for off in range(0, len(self.data), CACHELINE):
            chunk_dirty = (
                self.data[off : off + CACHELINE]
                != self.original[off : off + CACHELINE]
            )
            if chunk_dirty and run_start < 0:
                run_start = off
            elif not chunk_dirty and run_start >= 0:
                runs.append((run_start, off - run_start))
                run_start = -1
        if run_start >= 0:
            runs.append((run_start, len(self.data) - run_start))
        return runs

    def modified_ratio(self) -> float:
        """R = modified cachelines / total cachelines (§4.6)."""
        total = len(self.data) // CACHELINE
        dirty_lines = sum(
            -(-length // CACHELINE) for _off, length in self.dirty_chunks()
        )
        return dirty_lines / total

    def clean(self) -> None:
        self.dirty = False
        self.original = None


class AddressSpace:
    """Per-inode page index (the kernel's ``struct address_space``)."""

    def __init__(self, ino: int, page_size: int) -> None:
        self.ino = ino
        self.page_size = page_size
        self.pages: Dict[int, CachedPage] = {}

    def get(self, index: int) -> Optional[CachedPage]:
        return self.pages.get(index)

    def install(self, index: int, data: bytes) -> CachedPage:
        page = CachedPage(data, self.page_size)
        self.pages[index] = page
        return page

    def drop(self, index: int) -> None:
        self.pages.pop(index, None)

    def dirty_pages(self) -> Iterator[Tuple[int, CachedPage]]:
        for index in sorted(self.pages):
            page = self.pages[index]
            if page.dirty:
                yield index, page

    def __len__(self) -> int:
        return len(self.pages)


#: writeback callback: (ino, page_index, page) -> None.  Must leave the
#: page clean.
WritebackFn = Callable[[int, int, CachedPage], None]


class PageCache:
    """Global page cache across inodes, with LRU eviction.

    Eviction prefers clean pages; a dirty victim is written back through
    the owning file system's callback first.
    """

    def __init__(self, capacity_pages: int, page_size: int) -> None:
        if capacity_pages < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity_pages = capacity_pages
        self.page_size = page_size
        self._spaces: Dict[int, AddressSpace] = {}
        self._lru: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.cow_copies = 0

    # ------------------------------------------------------------------ #

    def space(self, ino: int) -> AddressSpace:
        space = self._spaces.get(ino)
        if space is None:
            space = AddressSpace(ino, self.page_size)
            self._spaces[ino] = space
        return space

    def lookup(self, ino: int, index: int) -> Optional[CachedPage]:
        page = self.space(ino).get(index)
        if page is not None:
            self.hits += 1
            self._lru.move_to_end((ino, index))
        else:
            self.misses += 1
        return page

    def install(
        self, ino: int, index: int, data: bytes, writeback: WritebackFn
    ) -> CachedPage:
        self._make_room(writeback)
        page = self.space(ino).install(index, data)
        self._lru[(ino, index)] = None
        return page

    def mark_dirty(self, ino: int, index: int, cow: bool) -> None:
        page = self.space(ino).get(index)
        if page is None:
            raise KeyError(f"page ({ino}, {index}) not cached")
        had_dup = page.original is not None
        page.mark_dirty(cow)
        if cow and not had_dup and page.original is not None:
            self.cow_copies += 1

    def _make_room(self, writeback: WritebackFn) -> None:
        while len(self._lru) >= self.capacity_pages:
            victim_key = None
            # Prefer the least-recently-used *clean* page.
            for key in self._lru:
                ino, index = key
                page = self._spaces[ino].get(index)
                if page is None or not page.dirty:
                    victim_key = key
                    break
            if victim_key is None:
                victim_key = next(iter(self._lru))
            ino, index = victim_key
            page = self._spaces[ino].get(index)
            if page is not None and page.dirty:
                writeback(ino, index, page)
            self._spaces[ino].drop(index)
            del self._lru[victim_key]

    # ------------------------------------------------------------------ #

    def dirty_pages(self, ino: int) -> List[Tuple[int, CachedPage]]:
        space = self._spaces.get(ino)
        if space is None:
            return []
        return list(space.dirty_pages())

    def all_dirty(self) -> List[Tuple[int, int, CachedPage]]:
        out = []
        for ino, space in self._spaces.items():
            for index, page in space.dirty_pages():
                out.append((ino, index, page))
        return out

    def drop_inode(self, ino: int) -> None:
        space = self._spaces.pop(ino, None)
        if space is not None:
            for index in space.pages:
                self._lru.pop((ino, index), None)

    def drop_all(self) -> None:
        """Crash: volatile host memory is lost."""
        self._spaces.clear()
        self._lru.clear()

    # ------------------------------------------------------------------ #

    @property
    def cached_pages(self) -> int:
        return len(self._lru)

    def duplicate_pages(self) -> int:
        """Pages currently holding a CoW duplicate (paper: ~16 % of the
        cache on average)."""
        return sum(
            1
            for space in self._spaces.values()
            for page in space.pages.values()
            if page.original is not None
        )
