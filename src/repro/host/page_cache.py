"""The host page cache with copy-on-write modified-ratio tracking (§4.6).

ByteFS tracks writes to cached pages by duplicating the original page on
first modification (CoW).  At writeback time it XORs the duplicate against
the current page to find dirty 64 B chunks and computes the modified ratio
``R``; pages with ``R < 1/8`` are persisted through the byte interface,
others through the block interface.  The duplicate pages are tracked in an
XArray-like per-inode index (``address_space``) just like normal cached
pages.

Ext4/F2FS use the same cache without CoW (they always write back whole
pages over the block interface).
"""

from __future__ import annotations

from collections import OrderedDict
from heapq import heappop, heappush
from typing import Callable, Dict, Iterator, List, Optional, Tuple

try:  # declared project dependency; the fallback keeps minimal envs alive
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

CACHELINE = 64
_ZERO_LINE = bytes(CACHELINE)


class CachedPage:
    """One cached file page, with an optional CoW duplicate.

    ``_key``/``_notify`` are set by the owning :class:`PageCache` so that
    :meth:`clean` can report dirty->clean transitions (file systems call
    it directly on writeback); the cache uses them to keep its eviction
    candidate index exact.
    """

    __slots__ = ("data", "dirty", "original", "_key", "_notify")

    def __init__(self, data: bytes, page_size: int) -> None:
        if len(data) < page_size:
            data = data + bytes(page_size - len(data))
        self.data = bytearray(data)
        self.dirty = False
        self.original: Optional[bytes] = None  # CoW duplicate page
        self._key: Optional[Tuple[int, int]] = None
        self._notify: Optional[Callable[[Tuple[int, int]], None]] = None

    def mark_dirty(self, cow: bool) -> None:
        if cow and self.original is None:
            # First modification: duplicate the pristine page (§4.6).
            self.original = bytes(self.data)
        self.dirty = True

    def dirty_chunks(self) -> List[Tuple[int, int]]:
        """(offset, length) runs of modified 64 B cachelines, via XOR diff.

        Without a CoW duplicate the whole page is considered modified.
        """
        if self.original is None:
            return [(0, len(self.data))]
        n = len(self.data)
        if _np is not None:
            # Vectorized per-cacheline diff (word-wide compare), then
            # runs are rebuilt from the dirty line index groups.
            if n % 8 == 0:
                neq = _np.not_equal(
                    _np.frombuffer(self.data, dtype=_np.int64),
                    _np.frombuffer(self.original, dtype=_np.int64),
                )
                per_line = CACHELINE // 8
            else:
                neq = _np.not_equal(
                    _np.frombuffer(self.data, dtype=_np.uint8),
                    _np.frombuffer(self.original, dtype=_np.uint8),
                )
                per_line = CACHELINE
            m = n // CACHELINE
            full = m * per_line
            line_dirty = neq[:full].reshape(m, per_line).any(axis=1)
            if n % CACHELINE:
                line_dirty = _np.append(line_dirty, neq[full:].any())
            lines = line_dirty.nonzero()[0].tolist()
            if not lines:
                return []
            runs: List[Tuple[int, int]] = []
            start = prev = lines[0]
            for i in lines[1:]:
                if i != prev + 1:
                    runs.append(
                        (start * CACHELINE, (prev + 1 - start) * CACHELINE)
                    )
                    start = i
                prev = i
            hi = (prev + 1) * CACHELINE
            runs.append(
                (start * CACHELINE, (hi if hi < n else n) - start * CACHELINE)
            )
            return runs
        if self.data == self.original:
            return []
        cur = memoryview(self.data)
        old = memoryview(self.original)
        runs = []
        run_start = -1
        for off in range(0, n, CACHELINE):
            chunk_dirty = (
                cur[off : off + CACHELINE] != old[off : off + CACHELINE]
            )
            if chunk_dirty and run_start < 0:
                run_start = off
            elif not chunk_dirty and run_start >= 0:
                runs.append((run_start, off - run_start))
                run_start = -1
        if run_start >= 0:
            runs.append((run_start, n - run_start))
        return runs

    def modified_ratio(self) -> float:
        """R = modified cachelines / total cachelines (§4.6)."""
        total = len(self.data) // CACHELINE
        dirty_lines = sum(
            -(-length // CACHELINE) for _off, length in self.dirty_chunks()
        )
        return dirty_lines / total

    def clean(self) -> None:
        self.dirty = False
        self.original = None
        notify = self._notify
        if notify is not None:
            notify(self._key)


class AddressSpace:
    """Per-inode page index (the kernel's ``struct address_space``).

    ``on_drop`` (set by the owning :class:`PageCache`) is notified when a
    present page is dropped, so the cache can track keys whose LRU entry
    went stale behind its back (file systems truncate by calling
    :meth:`drop` directly).
    """

    def __init__(
        self,
        ino: int,
        page_size: int,
        on_drop: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.ino = ino
        self.page_size = page_size
        self.pages: Dict[int, CachedPage] = {}
        self._on_drop = on_drop

    def get(self, index: int) -> Optional[CachedPage]:
        return self.pages.get(index)

    def install(self, index: int, data: bytes) -> CachedPage:
        page = CachedPage(data, self.page_size)
        self.pages[index] = page
        return page

    def drop(self, index: int) -> None:
        if self.pages.pop(index, None) is not None \
                and self._on_drop is not None:
            self._on_drop(self.ino, index)

    def dirty_pages(self) -> Iterator[Tuple[int, CachedPage]]:
        for index in sorted(self.pages):
            page = self.pages[index]
            if page.dirty:
                yield index, page

    def __len__(self) -> int:
        return len(self.pages)


#: writeback callback: (ino, page_index, page) -> None.  Must leave the
#: page clean.
WritebackFn = Callable[[int, int, CachedPage], None]


class PageCache:
    """Global page cache across inodes, with LRU eviction.

    Eviction prefers clean pages; a dirty victim is written back through
    the owning file system's callback first.
    """

    def __init__(self, capacity_pages: int, page_size: int) -> None:
        if capacity_pages < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity_pages = capacity_pages
        self.page_size = page_size
        self._spaces: Dict[int, AddressSpace] = {}
        # LRU value = the CachedPage itself: eviction needs no per-entry
        # space lookup.  Keys whose page was dropped behind the cache's
        # back (direct AddressSpace.drop from a truncate path) land in
        # _stale_keys via the space's on_drop hook; a stale key still
        # occupies an LRU slot and is victimized like a clean page.
        self._lru: "OrderedDict[Tuple[int, int], CachedPage]" = OrderedDict()
        self._stale_keys: set = set()
        # Exact O(log n) victim index: _pos stamps each key with its LRU
        # rank (restamped on every move_to_end), and _cand holds
        # (stamp, key) entries for keys that were clean or stale when
        # pushed.  Entries are validated lazily on pop — a key that was
        # restamped, evicted, or dirtied since the push is discarded —
        # so the minimal valid entry is exactly the least-recently-used
        # clean-or-stale key the old linear scan would have found.
        self._pos: Dict[Tuple[int, int], int] = {}
        self._cand: List[Tuple[int, Tuple[int, int]]] = []
        self._ctr = 0
        self.hits = 0
        self.misses = 0
        self.cow_copies = 0

    # ------------------------------------------------------------------ #

    def space(self, ino: int) -> AddressSpace:
        space = self._spaces.get(ino)
        if space is None:
            space = AddressSpace(ino, self.page_size, self._note_drop)
            self._spaces[ino] = space
        return space

    def _note_drop(self, ino: int, index: int) -> None:
        key = (ino, index)
        pos = self._pos.get(key)
        if pos is not None:
            self._stale_keys.add(key)
            heappush(self._cand, (pos, key))

    def _note_clean(self, key: Tuple[int, int]) -> None:
        pos = self._pos.get(key)
        if pos is not None:
            heappush(self._cand, (pos, key))

    def lookup(self, ino: int, index: int) -> Optional[CachedPage]:
        space = self._spaces.get(ino)
        page = space.pages.get(index) if space is not None else None
        if page is not None:
            self.hits += 1
            key = (ino, index)
            self._lru.move_to_end(key)
            pos = self._ctr
            self._ctr = pos + 1
            self._pos[key] = pos
            if not page.dirty:
                heappush(self._cand, (pos, key))
        else:
            self.misses += 1
        return page

    def install(
        self, ino: int, index: int, data: bytes, writeback: WritebackFn
    ) -> CachedPage:
        self._make_room(writeback)
        space = self.space(ino)
        page = space.install(index, data)
        key = (ino, index)
        page._key = key
        page._notify = self._note_clean
        pos = self._pos.get(key)
        if pos is None:
            # Re-installing over a stale key keeps its LRU position
            # (OrderedDict value assignment does not move the entry), so
            # only genuinely new keys get a fresh stamp.
            pos = self._ctr
            self._ctr = pos + 1
            self._pos[key] = pos
        self._lru[key] = page
        self._stale_keys.discard(key)
        heappush(self._cand, (pos, key))
        return page

    def mark_dirty(self, ino: int, index: int, cow: bool) -> None:
        space = self._spaces.get(ino)
        page = space.pages.get(index) if space is not None else None
        if page is None:
            raise KeyError(f"page ({ino}, {index}) not cached")
        self.mark_page_dirty(page, cow)

    def mark_page_dirty(self, page: CachedPage, cow: bool) -> None:
        """Like :meth:`mark_dirty` when the caller already holds the page
        (skips the two-level index lookup on the buffered-write path)."""
        if cow and page.original is None:
            page.original = bytes(page.data)
            self.cow_copies += 1
        page.dirty = True

    def _make_room(self, writeback: WritebackFn) -> None:
        while len(self._lru) >= self.capacity_pages:
            # Prefer the least-recently-used clean (or stale) page: pop
            # candidates until one still matches its stamp and is still
            # clean or stale.  Every clean-or-stale key has at least one
            # current-stamp entry (pushed on install, on clean(), on
            # drop-behind-our-back, and on restamp of a clean page), so
            # an empty/exhausted heap means every cached page is dirty.
            stale = self._stale_keys
            cand = self._cand
            pos_map = self._pos
            victim_key = None
            victim_page = None
            while cand:
                pos, key = cand[0]
                if pos_map.get(key) != pos:
                    heappop(cand)  # restamped or evicted since pushed
                    continue
                page = self._lru[key]
                if page.dirty and key not in stale:
                    heappop(cand)  # dirtied since pushed
                    continue
                victim_key = key
                victim_page = page
                break
            if victim_key is None:
                victim_key, victim_page = next(iter(self._lru.items()))
            ino, index = victim_key
            if victim_page.dirty and victim_key not in stale:
                writeback(ino, index, victim_page)
            space = self._spaces.get(ino)
            if space is not None:
                space.drop(index)
            stale.discard(victim_key)
            del self._pos[victim_key]
            del self._lru[victim_key]

    # ------------------------------------------------------------------ #

    def dirty_pages(self, ino: int) -> List[Tuple[int, CachedPage]]:
        space = self._spaces.get(ino)
        if space is None:
            return []
        return list(space.dirty_pages())

    def all_dirty(self) -> List[Tuple[int, int, CachedPage]]:
        out = []
        for ino, space in self._spaces.items():
            for index, page in space.dirty_pages():
                out.append((ino, index, page))
        return out

    def drop_inode(self, ino: int) -> None:
        space = self._spaces.pop(ino, None)
        if space is not None:
            for index in space.pages:
                key = (ino, index)
                if self._lru.pop(key, None) is not None:
                    self._pos.pop(key, None)

    def drop_all(self) -> None:
        """Crash: volatile host memory is lost."""
        self._spaces.clear()
        self._lru.clear()
        self._stale_keys.clear()
        self._pos.clear()
        self._cand.clear()

    # ------------------------------------------------------------------ #

    @property
    def cached_pages(self) -> int:
        return len(self._lru)

    def duplicate_pages(self) -> int:
        """Pages currently holding a CoW duplicate (paper: ~16 % of the
        cache on average)."""
        return sum(
            1
            for space in self._spaces.values()
            for page in space.pages.values()
            if page.original is not None
        )
