"""Interconnect models: PCIe MMIO (byte interface), NVMe DMA (block
interface), and CXL.mem.

Latency semantics follow §4.2 of the paper:

* MMIO **reads** are non-posted PCIe transactions and serialize — each
  cacheline load costs the full round trip (4.8 us over PCIe 3.0, 175 ns
  over CXL).
* MMIO **writes** are posted and pipeline on the link, so bulk stores
  approach link bandwidth while a *persistent* write additionally pays a
  cache flush plus a zero-byte write-verify read that drains the posted
  queue.
* NVMe block transfers pay a fixed command overhead plus bytes/bandwidth.
"""

from repro.interconnect.link import HostLink

__all__ = ["HostLink"]
