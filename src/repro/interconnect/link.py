"""The host<->device link: charges simulated time for every transfer."""

from __future__ import annotations

from repro.nand.timing import TimingModel
from repro.sim.clock import VirtualClock
from repro.sim.resources import Pipeline, Resource
from repro.trace import tracer as trace

CACHELINE = 64


class HostLink:
    """Times MMIO and DMA transfers against a shared link resource.

    One :class:`HostLink` is shared by every simulated thread; the link
    resource and the posted-write pipeline create the contention between
    them.
    """

    def __init__(
        self, clock: VirtualClock, timing: TimingModel, name: str = "pcie"
    ) -> None:
        self.clock = clock
        self.timing = timing
        # ``name`` prefixes every link resource so multi-device stacks
        # (repro.cluster) keep per-device contention groups distinct.
        self._dma = Resource(f"{name}-dma")
        self._posted = Pipeline(f"{name}-posted", timing.mmio_write_pipeline)
        # Loads are non-posted but the CPU keeps several outstanding
        # (memory-level parallelism), so bulk reads overlap.
        self._nonposted = Pipeline(
            f"{name}-nonposted", timing.mmio_read_parallelism
        )
        self._barrier = Resource(f"{name}-barrier")
        self.mmio_reads = 0
        self.mmio_writes = 0
        self.dma_transfers = 0
        # TimingModel is frozen and the pipelines are never replaced, so
        # the per-transfer hot paths use these cached bindings.
        self._mmio_read_ns = timing.mmio_read_ns
        self._mmio_write_ns = timing.mmio_write_ns
        self._nonposted_serve_many = self._nonposted.serve_many
        self._posted_serve_many = self._posted.serve_many
        self._persist_flush_ns = timing.persist_flush_ns
        self._nvme_cmd_ns = timing.nvme_cmd_ns
        self._dma_transfer_ns = timing.dma_transfer_ns
        self._dma_serve = self._dma.serve
        self._barrier_serve = self._barrier.serve

    # ------------------------------------------------------------------ #
    # byte interface
    # ------------------------------------------------------------------ #

    def mmio_read(self, nbytes: int) -> None:
        """Load ``nbytes`` via MMIO: each cacheline pays the full round
        trip, with up to ``mmio_read_parallelism`` loads in flight."""
        _sp = trace.begin("link", "mmio_read", nbytes=nbytes) \
            if trace.ENABLED else None
        lines = (nbytes + CACHELINE - 1) // CACHELINE or 1
        # The clock does not advance inside the loop, so every line is
        # served from the same `now`; the pipeline batches the whole
        # burst (max end == last end on a greedy pipeline).
        clock = self.clock
        end = self._nonposted_serve_many(clock.now, self._mmio_read_ns, lines)
        self.mmio_reads += lines
        clock.advance_to(end)
        if _sp is not None:
            trace.end(_sp)

    def mmio_write(self, nbytes: int) -> None:
        """Store ``nbytes`` via MMIO.  Posted: writes pipeline."""
        _sp = trace.begin("link", "mmio_write", nbytes=nbytes) \
            if trace.ENABLED else None
        lines = (nbytes + CACHELINE - 1) // CACHELINE or 1
        # Posted writes retire in issue order: completion time is the
        # *last* lane finish; the whole burst issues from the same `now`.
        clock = self.clock
        end = self._posted_serve_many(clock.now, self._mmio_write_ns, lines)
        self.mmio_writes += lines
        clock.advance_to(end)
        if _sp is not None:
            trace.end(_sp)

    def persist_barrier(self, nlines: int = 1) -> None:
        """clflush/clwb the written lines, then a write-verify read (§4.2).

        The zero-byte non-posted read serializes behind all outstanding
        posted writes in the root complex, guaranteeing durability.
        """
        _sp = trace.begin("link", "persist_barrier", nlines=nlines) \
            if trace.ENABLED else None
        clock = self.clock
        clock.advance(self._persist_flush_ns * (nlines if nlines > 1 else 1))
        end = self._barrier_serve(clock.now, self._mmio_read_ns)
        clock.advance_to(end)
        if _sp is not None:
            trace.end(_sp)

    def mmio_persist_write(self, nbytes: int) -> None:
        """Convenience: posted write + flush + write-verify read."""
        self.mmio_write(nbytes)
        self.persist_barrier((nbytes + CACHELINE - 1) // CACHELINE or 1)

    # ------------------------------------------------------------------ #
    # block interface
    # ------------------------------------------------------------------ #

    def dma(self, nbytes: int, write: bool) -> None:
        """An NVMe data transfer: command overhead plus bytes/bandwidth."""
        _sp = trace.begin("link", "dma", nbytes=nbytes, write=write) \
            if trace.ENABLED else None
        duration = self._nvme_cmd_ns + self._dma_transfer_ns(nbytes, write)
        clock = self.clock
        end = self._dma_serve(clock.now, duration)
        self.dma_transfers += 1
        clock.advance_to(end)
        if _sp is not None:
            trace.end(_sp)

    def reset(self) -> None:
        self._dma.reset()
        self._posted.reset()
        self._nonposted.reset()
        self._barrier.reset()
        self.mmio_reads = 0
        self.mmio_writes = 0
        self.dma_transfers = 0
