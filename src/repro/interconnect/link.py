"""The host<->device link: charges simulated time for every transfer."""

from __future__ import annotations

import math

from repro.nand.timing import TimingModel
from repro.sim.clock import VirtualClock
from repro.sim.resources import Pipeline, Resource
from repro.trace import tracer as trace

CACHELINE = 64


class HostLink:
    """Times MMIO and DMA transfers against a shared link resource.

    One :class:`HostLink` is shared by every simulated thread; the link
    resource and the posted-write pipeline create the contention between
    them.
    """

    def __init__(self, clock: VirtualClock, timing: TimingModel) -> None:
        self.clock = clock
        self.timing = timing
        self._dma = Resource("pcie-dma")
        self._posted = Pipeline("pcie-posted", timing.mmio_write_pipeline)
        # Loads are non-posted but the CPU keeps several outstanding
        # (memory-level parallelism), so bulk reads overlap.
        self._nonposted = Pipeline(
            "pcie-nonposted", timing.mmio_read_parallelism
        )
        self._barrier = Resource("pcie-barrier")
        self.mmio_reads = 0
        self.mmio_writes = 0
        self.dma_transfers = 0

    # ------------------------------------------------------------------ #
    # byte interface
    # ------------------------------------------------------------------ #

    def mmio_read(self, nbytes: int) -> None:
        """Load ``nbytes`` via MMIO: each cacheline pays the full round
        trip, with up to ``mmio_read_parallelism`` loads in flight."""
        _sp = trace.begin("link", "mmio_read", nbytes=nbytes) \
            if trace.ENABLED else None
        lines = max(1, math.ceil(nbytes / CACHELINE))
        end = self.clock.now
        for _ in range(lines):
            end = max(
                end,
                self._nonposted.serve(self.clock.now, self.timing.mmio_read_ns),
            )
        self.mmio_reads += lines
        self.clock.advance_to(end)
        if _sp is not None:
            trace.end(_sp)

    def mmio_write(self, nbytes: int) -> None:
        """Store ``nbytes`` via MMIO.  Posted: writes pipeline."""
        _sp = trace.begin("link", "mmio_write", nbytes=nbytes) \
            if trace.ENABLED else None
        lines = max(1, math.ceil(nbytes / CACHELINE))
        end = self.clock.now
        for _ in range(lines):
            end = self._posted.serve(self.clock.now, self.timing.mmio_write_ns)
        self.mmio_writes += lines
        self.clock.advance_to(end)
        if _sp is not None:
            trace.end(_sp)

    def persist_barrier(self, nlines: int = 1) -> None:
        """clflush/clwb the written lines, then a write-verify read (§4.2).

        The zero-byte non-posted read serializes behind all outstanding
        posted writes in the root complex, guaranteeing durability.
        """
        _sp = trace.begin("link", "persist_barrier", nlines=nlines) \
            if trace.ENABLED else None
        self.clock.advance(self.timing.persist_flush_ns * max(1, nlines))
        end = self._barrier.serve(self.clock.now, self.timing.mmio_read_ns)
        self.clock.advance_to(end)
        if _sp is not None:
            trace.end(_sp)

    def mmio_persist_write(self, nbytes: int) -> None:
        """Convenience: posted write + flush + write-verify read."""
        self.mmio_write(nbytes)
        self.persist_barrier(max(1, math.ceil(nbytes / CACHELINE)))

    # ------------------------------------------------------------------ #
    # block interface
    # ------------------------------------------------------------------ #

    def dma(self, nbytes: int, write: bool) -> None:
        """An NVMe data transfer: command overhead plus bytes/bandwidth."""
        _sp = trace.begin("link", "dma", nbytes=nbytes, write=write) \
            if trace.ENABLED else None
        duration = self.timing.nvme_cmd_ns + self.timing.dma_transfer_ns(
            nbytes, write
        )
        end = self._dma.serve(self.clock.now, duration)
        self.dma_transfers += 1
        self.clock.advance_to(end)
        if _sp is not None:
            trace.end(_sp)

    def reset(self) -> None:
        self._dma.reset()
        self._posted.reset()
        self._nonposted.reset()
        self._barrier.reset()
        self.mmio_reads = 0
        self.mmio_writes = 0
        self.dma_transfers = 0
