"""An LSM-tree key-value store (the RocksDB stand-in for YCSB, §5.2).

The store runs on any of the simulated file systems and produces the
file-system workload that matters for ByteFS: WAL appends with per-batch
fsync, bulk SSTable writes at flush/compaction, and random SSTable reads
served through the host page cache (or the byte interface for the DAX
file systems).
"""

from repro.kv.bloom import BloomFilter
from repro.kv.memtable import Memtable
from repro.kv.sstable import SSTableReader, SSTableWriter
from repro.kv.db import KVStore, KVConfig

__all__ = [
    "BloomFilter",
    "Memtable",
    "SSTableReader",
    "SSTableWriter",
    "KVStore",
    "KVConfig",
]
