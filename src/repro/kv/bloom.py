"""A classic Bloom filter over byte-string keys."""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Optional


class BloomFilter:
    """Fixed-size Bloom filter with double hashing."""

    def __init__(self, n_items: int, fp_rate: float = 0.01) -> None:
        if n_items < 1:
            n_items = 1
        if not 0 < fp_rate < 1:
            raise ValueError("fp_rate must be in (0, 1)")
        self.n_bits = max(
            8, int(-n_items * math.log(fp_rate) / (math.log(2) ** 2))
        )
        self.n_hashes = max(1, round(self.n_bits / n_items * math.log(2)))
        self._bits = bytearray(-(-self.n_bits // 8))

    def _hashes(self, key: bytes):
        digest = hashlib.sha256(key).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:16], "little") | 1
        for i in range(self.n_hashes):
            yield (h1 + i * h2) % self.n_bits

    def add(self, key: bytes) -> None:
        for bit in self._hashes(key):
            self._bits[bit // 8] |= 1 << (bit % 8)

    def __contains__(self, key: bytes) -> bool:
        return all(
            self._bits[bit // 8] & (1 << (bit % 8)) for bit in self._hashes(key)
        )

    def to_bytes(self) -> bytes:
        header = self.n_bits.to_bytes(8, "little") + self.n_hashes.to_bytes(
            2, "little"
        )
        return header + bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        bloom = cls.__new__(cls)
        bloom.n_bits = int.from_bytes(data[:8], "little")
        bloom.n_hashes = int.from_bytes(data[8:10], "little")
        bloom._bits = bytearray(data[10 : 10 + -(-bloom.n_bits // 8)])
        return bloom

    @classmethod
    def build(cls, keys: Iterable[bytes], fp_rate: float = 0.01) -> "BloomFilter":
        keys = list(keys)
        bloom = cls(len(keys), fp_rate)
        for key in keys:
            bloom.add(key)
        return bloom
