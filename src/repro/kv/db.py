"""The LSM key-value store: WAL + memtable + leveled SSTables.

Mirrors the RocksDB behaviours that matter to the file system:

* every write batch appends to the WAL and (by default) fsyncs it —
  small synchronous appends, ByteFS's sweet spot;
* memtable flushes and compactions produce large sequential writes;
* gets hit the memtable, then L0 newest-first, then L1 by key range,
  with Bloom filters avoiding most useless table reads.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fs.errors import FileNotFound
from repro.fs.vfs import BaseFileSystem, O_APPEND, O_CREAT, O_RDWR
from repro.kv.memtable import Memtable
from repro.kv.sstable import SSTableReader, SSTableWriter

_WAL_REC = "<HBI"


@dataclass
class KVConfig:
    """LSM tuning knobs (scaled-down RocksDB defaults)."""

    memtable_bytes: int = 256 << 10
    l0_compaction_trigger: int = 4
    target_sst_bytes: int = 512 << 10
    wal_sync: bool = True


class KVStore:
    """A single-process LSM store on top of a simulated file system."""

    def __init__(
        self,
        fs: BaseFileSystem,
        root: str = "/kv",
        config: Optional[KVConfig] = None,
    ) -> None:
        self.fs = fs
        self.root = root
        self.cfg = config or KVConfig()
        self.memtable = Memtable()
        self.l0: List[SSTableReader] = []   # newest first
        self.l1: List[SSTableReader] = []   # sorted, non-overlapping
        self._next_file = 0
        self._wal_fd: Optional[int] = None
        if not fs.exists(root):
            fs.mkdir(root)
        self._open_wal(truncate=not fs.exists(f"{root}/wal"))
        self.flushes = 0
        self.compactions = 0

    # ------------------------------------------------------------------ #
    # WAL
    # ------------------------------------------------------------------ #

    def _wal_path(self) -> str:
        return f"{self.root}/wal"

    def _open_wal(self, truncate: bool) -> None:
        flags = O_CREAT | O_RDWR | O_APPEND
        self._wal_fd = self.fs.open(self._wal_path(), flags)
        if truncate:
            self.fs.ftruncate(self._wal_fd, 0)

    def _wal_append(self, key: bytes, value: Optional[bytes]) -> None:
        flag = 1 if value is None else 0
        body = value or b""
        rec = struct.pack(_WAL_REC, len(key), flag, len(body)) + key + body
        self.fs.write(self._wal_fd, rec)
        if self.cfg.wal_sync:
            self.fs.fdatasync(self._wal_fd)

    def replay_wal(self) -> int:
        """Re-apply WAL records into the memtable (crash recovery)."""
        try:
            size = self.fs.stat(self._wal_path()).size
        except FileNotFound:
            return 0
        fd = self.fs.open(self._wal_path())
        replayed = 0
        try:
            off = 0
            hdr_len = struct.calcsize(_WAL_REC)
            while off + hdr_len <= size:
                hdr = self.fs.pread(fd, off, hdr_len)
                klen, flag, vlen = struct.unpack(_WAL_REC, hdr)
                if klen == 0:
                    break
                body = self.fs.pread(fd, off + hdr_len, klen + vlen)
                if len(body) < klen + vlen:
                    break  # torn tail record
                key = body[:klen]
                value = None if flag else body[klen:]
                self.memtable.put(key, value)
                replayed += 1
                off += hdr_len + klen + vlen
        finally:
            self.fs.close(fd)
        return replayed

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def put(self, key: bytes, value: bytes) -> None:
        self._wal_append(key, value)
        self.memtable.put(key, value)
        self._maybe_flush()

    def delete(self, key: bytes) -> None:
        self._wal_append(key, None)
        self.memtable.put(key, None)
        self._maybe_flush()

    def get(self, key: bytes) -> Optional[bytes]:
        found, value = self.memtable.get(key)
        if found:
            return value
        for table in self.l0:
            found, value = table.get(key)
            if found:
                return value
        for table in self.l1:
            if table.min_key <= key <= table.max_key:
                found, value = table.get(key)
                if found:
                    return value
        return None

    def scan(self, start: bytes, count: int) -> List[Tuple[bytes, bytes]]:
        """Merge-scan up to ``count`` live records with key >= start.

        A heap merge across the memtable, L0 (newest first), and L1;
        lower source index = newer, and tombstones shadow older values.
        """
        import heapq

        sources: List = [iter(self.memtable.range_items(start, 1 << 30))]
        sources.extend(t.iter_from(start) for t in self.l0)
        sources.extend(
            t.iter_from(start) for t in self.l1 if t.max_key >= start
        )
        heap: List[Tuple[bytes, int, Optional[bytes]]] = []
        for prio, src in enumerate(sources):
            for key, value in src:
                heapq.heappush(heap, (key, prio, value))
                break
        iters = {prio: src for prio, src in enumerate(sources)}
        out: List[Tuple[bytes, bytes]] = []
        current_key: Optional[bytes] = None
        best: Optional[Tuple[int, Optional[bytes]]] = None
        while heap and len(out) < count:
            key, prio, value = heapq.heappop(heap)
            nxt = next(iters[prio], None)
            if nxt is not None:
                heapq.heappush(heap, (nxt[0], prio, nxt[1]))
            if key != current_key:
                if best is not None and best[1] is not None:
                    out.append((current_key, best[1]))
                    if len(out) >= count:
                        return out
                current_key = key
                best = (prio, value)
            elif best is None or prio < best[0]:
                best = (prio, value)
        if best is not None and best[1] is not None and len(out) < count:
            out.append((current_key, best[1]))
        return out

    def flush(self) -> None:
        """Flush the memtable to a new L0 SSTable and truncate the WAL."""
        if not self.memtable:
            return
        path = self._new_sst_path()
        SSTableWriter.write(self.fs, path, self.memtable.sorted_items())
        self.l0.insert(0, SSTableReader(self.fs, path))
        self.memtable = Memtable()
        # WAL content is now covered by the SSTable.
        self.fs.close(self._wal_fd)
        self.fs.unlink(self._wal_path())
        self._open_wal(truncate=True)
        self.flushes += 1
        if len(self.l0) >= self.cfg.l0_compaction_trigger:
            self.compact()

    def close(self) -> None:
        self.flush()
        if self._wal_fd is not None:
            self.fs.close(self._wal_fd)
            self._wal_fd = None

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _maybe_flush(self) -> None:
        if self.memtable.approximate_bytes() >= self.cfg.memtable_bytes:
            self.flush()

    def _new_sst_path(self) -> str:
        path = f"{self.root}/sst_{self._next_file:06d}"
        self._next_file += 1
        return path

    def compact(self) -> None:
        """Merge all of L0 with L1 into fresh non-overlapping L1 tables."""
        sources = self.l0 + self.l1
        if not sources:
            return
        self.compactions += 1
        merged: Dict[bytes, Optional[bytes]] = {}
        # Oldest first; newer tables overwrite.
        for table in reversed(sources):
            for key, value in table.items():
                merged[key] = value
        live = sorted(
            (k, v) for k, v in merged.items() if v is not None
        )
        new_tables: List[SSTableReader] = []
        batch: List[Tuple[bytes, bytes]] = []
        batch_bytes = 0
        for key, value in live:
            batch.append((key, value))
            batch_bytes += len(key) + len(value)
            if batch_bytes >= self.cfg.target_sst_bytes:
                new_tables.append(self._write_l1(batch))
                batch, batch_bytes = [], 0
        if batch:
            new_tables.append(self._write_l1(batch))
        for table in sources:
            self.fs.unlink(table.path)
        self.l0 = []
        self.l1 = new_tables

    def _write_l1(self, items: List[Tuple[bytes, bytes]]) -> SSTableReader:
        path = self._new_sst_path()
        SSTableWriter.write(self.fs, path, list(items))
        return SSTableReader(self.fs, path)

    # crash protocol ------------------------------------------------------

    def reopen_after_crash(self) -> int:
        """Rebuild DB state after fs.remount(): re-list SSTables, replay
        the WAL."""
        self.memtable = Memtable()
        self.l0 = []
        self.l1 = []
        names = sorted(
            n for n in self.fs.listdir(self.root) if n.startswith("sst_")
        )
        # Without a manifest we conservatively treat all tables as L0,
        # newest (highest number) first.
        for name in reversed(names):
            self.l0.append(SSTableReader(self.fs, f"{self.root}/{name}"))
            self._next_file = max(
                self._next_file, int(name.split("_")[1]) + 1
            )
        self._open_wal(truncate=False)
        return self.replay_wal()
