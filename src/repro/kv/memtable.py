"""The in-memory write buffer of the LSM tree."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

#: sentinel marking a deletion
TOMBSTONE = None


class Memtable:
    """A mutable sorted map; values of ``None`` are tombstones."""

    def __init__(self) -> None:
        self._data: Dict[bytes, Optional[bytes]] = {}
        self._bytes = 0

    def put(self, key: bytes, value: Optional[bytes]) -> None:
        old = self._data.get(key)
        if old is not None:
            self._bytes -= len(old)
        elif key in self._data:
            pass
        else:
            self._bytes += len(key)
        self._data[key] = value
        if value is not None:
            self._bytes += len(value)

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Returns (found, value); value None with found=True = tombstone."""
        if key in self._data:
            return True, self._data[key]
        return False, None

    def approximate_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def sorted_items(self) -> List[Tuple[bytes, Optional[bytes]]]:
        return sorted(self._data.items())

    def range_items(
        self, start: bytes, count: int
    ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        for key in sorted(k for k in self._data if k >= start)[:count]:
            yield key, self._data[key]
