"""Sorted string tables: the on-disk run format of the LSM tree.

File layout::

    [records]  klen(2) flag(1) vlen(4) key value, sorted by key
    [index]    sparse index: every Nth record's (key, file offset)
    [bloom]    serialized Bloom filter over all keys
    [footer]   index_off(8) index_len(8) bloom_off(8) bloom_len(8)
               n_records(8) min_klen(2)... magic(4)

``flag`` = 1 marks a tombstone (value absent).
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.fs.vfs import BaseFileSystem, O_CREAT, O_RDONLY, O_RDWR
from repro.kv.bloom import BloomFilter

_MAGIC = 0x557AB1E5
_FOOTER_FMT = "<QQQQQI"
_FOOTER_LEN = struct.calcsize(_FOOTER_FMT)
_REC_HDR = "<HBI"
_REC_HDR_LEN = struct.calcsize(_REC_HDR)
INDEX_EVERY = 16


def _encode_record(key: bytes, value: Optional[bytes]) -> bytes:
    flag = 1 if value is None else 0
    body = value or b""
    return struct.pack(_REC_HDR, len(key), flag, len(body)) + key + body


class SSTableWriter:
    """Writes one SSTable through the file-system API."""

    @staticmethod
    def write(
        fs: BaseFileSystem,
        path: str,
        items: List[Tuple[bytes, Optional[bytes]]],
    ) -> None:
        if not items:
            raise ValueError("refusing to write an empty SSTable")
        fd = fs.open(path, O_CREAT | O_RDWR)
        try:
            buf = bytearray()
            index: List[Tuple[bytes, int]] = []
            for i, (key, value) in enumerate(items):
                if i % INDEX_EVERY == 0:
                    index.append((key, len(buf)))
                buf += _encode_record(key, value)
            index_off = len(buf)
            for key, off in index:
                buf += struct.pack("<HQ", len(key), off) + key
            index_len = len(buf) - index_off
            bloom = BloomFilter.build([k for k, _v in items])
            bloom_bytes = bloom.to_bytes()
            bloom_off = len(buf)
            buf += bloom_bytes
            buf += struct.pack(
                _FOOTER_FMT,
                index_off,
                index_len,
                bloom_off,
                len(bloom_bytes),
                len(items),
                _MAGIC,
            )
            fs.write(fd, bytes(buf))
            fs.fsync(fd)
        finally:
            fs.close(fd)


class SSTableReader:
    """Reads one SSTable; caches the sparse index and Bloom filter in
    memory (like RocksDB's table cache) while record reads go through the
    file system (and thus the host page cache, when there is one)."""

    def __init__(self, fs: BaseFileSystem, path: str) -> None:
        self.fs = fs
        self.path = path
        fd = fs.open(path, O_RDONLY)
        try:
            size = fs.stat(path).size
            footer = fs.pread(fd, size - _FOOTER_LEN, _FOOTER_LEN)
            (
                index_off,
                index_len,
                bloom_off,
                bloom_len,
                self.n_records,
                magic,
            ) = struct.unpack(_FOOTER_FMT, footer)
            if magic != _MAGIC:
                raise ValueError(f"{path}: bad SSTable magic")
            raw_index = fs.pread(fd, index_off, index_len)
            self.index: List[Tuple[bytes, int]] = []
            off = 0
            while off < len(raw_index):
                klen, rec_off = struct.unpack_from("<HQ", raw_index, off)
                off += 10
                self.index.append((raw_index[off : off + klen], rec_off))
                off += klen
            self.bloom = BloomFilter.from_bytes(
                fs.pread(fd, bloom_off, bloom_len)
            )
            self.data_len = index_off
            self.min_key = self.index[0][0] if self.index else b""
            self.max_key = self._find_max_key(fd)
        finally:
            fs.close(fd)

    def _find_max_key(self, fd: int) -> bytes:
        # Scan the last index stripe for the largest key.
        last = b""
        start = self.index[-1][1] if self.index else 0
        for key, _value in self._scan_from(fd, start):
            last = key
        return last

    def _scan_from(
        self, fd: int, offset: int
    ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        off = offset
        while off < self.data_len:
            hdr = self.fs.pread(fd, off, _REC_HDR_LEN)
            if len(hdr) < _REC_HDR_LEN:
                break
            klen, flag, vlen = struct.unpack(_REC_HDR, hdr)
            body = self.fs.pread(fd, off + _REC_HDR_LEN, klen + vlen)
            key = body[:klen]
            value = None if flag else body[klen : klen + vlen]
            yield key, value
            off += _REC_HDR_LEN + klen + vlen

    def may_contain(self, key: bytes) -> bool:
        return (
            self.min_key <= key <= self.max_key and key in self.bloom
        )

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Returns (found, value); (True, None) is a tombstone."""
        if not self.may_contain(key):
            return False, None
        # Binary search the sparse index for the stripe containing key.
        lo, hi = 0, len(self.index) - 1
        pos = 0
        while lo <= hi:
            mid = (lo + hi) // 2
            if self.index[mid][0] <= key:
                pos = self.index[mid][1]
                lo = mid + 1
            else:
                hi = mid - 1
        fd = self.fs.open(self.path, O_RDONLY)
        try:
            for rec_key, value in self._scan_from(fd, pos):
                if rec_key == key:
                    return True, value
                if rec_key > key:
                    break
        finally:
            self.fs.close(fd)
        return False, None

    def items(self) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        fd = self.fs.open(self.path, O_RDONLY)
        try:
            yield from self._scan_from(fd, 0)
        finally:
            self.fs.close(fd)

    def iter_from(
        self, start: bytes
    ) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """All records (including tombstones) with key >= start, in order."""
        lo, hi = 0, len(self.index) - 1
        pos = 0
        while lo <= hi:
            mid = (lo + hi) // 2
            if self.index[mid][0] <= start:
                pos = self.index[mid][1]
                lo = mid + 1
            else:
                hi = mid - 1
        fd = self.fs.open(self.path, O_RDONLY)
        try:
            for key, value in self._scan_from(fd, pos):
                if key >= start:
                    yield key, value
        finally:
            self.fs.close(fd)
