"""NAND flash substrate: geometry, timing model, and the chip array.

The chip array stores real bytes so file systems built on top can be
verified end-to-end (write -> crash -> recover -> read back).  It also
enforces NAND physics: pages program once between erases, erases operate
on whole blocks.
"""

from repro.nand.geometry import FlashGeometry
from repro.nand.timing import TimingModel
from repro.nand.chip import FlashArray, FlashError

__all__ = ["FlashGeometry", "TimingModel", "FlashArray", "FlashError"]
