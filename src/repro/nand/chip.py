"""The flash chip array: stores real bytes and enforces NAND physics.

* Pages must be erased before they can be programmed again.
* Erase operates on whole blocks and bumps a wear counter.
* Reads of never-programmed pages return zeros (like a fresh drive).

Timing is *not* charged here; the FTL charges channel time through the
shared :class:`~repro.sim.resources.ChannelArray` so that background work
(GC, log cleaning) and foreground I/O contend realistically.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.nand.geometry import FlashGeometry


class FlashError(Exception):
    """Violation of NAND programming rules (program-before-erase, etc.)."""


class FlashArray:
    """Backing store for the simulated device.

    Data is kept sparsely: only programmed pages occupy memory, so a
    "32 GB" device costs only what the workload touches.
    """

    def __init__(self, geometry: FlashGeometry) -> None:
        self.geometry = geometry
        self._total_pages = geometry.total_pages
        self._page_size = geometry.page_size
        self._pages: Dict[int, bytes] = {}
        self._programmed: set = set()
        self.erase_counts: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0
        self.erases = 0

    def read_page(self, ppa: int) -> bytes:
        """Read one full page; unprogrammed pages read as zeros."""
        if not 0 <= ppa < self._total_pages:
            self._check_ppa(ppa)
        self.reads += 1
        data = self._pages.get(ppa)
        if data is None:
            return bytes(self._page_size)
        return data

    def program_page(self, ppa: int, data: bytes) -> None:
        """Program one page; re-programming without erase is an error."""
        if not 0 <= ppa < self._total_pages:
            self._check_ppa(ppa)
        if ppa in self._programmed:
            raise FlashError(
                f"page {ppa} already programmed; erase block first"
            )
        n = len(data)
        page_size = self._page_size
        if n != page_size:
            if n > page_size:
                raise FlashError(
                    f"data ({n} B) exceeds page size ({page_size} B)"
                )
            data = data + bytes(page_size - n)
        # Skip the defensive copy when the caller already handed over an
        # immutable page image (the common case on the write path).
        self._pages[ppa] = data if type(data) is bytes else bytes(data)
        self._programmed.add(ppa)
        self.writes += 1

    def erase_block(self, block_id: int) -> None:
        """Erase every page in a block."""
        base = self.geometry.block_base_ppa(block_id)
        for ppa in range(base, base + self.geometry.pages_per_block):
            self._pages.pop(ppa, None)
            self._programmed.discard(ppa)
        self.erase_counts[block_id] = self.erase_counts.get(block_id, 0) + 1
        self.erases += 1

    def is_programmed(self, ppa: int) -> bool:
        self._check_ppa(ppa)
        return ppa in self._programmed

    def wear(self, block_id: int) -> int:
        return self.erase_counts.get(block_id, 0)

    def _check_ppa(self, ppa: int) -> None:
        if not 0 <= ppa < self.geometry.total_pages:
            raise FlashError(f"ppa {ppa} out of range")
