"""Flash geometry: channels x ways x blocks x pages.

Physical page addresses (PPAs) are dense integers laid out so that
consecutive PPAs within a block stay on one (channel, way, block) and the
FTL chooses channels explicitly for parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlashGeometry:
    """Dimensions of the flash array (defaults follow the paper's emulator,

    scaled down: the paper emulates 32 GB / 8 channels; tests use smaller
    arrays with identical structure).
    """

    n_channels: int = 8
    ways_per_channel: int = 1
    blocks_per_way: int = 64
    pages_per_block: int = 64
    page_size: int = 4096

    def __post_init__(self) -> None:
        for field in (
            "n_channels",
            "ways_per_channel",
            "blocks_per_way",
            "pages_per_block",
            "page_size",
        ):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be >= 1")
        # Derived sizes, memoized: address arithmetic reads these on every
        # FTL allocation/lookup and recomputing property chains per access
        # shows up in profiles.  Not dataclass fields, so repr/eq/replace
        # are unaffected; replace() re-derives them via this __post_init__.
        object.__setattr__(
            self, "pages_per_way", self.blocks_per_way * self.pages_per_block
        )
        object.__setattr__(
            self, "pages_per_channel",
            self.ways_per_channel * self.pages_per_way,
        )
        object.__setattr__(
            self, "total_pages", self.n_channels * self.pages_per_channel
        )
        object.__setattr__(
            self, "total_blocks",
            self.n_channels * self.ways_per_channel * self.blocks_per_way,
        )
        object.__setattr__(
            self, "capacity_bytes", self.total_pages * self.page_size
        )
        object.__setattr__(
            self, "block_size", self.pages_per_block * self.page_size
        )

    # ------------------------------------------------------------------ #
    # address arithmetic
    # ------------------------------------------------------------------ #

    def ppa(self, channel: int, way: int, block: int, page: int) -> int:
        """Pack a (channel, way, block, page) tuple into a dense PPA."""
        self._check(channel, way, block, page)
        return (
            ((channel * self.ways_per_channel + way) * self.blocks_per_way + block)
            * self.pages_per_block
            + page
        )

    def unpack(self, ppa: int) -> tuple:
        """Unpack a PPA into (channel, way, block, page)."""
        if not 0 <= ppa < self.total_pages:
            raise ValueError(f"ppa {ppa} out of range")
        page = ppa % self.pages_per_block
        rest = ppa // self.pages_per_block
        block = rest % self.blocks_per_way
        rest //= self.blocks_per_way
        way = rest % self.ways_per_channel
        channel = rest // self.ways_per_channel
        return channel, way, block, page

    def channel_of(self, ppa: int) -> int:
        # Equivalent to unpack(ppa)[0]: the layout is dense, so the
        # channel is a single division (positive ints, associative //).
        if not 0 <= ppa < self.total_pages:
            raise ValueError(f"ppa {ppa} out of range")
        return ppa // self.pages_per_channel

    def block_id_of(self, ppa: int) -> int:
        """Global block id (0 .. total_blocks-1) containing this PPA."""
        return ppa // self.pages_per_block

    def block_base_ppa(self, block_id: int) -> int:
        if not 0 <= block_id < self.total_blocks:
            raise ValueError(f"block id {block_id} out of range")
        return block_id * self.pages_per_block

    def channel_of_block(self, block_id: int) -> int:
        return self.block_base_ppa(block_id) // self.pages_per_channel

    def _check(self, channel: int, way: int, block: int, page: int) -> None:
        if not 0 <= channel < self.n_channels:
            raise ValueError(f"channel {channel} out of range")
        if not 0 <= way < self.ways_per_channel:
            raise ValueError(f"way {way} out of range")
        if not 0 <= block < self.blocks_per_way:
            raise ValueError(f"block {block} out of range")
        if not 0 <= page < self.pages_per_block:
            raise ValueError(f"page {page} out of range")
