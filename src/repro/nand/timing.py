"""Device timing model (paper Tables 1 and 4, and the Fig-13 latency grid).

Defaults match the paper's emulator configuration:

* flash page read / write latency: 40 / 60 us
* PCIe MMIO cacheline read / write latency: 4.8 / 0.6 us
* NVMe block bandwidth: 3.5 / 2.5 GB/s read / write
* CXL cacheline latency: 175 ns (Fig 13's "3/80*" configuration)

The artifact exposes the same knobs as the paper's ``timing_model.h``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.clock import USEC, NSEC

GIB = float(1 << 30)


def _bw_ns_per_byte(gb_per_s: float) -> float:
    """Convert GB/s to ns/byte."""
    return 1e9 / (gb_per_s * 1e9)


@dataclass(frozen=True)
class TimingModel:
    """All latency/bandwidth parameters of the simulated M-SSD stack."""

    # NAND flash (per page / per block)
    flash_read_ns: float = 40 * USEC
    flash_write_ns: float = 60 * USEC
    flash_erase_ns: float = 2000 * USEC

    # byte interface: one cacheline over PCIe MMIO
    mmio_read_ns: float = 4.8 * USEC     # non-posted round trip
    mmio_read_parallelism: int = 8       # outstanding loads (CPU MLP)
    mmio_write_ns: float = 0.6 * USEC    # posted, pipelines on the link
    mmio_write_pipeline: int = 8         # concurrent posted writes in flight
    persist_flush_ns: float = 100 * NSEC  # clflush/clwb of one line

    # block interface: NVMe DMA
    nvme_cmd_ns: float = 3 * USEC        # submission/completion overhead
    link_read_gbps: float = 3.5          # GB/s, device -> host
    link_write_gbps: float = 2.5         # GB/s, host -> device

    # firmware embedded core
    fw_op_ns: float = 89.0               # log-index lookup (paper: 89 ns)
    fw_append_ns: float = 60.0           # log append bookkeeping

    # host CPU costs
    syscall_ns: float = 1.2 * USEC
    host_memcpy_gbps: float = 14.0       # paper: AVX2 XOR at 14 GB/s
    xor_page_ns: float = 936 / 2.7       # 936 cycles at 2.7 GHz, per 4KB page
    host_cache_hit_ns: float = 250.0

    # device DRAM
    dram_access_ns: float = 100.0

    def __post_init__(self) -> None:
        # Memoize the ns/byte factors: dma_transfer_ns/host_memcpy_ns sit
        # on the hot path and the conversion only depends on the (frozen)
        # bandwidth fields.  Same float as computing it per call.
        object.__setattr__(
            self, "_read_ns_per_byte", _bw_ns_per_byte(self.link_read_gbps)
        )
        object.__setattr__(
            self, "_write_ns_per_byte", _bw_ns_per_byte(self.link_write_gbps)
        )
        object.__setattr__(
            self, "_memcpy_ns_per_byte", _bw_ns_per_byte(self.host_memcpy_gbps)
        )

    def dma_transfer_ns(self, nbytes: int, write: bool) -> float:
        return nbytes * (
            self._write_ns_per_byte if write else self._read_ns_per_byte
        )

    def host_memcpy_ns(self, nbytes: int) -> float:
        return nbytes * self._memcpy_ns_per_byte

    def with_flash_latency(
        self, read_us: float, write_us: float
    ) -> "TimingModel":
        """A copy with different NAND latencies (Fig-13 sweeps)."""
        return replace(
            self,
            flash_read_ns=read_us * USEC,
            flash_write_ns=write_us * USEC,
        )

    def as_cxl(self, cacheline_ns: float = 175.0) -> "TimingModel":
        """A copy modelling CXL.mem: symmetric cacheline loads/stores."""
        return replace(
            self,
            mmio_read_ns=cacheline_ns,
            mmio_write_ns=cacheline_ns,
            persist_flush_ns=50.0,
        )


#: The paper's emulator defaults (Table 4).
DEFAULT_TIMING = TimingModel()

#: Fig-13 grid of (read_us, write_us) NAND latencies, low-end to high-end,
#: plus the CXL point "3/80*".
FIG13_FLASH_LATENCIES = [
    (3, 80),
    (25, 300),
    (40, 60),
    (60, 150),
    (95, 208),
]
