"""Simulation substrate: virtual time, shared resources, deterministic RNG.

The whole reproduction is a discrete-cost simulation.  Every component
(interconnect, flash channels, firmware) charges time against a
:class:`~repro.sim.clock.VirtualClock` that maintains one timeline per
simulated application thread, and against shared :class:`~repro.sim.resources.Resource`
timelines that model device-side contention (flash channels, the PCIe/CXL
link, the embedded firmware core).
"""

from repro.sim.clock import VirtualClock
from repro.sim.resources import Resource, ChannelArray
from repro.sim.rng import make_rng

__all__ = ["VirtualClock", "Resource", "ChannelArray", "make_rng"]
