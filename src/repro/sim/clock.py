"""Virtual time with one timeline per simulated application thread.

The workload runner interleaves operations from N logical threads.  Before
issuing an operation it calls :meth:`VirtualClock.switch` to select the
thread's timeline; every component below it then charges time through
:meth:`advance` / :meth:`advance_to`.  Shared device resources serialize
concurrent threads through :class:`~repro.sim.resources.Resource` objects,
which is where contention (and therefore parallel speedup or slowdown)
comes from.

All times are nanoseconds, held as floats.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.analysis import fssan

NSEC = 1.0
USEC = 1_000.0
MSEC = 1_000_000.0
SEC = 1_000_000_000.0


class VirtualClock:
    """A set of per-thread virtual timelines sharing one epoch.

    ``now`` refers to the currently selected thread's time.  ``elapsed``
    is the wall-clock span of the whole simulation: the maximum thread
    time reached so far.

    ``now`` is a plain attribute (not a property): it is the single most
    read value in the simulator, and every mutator below maintains the
    invariant ``now == _times[_cur]``.  Treat it as read-only.
    """

    __slots__ = ("_times", "_cur", "_max_seen", "_ready", "now")

    def __init__(self, n_threads: int = 1) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self._times = [0.0] * n_threads
        self._cur = 0
        self._max_seen = 0.0
        self.now = 0.0
        # Lazy min-heap over (time, tid) backing next_thread().  advance()
        # never touches it; stale entries are revalidated on pop, which is
        # sound because timelines are monotone between resets.
        self._ready: List[Tuple[float, int]] = [
            (0.0, tid) for tid in range(n_threads)
        ]

    @property
    def n_threads(self) -> int:
        return len(self._times)

    @property
    def current_thread(self) -> int:
        return self._cur

    @property
    def elapsed_ns(self) -> float:
        """Wall-clock span: the furthest any thread has progressed.

        ``_max_seen`` is the single source of truth — every mutation of
        ``_times`` maintains it, so no rescan of the timelines is needed.
        """
        if fssan.ENABLED:
            fssan.check_clock_elapsed(self._max_seen, max(self._times))
        return self._max_seen

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_ns / SEC

    def switch(self, tid: int) -> None:
        """Select thread ``tid``'s timeline for subsequent charges."""
        if not 0 <= tid < len(self._times):
            raise IndexError(f"thread id {tid} out of range")
        self._cur = tid
        self.now = self._times[tid]

    def advance(self, ns: float) -> float:
        """Charge ``ns`` nanoseconds to the current thread; return new now."""
        if ns < 0:
            raise ValueError(f"cannot advance by negative time {ns}")
        old = self.now
        t = old + ns
        self._times[self._cur] = t
        self.now = t
        if t > self._max_seen:
            self._max_seen = t
        if fssan.ENABLED:
            fssan.check_clock_advance(old, t, self._max_seen)
        return t

    def advance_to(self, t_ns: float) -> float:
        """Move the current thread forward to ``t_ns`` (no-op if in the past)."""
        old = self.now
        if t_ns > old:
            self._times[self._cur] = t_ns
            self.now = t_ns
            if t_ns > self._max_seen:
                self._max_seen = t_ns
        if fssan.ENABLED:
            if t_ns != t_ns:  # NaN compares false above and would be lost
                raise fssan.SanitizerError(
                    fssan.CLOCK, "advance_to(NaN) would silently no-op"
                )
            fssan.check_clock_advance(old, self.now, self._max_seen)
        return self.now

    def time_of(self, tid: int) -> float:
        return self._times[tid]

    def next_thread(self) -> int:
        """Return the id of the thread with the smallest timeline.

        The workload runner uses this to pick which logical thread issues
        its next operation, giving a fair event-driven interleaving.

        Backed by a lazy min-heap: stale entries (the thread advanced
        since its entry was pushed) are replaced with the live time and
        re-sifted; an entry whose time matches the live timeline is the
        true minimum, because every other entry only *under*-estimates
        its thread's time.  Ties break toward the lowest tid, exactly
        like the linear scan this replaces.
        """
        ready = self._ready
        times = self._times
        if len(ready) > 2 * len(times):
            # Compaction backstop: more stale entries than live timelines
            # (possible if a client pushed refreshed entries instead of
            # replacing in place).  Rebuild from the live times so the
            # heap stays O(n_threads) and pops stop churning on staleness.
            ready[:] = [(t, tid) for tid, t in enumerate(times)]
            heapq.heapify(ready)
        while True:
            t, tid = ready[0]
            live = times[tid]
            if t == live:
                return tid
            heapq.heapreplace(ready, (live, tid))

    def sync_all(self) -> float:
        """Barrier: bring every thread up to the maximum timeline."""
        return self.sync_to(max(self._times))

    def sync_to(self, t_ns: float) -> float:
        """Barrier to an externally supplied instant ``t_ns``.

        Every timeline jumps to ``t_ns`` — the cross-process analogue of
        :meth:`sync_all`: shard workers adopt the cluster-wide epoch
        computed by the parent from all shards' local maxima.  ``t_ns``
        may not rewind any thread (monotonicity is what makes the lazy
        heap sound).
        """
        if t_ns < max(self._times):
            raise ValueError(
                f"sync_to({t_ns}) would rewind a timeline "
                f"(max is {max(self._times)})"
            )
        times = self._times
        for tid in range(len(times)):
            times[tid] = t_ns
        self.now = t_ns
        if t_ns > self._max_seen:
            self._max_seen = t_ns
        # A barrier staleness-invalidates every heap entry at once;
        # rebuilding here is cheaper than n heapreplace churns on the
        # next next_thread() pass.  Equal keys in tid order already
        # satisfy the heap invariant.
        self._ready[:] = [(t_ns, tid) for tid in range(len(times))]
        return t_ns

    def reset(self) -> None:
        for tid in range(len(self._times)):
            self._times[tid] = 0.0
        self._max_seen = 0.0
        self._cur = 0
        self.now = 0.0
        # Timelines rewound: the lazy heap's monotonicity assumption no
        # longer covers old entries, so rebuild it.
        self._ready = [(0.0, tid) for tid in range(len(self._times))]
