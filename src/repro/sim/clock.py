"""Virtual time with one timeline per simulated application thread.

The workload runner interleaves operations from N logical threads.  Before
issuing an operation it calls :meth:`VirtualClock.switch` to select the
thread's timeline; every component below it then charges time through
:meth:`advance` / :meth:`advance_to`.  Shared device resources serialize
concurrent threads through :class:`~repro.sim.resources.Resource` objects,
which is where contention (and therefore parallel speedup or slowdown)
comes from.

All times are nanoseconds, held as floats.
"""

from __future__ import annotations

from repro.analysis import fssan

NSEC = 1.0
USEC = 1_000.0
MSEC = 1_000_000.0
SEC = 1_000_000_000.0


class VirtualClock:
    """A set of per-thread virtual timelines sharing one epoch.

    ``now`` refers to the currently selected thread's time.  ``elapsed``
    is the wall-clock span of the whole simulation: the maximum thread
    time reached so far.
    """

    def __init__(self, n_threads: int = 1) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self._times = [0.0] * n_threads
        self._cur = 0
        self._max_seen = 0.0

    @property
    def n_threads(self) -> int:
        return len(self._times)

    @property
    def current_thread(self) -> int:
        return self._cur

    @property
    def now(self) -> float:
        """Current time (ns) of the selected thread."""
        return self._times[self._cur]

    @property
    def elapsed_ns(self) -> float:
        """Wall-clock span: the furthest any thread has progressed."""
        return max(self._max_seen, max(self._times))

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_ns / SEC

    def switch(self, tid: int) -> None:
        """Select thread ``tid``'s timeline for subsequent charges."""
        if not 0 <= tid < len(self._times):
            raise IndexError(f"thread id {tid} out of range")
        self._cur = tid

    def advance(self, ns: float) -> float:
        """Charge ``ns`` nanoseconds to the current thread; return new now."""
        if ns < 0:
            raise ValueError(f"cannot advance by negative time {ns}")
        old = self._times[self._cur]
        self._times[self._cur] += ns
        if self._times[self._cur] > self._max_seen:
            self._max_seen = self._times[self._cur]
        if fssan.ENABLED:
            fssan.check_clock_advance(
                old, self._times[self._cur], self._max_seen
            )
        return self._times[self._cur]

    def advance_to(self, t_ns: float) -> float:
        """Move the current thread forward to ``t_ns`` (no-op if in the past)."""
        old = self._times[self._cur]
        if t_ns > self._times[self._cur]:
            self._times[self._cur] = t_ns
            if t_ns > self._max_seen:
                self._max_seen = t_ns
        if fssan.ENABLED:
            if t_ns != t_ns:  # NaN compares false above and would be lost
                raise fssan.SanitizerError(
                    fssan.CLOCK, "advance_to(NaN) would silently no-op"
                )
            fssan.check_clock_advance(
                old, self._times[self._cur], self._max_seen
            )
        return self._times[self._cur]

    def time_of(self, tid: int) -> float:
        return self._times[tid]

    def next_thread(self) -> int:
        """Return the id of the thread with the smallest timeline.

        The workload runner uses this to pick which logical thread issues
        its next operation, giving a fair event-driven interleaving.
        """
        best = 0
        best_t = self._times[0]
        for tid in range(1, len(self._times)):
            if self._times[tid] < best_t:
                best = tid
                best_t = self._times[tid]
        return best

    def sync_all(self) -> float:
        """Barrier: bring every thread up to the maximum timeline."""
        top = max(self._times)
        for tid in range(len(self._times)):
            self._times[tid] = top
        self._max_seen = max(self._max_seen, top)
        return top

    def reset(self) -> None:
        for tid in range(len(self._times)):
            self._times[tid] = 0.0
        self._max_seen = 0.0
        self._cur = 0
