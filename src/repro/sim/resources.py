"""Shared device-side resources modelled as busy-until timelines.

A :class:`Resource` is a single server (e.g. one flash channel, the PCIe
link, the embedded firmware core).  Serving a request that arrives at time
``t`` and needs ``d`` ns finishes at ``max(t, busy_until) + d``; the
resource then stays busy until that finish time.  This is the classic
single-queue approximation and is what creates contention between the
per-thread timelines of :class:`~repro.sim.clock.VirtualClock`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis import fssan
from repro.trace import tracer as trace


class Resource:
    """A single-server resource with a busy-until timeline.

    ``group`` names the contention domain for latency attribution (all
    lanes of a pipeline, all channels of an array share one group); it
    defaults to the resource's own name.
    """

    __slots__ = ("name", "group", "busy_until", "total_busy_ns")

    def __init__(self, name: str, group: Optional[str] = None) -> None:
        self.name = name
        self.group = group if group is not None else name
        self.busy_until = 0.0
        self.total_busy_ns = 0.0

    def serve(self, start_ns: float, duration_ns: float) -> float:
        """Serve a foreground request; return its completion time."""
        busy = self.busy_until
        begin = start_ns if start_ns > busy else busy
        end = begin + duration_ns
        if fssan.ENABLED:
            fssan.check_resource_serve(
                self.name, self.busy_until, duration_ns, end
            )
        if trace.ENABLED and begin > start_ns:
            trace.note_wait(self.group, begin - start_ns, duration_ns)
        self.busy_until = end
        self.total_busy_ns += duration_ns
        return end

    def occupy(self, start_ns: float, duration_ns: float) -> float:
        """Occupy the resource for background work (same queueing rule).

        The caller does *not* advance any thread clock; it only records the
        completion time (e.g. to know when a background log flush drains).
        """
        return self.serve(start_ns, duration_ns)

    def utilization(self, elapsed_ns: float) -> float:
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.total_busy_ns / elapsed_ns)

    def reset(self) -> None:
        self.busy_until = 0.0
        self.total_busy_ns = 0.0


class ChannelArray:
    """An array of parallel resources (flash channels).

    Page operations address a specific channel; multi-page transfers stripe
    across channels and complete when the slowest stripe completes.
    """

    def __init__(self, n_channels: int, name: str = "flash-ch") -> None:
        if n_channels < 1:
            raise ValueError("need at least one channel")
        self.channels: List[Resource] = [
            Resource(f"{name}{i}", group=name) for i in range(n_channels)
        ]

    def __len__(self) -> int:
        return len(self.channels)

    def serve(self, channel: int, start_ns: float, duration_ns: float) -> float:
        return self.channels[channel % len(self.channels)].serve(
            start_ns, duration_ns
        )

    def occupy(self, channel: int, start_ns: float, duration_ns: float) -> float:
        return self.channels[channel % len(self.channels)].occupy(
            start_ns, duration_ns
        )

    def earliest_free(self) -> int:
        """Index of the channel that frees up first."""
        best = 0
        best_t = self.channels[0].busy_until
        for i in range(1, len(self.channels)):
            if self.channels[i].busy_until < best_t:
                best = i
                best_t = self.channels[i].busy_until
        return best

    def max_busy_until(self) -> float:
        return max(ch.busy_until for ch in self.channels)

    def reset(self) -> None:
        for ch in self.channels:
            ch.reset()


class Pipeline:
    """A resource that admits up to ``width`` concurrent requests.

    Used for posted MMIO writes, which pipeline on the PCIe link: each
    request still takes its full latency, but up to ``width`` of them
    overlap.  Implemented as ``width`` round-robin single servers.
    """

    def __init__(self, name: str, width: int) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        self.name = name
        self._lanes = [
            Resource(f"{name}-lane{i}", group=name) for i in range(width)
        ]

    def serve(self, start_ns: float, duration_ns: float) -> float:
        # Manual first-minimal scan: min(key=lambda) costs a lambda call
        # per lane and this is the hottest loop in the link model.  The
        # chosen lane's serve is inlined (same math and guards as
        # Resource.serve) to skip one call per request.
        lanes = self._lanes
        lane = lanes[0]
        best = lane.busy_until
        for cand in lanes:
            t = cand.busy_until
            if t < best:
                lane = cand
                best = t
        begin = start_ns if start_ns > best else best
        end = begin + duration_ns
        if fssan.ENABLED:
            fssan.check_resource_serve(lane.name, best, duration_ns, end)
        if trace.ENABLED and begin > start_ns:
            trace.note_wait(lane.group, begin - start_ns, duration_ns)
        lane.busy_until = end
        lane.total_busy_ns += duration_ns
        return end

    def serve_many(
        self, start_ns: float, duration_ns: float, count: int
    ) -> float:
        """Serve ``count`` equal-length requests all arriving at
        ``start_ns``; returns the completion time of the last one (which
        is also the maximum, since successive greedy assignments finish
        no earlier than their predecessors).

        Equivalent to calling :meth:`serve` ``count`` times, but when the
        whole pipeline is free at ``start_ns`` the greedy min-lane policy
        degenerates to index-order round-robin, so the per-lane timelines
        are advanced directly with the same float-add sequence the serial
        loop would produce.
        """
        if count == 1:
            return self.serve(start_ns, duration_ns)
        lanes = self._lanes
        if not (fssan.ENABLED or trace.ENABLED):
            idle = True
            for lane in lanes:
                if lane.busy_until > start_ns:
                    idle = False
                    break
            if idle:
                width = len(lanes)
                if count < width:
                    # Only the `count` least-busy lanes (ties by index)
                    # are touched; each serves one request from idle.
                    order = sorted(
                        range(width), key=lambda i: (lanes[i].busy_until, i)
                    )
                    end = start_ns
                    for i in order[:count]:
                        lane = lanes[i]
                        end = start_ns + duration_ns
                        lane.busy_until = end
                        lane.total_busy_ns += duration_ns
                    return end
                q, r = divmod(count, width)
                end = start_ns
                for i, lane in enumerate(lanes):
                    k = q + 1 if i < r else q
                    t = start_ns
                    busy = lane.total_busy_ns
                    for _ in range(k):
                        t += duration_ns
                        busy += duration_ns
                    lane.busy_until = t
                    lane.total_busy_ns = busy
                    if i == (r - 1 if r else width - 1):
                        end = t
                return end
        serve = self.serve
        end = start_ns
        for _ in range(count):
            end = serve(start_ns, duration_ns)
        return end

    def reset(self) -> None:
        for lane in self._lanes:
            lane.reset()
