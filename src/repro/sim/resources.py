"""Shared device-side resources modelled as busy-until timelines.

A :class:`Resource` is a single server (e.g. one flash channel, the PCIe
link, the embedded firmware core).  Serving a request that arrives at time
``t`` and needs ``d`` ns finishes at ``max(t, busy_until) + d``; the
resource then stays busy until that finish time.  This is the classic
single-queue approximation and is what creates contention between the
per-thread timelines of :class:`~repro.sim.clock.VirtualClock`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis import fssan
from repro.trace import tracer as trace


class Resource:
    """A single-server resource with a busy-until timeline.

    ``group`` names the contention domain for latency attribution (all
    lanes of a pipeline, all channels of an array share one group); it
    defaults to the resource's own name.
    """

    def __init__(self, name: str, group: Optional[str] = None) -> None:
        self.name = name
        self.group = group if group is not None else name
        self.busy_until = 0.0
        self.total_busy_ns = 0.0

    def serve(self, start_ns: float, duration_ns: float) -> float:
        """Serve a foreground request; return its completion time."""
        begin = max(start_ns, self.busy_until)
        end = begin + duration_ns
        if fssan.ENABLED:
            fssan.check_resource_serve(
                self.name, self.busy_until, duration_ns, end
            )
        if trace.ENABLED and begin > start_ns:
            trace.note_wait(self.group, begin - start_ns, duration_ns)
        self.busy_until = end
        self.total_busy_ns += duration_ns
        return end

    def occupy(self, start_ns: float, duration_ns: float) -> float:
        """Occupy the resource for background work (same queueing rule).

        The caller does *not* advance any thread clock; it only records the
        completion time (e.g. to know when a background log flush drains).
        """
        return self.serve(start_ns, duration_ns)

    def utilization(self, elapsed_ns: float) -> float:
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.total_busy_ns / elapsed_ns)

    def reset(self) -> None:
        self.busy_until = 0.0
        self.total_busy_ns = 0.0


class ChannelArray:
    """An array of parallel resources (flash channels).

    Page operations address a specific channel; multi-page transfers stripe
    across channels and complete when the slowest stripe completes.
    """

    def __init__(self, n_channels: int, name: str = "flash-ch") -> None:
        if n_channels < 1:
            raise ValueError("need at least one channel")
        self.channels: List[Resource] = [
            Resource(f"{name}{i}", group=name) for i in range(n_channels)
        ]

    def __len__(self) -> int:
        return len(self.channels)

    def serve(self, channel: int, start_ns: float, duration_ns: float) -> float:
        return self.channels[channel % len(self.channels)].serve(
            start_ns, duration_ns
        )

    def occupy(self, channel: int, start_ns: float, duration_ns: float) -> float:
        return self.channels[channel % len(self.channels)].occupy(
            start_ns, duration_ns
        )

    def earliest_free(self) -> int:
        """Index of the channel that frees up first."""
        best = 0
        best_t = self.channels[0].busy_until
        for i in range(1, len(self.channels)):
            if self.channels[i].busy_until < best_t:
                best = i
                best_t = self.channels[i].busy_until
        return best

    def max_busy_until(self) -> float:
        return max(ch.busy_until for ch in self.channels)

    def reset(self) -> None:
        for ch in self.channels:
            ch.reset()


class Pipeline:
    """A resource that admits up to ``width`` concurrent requests.

    Used for posted MMIO writes, which pipeline on the PCIe link: each
    request still takes its full latency, but up to ``width`` of them
    overlap.  Implemented as ``width`` round-robin single servers.
    """

    def __init__(self, name: str, width: int) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        self.name = name
        self._lanes = [
            Resource(f"{name}-lane{i}", group=name) for i in range(width)
        ]

    def serve(self, start_ns: float, duration_ns: float) -> float:
        lane = min(self._lanes, key=lambda r: r.busy_until)
        return lane.serve(start_ns, duration_ns)

    def reset(self) -> None:
        for lane in self._lanes:
            lane.reset()
