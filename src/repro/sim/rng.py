"""Deterministic RNG construction.

Every stochastic component (skip-list level choice, workload generators,
Zipfian sampling) derives its generator from a (seed, label) pair so runs
are reproducible and components do not perturb each other's streams.
"""

from __future__ import annotations

import hashlib
import random


def make_rng(seed: int, label: str = "") -> random.Random:
    """Return a :class:`random.Random` derived from ``seed`` and ``label``."""
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "little"))
