"""The memory-semantic SSD: dual byte/block interface plus firmware.

Two firmware variants are provided (paper §4.3 and §5.1):

* :class:`~repro.ssd.firmware.bytefs_fw.ByteFSFirmware` — the paper's
  contribution: SSD DRAM managed as a log-structured write log with a
  three-layer skip-list index, Algorithm-1 log cleaning, TxLog-backed
  transactions, and coordinated caching (no device page cache).
* :class:`~repro.ssd.firmware.baseline_fw.BaselineFirmware` — an
  unmodified M-SSD with a page-granular battery-backed DRAM cache, which
  is what Ext4/F2FS/NOVA/PMFS run on in the evaluation.
"""

from repro.ssd.device import MSSD, MSSDConfig, build_mssd

__all__ = ["MSSD", "MSSDConfig", "build_mssd"]
