"""The memory-semantic SSD device: dual byte/block interface (paper §2.1).

The device exposes:

* a **byte interface** — the whole SSD is BAR-mapped into host memory;
  ``load``/``store`` move cachelines over PCIe MMIO (or CXL.mem), with
  ``store(persist=True)`` implementing the paper's two-step durable write
  (clflush + zero-byte write-verify read);
* a **block interface** — conventional NVMe reads/writes at 4 KB pages,
  plus the paper's custom commands ``COMMIT(TxID)`` and ``RECOVER()``.

All host<->device traffic is recorded against :class:`TrafficStats` with
the data-structure tag supplied by the file system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.devcache.cache import DevCacheConfig, DeviceCache
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.ftl.ftl import FTL, FTLConfig
from repro.interconnect.link import HostLink
from repro.nand.chip import FlashArray
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import TimingModel
from repro.sim.clock import VirtualClock
from repro.sim.resources import ChannelArray
from repro.ssd.firmware.baseline_fw import BaselineFirmware, BaselineFirmwareConfig
from repro.ssd.firmware.bytefs_fw import ByteFSFirmware, ByteFSFirmwareConfig
from repro.stats.traffic import Direction, Interface, StructKind, TrafficStats
from repro.trace import tracer as trace

# Enum members hoisted out of the per-access hot paths (each Direction.X
# costs a module-global plus an attribute load per call).
_READ = Direction.READ
_WRITE = Direction.WRITE
_BYTE = Interface.BYTE
_BLOCK = Interface.BLOCK


@dataclass
class MSSDConfig:
    """Everything needed to build a simulated M-SSD."""

    geometry: FlashGeometry = field(default_factory=FlashGeometry)
    timing: TimingModel = field(default_factory=TimingModel)
    ftl: FTLConfig = field(default_factory=FTLConfig)
    firmware: str = "bytefs"  # "bytefs" or "baseline"
    #: fraction of raw flash reserved for the FTL (not host-visible)
    overprovision: float = 0.125
    #: resource-name prefix for multi-device stacks (repro.cluster): a
    #: non-empty instance name keeps each device's channel/link/firmware
    #: contention groups distinct in traces.  Empty = legacy names.
    instance: str = ""
    bytefs_fw: ByteFSFirmwareConfig = field(
        default_factory=ByteFSFirmwareConfig
    )
    baseline_fw: BaselineFirmwareConfig = field(
        default_factory=BaselineFirmwareConfig
    )
    #: optional device-DRAM page-frame cache between firmware and FTL
    #: (repro.devcache); None = no cache tier, byte-identical to the
    #: pre-devcache device.
    devcache: Optional[DevCacheConfig] = None


class MSSD:
    """A memory-semantic SSD with dual byte/block interfaces."""

    def __init__(
        self,
        config: MSSDConfig,
        clock: VirtualClock,
        stats: TrafficStats,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.stats = stats
        self.faults = faults if faults is not None else NULL_INJECTOR
        if faults is not None and faults.stats is None:
            faults.stats = stats
        self.geometry = config.geometry
        self.page_size = config.geometry.page_size
        # Host-visible capacity is fixed at build time; memoized because
        # _check_range consults it on every access.
        self._capacity_blocks = int(
            config.geometry.total_pages * (1 - config.overprovision)
        )
        self._capacity_bytes = self._capacity_blocks * self.page_size
        prefix = f"{config.instance}." if config.instance else ""
        self.flash = FlashArray(config.geometry)
        self.channels = ChannelArray(
            config.geometry.n_channels, name=f"{prefix}flash-ch"
        )
        self.link = HostLink(clock, config.timing, name=f"{prefix}pcie")
        self.ftl = FTL(
            config.geometry,
            self.flash,
            self.channels,
            config.timing,
            clock,
            stats,
            config.ftl,
        )
        # Optional device-DRAM cache tier: the wrapper exposes the FTL
        # surface the firmwares consume, so either firmware runs on top
        # of it unchanged.  ``self.ftl`` stays the real FTL.
        self.devcache: Optional[DeviceCache] = None
        if config.devcache is not None and config.devcache.cache_bytes > 0:
            self.devcache = DeviceCache(
                self.ftl, config.devcache, config.timing, clock, stats
            )
            self.devcache.faults = self.faults
        ftl_for_fw = self.devcache if self.devcache is not None else self.ftl
        self.firmware: Union[ByteFSFirmware, BaselineFirmware]
        if config.firmware == "bytefs":
            self.firmware = ByteFSFirmware(
                ftl_for_fw, config.timing, clock, stats, config.bytefs_fw
            )
        elif config.firmware == "baseline":
            self.firmware = BaselineFirmware(
                ftl_for_fw, config.timing, clock, stats, config.baseline_fw
            )
        else:
            raise ValueError(f"unknown firmware variant {config.firmware!r}")
        self.firmware.faults = self.faults
        if prefix:
            # The firmware core resource is built with the legacy name;
            # re-label it (before any request is served) so per-device
            # contention groups stay distinct in traces.
            core = self.firmware.fw_core
            core.name = f"{prefix}{core.name}"
            core.group = f"{prefix}{core.group}"
        # Bound methods cached for the per-access hot paths: none of these
        # collaborators is ever replaced after construction.
        self._record_host_ssd = stats.record_host_ssd
        self._mmio_read = self.link.mmio_read
        self._mmio_write = self.link.mmio_write
        self._persist_barrier = self.link.persist_barrier
        self._dma_xfer = self.link.dma
        self._fw_byte_read = self.firmware.byte_read
        self._fw_byte_write = self.firmware.byte_write
        self._fw_block_write_many = self.firmware.block_write_many

    # ------------------------------------------------------------------ #
    # geometry helpers
    # ------------------------------------------------------------------ #

    @property
    def capacity_blocks(self) -> int:
        """Host-visible logical pages (raw flash minus overprovisioning)."""
        return self._capacity_blocks

    @property
    def capacity_bytes(self) -> int:
        return self._capacity_bytes

    def _check_range(self, addr: int, length: int) -> None:
        if addr < 0 or addr + length > self._capacity_bytes:
            raise ValueError(
                f"device access [{addr}, {addr + length}) out of range"
            )

    # ------------------------------------------------------------------ #
    # byte interface (MMIO / CXL.mem)
    # ------------------------------------------------------------------ #

    def load(self, addr: int, length: int, kind: StructKind) -> bytes:
        """Byte-granular read of [addr, addr+length)."""
        if length <= 0:
            return b""
        self._check_range(addr, length)
        _sp = trace.begin("device", "load", nbytes=length, kind=kind.value) \
            if trace.ENABLED else None
        try:
            self._record_host_ssd(kind, _READ, _BYTE, length)
            self._mmio_read(length)
            byte_read = self._fw_byte_read
            page_size = self.page_size
            off = addr % page_size
            if off + length <= page_size:
                # Single-page access: no split bookkeeping needed.
                return bytes(byte_read(addr // page_size, off, length))
            out = bytearray()
            for lpa, off, n in self._split(addr, length):
                out += byte_read(lpa, off, n)
            return bytes(out)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def store(
        self,
        addr: int,
        data: bytes,
        kind: StructKind,
        txid: Optional[int] = None,
        persist: Optional[bool] = None,
    ) -> None:
        """Byte-granular write.

        ``persist`` adds the §4.2 durability steps (clflush plus a
        zero-byte write-verify read).  By default a *transactional* store
        defers the barrier to ``commit(txid)`` — the posted writes of one
        transaction share a single drain — while a non-transactional
        store is made durable immediately.
        """
        if persist is None:
            persist = txid is None
        if not data:
            return
        self._check_range(addr, len(data))
        _sp = trace.begin("device", "store", nbytes=len(data),
                          kind=kind.value, persist=persist) \
            if trace.ENABLED else None
        try:
            self._record_host_ssd(kind, _WRITE, _BYTE, len(data))
            self._mmio_write(len(data))
            pos = 0
            if self.faults is NULL_INJECTOR:
                # No injector armed: skip the per-piece closure and site
                # bookkeeping (the null site just calls apply(nbytes)).
                byte_write = self._fw_byte_write
                page_size = self.page_size
                off = addr % page_size
                if off + len(data) <= page_size:
                    # Single-page store: no split bookkeeping needed.
                    byte_write(addr // page_size, off, data, txid)
                else:
                    for lpa, off, n in self._split(addr, len(data)):
                        byte_write(lpa, off, data[pos : pos + n], txid)
                        pos += n
            else:
                for lpa, off, n in self._split(addr, len(data)):
                    piece = data[pos : pos + n]

                    def _apply(k: int, lpa=lpa, off=off, piece=piece) -> None:
                        # A torn store loses the trailing cachelines of
                        # this piece; the prefix that did arrive is
                        # logged normally.
                        if k:
                            # Each piece is its own crash site, so the
                            # armed path cannot batch across pages.
                            self.firmware.byte_write(  # repro: allow[PERF001]
                                lpa, off, piece[:k], txid)

                    self.faults.site("mssd.store", _apply, n, atom=64)
                    pos += n
            if persist:
                # Integer ceiling; data is non-empty here so the result
                # is always >= 1 (identical to max(1, ceil(n / 64))).
                self._persist_barrier((len(data) + 63) // 64)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def _split(self, addr: int, length: int):
        """Split a byte range into (lpa, in-page offset, length) pieces."""
        off = addr % self.page_size
        if off + length <= self.page_size:
            # Common case: the access stays within one page.
            return [(addr // self.page_size, off, length)]
        pieces = []
        while length > 0:
            lpa = addr // self.page_size
            off = addr % self.page_size
            n = min(length, self.page_size - off)
            pieces.append((lpa, off, n))
            addr += n
            length -= n
        return pieces

    # ------------------------------------------------------------------ #
    # block interface (NVMe)
    # ------------------------------------------------------------------ #

    def read_blocks(self, lba: int, n_blocks: int, kind: StructKind) -> bytes:
        """NVMe read of ``n_blocks`` pages starting at ``lba``."""
        if n_blocks <= 0:
            return b""
        self._check_range(lba * self.page_size, n_blocks * self.page_size)
        nbytes = n_blocks * self.page_size
        _sp = trace.begin("device", "read_blocks", nbytes=nbytes,
                          kind=kind.value) if trace.ENABLED else None
        try:
            self._record_host_ssd(kind, _READ, _BLOCK, nbytes)
            out = bytearray()
            if n_blocks == 1:
                out += self.firmware.block_read(lba)
            else:
                # Multi-page reads exploit channel parallelism inside the
                # firmware (all flash reads issued from the same start time).
                for data in self.firmware.block_read_many(
                    list(range(lba, lba + n_blocks))
                ):
                    out += data
            self._dma_xfer(nbytes, write=False)
            return bytes(out)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def write_blocks(self, lba: int, data: bytes, kind: StructKind) -> None:
        """NVMe write of page-aligned ``data`` starting at ``lba``."""
        if len(data) % self.page_size != 0:
            raise ValueError("block writes must be page aligned")
        self._check_range(lba * self.page_size, len(data))
        n_blocks = len(data) // self.page_size
        _sp = trace.begin("device", "write_blocks", nbytes=len(data),
                          kind=kind.value) if trace.ENABLED else None
        try:
            self._record_host_ssd(kind, _WRITE, _BLOCK, len(data))
            self._dma_xfer(len(data), write=True)
            page_size = self.page_size
            # Local binding keeps the call spelled by its real name (the
            # crash-site lint resolves callers by bare name).
            block_write_many = self._fw_block_write_many
            pending: List = []
            try:
                if self.faults is NULL_INJECTOR:
                    if n_blocks == 1:
                        pending.append((lba, data))
                    else:
                        for i in range(n_blocks):
                            pending.append(
                                (
                                    lba + i,
                                    data[i * page_size : (i + 1) * page_size],
                                )
                            )
                else:
                    for i in range(n_blocks):
                        page = data[i * page_size : (i + 1) * page_size]

                        def _apply(k: int, lba=lba + i, page=page) -> None:
                            if k == 0:
                                return
                            if k < len(page):
                                # Torn DMA: leading sectors are new, the
                                # rest keep whatever the device held
                                # before.
                                old = self.firmware.block_read(lba)
                                page = page[:k] + old[k:]
                            pending.append((lba, page))

                        self.faults.site(
                            "mssd.write_block", _apply, page_size, atom=512
                        )
            finally:
                # The DMA already landed the applied pages in device DRAM;
                # on a mid-batch CrashPoint they must still reach the
                # firmware before the crash propagates (matching the old
                # page-at-a-time behavior).
                if pending:
                    block_write_many(pending, kind)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def trim(self, lba: int, n_blocks: int = 1) -> None:
        def _apply(k: int) -> None:
            if k:
                self.firmware.trim_many(lba, n_blocks)

        self.faults.site("mssd.trim", _apply, n_blocks)

    # custom NVMe commands ------------------------------------------------

    def commit(self, txid: int) -> None:
        """COMMIT(TxID): only supported by the ByteFS firmware (§4.3).

        The barrier drains the transaction's outstanding posted writes
        (ordering before the commit entry, Fig 4), then the 4 B commit
        entry is appended to the TxLog.
        """
        _sp = trace.begin("device", "commit", txid=txid) \
            if trace.ENABLED else None
        try:
            self.link.persist_barrier(1)
            self.link.dma(4, write=True)

            def _apply(k: int) -> None:
                if k:
                    self.firmware.commit(txid)

            self.faults.site("mssd.commit", _apply, 4)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def recover(self) -> Dict[str, float]:
        """RECOVER(): firmware-level crash recovery (§4.7)."""
        return self.firmware.recover()

    def power_fail(self) -> None:
        """Simulate power loss: device DRAM is battery-backed (retained);
        the host side must drop its own caches separately."""
        self.firmware.power_fail()

    def flush_all(self) -> None:
        """Drain all device-side buffered state to flash (unmount/sync)."""
        self.firmware.force_clean()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def gauges(self) -> Dict[str, float]:
        """Public telemetry surface: the device-internal gauges the
        sampling layer (:mod:`repro.telemetry`) may read.  Host code
        samples this instead of reaching into the FTL/firmware/NAND
        internals (which the layering lint fences off)."""
        out = dict(self.ftl.gauges())
        out["log_utilization"] = self.firmware.log_utilization()
        out["nand_reads"] = self.flash.reads
        out["nand_writes"] = self.flash.writes
        out["nand_erases"] = self.flash.erases
        if self.devcache is not None:
            # Keys appear only when the cache tier is configured, so
            # cache-off telemetry documents stay byte-identical.
            out.update(self.devcache.gauges())
        return out


def build_mssd(
    clock: Optional[VirtualClock] = None,
    stats: Optional[TrafficStats] = None,
    config: Optional[MSSDConfig] = None,
    faults: Optional[FaultInjector] = None,
    **overrides,
) -> MSSD:
    """Convenience constructor used by tests, examples, and benches.

    ``overrides`` may set any :class:`MSSDConfig` field by name.
    """
    cfg = config or MSSDConfig()
    for key, value in overrides.items():
        if not hasattr(cfg, key):
            raise TypeError(f"unknown MSSDConfig field {key!r}")
        setattr(cfg, key, value)
    return MSSD(cfg, clock or VirtualClock(), stats or TrafficStats(), faults)
