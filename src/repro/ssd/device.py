"""The memory-semantic SSD device: dual byte/block interface (paper §2.1).

The device exposes:

* a **byte interface** — the whole SSD is BAR-mapped into host memory;
  ``load``/``store`` move cachelines over PCIe MMIO (or CXL.mem), with
  ``store(persist=True)`` implementing the paper's two-step durable write
  (clflush + zero-byte write-verify read);
* a **block interface** — conventional NVMe reads/writes at 4 KB pages,
  plus the paper's custom commands ``COMMIT(TxID)`` and ``RECOVER()``.

All host<->device traffic is recorded against :class:`TrafficStats` with
the data-structure tag supplied by the file system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.ftl.ftl import FTL, FTLConfig
from repro.interconnect.link import HostLink
from repro.nand.chip import FlashArray
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import TimingModel
from repro.sim.clock import VirtualClock
from repro.sim.resources import ChannelArray
from repro.ssd.firmware.baseline_fw import BaselineFirmware, BaselineFirmwareConfig
from repro.ssd.firmware.bytefs_fw import ByteFSFirmware, ByteFSFirmwareConfig
from repro.stats.traffic import Direction, Interface, StructKind, TrafficStats
from repro.trace import tracer as trace


@dataclass
class MSSDConfig:
    """Everything needed to build a simulated M-SSD."""

    geometry: FlashGeometry = field(default_factory=FlashGeometry)
    timing: TimingModel = field(default_factory=TimingModel)
    ftl: FTLConfig = field(default_factory=FTLConfig)
    firmware: str = "bytefs"  # "bytefs" or "baseline"
    #: fraction of raw flash reserved for the FTL (not host-visible)
    overprovision: float = 0.125
    bytefs_fw: ByteFSFirmwareConfig = field(
        default_factory=ByteFSFirmwareConfig
    )
    baseline_fw: BaselineFirmwareConfig = field(
        default_factory=BaselineFirmwareConfig
    )


class MSSD:
    """A memory-semantic SSD with dual byte/block interfaces."""

    def __init__(
        self,
        config: MSSDConfig,
        clock: VirtualClock,
        stats: TrafficStats,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.stats = stats
        self.faults = faults if faults is not None else NULL_INJECTOR
        if faults is not None and faults.stats is None:
            faults.stats = stats
        self.geometry = config.geometry
        self.page_size = config.geometry.page_size
        self.flash = FlashArray(config.geometry)
        self.channels = ChannelArray(config.geometry.n_channels)
        self.link = HostLink(clock, config.timing)
        self.ftl = FTL(
            config.geometry,
            self.flash,
            self.channels,
            config.timing,
            clock,
            stats,
            config.ftl,
        )
        self.firmware: Union[ByteFSFirmware, BaselineFirmware]
        if config.firmware == "bytefs":
            self.firmware = ByteFSFirmware(
                self.ftl, config.timing, clock, stats, config.bytefs_fw
            )
        elif config.firmware == "baseline":
            self.firmware = BaselineFirmware(
                self.ftl, config.timing, clock, stats, config.baseline_fw
            )
        else:
            raise ValueError(f"unknown firmware variant {config.firmware!r}")
        self.firmware.faults = self.faults

    # ------------------------------------------------------------------ #
    # geometry helpers
    # ------------------------------------------------------------------ #

    @property
    def capacity_blocks(self) -> int:
        """Host-visible logical pages (raw flash minus overprovisioning)."""
        return int(self.geometry.total_pages * (1 - self.config.overprovision))

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_blocks * self.page_size

    def _check_range(self, addr: int, length: int) -> None:
        if addr < 0 or addr + length > self.capacity_bytes:
            raise ValueError(
                f"device access [{addr}, {addr + length}) out of range"
            )

    # ------------------------------------------------------------------ #
    # byte interface (MMIO / CXL.mem)
    # ------------------------------------------------------------------ #

    def load(self, addr: int, length: int, kind: StructKind) -> bytes:
        """Byte-granular read of [addr, addr+length)."""
        if length <= 0:
            return b""
        self._check_range(addr, length)
        _sp = trace.begin("device", "load", nbytes=length, kind=kind.value) \
            if trace.ENABLED else None
        try:
            self.stats.record_host_ssd(
                kind, Direction.READ, Interface.BYTE, length
            )
            self.link.mmio_read(length)
            out = bytearray()
            for lpa, off, n in self._split(addr, length):
                out += self.firmware.byte_read(lpa, off, n)
            return bytes(out)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def store(
        self,
        addr: int,
        data: bytes,
        kind: StructKind,
        txid: Optional[int] = None,
        persist: Optional[bool] = None,
    ) -> None:
        """Byte-granular write.

        ``persist`` adds the §4.2 durability steps (clflush plus a
        zero-byte write-verify read).  By default a *transactional* store
        defers the barrier to ``commit(txid)`` — the posted writes of one
        transaction share a single drain — while a non-transactional
        store is made durable immediately.
        """
        if persist is None:
            persist = txid is None
        if not data:
            return
        self._check_range(addr, len(data))
        _sp = trace.begin("device", "store", nbytes=len(data),
                          kind=kind.value, persist=persist) \
            if trace.ENABLED else None
        try:
            self.stats.record_host_ssd(
                kind, Direction.WRITE, Interface.BYTE, len(data)
            )
            self.link.mmio_write(len(data))
            pos = 0
            for lpa, off, n in self._split(addr, len(data)):
                piece = data[pos : pos + n]

                def _apply(k: int, lpa=lpa, off=off, piece=piece) -> None:
                    # A torn store loses the trailing cachelines of this
                    # piece; the prefix that did arrive is logged normally.
                    if k:
                        self.firmware.byte_write(lpa, off, piece[:k], txid)

                self.faults.site("mssd.store", _apply, n, atom=64)
                pos += n
            if persist:
                self.link.persist_barrier(max(1, math.ceil(len(data) / 64)))
        finally:
            if _sp is not None:
                trace.end(_sp)

    def _split(self, addr: int, length: int):
        """Split a byte range into (lpa, in-page offset, length) pieces."""
        pieces = []
        while length > 0:
            lpa = addr // self.page_size
            off = addr % self.page_size
            n = min(length, self.page_size - off)
            pieces.append((lpa, off, n))
            addr += n
            length -= n
        return pieces

    # ------------------------------------------------------------------ #
    # block interface (NVMe)
    # ------------------------------------------------------------------ #

    def read_blocks(self, lba: int, n_blocks: int, kind: StructKind) -> bytes:
        """NVMe read of ``n_blocks`` pages starting at ``lba``."""
        if n_blocks <= 0:
            return b""
        self._check_range(lba * self.page_size, n_blocks * self.page_size)
        nbytes = n_blocks * self.page_size
        _sp = trace.begin("device", "read_blocks", nbytes=nbytes,
                          kind=kind.value) if trace.ENABLED else None
        try:
            self.stats.record_host_ssd(
                kind, Direction.READ, Interface.BLOCK, nbytes
            )
            out = bytearray()
            if n_blocks == 1:
                out += self.firmware.block_read(lba)
            else:
                # Multi-page reads exploit channel parallelism inside the
                # firmware (all flash reads issued from the same start time).
                for data in self.firmware.block_read_many(
                    list(range(lba, lba + n_blocks))
                ):
                    out += data
            self.link.dma(nbytes, write=False)
            return bytes(out)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def write_blocks(self, lba: int, data: bytes, kind: StructKind) -> None:
        """NVMe write of page-aligned ``data`` starting at ``lba``."""
        if len(data) % self.page_size != 0:
            raise ValueError("block writes must be page aligned")
        self._check_range(lba * self.page_size, len(data))
        n_blocks = len(data) // self.page_size
        _sp = trace.begin("device", "write_blocks", nbytes=len(data),
                          kind=kind.value) if trace.ENABLED else None
        try:
            self.stats.record_host_ssd(
                kind, Direction.WRITE, Interface.BLOCK, len(data)
            )
            self.link.dma(len(data), write=True)
            for i in range(n_blocks):
                page = data[i * self.page_size : (i + 1) * self.page_size]

                def _apply(k: int, lba=lba + i, page=page) -> None:
                    if k == 0:
                        return
                    if k < len(page):
                        # Torn DMA: leading sectors are new, the rest keep
                        # whatever the device held before.
                        old = self.firmware.block_read(lba)
                        page = page[:k] + old[k:]
                    self.firmware.block_write(lba, page, kind)

                self.faults.site(
                    "mssd.write_block", _apply, self.page_size, atom=512
                )
        finally:
            if _sp is not None:
                trace.end(_sp)

    def trim(self, lba: int, n_blocks: int = 1) -> None:
        def _apply(k: int) -> None:
            if k:
                for i in range(n_blocks):
                    self.firmware.trim(lba + i)

        self.faults.site("mssd.trim", _apply, n_blocks)

    # custom NVMe commands ------------------------------------------------

    def commit(self, txid: int) -> None:
        """COMMIT(TxID): only supported by the ByteFS firmware (§4.3).

        The barrier drains the transaction's outstanding posted writes
        (ordering before the commit entry, Fig 4), then the 4 B commit
        entry is appended to the TxLog.
        """
        _sp = trace.begin("device", "commit", txid=txid) \
            if trace.ENABLED else None
        try:
            self.link.persist_barrier(1)
            self.link.dma(4, write=True)

            def _apply(k: int) -> None:
                if k:
                    self.firmware.commit(txid)

            self.faults.site("mssd.commit", _apply, 4)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def recover(self) -> Dict[str, float]:
        """RECOVER(): firmware-level crash recovery (§4.7)."""
        return self.firmware.recover()

    def power_fail(self) -> None:
        """Simulate power loss: device DRAM is battery-backed (retained);
        the host side must drop its own caches separately."""
        self.firmware.power_fail()

    def flush_all(self) -> None:
        """Drain all device-side buffered state to flash (unmount/sync)."""
        self.firmware.force_clean()


def build_mssd(
    clock: Optional[VirtualClock] = None,
    stats: Optional[TrafficStats] = None,
    config: Optional[MSSDConfig] = None,
    faults: Optional[FaultInjector] = None,
    **overrides,
) -> MSSD:
    """Convenience constructor used by tests, examples, and benches.

    ``overrides`` may set any :class:`MSSDConfig` field by name.
    """
    cfg = config or MSSDConfig()
    for key, value in overrides.items():
        if not hasattr(cfg, key):
            raise TypeError(f"unknown MSSDConfig field {key!r}")
        setattr(cfg, key, value)
    return MSSD(cfg, clock or VirtualClock(), stats or TrafficStats(), faults)
