"""Firmware building blocks for the simulated M-SSD."""

from repro.ssd.firmware.skiplist import SkipList
from repro.ssd.firmware.log_index import ChunkEntry, LogIndex
from repro.ssd.firmware.write_log import LogRegion, LogFullError
from repro.ssd.firmware.txlog import TxLog

__all__ = [
    "SkipList",
    "ChunkEntry",
    "LogIndex",
    "LogRegion",
    "LogFullError",
    "TxLog",
]
