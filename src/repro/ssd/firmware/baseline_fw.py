"""Baseline M-SSD firmware: page-granular battery-backed DRAM cache.

This is the device the evaluation mounts Ext4/F2FS/NOVA/PMFS on (§5.1):
no write log, no firmware transactions — just a 256 MB page cache in SSD
DRAM (scaled down here).  Byte-interface writes perform read-modify-write
at page granularity into the cache; dirty pages are flushed to flash by a
background writeback with high/low watermarks, and the cache is
battery-backed so acknowledged writes are durable.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.faults.injector import NULL_INJECTOR
from repro.ftl.ftl import FTL
from repro.nand.timing import TimingModel
from repro.sim.clock import VirtualClock
from repro.sim.resources import Resource
from repro.stats.traffic import StructKind, TrafficStats
from repro.trace import tracer as trace


@dataclass(frozen=True)
class BaselineFirmwareConfig:
    """Device cache tunables (256 MB in the paper, scaled down)."""

    cache_bytes: int = 4 << 20
    dirty_high_watermark: float = 0.50   # start background flush above this
    dirty_low_watermark: float = 0.25    # flush down to this


class _CachedPage:
    __slots__ = ("data", "dirty")

    def __init__(self, data: bytearray, dirty: bool) -> None:
        self.data = data
        self.dirty = dirty


class BaselineFirmware:
    """Unmodified-SSD firmware with an LRU page cache in device DRAM."""

    def __init__(
        self,
        ftl: FTL,
        timing: TimingModel,
        clock: VirtualClock,
        stats: TrafficStats,
        config: Optional[BaselineFirmwareConfig] = None,
    ) -> None:
        self.ftl = ftl
        self.timing = timing
        self.clock = clock
        self.stats = stats
        self.config = config or BaselineFirmwareConfig()
        self.page_size = ftl.geometry.page_size
        self.capacity_pages = max(
            4, self.config.cache_bytes // self.page_size
        )
        self._cache: "OrderedDict[int, _CachedPage]" = OrderedDict()
        self._dirty_count = 0
        self.fw_core = Resource("fw-core")
        # Crash-site hooks; MSSD overwrites this with its own injector.
        self.faults = NULL_INJECTOR

    # ------------------------------------------------------------------ #

    def _fw(self, duration_ns: float) -> None:
        end = self.fw_core.serve(self.clock.now, duration_ns)
        self.clock.advance_to(end)

    def _touch(self, lpa: int) -> Optional[_CachedPage]:
        page = self._cache.get(lpa)
        if page is not None:
            self._cache.move_to_end(lpa)
        return page

    def _install(self, lpa: int, data: bytearray, dirty: bool) -> _CachedPage:
        existing = self._cache.get(lpa)
        if existing is not None:
            if dirty and not existing.dirty:
                self._dirty_count += 1
            existing.data = data
            existing.dirty = existing.dirty or dirty
            self._cache.move_to_end(lpa)
            return existing
        self._evict_if_needed()
        page = _CachedPage(data, dirty)
        self._cache[lpa] = page
        if dirty:
            self._dirty_count += 1
        self._writeback_if_needed()
        return page

    def _evict_if_needed(self) -> None:
        while len(self._cache) >= self.capacity_pages:
            # Evict the least-recently-used page; flush it first if dirty.
            lpa, page = next(iter(self._cache.items()))
            if page.dirty:
                # Cache-pressure evictions happen on the read path too, so
                # they are a device-visible mutation in their own right
                # (found by `repro lint` CS001): crash between the flash
                # program and the cache drop must leave the page readable.
                self.faults.point("basefw.evict")
                # Eviction interleaves a crash point per page drained.
                self.ftl.write_page(  # repro: allow[PERF001]
                    lpa, bytes(page.data), StructKind.OTHER, background=True
                )
                self._dirty_count -= 1
                self.stats.bump("devcache_dirty_evictions")
            else:
                self.stats.bump("devcache_clean_evictions")
            del self._cache[lpa]

    def _writeback_if_needed(self) -> None:
        """Watermark-driven background flush of dirty pages (oldest first)."""
        high = int(self.capacity_pages * self.config.dirty_high_watermark)
        if self._dirty_count <= high:
            return
        low = int(self.capacity_pages * self.config.dirty_low_watermark)
        for lpa in list(self._cache):
            if self._dirty_count <= low:
                break
            page = self._cache[lpa]
            if not page.dirty:
                continue
            # Cache and flash are both device-retained, so a crash here
            # only changes *where* the bytes sit — still worth a site:
            # recovery must cope with half-drained watermark flushes.
            self.faults.point("basefw.writeback")
            # Watermark writeback interleaves a crash point per page.
            self.ftl.write_page(  # repro: allow[PERF001]
                lpa, bytes(page.data), StructKind.OTHER, background=True
            )
            page.dirty = False
            self._dirty_count -= 1
            self.stats.bump("devcache_writebacks")

    def _load_page(self, lpa: int, foreground: bool = True) -> _CachedPage:
        page = self._touch(lpa)
        if page is not None:
            self.stats.bump("devcache_hits")
            return page
        self.stats.bump("devcache_misses")
        if trace.ENABLED:
            trace.event("firmware", "devcache_miss", lpa=lpa)
        data = bytearray(
            self.ftl.read_page(lpa, StructKind.OTHER, background=not foreground)
        )
        return self._install(lpa, data, dirty=False)

    # ------------------------------------------------------------------ #
    # byte interface
    # ------------------------------------------------------------------ #

    def byte_read(self, lpa: int, offset: int, length: int) -> bytes:
        _sp = trace.begin("firmware", "byte_read", lpa=lpa) \
            if trace.ENABLED else None
        try:
            self._fw(self.timing.dram_access_ns)
            page = self._load_page(lpa)
            return bytes(page.data[offset : offset + length])
        finally:
            if _sp is not None:
                trace.end(_sp)

    def byte_write(
        self,
        lpa: int,
        offset: int,
        data: bytes,
        txid: Optional[int] = None,
    ) -> None:
        """Read-modify-write into the page cache (battery-backed)."""
        if offset + len(data) > self.page_size:
            raise ValueError("byte write crosses a page boundary")
        _sp = trace.begin("firmware", "byte_write", lpa=lpa,
                          nbytes=len(data)) if trace.ENABLED else None
        try:
            self._fw(self.timing.dram_access_ns)

            def _apply(k: int) -> None:
                if k == 0:
                    return
                page = self._load_page(lpa)
                page.data[offset : offset + k] = data[:k]
                if not page.dirty:
                    page.dirty = True
                    self._dirty_count += 1
                self._writeback_if_needed()

            self.faults.site("basefw.byte_write", _apply, len(data), atom=64)
        finally:
            if _sp is not None:
                trace.end(_sp)

    # ------------------------------------------------------------------ #
    # block interface
    # ------------------------------------------------------------------ #

    def block_read(self, lpa: int) -> bytes:
        _sp = trace.begin("firmware", "block_read", n_pages=1) \
            if trace.ENABLED else None
        try:
            self._fw(self.timing.dram_access_ns)
            page = self._load_page(lpa)
            return bytes(page.data)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def block_read_many(self, lpas: List[int]) -> List[bytes]:
        """Multi-page NVMe read: cache misses stripe across channels."""
        _sp = trace.begin("firmware", "block_read", n_pages=len(lpas)) \
            if trace.ENABLED else None
        try:
            return self._block_read_many(lpas)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def _block_read_many(self, lpas: List[int]) -> List[bytes]:
        self._fw(self.timing.dram_access_ns * len(lpas))
        missing = [lpa for lpa in lpas if self._touch(lpa) is None]
        if missing:
            self.stats.bump("devcache_misses", len(missing))
            datas = self.ftl.read_pages(
                missing, StructKind.OTHER, background=False
            )
            for lpa, data in zip(missing, datas):
                self._install(lpa, bytearray(data), dirty=False)
        out = []
        for lpa in lpas:
            page = self._touch(lpa)
            if page is None:
                # evicted while installing its siblings: re-read
                page = self._load_page(lpa)
            else:
                self.stats.bump("devcache_hits")
            out.append(bytes(page.data))
        return out

    def block_write(self, lpa: int, data: bytes, kind: StructKind) -> None:
        """NVMe write: through the FTL write buffer to flash (FEMU-style).

        The foreground pays DMA plus write-buffer admission; sustained
        write streams therefore throttle at flash program bandwidth,
        which is what makes block-interface write amplification expensive
        (and what ByteFS's in-device log avoids).  The cached copy, if
        any, is updated for read coherence.
        """
        _sp = trace.begin("firmware", "block_write", lpa=lpa) \
            if trace.ENABLED else None
        try:
            self._block_write(lpa, data, kind)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def block_write_many(
        self, pages: List[Tuple[int, bytes]], kind: StructKind
    ) -> None:
        """Batched NVMe write (one firmware entry per request).

        The per-page sequence (DRAM charge, cache update, write-buffer
        admission) is preserved exactly — buffer stalls interleave with
        the per-page charges (see the ByteFS firmware counterpart).
        """
        if len(pages) == 1:
            lpa, data = pages[0]
            self.block_write(lpa, data, kind)
            return
        _sp = trace.begin("firmware", "block_write", n_pages=len(pages)) \
            if trace.ENABLED else None
        try:
            for lpa, data in pages:
                self._block_write(lpa, data, kind)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def _block_write(self, lpa: int, data: bytes, kind: StructKind) -> None:
        self._fw(self.timing.dram_access_ns)
        cached = self._touch(lpa)
        if cached is not None:
            if cached.dirty:
                self._dirty_count -= 1
            cached.data = bytearray(data)
            cached.dirty = False
        self.ftl.write_page(lpa, data, kind, background=True)

    def trim(self, lpa: int) -> None:
        page = self._cache.pop(lpa, None)
        if page is not None and page.dirty:
            self._dirty_count -= 1
        self.ftl.trim(lpa)

    def trim_many(self, lpa: int, n_pages: int) -> None:
        """Batched trim: one firmware entry, one FTL map crossing."""
        cache_pop = self._cache.pop
        for p in range(lpa, lpa + n_pages):
            page = cache_pop(p, None)
            if page is not None and page.dirty:
                self._dirty_count -= 1
        self.ftl.trim_many(lpa, n_pages)

    def commit(self, txid: int) -> None:
        raise NotImplementedError(
            "baseline firmware has no transaction support"
        )

    # ------------------------------------------------------------------ #
    # power loss and recovery
    # ------------------------------------------------------------------ #

    def power_fail(self) -> None:
        self.stats.bump("fw_power_failures")

    def recover(self) -> Dict[str, float]:  # repro: allow[CS001]
        """Battery flush: write every dirty cached page back to flash.

        Recovery runs after the sweep driver disarms the injector, so its
        device writes are deliberately not crash sites (CS001 suppressed).
        """
        _sp = trace.begin("firmware", "recover") if trace.ENABLED else None
        try:
            return self._recover()
        finally:
            if _sp is not None:
                trace.end(_sp)

    def _recover(self) -> Dict[str, float]:  # repro: allow[CS001]
        t0 = self.clock.now
        flushed = 0
        for lpa, page in list(self._cache.items()):
            if page.dirty:
                # Unmount flush drains the cache in insertion order; each
                # page may target a different lpa, so nothing coalesces.
                self.ftl.write_page(  # repro: allow[PERF001]
                    lpa, bytes(page.data), StructKind.OTHER, background=False
                )
                page.dirty = False
                flushed += 1
        self._dirty_count = 0
        self.ftl.drain_write_buffer()
        return {
            "scanned_entries": len(self._cache),
            "discarded_entries": 0,
            "flushed_pages": flushed,
            "duration_ns": self.clock.now - t0,
        }

    def force_clean(self) -> None:
        for lpa, page in list(self._cache.items()):
            if page.dirty:
                # Unmount/sync flushes run with power on, so each dirty
                # page drained is a numbered crash site (lint CS001).
                self.faults.point("basefw.flush")
                # Sync flush interleaves a crash point per dirty page.
                self.ftl.write_page(  # repro: allow[PERF001]
                    lpa, bytes(page.data), StructKind.OTHER, background=True
                )
                page.dirty = False
        self._dirty_count = 0
        self.ftl.drain_write_buffer()

    def log_utilization(self) -> float:
        return self._dirty_count / self.capacity_pages
