"""The ByteFS firmware: log-structured SSD DRAM write log (paper §4.3).

Responsibilities:

* byte-interface reads/writes against the write log (64 B entries,
  three-layer skip-list index);
* block-interface reads merged with logged dirty chunks, block writes
  invalidating logged chunks;
* transaction commit via the TxLog and ``COMMIT(TxID)``;
* Algorithm-1 log cleaning with double buffering (background flush;
  foreground stalls only when both halves are exhausted);
* coordinated caching: no page-granular device cache — flash pages read
  on a byte-interface miss are returned to the host and cached *there*;
* ``RECOVER()``: discard uncommitted entries, flush committed ones in
  TxLog commit order, then reset the log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis import fssan
from repro.faults.injector import NULL_INJECTOR
from repro.ftl.ftl import FTL
from repro.nand.timing import TimingModel
from repro.sim.clock import VirtualClock
from repro.sim.resources import Resource
from repro.ssd.firmware.log_index import ChunkEntry, PageNode
from repro.ssd.firmware.txlog import TxLog
from repro.ssd.firmware.write_log import (
    LogFullError,
    LogRegion,
    aligned_entry_size,
    entry_complete,
)
from repro.stats.traffic import Direction, StructKind, TrafficStats
from repro.trace import tracer as trace


@dataclass(frozen=True)
class ByteFSFirmwareConfig:
    """Firmware tunables (paper defaults: 256 MB log, 85 % threshold,
    16 MB partitions, 2 MB TxLog — scaled down in tests/benches)."""

    log_bytes: int = 4 << 20
    clean_threshold: float = 0.85
    partition_bytes: int = 1 << 20
    txlog_bytes: int = 64 << 10


class ByteFSFirmware:
    """Firmware half of the ByteFS co-design."""

    def __init__(
        self,
        ftl: FTL,
        timing: TimingModel,
        clock: VirtualClock,
        stats: TrafficStats,
        config: Optional[ByteFSFirmwareConfig] = None,
    ) -> None:
        self.ftl = ftl
        self.timing = timing
        self.clock = clock
        self.stats = stats
        self.config = config or ByteFSFirmwareConfig()
        self.page_size = ftl.geometry.page_size

        half = self.config.log_bytes // 2
        address_space = ftl.geometry.capacity_bytes
        self.regions: List[LogRegion] = [
            LogRegion(
                half,
                self.page_size,
                self.config.partition_bytes,
                address_space,
                seed=i,
            )
            for i in range(2)
        ]
        self.active = 0
        self.txlog = TxLog(self.config.txlog_bytes)
        self.fw_core = Resource("fw-core")
        # Crash-site hooks; MSSD overwrites this with its own injector.
        self.faults = NULL_INJECTOR
        self._seq = 0
        # Live log entries per transaction id (for safe TxLog pruning).
        self._tx_refs: Dict[int, int] = {}
        self.cleanings = 0

    # ------------------------------------------------------------------ #
    # small helpers
    # ------------------------------------------------------------------ #

    def _fw(self, duration_ns: float) -> None:
        """Run a foreground firmware operation on the embedded core."""
        end = self.fw_core.serve(self.clock.now, duration_ns)
        self.clock.advance_to(end)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _chunks_for(self, lpa: int) -> List[ChunkEntry]:
        """All logged chunks of a page across both regions, seq-ordered."""
        chunks: List[ChunkEntry] = []
        for region in self.regions:
            node = region.index.lookup(lpa)
            if node is not None:
                chunks.extend(node.chunks)
        chunks.sort(key=lambda c: c.seq)
        return chunks

    def _merge(self, base: bytes, chunks: List[ChunkEntry]) -> bytes:
        """Apply chunks (already seq-ordered) onto a page image."""
        if not chunks:
            return base
        page = bytearray(base)
        for c in chunks:
            page[c.offset : c.offset + c.length] = c.data
        return bytes(page)

    def _merge_window(
        self,
        base_window: bytes,
        chunks: List[ChunkEntry],
        offset: int,
        length: int,
    ) -> bytes:
        """Apply chunks to just the ``[offset, offset+length)`` window.

        Byte-equal to :meth:`_merge` over the whole page followed by
        slicing, without materializing the full page (byte reads are
        typically a few cachelines out of a 4 KB page).
        """
        if not chunks:
            return base_window
        out = bytearray(base_window)
        end = offset + length
        for c in chunks:
            lo = c.offset if c.offset > offset else offset
            hi = c.end if c.end < end else end
            if lo < hi:
                out[lo - offset : hi - offset] = \
                    c.data[lo - c.offset : hi - c.offset]
        return bytes(out)

    @staticmethod
    def _covers(chunks: List[ChunkEntry], offset: int, length: int) -> bool:
        """Whether the union of chunk ranges covers [offset, offset+length)."""
        if not chunks:
            return False
        intervals = sorted((c.offset, c.end) for c in chunks)
        covered_to = offset
        for lo, hi in intervals:
            if lo > covered_to:
                break
            covered_to = max(covered_to, hi)
            if covered_to >= offset + length:
                return True
        return covered_to >= offset + length

    # ------------------------------------------------------------------ #
    # byte interface
    # ------------------------------------------------------------------ #

    def byte_read(self, lpa: int, offset: int, length: int) -> bytes:
        """Serve an MMIO load: from the log if covered, else from flash.

        Coordinated caching (§4.3): a flash page read on a miss is *not*
        cached in SSD DRAM; the host caches it instead.
        """
        _sp = trace.begin("firmware", "byte_read", lpa=lpa) \
            if trace.ENABLED else None
        try:
            self._fw(self.timing.fw_op_ns)
            chunks = self._chunks_for(lpa)
            if self._covers(chunks, offset, length):
                self.stats.bump("fw_byte_read_log_hits")
                if trace.ENABLED:
                    trace.event("firmware", "log_hit", lpa=lpa)
                return self._merge_window(
                    bytes(length), chunks, offset, length
                )
            self.stats.bump("fw_byte_read_flash_misses")
            if trace.ENABLED:
                trace.event("firmware", "log_miss", lpa=lpa)
            base = self.ftl.read_page(lpa, StructKind.OTHER, background=False)
            return self._merge_window(
                base[offset : offset + length], chunks, offset, length
            )
        finally:
            if _sp is not None:
                trace.end(_sp)

    def byte_write(
        self,
        lpa: int,
        offset: int,
        data: bytes,
        txid: Optional[int] = None,
    ) -> None:
        """Append an MMIO store to the write log and index it."""
        if not data:
            return
        if offset + len(data) > self.page_size:
            raise ValueError("byte write crosses a page boundary")
        _sp = trace.begin("firmware", "byte_write", lpa=lpa,
                          nbytes=len(data)) if trace.ENABLED else None
        try:
            self._byte_write(lpa, offset, data, txid)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def _byte_write(
        self,
        lpa: int,
        offset: int,
        data: bytes,
        txid: Optional[int],
    ) -> None:
        self._ensure_space(len(data))
        self._fw(self.timing.fw_append_ns)

        def _append(persisted: int) -> None:
            if not entry_complete(persisted, len(data)):
                # The entry's trailing TxID word never made it to DRAM;
                # the §4.7 recovery scan would detect and skip it, so a
                # torn append is as if it had never happened.
                self.stats.bump("fw_torn_appends_discarded")
                return
            region = self.regions[self.active]
            log_off = region.consume(len(data))
            entry = ChunkEntry(
                offset=offset,
                length=len(data),
                log_off=log_off,
                txid=txid,
                seq=self._next_seq(),
                data=bytes(data),
            )
            region.index.insert(lpa, entry)
            if txid is not None:
                self._tx_refs[txid] = self._tx_refs.get(txid, 0) + 1
            self.stats.bump("fw_log_appends")

        # 8 B words: the log lives in SSD DRAM behind the controller's
        # memory bus, so a power cut can tear an entry mid-word-stream.
        self.faults.site("fw.log_append", _append, len(data), atom=8)

    # ------------------------------------------------------------------ #
    # block interface
    # ------------------------------------------------------------------ #

    def block_read(self, lpa: int) -> bytes:
        """NVMe read: flash page merged with any logged dirty chunks."""
        return self.block_read_many([lpa])[0]

    def block_read_many(self, lpas: List[int]) -> List[bytes]:
        """NVMe multi-page read: flash reads stripe across channels."""
        _sp = trace.begin("firmware", "block_read", n_pages=len(lpas)) \
            if trace.ENABLED else None
        try:
            self._fw(self.timing.fw_op_ns * len(lpas))
            bases = self.ftl.read_pages(
                lpas, StructKind.OTHER, background=False
            )
            out = []
            for lpa, base in zip(lpas, bases):
                chunks = self._chunks_for(lpa)
                if chunks:
                    self.stats.bump("fw_block_read_merges")
                out.append(self._merge(base, chunks))
            return out
        finally:
            if _sp is not None:
                trace.end(_sp)

    def block_write(self, lpa: int, data: bytes, kind: StructKind) -> None:
        """NVMe write: invalidate logged chunks, then write through the FTL
        write buffer (host page-cache writebacks are always up to date,
        §4.4)."""
        _sp = trace.begin("firmware", "block_write", lpa=lpa) \
            if trace.ENABLED else None
        try:
            self._block_write(lpa, data, kind)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def block_write_many(
        self, pages: List[Tuple[int, bytes]], kind: StructKind
    ) -> None:
        """Batched NVMe write: one firmware entry per multi-page request.

        The per-page sequence (fw-core charge, log invalidation, FTL
        write-buffer admission) is preserved exactly: write-buffer
        stalls interleave with the fw-core charges, so collapsing the
        charges into one would change simulated timing.
        """
        if len(pages) == 1:
            lpa, data = pages[0]
            self.block_write(lpa, data, kind)
            return
        _sp = trace.begin("firmware", "block_write", n_pages=len(pages)) \
            if trace.ENABLED else None
        try:
            for lpa, data in pages:
                self._block_write(lpa, data, kind)
        finally:
            if _sp is not None:
                trace.end(_sp)

    def _block_write(self, lpa: int, data: bytes, kind: StructKind) -> None:
        self._fw(self.timing.fw_op_ns)
        for region in self.regions:
            node = region.index.remove_page(lpa)
            if node is not None:
                self._drop_refs(node.chunks)
                self.stats.bump(
                    "fw_log_invalidations", len(node.chunks)
                )
        self.ftl.write_page(lpa, data, kind, background=True)

    def trim(self, lpa: int) -> None:
        for region in self.regions:
            node = region.index.remove_page(lpa)
            if node is not None:
                self._drop_refs(node.chunks)
        self.ftl.trim(lpa)

    def trim_many(self, lpa: int, n_pages: int) -> None:
        """Batched trim: one firmware entry, one FTL map crossing.

        Pages are invalidated in ascending order (matching n calls to
        :meth:`trim`) because ``_drop_refs`` can prune the TxLog and
        pruning decisions depend on cumulative state.
        """
        for p in range(lpa, lpa + n_pages):
            for region in self.regions:
                node = region.index.remove_page(p)
                if node is not None:
                    self._drop_refs(node.chunks)
        self.ftl.trim_many(lpa, n_pages)

    # ------------------------------------------------------------------ #
    # transactions
    # ------------------------------------------------------------------ #

    def commit(self, txid: int) -> None:
        """Handle COMMIT(TxID): append a 4 B entry to the TxLog (§4.3)."""
        _sp = trace.begin("firmware", "txlog_commit", txid=txid) \
            if trace.ENABLED else None
        self._fw(self.timing.fw_append_ns)
        self.txlog.commit(txid)
        self.stats.bump("fw_commits")
        if _sp is not None:
            trace.end(_sp)

    def is_committed(self, entry: ChunkEntry) -> bool:
        return entry.txid is None or self.txlog.is_committed(entry.txid)

    def _drop_refs(self, chunks: List[ChunkEntry]) -> None:
        for c in chunks:
            if c.txid is not None and c.txid in self._tx_refs:
                self._tx_refs[c.txid] -= 1
                if self._tx_refs[c.txid] <= 0:
                    del self._tx_refs[c.txid]

    # ------------------------------------------------------------------ #
    # log cleaning (Algorithm 1) with double buffering
    # ------------------------------------------------------------------ #

    def _ensure_space(self, length: int) -> None:
        region = self.regions[self.active]
        size = aligned_entry_size(length)
        if (
            region.free >= size
            and region.utilization() < self.config.clean_threshold
        ):
            return
        other = self.regions[1 - self.active]
        if other.is_cleaning:
            # Both halves exhausted: the foreground must wait for the
            # background flush of the other half to drain.
            if self.clock.now < other.cleaning_until:
                self.stats.bump("fw_log_clean_stalls")
                if trace.ENABLED:
                    trace.note_wait(
                        "fw-log-clean",
                        other.cleaning_until - self.clock.now,
                        0.0,
                    )
                self.clock.advance_to(other.cleaning_until)
            other.is_cleaning = False
        old_idx = self.active
        self.active = 1 - self.active
        self._clean_region(old_idx)
        new_active = self.regions[self.active]
        if aligned_entry_size(length) > new_active.free:
            raise LogFullError(
                f"entry of {length} B cannot fit in a "
                f"{new_active.capacity} B log region"
            )

    def _clean_region(self, idx: int) -> None:
        """Flush one region to flash (Algorithm 1), in the background."""
        region = self.regions[idx]
        _sp = trace.begin("firmware", "log_clean", region=idx) \
            if trace.ENABLED else None
        try:
            self.faults.point("fw.clean_begin")
            self.cleanings += 1
            self.stats.bump("fw_log_cleanings")
            start_busy = self.ftl.channels.max_busy_until()
            for node in list(region.index.pages()):
                self._flush_page_node(node)
            # Power loss here leaves flushed pages on flash AND their
            # entries in the log; recovery re-flushes them — idempotent by
            # design.
            self.faults.point("fw.clean_reset")
            region.reset()
            region.is_cleaning = True
            region.cleaning_until = max(
                self.ftl.channels.max_busy_until(), start_busy
            )
            self._prune_txlog()
        finally:
            if _sp is not None:
                trace.end(_sp)

    def _flush_page_node(self, node: PageNode) -> None:
        """Algorithm 1 body for one modified page."""
        committed = [c for c in node.chunks if self.is_committed(c)]
        uncommitted = [c for c in node.chunks if not self.is_committed(c)]
        # Uncommitted entries migrate to the (new) active log region.
        for c in uncommitted:
            active = self.regions[self.active]
            c.log_off = active.consume(c.length)
            active.index.insert(node.lpa, c)
        if not committed:
            return
        # Partial update: the old flash page must be loaded first.
        if not self._covers(committed, 0, self.page_size):
            base = self.ftl.read_page(
                node.lpa, StructKind.OTHER, background=True
            )
            self.stats.bump("fw_clean_partial_reads")
        else:
            base = bytes(self.page_size)
        committed.sort(key=lambda c: (self.txlog.commit_position(c.txid)
                                      if c.txid is not None else -1, c.seq))
        if fssan.ENABLED:
            fssan.check_commit_ordered(
                [
                    (
                        self.txlog.commit_position(c.txid)
                        if c.txid is not None
                        else -1,
                        c.seq,
                    )
                    for c in committed
                ]
            )
        merged = self._merge(base, committed)

        def _flush(k: int) -> None:
            image = merged
            if 0 < k < len(merged):
                # Torn flash program: leading sectors hold the new image,
                # the rest whatever the mapped page held before.  The log
                # still has every entry (the region resets only after the
                # whole clean), so recovery rewrites this page anyway.
                old = self.ftl.read_page(
                    node.lpa, StructKind.OTHER, background=True
                )
                image = merged[:k] + old[k:]
            self.ftl.write_page(
                node.lpa, image, StructKind.OTHER, background=True
            )
            self.stats.bump("fw_clean_page_flushes")

        self.faults.site("fw.clean_flush", _flush, len(merged), atom=512)

    def _prune_txlog(self) -> None:
        """Drop TxLog entries whose transactions have no live log entries.

        Uses the shadow-buffer swap (:meth:`TxLog.replace`) so a crash
        mid-prune can't surface a TxLog with some committed entries
        already gone — that would silently uncommit their data.
        """
        live = set(self._tx_refs)
        remaining = [t for t in self.txlog.committed_in_order() if t in live]
        if fssan.ENABLED:
            fssan.check_txlog_prune(
                (t for t in sorted(live) if self.txlog.is_committed(t)),
                remaining,
            )
        self.txlog.replace(remaining)

    def force_clean(self) -> None:
        """Flush both halves now (used by unmount/sync)."""
        for idx in (self.active, 1 - self.active):
            if self.regions[idx].used or self.regions[idx].index.n_chunks:
                self._clean_region(idx)
        for region in self.regions:
            if region.is_cleaning:
                self.clock.advance_to(
                    max(self.clock.now, region.cleaning_until)
                )
                region.is_cleaning = False
        self.ftl.drain_write_buffer()

    # ------------------------------------------------------------------ #
    # power loss and recovery
    # ------------------------------------------------------------------ #

    def power_fail(self) -> None:
        """Battery-backed DRAM: the log, index, and TxLog survive as-is."""
        self.stats.bump("fw_power_failures")

    def recover(self) -> Dict[str, float]:  # repro: allow[CS001]
        """Handle RECOVER(): scan the log, discard uncommitted entries,
        flush committed ones in commit order, reset log and TxLog (§4.7).

        Returns recovery statistics including the simulated duration.
        Recovery runs after the sweep driver disarms the injector, so its
        device writes are deliberately not crash sites (CS001 suppressed).
        """
        _sp = trace.begin("firmware", "recover") if trace.ENABLED else None
        try:
            return self._recover()
        finally:
            if _sp is not None:
                trace.end(_sp)

    def _recover(self) -> Dict[str, float]:  # repro: allow[CS001]
        t0 = self.clock.now
        scanned = 0
        discarded = 0
        flushed_pages = 0
        # Scan cost: every data entry's trailing TxID is checked.
        for region in self.regions:
            for node in region.index.pages():
                scanned += len(node.chunks)
        self._fw(self.timing.fw_op_ns * max(1, scanned))
        # Flush committed entries page by page, honouring commit order.
        all_nodes: Dict[int, List[ChunkEntry]] = {}
        for region in self.regions:
            for node in region.index.pages():
                for c in node.chunks:
                    if self.is_committed(c):
                        all_nodes.setdefault(node.lpa, []).append(c)
                    else:
                        discarded += 1
        for lpa, chunks in sorted(all_nodes.items()):
            chunks.sort(
                key=lambda c: (
                    self.txlog.commit_position(c.txid)
                    if c.txid is not None
                    else -1,
                    c.seq,
                )
            )
            if fssan.ENABLED:
                fssan.check_commit_ordered(
                    [
                        (
                            self.txlog.commit_position(c.txid)
                            if c.txid is not None
                            else -1,
                            c.seq,
                        )
                        for c in chunks
                    ]
                )
            if not self._covers(chunks, 0, self.page_size):
                base = self.ftl.read_page(lpa, StructKind.OTHER, background=False)
            else:
                base = bytes(self.page_size)
            merged = self._merge(base, chunks)
            # Log cleaning read-merge-writes one lpa at a time by design.
            self.ftl.write_page(  # repro: allow[PERF001]
                lpa, merged, StructKind.OTHER, background=False)
            flushed_pages += 1
        self.ftl.drain_write_buffer()
        for region in self.regions:
            region.reset()
        self.txlog.clear()
        self._tx_refs.clear()
        return {
            "scanned_entries": scanned,
            "discarded_entries": discarded,
            "flushed_pages": flushed_pages,
            "duration_ns": self.clock.now - t0,
        }

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def log_utilization(self) -> float:
        return self.regions[self.active].utilization()

    def index_memory_bytes(self) -> int:
        return sum(r.index.memory_bytes() for r in self.regions)
