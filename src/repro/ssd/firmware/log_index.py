"""The three-layer index over the firmware write log (paper §4.3, Fig 3).

Layer 1: a partition table dividing the SSD logical address space into
fixed-size partitions (16 MB in the paper); the partition index is just
``LPA // pages_per_partition``.

Layer 2: one skip list per partition, keyed by LPA.  A key is present iff
some bytes of that flash page currently live in the log region.

Layer 3: per page, a chunk list ordered by in-page offset.  Each chunk
entry records the in-page offset, the offset of the data in the log
region, the length, and the transaction id (paper: offset 1 B, log offset
4 B, length 4 B, TxID 4 B).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.analysis import fssan
from repro.sim.rng import make_rng
from repro.ssd.firmware.skiplist import SkipList

#: Bytes of index metadata per chunk entry (paper Fig 3: 1 + 4 + 4 + 4).
CHUNK_ENTRY_BYTES = 13
#: Approximate bytes per skip-list node (key + pointers on the ARM core).
SKIPLIST_NODE_BYTES = 32


class ChunkEntry:
    """One logged write to a page: ``data[offset:offset+length]``.

    A plain ``__slots__`` class: the firmware allocates one per logged
    store, so instance dicts would dominate allocation churn.
    """

    __slots__ = ("offset", "length", "log_off", "txid", "seq", "data", "end")

    def __init__(
        self,
        offset: int,          # byte offset within the flash page
        length: int,
        log_off: int,         # offset of the payload inside the log region
        txid: Optional[int],  # None = non-transactional
        seq: int,             # global append sequence, orders overlaps
        data: bytes,          # payload (kept with the entry)
    ) -> None:
        self.offset = offset
        self.length = length
        self.log_off = log_off
        self.txid = txid
        self.seq = seq
        self.data = data
        # offset/length never change after construction (log cleaning
        # only relocates log_off), so the end bound is precomputed.
        self.end = offset + length


class PageNode:
    """Layer-3 node: all logged chunks of one flash page."""

    __slots__ = ("lpa", "chunks")

    def __init__(
        self, lpa: int, chunks: Optional[List[ChunkEntry]] = None
    ) -> None:
        self.lpa = lpa
        self.chunks: List[ChunkEntry] = chunks if chunks is not None else []

    def add(self, entry: ChunkEntry) -> None:
        """Insert keeping the list ordered by (offset, seq)."""
        chunks = self.chunks
        key = (entry.offset, entry.seq)
        lo, hi = 0, len(chunks)
        while lo < hi:
            mid = (lo + hi) >> 1
            c = chunks[mid]
            if (c.offset, c.seq) > key:
                hi = mid
            else:
                lo = mid + 1
        chunks.insert(lo, entry)

    def bytes_logged(self) -> int:
        return sum(c.length for c in self.chunks)


class LogIndex:
    """Partition table -> skip lists -> chunk lists."""

    def __init__(
        self,
        capacity_bytes: int,
        page_size: int,
        partition_bytes: int = 16 << 20,
        seed: int = 0x10D3,
    ) -> None:
        if partition_bytes % page_size != 0:
            raise ValueError("partition size must be page aligned")
        self.page_size = page_size
        self.pages_per_partition = partition_bytes // page_size
        self.n_partitions = max(
            1, -(-capacity_bytes // partition_bytes)
        )  # ceil div
        self._partitions: Dict[int, SkipList] = {}
        self._seed = seed
        self._n_chunks = 0

    # ------------------------------------------------------------------ #

    def _partition_of(self, lpa: int) -> int:
        return lpa // self.pages_per_partition

    def _skiplist(self, lpa: int, create: bool = False) -> Optional[SkipList]:
        part = self._partition_of(lpa)
        sl = self._partitions.get(part)
        if sl is None and create:
            # Derive each partition's level RNG from (seed, partition) so
            # streams are independent of partition creation order.
            sl = SkipList(make_rng(self._seed, f"logindex:{part}"))
            self._partitions[part] = sl
        return sl

    def insert(self, lpa: int, entry: ChunkEntry) -> None:
        if fssan.ENABLED:
            fssan.check_log_chunk(
                lpa,
                entry.offset,
                entry.length,
                self.page_size,
                self._partition_of(lpa),
                self.n_partitions,
            )
        sl = self._skiplist(lpa, create=True)
        node = sl.get(lpa)
        if node is None:
            node = PageNode(lpa)
            sl.insert(lpa, node)
        node.add(entry)
        self._n_chunks += 1

    def lookup(self, lpa: int) -> Optional[PageNode]:
        sl = self._skiplist(lpa)
        if sl is None:
            return None
        return sl.get(lpa)

    def lookup_range(self, lpa_lo: int, lpa_hi: int) -> Iterator[PageNode]:
        """All indexed pages with lpa_lo <= lpa < lpa_hi.

        Range lookups spanning several partitions are broken into one
        lookup per partition (paper §4.3).
        """
        part_lo = self._partition_of(lpa_lo)
        part_hi = self._partition_of(max(lpa_lo, lpa_hi - 1))
        for part in range(part_lo, part_hi + 1):
            sl = self._partitions.get(part)
            if sl is None:
                continue
            for _key, node in sl.range(lpa_lo, lpa_hi):
                yield node

    def remove_page(self, lpa: int) -> Optional[PageNode]:
        sl = self._skiplist(lpa)
        if sl is None:
            return None
        node = sl.get(lpa)
        if node is not None:
            sl.delete(lpa)
            self._n_chunks -= len(node.chunks)
        return node

    def pages(self) -> Iterator[PageNode]:
        """Iterate every indexed page in LPA order (used by log cleaning)."""
        for part in sorted(self._partitions):
            for _key, node in self._partitions[part].items():
                yield node

    def clear(self) -> None:
        self._partitions.clear()
        self._n_chunks = 0

    # ------------------------------------------------------------------ #

    @property
    def n_chunks(self) -> int:
        return self._n_chunks

    @property
    def n_pages(self) -> int:
        return sum(len(sl) for sl in self._partitions.values())

    def memory_bytes(self) -> int:
        """Approximate SSD-DRAM footprint of the index (paper: ~21 MB for a
        fully utilized 256 MB log)."""
        return (
            self._n_chunks * CHUNK_ENTRY_BYTES
            + self.n_pages * SKIPLIST_NODE_BYTES
            + len(self._partitions) * SKIPLIST_NODE_BYTES
        )
