"""A probabilistic skip list keyed by integers (logical page addresses).

The paper indexes the firmware write log with *multiple small skip lists*
(one per 16 MB partition of the SSD address space) rather than one huge
list, to bound lookup latency on the embedded core (§4.3: 89 ns average
lookup on a fully utilized 256 MB log).  This module provides the
individual list; :mod:`repro.ssd.firmware.log_index` provides the
partitioned three-layer structure.

Levels are chosen with a deterministic RNG so simulations are repeatable.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple

from repro.analysis import fssan
from repro.sim.rng import make_rng

_MAX_LEVEL = 16
_P = 0.5


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: int, value: Any, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * level


class SkipList:
    """Ordered int -> value map with O(log n) expected operations."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng if rng is not None else make_rng(0xB17EF5, "skiplist")
        self._head = _Node(-1, None, _MAX_LEVEL)
        self._level = 1
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None or self._find(key) is not None

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find(self, key: int) -> Optional[_Node]:
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[lvl]
        candidate = node.forward[0]
        if candidate is not None and candidate.key == key:
            return candidate
        return None

    def get(self, key: int, default: Any = None) -> Any:
        node = self._find(key)
        return node.value if node is not None else default

    def insert(self, key: int, value: Any) -> None:
        """Insert or replace the value for ``key``."""
        update: List[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[lvl]
            update[lvl] = node
        candidate = node.forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        new = _Node(key, value, level)
        for lvl in range(level):
            new.forward[lvl] = update[lvl].forward[lvl]
            update[lvl].forward[lvl] = new
        self._len += 1
        if fssan.ENABLED:
            fssan.check_skiplist(self._head, self._level, self._len)

    def delete(self, key: int) -> bool:
        """Remove ``key``; return whether it was present."""
        update: List[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[lvl]
            update[lvl] = node
        target = node.forward[0]
        if target is None or target.key != key:
            return False
        for lvl in range(len(target.forward)):
            if update[lvl].forward[lvl] is target:
                update[lvl].forward[lvl] = target.forward[lvl]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._len -= 1
        if fssan.ENABLED:
            fssan.check_skiplist(self._head, self._level, self._len)
        return True

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate (key, value) pairs in ascending key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def range(self, lo: int, hi: int) -> Iterator[Tuple[int, Any]]:
        """Iterate pairs with lo <= key < hi."""
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            while node.forward[lvl] is not None and node.forward[lvl].key < lo:
                node = node.forward[lvl]
        node = node.forward[0]
        while node is not None and node.key < hi:
            yield node.key, node.value
            node = node.forward[0]

    def clear(self) -> None:
        self._head = _Node(-1, None, _MAX_LEVEL)
        self._level = 1
        self._len = 0
