"""The firmware transaction log (paper §4.3, Fig 4).

A small (2 MB) region of SSD DRAM holding 4 B commit entries in commit
order.  ``COMMIT(TxID)`` appends an entry; log cleaning flushes committed
updates in TxLog order and then truncates it; recovery treats any TxID
absent from the TxLog as uncommitted.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis import fssan

ENTRY_BYTES = 4


class TxLogFullError(Exception):
    pass


class TxLog:
    """Commit-ordered set of committed transaction ids."""

    def __init__(self, capacity_bytes: int = 2 << 20) -> None:
        self.capacity_entries = capacity_bytes // ENTRY_BYTES
        self._order: List[int] = []
        self._positions: Dict[int, int] = {}

    def commit(self, txid: int) -> None:
        if len(self._order) >= self.capacity_entries:
            raise TxLogFullError("TxLog full; log cleaning must run first")
        if txid in self._positions:
            return  # idempotent commit
        self._positions[txid] = len(self._order)
        self._order.append(txid)
        if fssan.ENABLED:
            fssan.check_txlog_entry(self._order, self._positions, txid)

    def is_committed(self, txid: int) -> bool:
        return txid in self._positions

    def commit_position(self, txid: int) -> int:
        """Rank of ``txid`` in commit order (for ordered flushing)."""
        return self._positions[txid]

    def committed_in_order(self) -> List[int]:
        return list(self._order)

    def replace(self, txids: List[int]) -> None:
        """Atomically swap the log's contents for ``txids`` (in order).

        Log cleaning prunes the TxLog by rebuilding it with only the
        transactions that still have live data entries.  The firmware
        builds the pruned log in a shadow buffer and flips to it in one
        step, so a crash during pruning can never observe a
        half-truncated TxLog (clear-then-recommit would).
        """
        if len(txids) > self.capacity_entries:
            raise TxLogFullError("pruned TxLog exceeds capacity")
        order = list(txids)
        positions = {t: i for i, t in enumerate(order)}
        if len(positions) != len(order):
            raise ValueError("duplicate txid in replacement")
        self._order = order
        self._positions = positions

    def __len__(self) -> int:
        return len(self._order)

    def clear(self) -> None:
        self._order.clear()
        self._positions.clear()
