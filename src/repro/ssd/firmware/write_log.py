"""The log region of the firmware write log (paper §4.3, Fig 3).

The global log region is a circular buffer (256 MB in the paper) holding
64 B-aligned data entries appended at the tail.  For double buffering
(§4.3, "Log Cleaning") the firmware manages two half regions: writes go to
the active one while the other is flushed to flash in the background.

This module tracks space accounting for one region; the data payloads
themselves ride on the :class:`~repro.ssd.firmware.log_index.ChunkEntry`
objects, and the region's :class:`~repro.ssd.firmware.log_index.LogIndex`
maps pages to entries.
"""

from __future__ import annotations

from repro.analysis import fssan
from repro.ssd.firmware.log_index import LogIndex

ENTRY_ALIGN = 64


class LogFullError(Exception):
    """Raised when an append cannot fit even after cleaning."""


def aligned_entry_size(length: int) -> int:
    """Size a data entry consumes in the log (64 B aligned, paper Fig 3)."""
    if length <= 0:
        raise ValueError("entry length must be positive")
    return ((length + ENTRY_ALIGN - 1) // ENTRY_ALIGN) * ENTRY_ALIGN


def entry_complete(persisted_bytes: int, length: int) -> bool:
    """Whether a (possibly torn) append left a *valid* log entry.

    Each data entry carries its TxID in the trailing word (Fig 3), which
    doubles as the entry's validity marker: the recovery scan checks it
    (§4.7), so an append torn anywhere before the payload's end — the
    trailer lands after the payload — is detected and skipped as if it
    had never happened.
    """
    return persisted_bytes >= length


class LogRegion:
    """One half of the double-buffered log: space accounting plus index."""

    def __init__(
        self,
        capacity_bytes: int,
        page_size: int,
        partition_bytes: int,
        address_space_bytes: int,
        seed: int = 0,
    ) -> None:
        if capacity_bytes < ENTRY_ALIGN:
            raise ValueError("log region too small")
        self.capacity = capacity_bytes
        self.used = 0
        self.tail = 0  # append cursor (log offsets for ChunkEntry.log_off)
        self.index = LogIndex(
            address_space_bytes, page_size, partition_bytes, seed=seed
        )
        # When a background flush of this region completes (simulated ns);
        # 0 means the region is clean/idle.
        self.cleaning_until = 0.0
        self.is_cleaning = False

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def utilization(self) -> float:
        return self.used / self.capacity

    def can_fit(self, length: int) -> bool:
        return aligned_entry_size(length) <= self.free

    def consume(self, length: int) -> int:
        """Account for an appended entry; return its log offset."""
        size = aligned_entry_size(length)
        if size > self.free:
            raise LogFullError(
                f"entry of {size} B does not fit ({self.free} B free)"
            )
        off = self.tail
        self.tail = (self.tail + size) % self.capacity
        self.used += size
        if fssan.ENABLED:
            fssan.check_log_append(off, size, self.used, self.capacity)
        return off

    def reset(self) -> None:
        self.used = 0
        self.tail = 0
        self.index.clear()
        self.is_cleaning = False
