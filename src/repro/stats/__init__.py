"""Traffic accounting: the measurement substrate behind every figure.

Every byte moved between host and device is tagged with the file-system
data structure it belongs to (:class:`StructKind`), the direction, and the
interface (byte MMIO vs. block NVMe).  Flash-side page traffic is tracked
separately.  Amplification factors (Table 2) are device traffic divided by
application-issued traffic, which the workloads record through
:meth:`TrafficStats.record_app`.
"""

from repro.stats.traffic import (
    Direction,
    Interface,
    StructKind,
    TrafficStats,
    LatencyRecorder,
)

__all__ = [
    "Direction",
    "Interface",
    "StructKind",
    "TrafficStats",
    "LatencyRecorder",
]
