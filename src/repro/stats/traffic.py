"""Traffic and latency accounting for the ByteFS reproduction."""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple


class StructKind(enum.Enum):
    """The file-system data structure a transfer belongs to (paper Table 3)."""

    SUPERBLOCK = "superblock"
    BITMAP = "bitmap"          # block list + inode list
    INODE = "inode"
    DENTRY = "dentry"
    DATA_PTR = "data_ptr"
    DATA = "data"
    JOURNAL = "journal"
    OTHER = "other"

    # Members are singletons, so identity hashing is equality-consistent
    # and skips Enum.__hash__'s name lookup on every stats-dict update.
    __hash__ = object.__hash__

    @property
    def is_metadata(self) -> bool:
        return self not in (StructKind.DATA,)


METADATA_KINDS = tuple(k for k in StructKind if k.is_metadata)


class Direction(enum.Enum):
    READ = "read"
    WRITE = "write"

    __hash__ = object.__hash__


class Interface(enum.Enum):
    BYTE = "byte"    # PCIe MMIO / CXL.mem loads and stores
    BLOCK = "block"  # NVMe block commands

    __hash__ = object.__hash__


class TrafficStats:
    """Aggregates host<->SSD traffic, flash traffic, and app-issued bytes."""

    def __init__(self) -> None:
        # (kind, direction, interface) -> bytes
        self.host_ssd: Dict[Tuple[StructKind, Direction, Interface], int] = (
            defaultdict(int)
        )
        # (kind, direction) -> bytes of flash page traffic
        self.flash: Dict[Tuple[StructKind, Direction], int] = defaultdict(int)
        # direction -> bytes issued by the application through the FS API
        self.app: Dict[Direction, int] = defaultdict(int)
        # free-form event counters (cache hits, log cleanings, GC runs, ...)
        self.counters: Dict[str, int] = defaultdict(int)
        # fault-injection counters (crash sites reached, crashes injected,
        # torn writes applied) — kept separate from ``counters`` so sweep
        # bookkeeping never pollutes traffic-derived metrics
        self.fault_counters: Dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def record_host_ssd(
        self,
        kind: StructKind,
        direction: Direction,
        interface: Interface,
        nbytes: int,
    ) -> None:
        if nbytes < 0:
            raise ValueError("negative transfer size")
        self.host_ssd[(kind, direction, interface)] += nbytes

    def record_flash(
        self, kind: StructKind, direction: Direction, nbytes: int
    ) -> None:
        if nbytes < 0:
            raise ValueError("negative transfer size")
        self.flash[(kind, direction)] += nbytes

    def record_app(self, direction: Direction, nbytes: int) -> None:
        self.app[direction] += nbytes

    def bump(self, counter: str, n: int = 1) -> None:
        self.counters[counter] += n

    def bump_fault(self, counter: str, n: int = 1) -> None:
        self.fault_counters[counter] += n

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def host_ssd_bytes(
        self,
        kinds: Optional[Iterable[StructKind]] = None,
        direction: Optional[Direction] = None,
        interface: Optional[Interface] = None,
    ) -> int:
        kinds_set = set(kinds) if kinds is not None else None
        total = 0
        for (k, d, i), n in self.host_ssd.items():
            if kinds_set is not None and k not in kinds_set:
                continue
            if direction is not None and d != direction:
                continue
            if interface is not None and i != interface:
                continue
            total += n
        return total

    def flash_bytes(
        self,
        kinds: Optional[Iterable[StructKind]] = None,
        direction: Optional[Direction] = None,
    ) -> int:
        kinds_set = set(kinds) if kinds is not None else None
        total = 0
        for (k, d), n in self.flash.items():
            if kinds_set is not None and k not in kinds_set:
                continue
            if direction is not None and d != direction:
                continue
            total += n
        return total

    def metadata_bytes(
        self, direction: Direction, interface: Optional[Interface] = None
    ) -> int:
        return self.host_ssd_bytes(METADATA_KINDS, direction, interface)

    def data_bytes(
        self, direction: Direction, interface: Optional[Interface] = None
    ) -> int:
        return self.host_ssd_bytes((StructKind.DATA,), direction, interface)

    def amplification(self, direction: Direction) -> float:
        """Device traffic over app-issued traffic (paper Table 2)."""
        app = self.app.get(direction, 0)
        if app == 0:
            return float("nan")
        return self.host_ssd_bytes(direction=direction) / app

    def breakdown(self, direction: Direction) -> Dict[StructKind, int]:
        """Per-structure host<->SSD bytes for one direction (Figure 1)."""
        out: Dict[StructKind, int] = defaultdict(int)
        for (k, d, _i), n in self.host_ssd.items():
            if d == direction:
                out[k] += n
        return dict(out)

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict copy of every aggregate (for reset round-trips)."""
        return {
            "host_ssd": dict(self.host_ssd),
            "flash": dict(self.flash),
            "app": dict(self.app),
            "counters": dict(self.counters),
            "fault_counters": dict(self.fault_counters),
        }

    def to_json(self) -> Dict[str, Dict]:
        """Like :meth:`snapshot` but JSON-serialisable: enum-tuple keys
        become stable colon-joined strings (``"data:write:byte"``), sorted
        for deterministic output."""
        host_ssd = {
            f"{k.value}:{d.value}:{i.value}": n
            for (k, d, i), n in self.host_ssd.items()
        }
        flash = {
            f"{k.value}:{d.value}": n for (k, d), n in self.flash.items()
        }
        app = {d.value: n for d, n in self.app.items()}
        return {
            "host_ssd": dict(sorted(host_ssd.items())),
            "flash": dict(sorted(flash.items())),
            "app": dict(sorted(app.items())),
            "counters": dict(sorted(self.counters.items())),
            "fault_counters": dict(sorted(self.fault_counters.items())),
        }

    def reset(self) -> None:
        self.host_ssd.clear()
        self.flash.clear()
        self.app.clear()
        self.counters.clear()
        self.fault_counters.clear()


class LatencyRecorder:
    """Records per-operation latencies and reports mean / percentiles.

    The sorted order is computed lazily and cached per op (invalidated by
    :meth:`record`), so a burst of percentile queries — e.g. rendering a
    report with p50/p95/p99 per op — sorts each sample list once instead
    of once per query.
    """

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = defaultdict(list)
        self._sorted_cache: Dict[str, List[float]] = {}

    def record(self, op: str, latency_ns: float) -> None:
        self._samples[op].append(latency_ns)
        self._sorted_cache.pop(op, None)

    def count(self, op: str) -> int:
        return len(self._samples.get(op, ()))

    def mean(self, op: str) -> float:
        samples = self._samples.get(op)
        if not samples:
            return float("nan")
        return sum(samples) / len(samples)

    def _sorted(self, op: str) -> Optional[List[float]]:
        ordered = self._sorted_cache.get(op)
        if ordered is None:
            samples = self._samples.get(op)
            if not samples:
                return None
            ordered = self._sorted_cache[op] = sorted(samples)
        return ordered

    @staticmethod
    def _percentile_of(ordered: List[float], pct: float) -> float:
        if len(ordered) == 1:
            return ordered[0]
        rank = (pct / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def percentile(self, op: str, pct: float) -> float:
        ordered = self._sorted(op)
        if ordered is None:
            return float("nan")
        return self._percentile_of(ordered, pct)

    def summary(self, op: str) -> Dict[str, float]:
        """count/mean/p50/p95/p99 in one pass over one cached sort."""
        ordered = self._sorted(op)
        if ordered is None:
            nan = float("nan")
            return {"count": 0, "mean": nan, "p50": nan,
                    "p95": nan, "p99": nan}
        return {
            "count": len(ordered),
            "mean": sum(ordered) / len(ordered),
            "p50": self._percentile_of(ordered, 50),
            "p95": self._percentile_of(ordered, 95),
            "p99": self._percentile_of(ordered, 99),
        }

    def ops(self) -> List[str]:
        return sorted(self._samples)

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Fold ``other``'s samples into this recorder.

        Merging preserves the sample multiset per op, and every reported
        quantity (:meth:`summary`, :meth:`percentile`) is computed over
        the *sorted* samples — so any grouping of per-shard recorders
        merges to bit-identical summaries, which is what lets the
        process-parallel serving path reduce per-worker fragments into
        the same document the serial path writes.
        """
        for op in sorted(other._samples):
            samples = other._samples[op]
            if samples:
                self._samples[op].extend(samples)
                self._sorted_cache.pop(op, None)
        return self

    def reset(self) -> None:
        self._samples.clear()
        self._sorted_cache.clear()
