"""Live telemetry for the serving stack (ROADMAP item 5).

``repro.telemetry`` is the observability layer over :mod:`repro.cluster`
runs: a deterministic virtual-time sampler
(:class:`~repro.telemetry.sampler.TelemetrySampler`), the
``repro.telemetry.series/v1`` JSONL document
(:mod:`repro.telemetry.series`), Prometheus text exposition + a
stdlib ``/metrics`` HTTP endpoint (:mod:`repro.telemetry.prom`,
:mod:`repro.telemetry.server`), and the ``repro top`` terminal report
(:mod:`repro.telemetry.top`).

Telemetry is **zero-cost when off**: the serve loop guards every hook
site on :data:`~repro.telemetry.sampler.ENABLED`, which is flipped only
while a sampler is activated (``repro serve --telemetry-out`` /
``--listen``).  The pinned ``repro bench --check`` suite never turns it
on.

Host-side discipline: this package reads device state only through the
MSSD public gauge surface (:meth:`repro.ssd.device.MSSD.gauges`) and is
registered with the lint layering pass as host code — importing
device-internal modules from here is a LAY001 finding.
"""

from repro.telemetry.prom import (
    CONTENT_TYPE,
    parse_exposition,
    render_prometheus,
)
from repro.telemetry.sampler import (
    ENABLED,
    SCOPES,
    TelemetrySampler,
    activate,
    active,
    deactivate,
)
from repro.telemetry.series import (
    SCHEMA,
    load_series,
    to_lines,
    validate_series,
    write_series,
)
from repro.telemetry.server import make_server, serve_in_thread
from repro.telemetry.top import render_top, sparkline

__all__ = [
    "CONTENT_TYPE",
    "ENABLED",
    "SCHEMA",
    "SCOPES",
    "TelemetrySampler",
    "activate",
    "active",
    "deactivate",
    "load_series",
    "make_server",
    "parse_exposition",
    "render_prometheus",
    "render_top",
    "serve_in_thread",
    "sparkline",
    "to_lines",
    "validate_series",
    "write_series",
]
