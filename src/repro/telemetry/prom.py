"""Prometheus text exposition (version 0.0.4) for telemetry snapshots.

:func:`render_prometheus` renders the **latest sample per entity** from
a :class:`~repro.telemetry.sampler.TelemetrySampler` (or a pre-sorted
row list) as the plain-text format Prometheus scrapes: cumulative
request/traffic counts become ``counter`` metrics with the conventional
``_total`` suffix, everything else is a ``gauge``.  Metric and label
names are emitted in sorted order, so the exposition — like the series —
is byte-deterministic for identical runs.

:func:`parse_exposition` is a small well-formedness checker (the CI
telemetry-smoke job runs it over ``repro serve`` output): HELP/TYPE
comment syntax, sample-line grammar, TYPE-before-sample ordering, and
duplicate series detection.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.telemetry.sampler import TelemetrySampler, _entity_key, _row_key

#: Content-Type for HTTP exposition (the /metrics endpoint sends this).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Every metric name is prefixed with this namespace.
PREFIX = "repro"

#: Cumulative sample metrics: exposed as Prometheus counters (name gains
#: the conventional ``_total`` suffix).
COUNTER_METRICS = frozenset({
    "submitted", "served", "rejected", "dropped", "lost_to_crash",
    "slo_violations", "gc_runs", "gc_migrated_pages",
    "nand_reads", "nand_writes", "nand_erases",
    "host_write_bytes", "host_read_bytes",
    "flash_write_bytes", "flash_read_bytes",
    "app_write_bytes", "app_read_bytes",
    "count",
})

_HELP_FOR = {
    "up": "1 while the device shard is powered, 0 inside an outage window",
    "queue_backlog": "queued requests across the device's tenants",
    "queue_depth": "requests queued for the tenant",
    "inflight": "requests in flight at the sample instant",
    "free_pages": "FTL free-page estimate",
    "log_utilization": "device DRAM write-log occupancy (0..1)",
    "write_amplification": "cumulative host bytes per app byte written",
    "latency_p50_ns": "p50 latency (virtual ns)",
    "latency_p95_ns": "p95 latency (virtual ns)",
    "latency_p99_ns": "p99 latency (virtual ns)",
    "mean_ns": "mean latency (virtual ns)",
}

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>NaN|[+-]?Inf|[+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)"
    r"(?: (?P<ts>[+-]?[0-9]+))?$"
)


def _metric_name(scope: str, metric: str) -> str:
    name = f"{PREFIX}_{scope}_{metric}"
    if metric in COUNTER_METRICS:
        name += "_total"
    return name


def _labels_of(row: Dict) -> List[Tuple[str, str]]:
    labels: List[Tuple[str, str]] = []
    if row.get("device") is not None:
        labels.append(("device", str(row["device"])))
    if row.get("tenant") is not None:
        labels.append(("tenant", row["tenant"]))
    if row.get("layer") is not None:
        labels.append(("layer", row["layer"]))
    return labels


def _fmt_labels(labels: Sequence[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}={json.dumps(v)}' for k, v in labels
    )
    return "{" + body + "}"


def _fmt_value(v: Union[int, float]) -> str:
    if isinstance(v, bool):  # pragma: no cover - schema forbids bools
        return str(int(v))
    if isinstance(v, int):
        return str(v)
    return repr(float(v))


def render_prometheus(
    source: Union[TelemetrySampler, Sequence[Dict]],
    info: Optional[Dict] = None,
) -> str:
    """Render the latest snapshot as Prometheus text exposition.

    ``source`` is a sampler (its :meth:`latest` snapshot is used) or a
    series row list, which is reduced to the newest row per entity
    (Prometheus forbids duplicate series).  ``info`` key/values become
    labels on a ``repro_run_info`` pseudo-metric, the idiomatic way to
    expose run-level metadata (fs, scheduler, seed) to queries.
    """
    if isinstance(source, TelemetrySampler):
        rows = source.latest()
    else:
        newest: Dict[tuple, Dict] = {}
        for row in sorted(source, key=_row_key):
            newest[_entity_key(row)] = row
        rows = [newest[k] for k in sorted(newest)]
    if isinstance(source, TelemetrySampler) and info is None:
        info = {
            k: source.meta[k] for k in sorted(source.meta)
            if isinstance(source.meta[k], (str, int, float))
        }
    # metric name -> (scope, metric, [(labels, value)])
    families: Dict[str, List[Tuple[str, str]]] = {}
    kinds: Dict[str, Tuple[str, str]] = {}
    for row in rows:
        labels = _fmt_labels(_labels_of(row))
        metrics = row["metrics"]
        for metric in sorted(metrics):
            name = _metric_name(row["scope"], metric)
            kinds[name] = (row["scope"], metric)
            families.setdefault(name, []).append(
                (labels, _fmt_value(metrics[metric]))
            )
    out: List[str] = []
    if info:
        labels = _fmt_labels(
            [(k, str(info[k])) for k in sorted(info)]
        )
        out.append(
            f"# HELP {PREFIX}_run_info run-level metadata as labels"
        )
        out.append(f"# TYPE {PREFIX}_run_info gauge")
        out.append(f"{PREFIX}_run_info{labels} 1")
    for name in sorted(families):
        scope, metric = kinds[name]
        help_text = _HELP_FOR.get(
            metric, f"{scope}-scope sample metric '{metric}'"
        )
        kind = "counter" if metric in COUNTER_METRICS else "gauge"
        out.append(f"# HELP {name} {help_text}")
        out.append(f"# TYPE {name} {kind}")
        for labels, value in families[name]:
            out.append(f"{name}{labels} {value}")
    return "\n".join(out) + "\n"


def parse_exposition(text: str) -> List[str]:
    """Check Prometheus text-format well-formedness; returns problems."""
    problems: List[str] = []
    typed: Dict[str, str] = {}
    seen_sample_of: Dict[str, bool] = {}
    series: Dict[Tuple[str, str], int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                if line.startswith(("# HELP", "# TYPE")):
                    problems.append(f"line {lineno}: malformed comment")
                continue  # free-form comments are legal
            kind, name = parts[1], parts[2]
            if not _NAME_RE.match(name):
                problems.append(
                    f"line {lineno}: invalid metric name {name!r}"
                )
                continue
            if kind == "TYPE":
                declared = parts[3].strip() if len(parts) > 3 else ""
                if declared not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    problems.append(
                        f"line {lineno}: unknown TYPE {declared!r}"
                    )
                if name in typed:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for {name}"
                    )
                elif seen_sample_of.get(name):
                    problems.append(
                        f"line {lineno}: TYPE for {name} after its samples"
                    )
                typed[name] = declared
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {lineno}: malformed sample line")
            continue
        name = m.group("name")
        seen_sample_of[name] = True
        labels = m.group("labels") or ""
        if labels:
            for pair in _split_labels(labels):
                if not _LABEL_RE.match(pair):
                    problems.append(
                        f"line {lineno}: malformed label {pair!r}"
                    )
        key = (name, labels)
        if key in series:
            problems.append(
                f"line {lineno}: duplicate series {name}{{{labels}}} "
                f"(first at line {series[key]})"
            )
        else:
            series[key] = lineno
    if not series:
        problems.append("no sample lines")
    return problems


def _split_labels(body: str) -> List[str]:
    """Split a label body on commas outside quoted values."""
    out: List[str] = []
    depth_quote = False
    cur: List[str] = []
    i = 0
    while i < len(body):
        c = body[i]
        if c == "\\" and depth_quote and i + 1 < len(body):
            cur.append(body[i:i + 2])
            i += 2
            continue
        if c == '"':
            depth_quote = not depth_quote
            cur.append(c)
        elif c == "," and not depth_quote:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(c)
        i += 1
    if cur:
        out.append("".join(cur))
    return out
