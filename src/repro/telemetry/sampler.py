"""Deterministic virtual-time metric sampling for the serving layer.

A :class:`TelemetrySampler` turns the serving stack's live state into a
**time series on the virtual clock**: at every boundary ``t0 + k *
sample_every_ns`` it reads a set of gauges and counters — per-tenant
queue depth, in-flight ops and SLO/rejection counters from
:mod:`repro.cluster`; per-device GC activity, free blocks, log-buffer
occupancy and traffic from the device stack's public gauge surface
(:meth:`repro.ssd.device.MSSD.gauges`) — and records one row per scope.

Sampling is **pull-based and deterministic**: nothing in the device hot
path pushes samples; the serving loop calls :meth:`advance` at each
dispatch decision instant and the sampler emits rows for every boundary
crossed since the last call, stamped with the boundary's virtual time.
Values are therefore "state as of the first dispatch decision at or
after the boundary" — an explicit, replayable discipline (two identical
seeded runs cross identical boundaries in identical states and produce
byte-identical series).

Device crash/recovery shows up as gauge transitions: boundaries that
fall inside an outage window ``[t_down, t_up)`` are emitted with
``up = 0`` (see :meth:`mark_outage`), so a `repro serve --fault` run
renders as ``up 1 → 0 → 1`` with the post-recovery gauge step.

Instrumentation follows the :mod:`repro.trace.tracer` zero-cost-when-off
discipline: a module-level :data:`ENABLED` flag is flipped only while a
sampler is activated, every serve-loop hook site guards on it first, and
the pinned ``repro bench --check`` suite never activates one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.stats.traffic import Direction, TrafficStats

#: Master switch read by the serve-loop hook sites.  True only while a
#: sampler is activated; flip it via :func:`activate` / :func:`deactivate`.
ENABLED = False

#: The currently active sampler (``None`` when telemetry is off).
_ACTIVE: Optional["TelemetrySampler"] = None

#: Row scopes, in deterministic sort order.
SCOPES = ("device", "tenant", "layer")

_SCOPE_RANK = {name: i for i, name in enumerate(SCOPES)}

#: LatencyRecorder key aggregating every op (mirrors cluster.result).
_ALL_OPS = "all"


def activate(sampler: "TelemetrySampler") -> None:
    global ENABLED, _ACTIVE
    _ACTIVE = sampler
    ENABLED = True


def deactivate() -> None:
    global ENABLED, _ACTIVE
    ENABLED = False
    _ACTIVE = None


def active() -> Optional["TelemetrySampler"]:
    return _ACTIVE


class _DeviceProbe:
    """Everything the sampler reads about one device shard."""

    __slots__ = ("device", "gauges", "queue", "tenants", "stats", "time_of")

    def __init__(
        self,
        device: int,
        gauges: Callable[[], Dict[str, float]],
        queue,                      # cluster.sched.AdmissionQueue
        tenants: List,              # cluster.serve._TenantRT runtime states
        stats: TrafficStats,
        time_of: Callable[[int], float],
    ) -> None:
        self.device = device
        self.gauges = gauges
        self.queue = queue
        self.tenants = list(tenants)
        self.stats = stats
        self.time_of = time_of


class TelemetrySampler:
    """Samples the serving stack at fixed virtual-clock intervals.

    ``meta`` is echoed into the series header (fs, scheduler, seed, …)
    so a series file is interpretable on its own.
    """

    def __init__(
        self,
        t0: float,
        sample_every_ns: float,
        meta: Optional[Dict] = None,
    ) -> None:
        if sample_every_ns <= 0:
            raise ValueError("sample_every_ns must be positive")
        self.t0 = t0
        self.sample_every_ns = float(sample_every_ns)
        self.meta: Dict = dict(meta or {})
        self.rows: List[Dict] = []
        self._probes: Dict[int, _DeviceProbe] = {}
        self._next_k: Dict[int, int] = {}
        self._up: Dict[int, int] = {}
        self._outages: List[Dict] = []
        self._t_end: Optional[float] = None

    @classmethod
    def merged(
        cls,
        t0: float,
        sample_every_ns: float,
        meta: Optional[Dict],
        rows: List[Dict],
        outages: List[Dict],
    ) -> "TelemetrySampler":
        """Reassemble a sampler from per-shard fragments.

        The process-parallel serving path samples each device in the
        worker that owns it; the reducer concatenates the per-worker
        ``rows`` and ``outages`` (each device's series produced by
        exactly one worker) and rebuilds a sampler equivalent to the
        serial run's.  Row order does not matter — every exported view
        goes through :meth:`sorted_rows` — but the caller must pass
        ``outages`` in the serial emission order (populated faulted
        devices by index, then tenant-less ones).  Call
        :meth:`finalize` afterwards to close the series at the global
        run end.
        """
        sampler = cls(t0, sample_every_ns, meta)
        sampler.rows = list(rows)
        sampler._outages = list(outages)
        return sampler

    # ------------------------------------------------------------------ #
    # registration (setup phase)
    # ------------------------------------------------------------------ #

    def add_device(
        self,
        device: int,
        gauges: Callable[[], Dict[str, float]],
        queue,
        tenants: List,
        stats: TrafficStats,
        time_of: Callable[[int], float],
    ) -> None:
        """Register one device shard's gauge sources."""
        if device in self._probes:
            raise ValueError(f"device {device} registered twice")
        self._probes[device] = _DeviceProbe(
            device, gauges, queue, tenants, stats, time_of
        )
        self._next_k[device] = 0
        self._up[device] = 1

    # ------------------------------------------------------------------ #
    # sampling (measured phase)
    # ------------------------------------------------------------------ #

    def advance(self, device: int, t: float) -> None:
        """Emit rows for every boundary ``<= t`` not yet sampled on
        ``device``.  Called by the serving loop at dispatch decisions
        and at drain end; idempotent and monotonic per device."""
        self._emit_until(device, t, inclusive=True)

    def mark_outage(self, device: int, t_down: float, t_up: float) -> None:
        """Record a power-cycle: boundaries inside ``[t_down, t_up)``
        sample with ``up = 0`` (gauges read post-recovery), and the
        window is echoed in the series header."""
        self._up[device] = 0
        self._emit_until(device, t_up, inclusive=False)
        self._up[device] = 1
        self._outages.append(
            {"device": device, "t_down_ns": t_down, "t_up_ns": t_up}
        )

    def _emit_until(self, device: int, t: float, inclusive: bool) -> None:
        probe = self._probes[device]
        k = self._next_k[device]
        interval = self.sample_every_ns
        while True:
            tk = self.t0 + k * interval
            if (tk > t) if inclusive else (tk >= t):
                break
            self._sample(probe, tk)
            k += 1
        self._next_k[device] = k

    def _sample(self, probe: _DeviceProbe, tk: float) -> None:
        device = probe.device
        stats = probe.stats
        metrics: Dict[str, float] = {
            "up": self._up[device],
            "queue_backlog": sum(len(tn.queue) for tn in probe.tenants),
            "inflight": sum(
                1 for s in probe.queue.slots if s.busy_until > tk
            ),
            "host_write_bytes": stats.host_ssd_bytes(
                direction=Direction.WRITE
            ),
            "host_read_bytes": stats.host_ssd_bytes(
                direction=Direction.READ
            ),
            "flash_write_bytes": stats.flash_bytes(
                direction=Direction.WRITE
            ),
            "flash_read_bytes": stats.flash_bytes(direction=Direction.READ),
            "app_write_bytes": stats.app.get(Direction.WRITE, 0),
            "app_read_bytes": stats.app.get(Direction.READ, 0),
        }
        app_w = metrics["app_write_bytes"]
        if app_w:
            metrics["write_amplification"] = (
                metrics["host_write_bytes"] / app_w
            )
        gauges = probe.gauges()
        for name in sorted(gauges):
            metrics[name] = gauges[name]
        self.rows.append({
            "t_ns": tk,
            "scope": "device",
            "device": device,
            "metrics": metrics,
        })
        for tn in probe.tenants:
            self.rows.append({
                "t_ns": tk,
                "scope": "tenant",
                "device": device,
                "tenant": tn.spec.name,
                "metrics": self._tenant_metrics(probe, tn, tk),
            })

    @staticmethod
    def _tenant_metrics(probe: _DeviceProbe, tn, tk: float) -> Dict:
        metrics = {
            "queue_depth": len(tn.queue),
            "inflight": 1 if probe.time_of(tn.tid) > tk else 0,
            "submitted": tn.submitted(),
            "served": tn.served,
            "rejected": tn.rejected,
            "dropped": tn.dropped,
            "lost_to_crash": tn.lost_to_crash,
            "slo_violations": tn.slo_violations,
        }
        summary = tn.latency.summary(_ALL_OPS)
        if summary["count"]:
            metrics["latency_p50_ns"] = summary["p50"]
            metrics["latency_p95_ns"] = summary["p95"]
            metrics["latency_p99_ns"] = summary["p99"]
        return metrics

    # ------------------------------------------------------------------ #
    # finalization
    # ------------------------------------------------------------------ #

    def finalize(self, t_end: float, metrics_registry=None) -> None:
        """Close the series at ``t_end``.

        When the run carried a tracer, its
        :class:`~repro.trace.metrics.MetricsRegistry` is bridged into
        per-layer latency rows: the ``span.<layer>.<op>`` histograms of
        each layer are merged (deterministically, in sorted name order)
        and emitted as one cumulative end-of-run quantile row per layer.
        """
        self._t_end = t_end
        if metrics_registry is None:
            return
        # Local import keeps repro.telemetry importable without a tracer.
        from repro.trace.metrics import LogHistogram

        merged: Dict[str, LogHistogram] = {}
        for name in metrics_registry.histogram_names("span."):
            parts = name.split(".")
            if len(parts) < 3:
                continue
            layer = parts[1]
            h = merged.get(layer)
            if h is None:
                h = merged[layer] = LogHistogram()
            h.merge(metrics_registry.get(name))
        for layer in sorted(merged):
            h = merged[layer]
            if not h.count:
                continue
            self.rows.append({
                "t_ns": t_end,
                "scope": "layer",
                "layer": layer,
                "metrics": {
                    "count": h.count,
                    "mean_ns": h.mean,
                    "latency_p50_ns": h.percentile(50),
                    "latency_p95_ns": h.percentile(95),
                    "latency_p99_ns": h.percentile(99),
                },
            })

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    @property
    def outages(self) -> List[Dict]:
        return list(self._outages)

    @property
    def t_end(self) -> Optional[float]:
        return self._t_end

    def sorted_rows(self) -> List[Dict]:
        """Rows in deterministic (time, scope, device, tenant, layer)
        order — devices drain sequentially, so append order interleaves
        shard timelines; the sort restores one global timeline."""
        return sorted(self.rows, key=_row_key)

    def latest(self) -> List[Dict]:
        """The newest row per (scope, device, tenant, layer) entity —
        the snapshot the Prometheus exposition renders."""
        newest: Dict[tuple, Dict] = {}
        for row in self.sorted_rows():
            newest[_entity_key(row)] = row
        return [newest[k] for k in sorted(newest)]


def _row_key(row: Dict) -> tuple:
    return (
        row["t_ns"],
        _SCOPE_RANK.get(row["scope"], len(SCOPES)),
        row.get("device") if row.get("device") is not None else -1,
        row.get("tenant") or "",
        row.get("layer") or "",
    )


def _entity_key(row: Dict) -> tuple:
    return (
        _SCOPE_RANK.get(row["scope"], len(SCOPES)),
        row.get("device") if row.get("device") is not None else -1,
        row.get("tenant") or "",
        row.get("layer") or "",
    )
