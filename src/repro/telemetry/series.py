"""The ``repro.telemetry.series/v1`` document: JSONL export + validator.

A series file is newline-delimited JSON.  The first line is a header::

    {"schema": "repro.telemetry.series/v1", "sample_every_ns": ...,
     "t0_ns": ..., "t_end_ns": ..., "outages": [...], ...meta}

followed by one sample row per line, sorted by
``(t_ns, scope, device, tenant, layer)``::

    {"t_ns": ..., "scope": "device", "device": 0, "metrics": {...}}
    {"t_ns": ..., "scope": "tenant", "device": 0, "tenant": "a",
     "metrics": {...}}
    {"t_ns": ..., "scope": "layer", "layer": "ftl", "metrics": {...}}

Everything is a pure function of the run's (seed, config): identical
seeded invocations produce **byte-identical** series files — the CI
telemetry-smoke job ``cmp``\\ s two runs, and
``tests/test_telemetry.py`` pins a faulted scenario against a golden
fixture exactly like ``tests/golden/cluster_run.json``.

:func:`validate_series` is the schema gate, in the same style as
``repro.cluster.result.validate_cluster_run``.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Sequence, Union

from repro.telemetry.sampler import SCOPES, TelemetrySampler

SCHEMA = "repro.telemetry.series/v1"


def to_lines(sampler: TelemetrySampler) -> List[str]:
    """Serialize ``sampler`` as the series/v1 JSONL line list."""
    header: Dict = {
        "schema": SCHEMA,
        "sample_every_ns": sampler.sample_every_ns,
        "t0_ns": sampler.t0,
        "t_end_ns": sampler.t_end,
        "outages": sampler.outages,
    }
    for key in sorted(sampler.meta):
        header.setdefault(key, sampler.meta[key])
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps(row, sort_keys=True) for row in sampler.sorted_rows()
    )
    return lines


def write_series(sampler: TelemetrySampler, path: str) -> int:
    """Write the series to ``path``; returns the number of sample rows."""
    lines = to_lines(sampler)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    return len(lines) - 1


def load_series(path: str) -> List[Dict]:
    """Parse a series file into [header, row, row, ...]."""
    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


def _is_num(v) -> bool:
    return (
        isinstance(v, (int, float))
        and not isinstance(v, bool)
        and math.isfinite(v)
    )


def _check_header(header: Dict, problems: List[str]) -> None:
    if header.get("schema") != SCHEMA:
        problems.append(
            f"header schema is {header.get('schema')!r}, expected {SCHEMA!r}"
        )
    for key in ("sample_every_ns", "t0_ns"):
        if not _is_num(header.get(key)):
            problems.append(f"header.{key} must be a finite number")
    if _is_num(header.get("sample_every_ns")) \
            and header["sample_every_ns"] <= 0:
        problems.append("header.sample_every_ns must be positive")
    t_end = header.get("t_end_ns")
    if t_end is not None and not _is_num(t_end):
        problems.append("header.t_end_ns must be a number or null")
    outages = header.get("outages")
    if not isinstance(outages, list):
        problems.append("header.outages must be a list")
        return
    for i, o in enumerate(outages):
        if not isinstance(o, dict):
            problems.append(f"header.outages[{i}] is not an object")
            continue
        for key in ("device", "t_down_ns", "t_up_ns"):
            if not _is_num(o.get(key)):
                problems.append(
                    f"header.outages[{i}].{key} must be a number"
                )
        if _is_num(o.get("t_down_ns")) and _is_num(o.get("t_up_ns")) \
                and o["t_up_ns"] < o["t_down_ns"]:
            problems.append(
                f"header.outages[{i}]: t_up_ns precedes t_down_ns"
            )


def _check_row(row: Dict, i: int, problems: List[str]) -> None:
    where = f"row[{i}]"
    if not _is_num(row.get("t_ns")):
        problems.append(f"{where}.t_ns must be a finite number")
    scope = row.get("scope")
    if scope not in SCOPES:
        problems.append(
            f"{where}.scope must be one of {', '.join(SCOPES)}"
        )
        return
    if scope in ("device", "tenant"):
        dev = row.get("device")
        if not isinstance(dev, int) or isinstance(dev, bool) or dev < 0:
            problems.append(f"{where}.device must be a non-negative int")
    if scope == "tenant" and not isinstance(row.get("tenant"), str):
        problems.append(f"{where}.tenant must be a string")
    if scope == "layer" and not isinstance(row.get("layer"), str):
        problems.append(f"{where}.layer must be a string")
    metrics = row.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append(f"{where}.metrics must be a non-empty object")
        return
    for name in sorted(metrics):
        if not isinstance(name, str) or not name:
            problems.append(f"{where}.metrics has a non-string key")
        elif not _is_num(metrics[name]):
            problems.append(
                f"{where}.metrics[{name!r}] must be a finite number"
            )
    if scope == "device" and "up" in metrics \
            and metrics["up"] not in (0, 1):
        problems.append(f"{where}.metrics['up'] must be 0 or 1")


def validate_series(
    doc: Union[Sequence[Dict], Sequence[str]],
) -> List[str]:
    """Return a list of schema problems (empty = valid).

    Accepts either parsed objects (header first) or raw JSONL lines.
    """
    problems: List[str] = []
    records: List[Dict] = []
    for i, item in enumerate(doc):
        if isinstance(item, str):
            try:
                item = json.loads(item)
            except ValueError:
                problems.append(f"line {i + 1} is not valid JSON")
                continue
        records.append(item)
    if not records:
        return ["document is empty (no header line)"]
    header = records[0]
    if not isinstance(header, dict):
        return ["header line is not an object"]
    _check_header(header, problems)
    prev_key = None
    for i, row in enumerate(records[1:]):
        if not isinstance(row, dict):
            problems.append(f"row[{i}] is not an object")
            continue
        _check_row(row, i, problems)
        if _is_num(row.get("t_ns")):
            key = (
                row["t_ns"],
                SCOPES.index(row["scope"]) if row.get("scope") in SCOPES
                else len(SCOPES),
                row.get("device") if row.get("device") is not None else -1,
                row.get("tenant") or "",
                row.get("layer") or "",
            )
            if prev_key is not None and key < prev_key:
                problems.append(f"row[{i}] out of order")
            if prev_key is not None and key == prev_key:
                problems.append(f"row[{i}] duplicates the previous entity")
            prev_key = key
    return problems
