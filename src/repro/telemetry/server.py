"""A thin stdlib HTTP endpoint: ``/metrics`` + ``/healthz``.

``repro serve --listen PORT`` exposes the run's telemetry snapshot in
Prometheus text format the way a long-running daemon would — the
serve-side face of ROADMAP item 5.  Zero dependencies: this is
``http.server`` with two routes.

The server is **host-side plumbing outside the simulation**: it never
touches the virtual clock, and nothing in the deterministic result or
series depends on it.  Programmatic use::

    srv = make_server(lambda: exposition_text, port=0)
    port = srv.server_address[1]
    ... urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics") ...
    srv.shutdown(); srv.server_close()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.telemetry.prom import CONTENT_TYPE


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry/1.0"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.server.render_metrics().encode("utf-8")
            self._reply(200, CONTENT_TYPE, body)
        elif path == "/healthz":
            body = json.dumps(
                {"status": "ok", "endpoints": ["/metrics", "/healthz"]},
                sort_keys=True,
            ).encode("utf-8")
            self._reply(200, "application/json; charset=utf-8", body)
        else:
            self._reply(
                404, "text/plain; charset=utf-8",
                b"not found; try /metrics or /healthz\n",
            )

    def _reply(self, code: int, ctype: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:
        """Quiet: access logs would interleave with CLI output."""


class TelemetryServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the exposition callable."""

    daemon_threads = True

    def __init__(self, addr, render_metrics: Callable[[], str]) -> None:
        super().__init__(addr, _Handler)
        self.render_metrics = render_metrics


def make_server(
    render_metrics: Callable[[], str],
    port: int = 0,
    host: str = "127.0.0.1",
) -> TelemetryServer:
    """Bind (not yet serving) — call ``serve_forever`` or use
    :func:`serve_in_thread`."""
    return TelemetryServer((host, port), render_metrics)


def serve_in_thread(server: TelemetryServer) -> threading.Thread:
    """Run ``server`` on a daemon thread (tests, embedding)."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-telemetry", daemon=True
    )
    thread.start()
    return thread
