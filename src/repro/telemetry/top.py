"""``repro top``: a terminal report over a cluster run + its telemetry.

Renders the operator's five-second view of a serving run from the
``repro.cluster.run/v1|v2`` result document, plus — when a
``repro.telemetry.series/v1`` file is supplied — the time dimension the
result document flattens away:

* **top-N tenants** by p99 latency and by SLO violations,
* **per-device utilization timelines** (queue backlog, in-flight slots,
  free pages, log occupancy) as sparklines on the virtual clock,
* **GC storms**: sampling intervals where the FTL ran garbage
  collection, ranked by migrated pages,
* **outage windows** (crash + recovery) with the ``up`` transitions.

Everything is plain string rendering over already-deterministic inputs;
two identical runs render identical reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: LatencyRecorder aggregate key (mirrors repro.cluster.result.ALL_OPS).
_ALL_OPS = "all"

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render ``values`` as a fixed-width unicode sparkline.

    Longer series are bucketed (max per bucket) down to ``width``.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        bucketed: List[float] = []
        n = len(vals)
        for b in range(width):
            lo = b * n // width
            hi = max(lo + 1, (b + 1) * n // width)
            bucketed.append(max(vals[lo:hi]))
        vals = bucketed
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _SPARK[0] * len(vals)
    scale = (len(_SPARK) - 1) / (hi - lo)
    return "".join(_SPARK[int((v - lo) * scale)] for v in vals)


def _fmt_us(ns: Optional[float]) -> str:
    return f"{ns / 1000:.1f}" if isinstance(ns, (int, float)) else "-"


def _fmt_ms(ns: float) -> str:
    return f"{ns / 1e6:.2f}ms"


def _tenant_rows(doc: Dict) -> List[Dict]:
    rows = []
    for t in doc.get("tenants", ()):
        lat = (t.get("latency") or {}).get(_ALL_OPS) or {}
        rows.append({
            "name": t["spec"]["name"],
            "device": t["device"],
            "ops": t["ops"],
            "rejected": t["rejected"],
            "slo_violations": t["slo_violations"],
            "p50": lat.get("p50"),
            "p95": lat.get("p95"),
            "p99": lat.get("p99"),
        })
    return rows


def _render_tenant_table(
    title: str, rows: List[Dict], out: List[str]
) -> None:
    out.append(title)
    out.append(
        f"  {'tenant':<12} {'dev':>3} {'ops':>6} {'rej':>5} {'slo!':>5} "
        f"{'p50 us':>9} {'p95 us':>9} {'p99 us':>9}"
    )
    for r in rows:
        out.append(
            f"  {r['name']:<12} {r['device']:>3} {r['ops']:>6} "
            f"{r['rejected']:>5} {r['slo_violations']:>5} "
            f"{_fmt_us(r['p50']):>9} {_fmt_us(r['p95']):>9} "
            f"{_fmt_us(r['p99']):>9}"
        )


def _device_series(
    records: Sequence[Dict],
) -> Dict[int, List[Tuple[float, Dict]]]:
    """Device-scope rows of a parsed series, keyed by device index."""
    out: Dict[int, List[Tuple[float, Dict]]] = {}
    for row in records:
        if isinstance(row, dict) and row.get("scope") == "device":
            out.setdefault(row["device"], []).append(
                (row["t_ns"], row["metrics"])
            )
    for dev in sorted(out):
        out[dev].sort(key=lambda p: p[0])
    return out


def _gc_storms(
    points: List[Tuple[float, Dict]],
) -> List[Tuple[float, float, float]]:
    """(t_ns, gc_run_delta, migrated_delta) per interval with GC work."""
    storms = []
    prev_runs = prev_migrated = 0.0
    for t_ns, metrics in points:
        runs = metrics.get("gc_runs", 0)
        migrated = metrics.get("gc_migrated_pages", 0)
        d_runs = runs - prev_runs
        d_migrated = migrated - prev_migrated
        if d_runs > 0:
            storms.append((t_ns, d_runs, d_migrated))
        prev_runs, prev_migrated = runs, migrated
    return storms


def render_top(
    doc: Dict,
    series: Optional[Sequence[Dict]] = None,
    top_n: int = 5,
) -> str:
    """Render the report; ``series`` is the parsed JSONL record list
    (header first) from :func:`repro.telemetry.series.load_series`."""
    out: List[str] = []
    sched = (doc.get("scheduler") or {}).get("policy", "?")
    out.append(
        f"repro top — {doc.get('fs', '?')} x{doc.get('n_devices', '?')} "
        f"({sched}), {doc.get('ops', 0)} ops in "
        f"{doc.get('elapsed_s', 0.0) * 1000:.2f} ms simulated, "
        f"{doc.get('slo_violations', 0)} SLO violations, "
        f"{doc.get('rejected', 0)} rejected"
        + (
            f", {doc['lost_to_crash']} lost to crash"
            if doc.get("lost_to_crash") else ""
        )
    )
    tenants = _tenant_rows(doc)
    by_p99 = sorted(
        tenants, key=lambda r: (-(r["p99"] or 0.0), r["name"])
    )[:top_n]
    _render_tenant_table(f"\ntop {len(by_p99)} tenants by p99:", by_p99, out)
    violators = [t for t in tenants if t["slo_violations"]]
    if violators:
        by_slo = sorted(
            violators, key=lambda r: (-r["slo_violations"], r["name"])
        )[:top_n]
        _render_tenant_table(
            f"\ntop {len(by_slo)} tenants by SLO violations:", by_slo, out
        )
    if series:
        header = series[0] if isinstance(series[0], dict) else {}
        devices = _device_series(series[1:])
        if devices:
            out.append("\nper-device utilization timeline "
                       f"({len(next(iter(devices.values())))} samples):")
        for dev in sorted(devices):
            points = devices[dev]
            metrics_of = lambda key: [m.get(key, 0) for _, m in points]
            backlog = metrics_of("queue_backlog")
            inflight = metrics_of("inflight")
            free = metrics_of("free_pages")
            logu = metrics_of("log_utilization")
            out.append(f"  dev{dev} backlog  {sparkline(backlog)} "
                       f"(max {max(backlog):g})" if backlog else "")
            out.append(f"  dev{dev} inflight {sparkline(inflight)} "
                       f"(max {max(inflight):g})" if inflight else "")
            if any(free):
                out.append(f"  dev{dev} free pg  {sparkline(free)} "
                           f"(min {min(free):g})")
            if any(logu):
                out.append(f"  dev{dev} log occ  {sparkline(logu)} "
                           f"(max {max(logu):.2f})")
        storms_any = False
        for dev in sorted(devices):
            storms = _gc_storms(devices[dev])
            if not storms:
                continue
            if not storms_any:
                out.append("\nGC storms (sampling intervals with GC runs):")
                storms_any = True
            worst = sorted(
                storms, key=lambda s: (-s[2], -s[1], s[0])
            )[:top_n]
            total_runs = sum(s[1] for s in storms)
            out.append(
                f"  dev{dev}: {len(storms)} interval(s), "
                f"{total_runs:g} GC run(s); worst: " + ", ".join(
                    f"+{s[1]:g} runs/{s[2]:g} pages @ {_fmt_ms(s[0])}"
                    for s in worst
                )
            )
        if not storms_any and devices:
            out.append("\nGC storms: none (no GC activity sampled)")
        outages = header.get("outages") or []
        if outages:
            out.append("\noutages (up 1 → 0 → 1):")
            for o in outages:
                out.append(
                    f"  dev{o['device']} down {_fmt_ms(o['t_down_ns'])} → "
                    f"up {_fmt_ms(o['t_up_ns'])} "
                    f"(+{_fmt_ms(o['t_up_ns'] - o['t_down_ns'])})"
                )
    else:
        out.append(
            "\n(no telemetry series supplied — rerun with "
            "`repro serve --telemetry-out series.jsonl` and pass "
            "`--series series.jsonl` for timelines, GC storms and outages)"
        )
    return "\n".join(line for line in out if line is not None)
