"""Cross-layer span tracing on virtual-clock timelines.

See :mod:`repro.trace.tracer` for the span model and activation guard,
:mod:`repro.trace.export` for JSONL / Chrome trace_event output,
:mod:`repro.trace.report` for latency attribution, and
:mod:`repro.trace.metrics` for log-scaled histograms.
"""

from repro.trace.metrics import LogHistogram, MetricsRegistry
from repro.trace.tracer import (
    Span,
    Tracer,
    activate,
    activated,
    active,
    deactivate,
)

__all__ = [
    "LogHistogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "activate",
    "activated",
    "active",
    "deactivate",
]
