"""Trace exporters: deterministic JSONL and Chrome ``trace_event`` JSON.

Both formats serialise with ``sort_keys=True`` and fixed separators, and
spans carry sequential ids emitted in completion order, so two runs with
identical seeds produce byte-identical output.

JSONL schema (one object per line):

- ``{"type": "meta", ...}`` — first line: format version, workload/fs
  labels, thread count.
- ``{"type": "span", "id": int, "parent": int, "tid": int, "layer": str,
  "op": str, "ts": float, "dur": float, "lane"?: int, "attrs"?: {...},
  "waits"?: {resource: ns}}`` — ``ts``/``dur`` in virtual nanoseconds;
  ``parent`` is 0 for roots; ``lane`` 1 marks background device work.
- ``{"type": "event", "tid": int, "ts": float, "layer": str,
  "name": str, "parent": int, "attrs"?: {...}}``

Chrome format: ``{"traceEvents": [...], "displayTimeUnit": "ns"}`` with
"X" complete events (``ts``/``dur`` in microseconds, as the format
requires), "i" instant events, and "M" metadata naming one pid per
simulated thread and one tid per lane (0 = sync path, 1 = background
device work).  Loadable in Perfetto / chrome://tracing.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.trace.tracer import LANE_BACKGROUND, LANE_SYNC, Tracer

JSONL_VERSION = 1

#: Keys required on every Chrome event we emit, per the trace_event spec.
_CHROME_REQUIRED = ("ph", "pid", "tid", "ts", "name")


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def to_jsonl(tracer: Tracer, meta: Optional[Dict] = None) -> str:
    """Serialise a tracer's spans and events as JSONL (returns the text)."""
    header = {"type": "meta", "version": JSONL_VERSION,
              "n_threads": tracer.clock.n_threads}
    if meta:
        header.update(meta)
    lines = [_dumps(header)]
    lines.extend(_dumps(s.to_dict()) for s in tracer.spans)
    lines.extend(_dumps(e.to_dict()) for e in tracer.events)
    return "\n".join(lines) + "\n"


def write_jsonl(tracer: Tracer, path, meta: Optional[Dict] = None) -> None:
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(to_jsonl(tracer, meta))


def to_chrome(tracer: Tracer, meta: Optional[Dict] = None) -> Dict:
    """Build a Chrome trace_event dict (one pid per simulated thread)."""
    events: List[Dict] = []
    threads = set()
    lanes: Dict[int, set] = {}
    for span in tracer.spans:
        threads.add(span.tid)
        lanes.setdefault(span.tid, set()).add(span.lane)
        ev = {
            "ph": "X",
            "pid": span.tid,
            "tid": span.lane,
            "ts": span.t_start / 1000.0,   # trace_event wants microseconds
            "dur": span.duration_ns / 1000.0,
            "name": f"{span.layer}.{span.op}",
            "cat": span.layer,
            "args": {"id": span.span_id, "parent": span.parent_id},
        }
        if span.attrs:
            ev["args"].update(span.attrs)
        if span.waits:
            ev["args"]["waits"] = span.waits
        events.append(ev)
    for pe in tracer.events:
        threads.add(pe.tid)
        lanes.setdefault(pe.tid, set()).add(LANE_SYNC)
        ev = {
            "ph": "i",
            "pid": pe.tid,
            "tid": LANE_SYNC,
            "ts": pe.t / 1000.0,
            "name": f"{pe.layer}.{pe.name}",
            "cat": pe.layer,
            "s": "t",  # thread-scoped instant
            "args": dict(pe.attrs) if pe.attrs else {},
        }
        events.append(ev)
    meta_events: List[Dict] = []
    for tid in sorted(threads):
        meta_events.append({
            "ph": "M", "pid": tid, "tid": 0, "ts": 0,
            "name": "process_name",
            "args": {"name": f"sim-thread-{tid}"},
        })
        for lane in sorted(lanes.get(tid, ())):
            label = "sync" if lane == LANE_SYNC else "background"
            meta_events.append({
                "ph": "M", "pid": tid, "tid": lane, "ts": 0,
                "name": "thread_name", "args": {"name": label},
            })
    out = {
        "traceEvents": meta_events + events,
        "displayTimeUnit": "ns",
    }
    if meta:
        out["otherData"] = meta
    return out


def to_chrome_json(tracer: Tracer, meta: Optional[Dict] = None) -> str:
    return _dumps(to_chrome(tracer, meta))


def write_chrome(tracer: Tracer, path, meta: Optional[Dict] = None) -> None:
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(to_chrome_json(tracer, meta))


def validate_chrome(doc) -> List[str]:
    """Check a parsed Chrome trace against the schema we document.

    Returns a list of problems (empty == valid).  Accepts either the
    dict form or raw JSON text.
    """
    problems: List[str] = []
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"]
    if not isinstance(doc, dict):
        return ["top level must be an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        problems.append("displayTimeUnit must be 'ms' or 'ns'")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in _CHROME_REQUIRED:
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "B", "E"):
            problems.append(f"event {i}: unknown phase {ph!r}")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            problems.append(f"event {i}: complete event needs numeric dur")
        if ph == "X" and isinstance(ev.get("dur"), (int, float)) \
                and ev["dur"] < 0:
            problems.append(f"event {i}: negative dur")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: ts must be numeric")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"event {i}: pid must be an int")
        lane = ev.get("tid")
        if lane not in (LANE_SYNC, LANE_BACKGROUND):
            problems.append(f"event {i}: tid (lane) must be 0 or 1")
        if "cat" in ev and not isinstance(ev["cat"], str):
            problems.append(f"event {i}: cat must be a string")
        args = ev.get("args")
        if args is not None:
            if not isinstance(args, dict):
                problems.append(f"event {i}: args must be an object")
            elif "waits" in args and not isinstance(args["waits"], dict):
                problems.append(f"event {i}: args.waits must be an object")
        if "s" in ev and ev["s"] not in ("t", "p", "g"):
            problems.append(
                f"event {i}: instant scope 's' must be 't', 'p' or 'g'"
            )
    other = doc.get("otherData")
    if other is not None and not isinstance(other, dict):
        problems.append("otherData must be an object")
    return problems


def validate_jsonl(text: str) -> List[str]:
    """Check JSONL trace text against the documented line schema."""
    problems: List[str] = []
    lines = text.splitlines()
    if not lines:
        return ["empty trace"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"line 1: not valid JSON: {exc}"]
    if header.get("type") != "meta":
        problems.append("line 1 must be the meta record")
    if header.get("version") != JSONL_VERSION:
        problems.append(
            f"line 1: version is {header.get('version')!r}, "
            f"expected {JSONL_VERSION}"
        )
    n_threads = header.get("n_threads")
    if not isinstance(n_threads, int) or isinstance(n_threads, bool) \
            or n_threads < 1:
        problems.append("line 1: n_threads must be a positive integer")
    seen_ids = set()
    for i, line in enumerate(lines[1:], start=2):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {i}: not valid JSON: {exc}")
            continue
        kind = rec.get("type")
        if kind == "span":
            for key in ("id", "parent", "tid", "layer", "op", "ts", "dur"):
                if key not in rec:
                    problems.append(f"line {i}: span missing {key!r}")
            if rec.get("id") in seen_ids:
                problems.append(f"line {i}: duplicate span id {rec['id']}")
            seen_ids.add(rec.get("id"))
            if isinstance(rec.get("dur"), (int, float)) and rec["dur"] < 0:
                problems.append(f"line {i}: negative dur")
        elif kind == "event":
            for key in ("tid", "ts", "layer", "name", "parent"):
                if key not in rec:
                    problems.append(f"line {i}: event missing {key!r}")
        else:
            problems.append(f"line {i}: unknown record type {kind!r}")
    return problems
