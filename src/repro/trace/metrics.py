"""Log-scaled histograms and a metrics registry for hot-path telemetry.

Raw sample lists (the :class:`~repro.stats.traffic.LatencyRecorder`
approach) are exact but cost O(n) memory and O(n log n) per percentile
query.  :class:`LogHistogram` trades a bounded relative error
(< ~2.8 % at the default 16 sub-buckets per octave) for O(1) memory per
distinct magnitude and O(buckets) queries — the right shape for per-span
duration tracking where a long run records millions of samples.

Buckets are derived from :func:`math.frexp`: a positive sample ``v`` with
``v = m * 2**e`` (``0.5 <= m < 1``) lands in bucket
``e * SUBBUCKETS + floor((m - 0.5) * 2 * SUBBUCKETS)``.  Everything here
is pure integer/float arithmetic on the sample values — no wall clock,
no randomness — so histograms are as deterministic as the virtual clock
feeding them.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

#: Sub-buckets per power of two.  16 gives a worst-case relative error of
#: 1/32 ≈ 3.1 % on the bucket representative (geometric midpoint).
SUBBUCKETS = 16


def bucket_index(value: float) -> int:
    """Map a positive finite value to its log-scaled bucket index."""
    m, e = math.frexp(value)
    # m in [0.5, 1); stretch to [0, SUBBUCKETS)
    sub = int((m - 0.5) * 2.0 * SUBBUCKETS)
    if sub == SUBBUCKETS:  # m rounded up to 1.0 by float fuzz
        sub = SUBBUCKETS - 1
    return e * SUBBUCKETS + sub


def bucket_bounds(index: int) -> Tuple[float, float]:
    """Inverse of :func:`bucket_index`: the [lo, hi) value range."""
    e, sub = divmod(index, SUBBUCKETS)
    scale = math.ldexp(1.0, e)  # 2**e
    lo = (0.5 + sub / (2.0 * SUBBUCKETS)) * scale
    hi = (0.5 + (sub + 1) / (2.0 * SUBBUCKETS)) * scale
    return lo, hi


class LogHistogram:
    """Exponentially-bucketed histogram with exact count/sum/min/max.

    Zero and negative samples are counted separately (``zero_count``);
    the log buckets only hold strictly positive values.
    """

    __slots__ = ("buckets", "count", "total", "min", "max", "zero_count")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.zero_count = 0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero_count += 1
            return
        idx = bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into this histogram (bucket-wise addition).

        Merging is exact — the merged histogram is identical to one that
        recorded both sample streams directly, regardless of order — so
        cross-registry aggregation (the telemetry layer bridge) stays
        deterministic.  Returns ``self`` for chaining.
        """
        self.count += other.count
        self.total += other.total
        if other.count:
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
        self.zero_count += other.zero_count
        for idx in sorted(other.buckets):
            self.buckets[idx] = self.buckets.get(idx, 0) + other.buckets[idx]
        return self

    def percentile(self, pct: float) -> float:
        """Approximate percentile from bucket representatives.

        Exact for min (pct → 0 with all-positive data hits the lowest
        bucket) within bucket resolution; zeros sort before all buckets.
        """
        if self.count == 0:
            return 0.0
        target = (pct / 100.0) * (self.count - 1)
        seen = self.zero_count
        if target < seen:
            return 0.0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if target < seen:
                lo, hi = bucket_bounds(idx)
                return math.sqrt(lo * hi)  # geometric midpoint
        return self.max

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "zero_count": self.zero_count,
            "buckets": {str(k): self.buckets[k] for k in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Named histograms and counters, created on first use."""

    def __init__(self) -> None:
        self._histograms: Dict[str, LogHistogram] = {}
        self._counters: Dict[str, int] = {}

    def histogram(self, name: str) -> LogHistogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = LogHistogram()
        return h

    def bump(self, name: str, by: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + by

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def histogram_names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._histograms if n.startswith(prefix))

    def get(self, name: str) -> Optional[LogHistogram]:
        return self._histograms.get(name)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one, name by name (sorted
        order; histogram merge is exact, counters add)."""
        for name in other.histogram_names():
            self.histogram(name).merge(other._histograms[name])
        for name in sorted(other._counters):
            self.bump(name, other._counters[name])
        return self

    def to_json(self) -> Dict:
        return {
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
            "counters": {
                name: self._counters[name] for name in sorted(self._counters)
            },
        }
