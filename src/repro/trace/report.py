"""Latency attribution over a span tree.

Two reports:

- :func:`breakdown` — per-op, per-layer **exclusive** time: for every
  root span (one per traced workload op), each span's self time is its
  duration minus the duration of its synchronous children, attributed to
  ``layer``; resource waits recorded on spans are broken out separately
  so queueing shows up as "wait:flash-ch3" rather than inflating the
  layer that happened to block.  Background spans (lane 1) overlap the
  foreground and are reported as a separate overlap column instead of
  being summed into op latency.

- :func:`critical_path` — for multi-threaded runs: walks the longest
  chain of synchronous spans from each root and aggregates which
  (layer, op) pairs dominate the slowest ops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.trace.tracer import LANE_SYNC, Span, Tracer


def _index(tracer: Tracer) -> Tuple[Dict[int, Span], Dict[int, List[Span]]]:
    by_id: Dict[int, Span] = {}
    children: Dict[int, List[Span]] = {}
    for span in tracer.spans:
        by_id[span.span_id] = span
        children.setdefault(span.parent_id, []).append(span)
    for kids in children.values():
        kids.sort(key=lambda s: (s.t_start, s.span_id))
    return by_id, children


class OpBreakdown:
    """Attributed latency for one op name across all its root spans."""

    def __init__(self, op: str) -> None:
        self.op = op
        self.count = 0
        self.total_ns = 0.0
        self.self_ns: Dict[str, float] = {}     # layer -> exclusive ns
        self.wait_ns: Dict[str, float] = {}     # resource -> queueing ns
        self.background_ns: Dict[str, float] = {}  # layer -> overlapped ns

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def attributed_ns(self) -> float:
        return sum(self.self_ns.values())

    def to_json(self) -> Dict:
        return {
            "op": self.op,
            "count": self.count,
            "total_ns": self.total_ns,
            "mean_ns": self.mean_ns,
            "self_ns": dict(sorted(self.self_ns.items())),
            "wait_ns": dict(sorted(self.wait_ns.items())),
            "background_ns": dict(sorted(self.background_ns.items())),
        }


def breakdown(tracer: Tracer) -> Dict[str, OpBreakdown]:
    """Per-op per-layer exclusive-time attribution (see module doc)."""
    _, children = _index(tracer)
    out: Dict[str, OpBreakdown] = {}

    def walk(span: Span, acc: OpBreakdown) -> None:
        kids = children.get(span.span_id, ())
        sync_child_ns = 0.0
        for kid in kids:
            if kid.lane == LANE_SYNC:
                sync_child_ns += kid.duration_ns
                walk(kid, acc)
            else:
                acc.background_ns[kid.layer] = (
                    acc.background_ns.get(kid.layer, 0.0) + kid.duration_ns
                )
                # background subtrees still attribute internally
                walk(kid, acc)
        if span.lane == LANE_SYNC:
            self_ns = span.duration_ns - sync_child_ns
            wait_total = 0.0
            if span.waits:
                for key, ns in span.waits.items():
                    wkey = f"wait:{key}"
                    acc.wait_ns[wkey] = acc.wait_ns.get(wkey, 0.0) + ns
                    wait_total += ns
            # keep self time and wait time disjoint: the wait happened
            # inside this span's exclusive window
            self_ns -= min(wait_total, self_ns)
            acc.self_ns[span.layer] = (
                acc.self_ns.get(span.layer, 0.0) + self_ns
            )

    for root in tracer.roots():
        acc = out.get(root.op)
        if acc is None:
            acc = out[root.op] = OpBreakdown(root.op)
        acc.count += 1
        acc.total_ns += root.duration_ns
        walk(root, acc)
    return out


class CriticalPathStep:
    __slots__ = ("layer", "op", "ns", "waits")

    def __init__(self, layer: str, op: str, ns: float,
                 waits: Optional[Dict[str, float]]) -> None:
        self.layer = layer
        self.op = op
        self.ns = ns
        self.waits = waits

    def to_json(self) -> Dict:
        out = {"layer": self.layer, "op": self.op, "ns": self.ns}
        if self.waits:
            out["waits"] = dict(sorted(self.waits.items()))
        return out


def critical_path(tracer: Tracer, root: Optional[Span] = None
                  ) -> List[CriticalPathStep]:
    """Longest synchronous-span chain from a root (slowest root if None).

    Each step reports the span's *exclusive* time along the chain (its
    duration minus the chosen child's), so the steps sum to the root
    duration.
    """
    _, children = _index(tracer)
    if root is None:
        roots = tracer.roots()
        if not roots:
            return []
        root = max(roots, key=lambda s: (s.duration_ns, -s.span_id))
    path: List[CriticalPathStep] = []
    span = root
    while True:
        kids = [k for k in children.get(span.span_id, ())
                if k.lane == LANE_SYNC]
        if not kids:
            path.append(CriticalPathStep(
                span.layer, span.op, span.duration_ns, span.waits))
            return path
        longest = max(kids, key=lambda s: (s.duration_ns, -s.span_id))
        path.append(CriticalPathStep(
            span.layer, span.op, span.duration_ns - longest.duration_ns,
            span.waits))
        span = longest


def critical_path_profile(tracer: Tracer, top: int = 10
                          ) -> List[Tuple[str, float, int]]:
    """Aggregate critical-path steps across all roots.

    Returns ``[(layer.op, total_ns_on_critical_paths, hits)]`` sorted by
    total time, for multi-threaded runs where no single op tells the
    story.
    """
    totals: Dict[str, float] = {}
    hits: Dict[str, int] = {}
    for root in tracer.roots():
        for step in critical_path(tracer, root):
            key = f"{step.layer}.{step.op}"
            totals[key] = totals.get(key, 0.0) + step.ns
            hits[key] = hits.get(key, 0) + 1
    ranked = sorted(totals, key=lambda k: (-totals[k], k))[:top]
    return [(k, totals[k], hits[k]) for k in ranked]


# ---------------------------------------------------------------------- #
# text rendering
# ---------------------------------------------------------------------- #

def _us(ns: float) -> str:
    return f"{ns / 1000.0:10.2f}"


def render_breakdown(tracer: Tracer) -> str:
    """Human-readable per-op latency attribution table."""
    lines: List[str] = []
    for op, acc in sorted(breakdown(tracer).items()):
        lines.append(
            f"{op}  n={acc.count}  mean={acc.mean_ns / 1000.0:.2f}us  "
            f"total={acc.total_ns / 1000.0:.2f}us"
        )
        total = acc.total_ns or 1.0
        rows = [(f"self:{layer}", ns) for layer, ns in acc.self_ns.items()]
        rows += list(acc.wait_ns.items())
        for label, ns in sorted(rows, key=lambda r: (-r[1], r[0])):
            lines.append(
                f"    {label:<28} {_us(ns)}us  {100.0 * ns / total:5.1f}%"
            )
        for layer, ns in sorted(acc.background_ns.items()):
            lines.append(
                f"    overlap:{layer:<20} {_us(ns)}us  (background)"
            )
        covered = acc.attributed_ns() + sum(acc.wait_ns.values())
        lines.append(
            f"    {'(attributed)':<28} {_us(covered)}us  "
            f"{100.0 * covered / total:5.1f}%"
        )
    return "\n".join(lines) if lines else "(no spans recorded)"


def render_critical_path(tracer: Tracer) -> str:
    """Slowest-root critical path plus the cross-root profile."""
    lines: List[str] = []
    path = critical_path(tracer)
    if not path:
        return "(no spans recorded)"
    total = sum(step.ns for step in path)
    lines.append(f"critical path of slowest op ({total / 1000.0:.2f}us):")
    for step in path:
        lines.append(
            f"    {step.layer + '.' + step.op:<32} {_us(step.ns)}us"
        )
        if step.waits:
            for key, ns in sorted(step.waits.items()):
                lines.append(f"        wait {key:<23} {_us(ns)}us")
    lines.append("")
    lines.append("critical-path profile (all ops):")
    for key, ns, hits in critical_path_profile(tracer):
        lines.append(f"    {key:<32} {_us(ns)}us  x{hits}")
    return "\n".join(lines)
