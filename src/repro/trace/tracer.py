"""Virtual-clock-native span tracing for the simulated storage stack.

A :class:`Tracer` records **nested spans** and **point events** stamped
with ``(thread timeline, VirtualClock time)``.  Layers open a span when
an operation enters them and close it when the operation leaves, so one
``fsync`` shows up as a tree — VFS op → page cache → interconnect link →
firmware (write log / TxLog / log cleaning) → FTL → NAND chip — whose
leaf durations sum to the measured latency.  Parent ids propagate across
layer boundaries through a per-thread span stack, mirroring the
synchronous call stack of the simulation.

Instrumentation sites follow the same guard pattern as
:data:`repro.analysis.fssan.ENABLED`: every site reads the module-level
:data:`ENABLED` flag first and pays one attribute load plus a falsy
branch when tracing is off::

    from repro.trace import tracer as trace
    ...
    _sp = trace.begin("ftl", "read_page", lpa=lpa) if trace.ENABLED else None
    try:
        ...
    finally:
        if _sp is not None:
            trace.end(_sp)

Tracing is deterministic: all timestamps come from the
:class:`~repro.sim.clock.VirtualClock`, span ids are sequential, and no
wall clock or ambient randomness is consulted anywhere (this module is
registered as a blessed clock consumer for the DET001 lint pass).
Identical seeds therefore produce byte-identical exported traces.

Set ``REPRO_TRACE=1`` in the environment to make the benchmark harness
attach a metrics-only tracer (spans aggregated into log-scaled
histograms, not retained) to every run it executes.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.trace.metrics import MetricsRegistry

#: Master switch read by every instrumented call site.  True only while
#: a tracer is activated; flip it via :func:`activate` / :func:`deactivate`.
ENABLED = False

#: The currently active tracer (``None`` when tracing is off).
_ACTIVE: Optional["Tracer"] = None

#: Environment opt-in: the bench harness attaches a metrics-only tracer
#: to every run when this is set (used by CI's traced tier-1 job).
AUTO = os.environ.get("REPRO_TRACE", "").lower() in ("1", "true", "yes", "on")

#: Synchronous spans consume their parent's time on the issuing thread.
LANE_SYNC = 0
#: Background spans model device-side work that overlaps the foreground
#: (flash programs behind the write buffer, GC, log-clean flushes).
LANE_BACKGROUND = 1


class Span:
    """One timed operation on one thread timeline.

    ``t_start``/``t_end`` are virtual nanoseconds on the thread's
    timeline; ``parent_id`` is 0 for root spans.  ``waits`` accumulates
    per-resource queueing delay observed inside the span (see
    :meth:`Tracer.note_wait`).
    """

    __slots__ = (
        "span_id", "parent_id", "tid", "layer", "op",
        "t_start", "t_end", "lane", "attrs", "waits",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int,
        tid: int,
        layer: str,
        op: str,
        t_start: float,
        lane: int = LANE_SYNC,
        attrs: Optional[Dict] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.tid = tid
        self.layer = layer
        self.op = op
        self.t_start = t_start
        self.t_end = t_start
        self.lane = lane
        self.attrs = attrs
        self.waits: Optional[Dict[str, float]] = None

    @property
    def duration_ns(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self) -> Dict:
        out = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "tid": self.tid,
            "layer": self.layer,
            "op": self.op,
            "ts": self.t_start,
            "dur": self.duration_ns,
        }
        if self.lane != LANE_SYNC:
            out["lane"] = self.lane
        if self.attrs:
            out["attrs"] = self.attrs
        if self.waits:
            out["waits"] = self.waits
        return out


class PointEvent:
    """An instantaneous marker (cache miss, crash point, commit, ...)."""

    __slots__ = ("tid", "t", "layer", "name", "parent_id", "attrs")

    def __init__(
        self,
        tid: int,
        t: float,
        layer: str,
        name: str,
        parent_id: int,
        attrs: Optional[Dict] = None,
    ) -> None:
        self.tid = tid
        self.t = t
        self.layer = layer
        self.name = name
        self.parent_id = parent_id
        self.attrs = attrs

    def to_dict(self) -> Dict:
        out = {
            "type": "event",
            "tid": self.tid,
            "ts": self.t,
            "layer": self.layer,
            "name": self.name,
            "parent": self.parent_id,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Tracer:
    """Records spans and events against one :class:`VirtualClock`.

    ``keep_spans=False`` turns the tracer into a metrics-only probe:
    spans are still timed and aggregated into the log-scaled histogram
    registry (one histogram per ``layer.op``), but the span objects are
    discarded — bounded memory for hot paths and long runs.
    """

    def __init__(
        self,
        clock,
        keep_spans: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.clock = clock
        self.keep_spans = keep_spans
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Span] = []        # completed spans, completion order
        self.events: List[PointEvent] = []
        self._stacks: List[List[Span]] = [
            [] for _ in range(clock.n_threads)
        ]
        self._next_id = 1
        #: resource waits observed with no span open (rare; kept so the
        #: attribution report never silently drops time)
        self.orphan_waits: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def begin(self, layer: str, op: str, **attrs) -> Span:
        """Open a span on the current thread's stack."""
        tid = self.clock.current_thread
        stack = self._stacks[tid]
        parent_id = stack[-1].span_id if stack else 0
        span = Span(
            self._next_id, parent_id, tid, layer, op,
            self.clock.now, LANE_SYNC, attrs or None,
        )
        self._next_id += 1
        stack.append(span)
        return span

    def end(self, span: Optional[Span] = None) -> Optional[Span]:
        """Close a span at the current thread's virtual time.

        With an explicit ``span`` argument, any deeper spans abandoned by
        an exception unwind are closed first, keeping the stack balanced.
        Ending against an empty stack is a no-op.
        """
        stack = self._stacks[self.clock.current_thread]
        if not stack:
            return None
        if span is not None:
            if span not in stack:
                return None
            while stack[-1] is not span:
                self._finish(stack.pop())
        return self._finish(stack.pop())

    def cancel(self) -> None:
        """Discard the innermost open span (e.g. generator exhaustion)."""
        stack = self._stacks[self.clock.current_thread]
        if stack:
            stack.pop()

    def _finish(self, span: Span) -> Span:
        span.t_end = self.clock.now
        self.metrics.histogram(f"span.{span.layer}.{span.op}").record(
            span.duration_ns
        )
        if self.keep_spans:
            self.spans.append(span)
        return span

    def span_at(
        self,
        layer: str,
        op: str,
        t_start: float,
        t_end: float,
        background: bool = False,
        **attrs,
    ) -> Span:
        """Record an already-completed span with explicit times.

        Used for device work whose schedule comes from a resource
        timeline rather than the issuing thread (flash programs behind
        the write buffer, GC reads/erases) — background spans may extend
        past their parent's end.
        """
        tid = self.clock.current_thread
        stack = self._stacks[tid]
        parent_id = stack[-1].span_id if stack else 0
        span = Span(
            self._next_id, parent_id, tid, layer, op, t_start,
            LANE_BACKGROUND if background else LANE_SYNC, attrs or None,
        )
        self._next_id += 1
        span.t_end = t_end
        self.metrics.histogram(f"span.{layer}.{op}").record(t_end - t_start)
        if self.keep_spans:
            self.spans.append(span)
        return span

    def event(self, layer: str, name: str, **attrs) -> None:
        """Record an instantaneous point event at the current time."""
        tid = self.clock.current_thread
        stack = self._stacks[tid]
        parent_id = stack[-1].span_id if stack else 0
        self.metrics.bump(f"event.{layer}.{name}")
        if self.keep_spans:
            self.events.append(PointEvent(
                tid, self.clock.now, layer, name, parent_id, attrs or None
            ))

    def note_wait(self, key: str, wait_ns: float, service_ns: float) -> None:
        """Attribute queueing delay on resource ``key`` to the open span."""
        self.metrics.histogram(f"wait.{key}").record(wait_ns)
        stack = self._stacks[self.clock.current_thread]
        if not stack:
            self.orphan_waits[key] = self.orphan_waits.get(key, 0.0) + wait_ns
            return
        span = stack[-1]
        if span.waits is None:
            span.waits = {}
        span.waits[key] = span.waits.get(key, 0.0) + wait_ns

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def open_depth(self, tid: Optional[int] = None) -> int:
        if tid is None:
            tid = self.clock.current_thread
        return len(self._stacks[tid])

    def close_all(self) -> None:
        """Close any spans left open (end-of-run safety net)."""
        for tid in range(len(self._stacks)):
            stack = self._stacks[tid]
            while stack:
                self._finish(stack.pop())

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id == 0]


# ---------------------------------------------------------------------- #
# module-level activation and fast helpers
# ---------------------------------------------------------------------- #

def activate(tracer: Tracer) -> None:
    global ENABLED, _ACTIVE
    _ACTIVE = tracer
    ENABLED = True


def deactivate() -> None:
    global ENABLED, _ACTIVE
    ENABLED = False
    _ACTIVE = None


def active() -> Optional[Tracer]:
    return _ACTIVE


@contextmanager
def activated(tracer: Tracer):
    """Activate ``tracer`` for the duration of a block, then restore."""
    global ENABLED, _ACTIVE
    prev_enabled, prev_active = ENABLED, _ACTIVE
    activate(tracer)
    try:
        yield tracer
    finally:
        ENABLED, _ACTIVE = prev_enabled, prev_active


def begin(layer: str, op: str, **attrs) -> Optional[Span]:
    """Open a span on the active tracer (callers guard on ENABLED)."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.begin(layer, op, **attrs)


def end(span: Optional[Span] = None) -> None:
    if _ACTIVE is not None:
        _ACTIVE.end(span)


def span_at(
    layer: str, op: str, t_start: float, t_end: float,
    background: bool = False, **attrs,
) -> None:
    if _ACTIVE is not None:
        _ACTIVE.span_at(layer, op, t_start, t_end, background, **attrs)


def event(layer: str, name: str, **attrs) -> None:
    if _ACTIVE is not None:
        _ACTIVE.event(layer, name, **attrs)


def note_wait(key: str, wait_ns: float, service_ns: float) -> None:
    if _ACTIVE is not None:
        _ACTIVE.note_wait(key, wait_ns, service_ns)
