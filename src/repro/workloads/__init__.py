"""Workload generators reproducing the paper's Table 5.

Scaled-down versions (file counts divided by ~1000, sizes preserved or
modestly reduced) of:

* micro-benchmarks: create / delete / mkdir / rmdir;
* Filebench personalities: Varmail, Fileserver, Webproxy, Webserver, OLTP;
* YCSB A-F over the LSM KV store, with Zipfian/latest/uniform request
  distributions.
"""

from repro.workloads.base import Workload
from repro.workloads.micro import (
    MicroCreate,
    MicroDelete,
    MicroMkdir,
    MicroRmdir,
    MmapStress,
    MICRO_WORKLOADS,
)
from repro.workloads.filebench import (
    Varmail,
    Fileserver,
    Webproxy,
    Webserver,
    OLTP,
    MACRO_WORKLOADS,
)
from repro.workloads.ycsb import YCSB, YCSB_MIXES
from repro.workloads.zipfian import ZipfianGenerator

__all__ = [
    "Workload",
    "MicroCreate",
    "MicroDelete",
    "MicroMkdir",
    "MicroRmdir",
    "MmapStress",
    "MICRO_WORKLOADS",
    "Varmail",
    "Fileserver",
    "Webproxy",
    "Webserver",
    "OLTP",
    "MACRO_WORKLOADS",
    "YCSB",
    "YCSB_MIXES",
    "ZipfianGenerator",
]
