"""The workload protocol used by the bench harness.

A workload declares its thread count, performs un-measured ``setup``,
then provides one operation generator per simulated thread.  Each
``next()`` on a generator performs one operation against the file system
and yields the operation's name (used for per-op latency recording).
"""

from __future__ import annotations

import abc
from typing import Iterator, List

from repro.fs.vfs import BaseFileSystem
from repro.sim.rng import make_rng


class Workload(abc.ABC):
    """Base class for all workloads."""

    name = "workload"
    n_threads = 1

    def __init__(self, seed: int = 42) -> None:
        self.seed = seed

    def rng(self, label: str):
        return make_rng(self.seed, f"{self.name}:{label}")

    def setup(self, fs: BaseFileSystem) -> None:
        """Prepare the file set; excluded from measurement."""

    @abc.abstractmethod
    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        """Yield once per completed operation (value = op name)."""

    def make_threads(self, fs: BaseFileSystem) -> List[Iterator[str]]:
        return [self.thread_ops(fs, tid) for tid in range(self.n_threads)]

    def teardown(self, fs: BaseFileSystem) -> None:
        """Optional cleanup after measurement."""
