"""Filebench macro personalities (paper Table 5), scaled down ~1000x.

Operation mixes follow the standard Filebench personality definitions:

* **Varmail** — mail server: per-message create/write/fsync, read, append/
  fsync, delete (metadata- and fsync-heavy, 16 KB files).
* **Fileserver** — create/append/whole-read/delete of 128 KB files, no
  fsync pressure (data-heavy).
* **Webproxy** — create+write followed by five whole-file reads per new
  object, heavy directory churn (16 KB files).
* **Webserver** — read-mostly: ten whole-file reads plus one small log
  append per loop (16 KB files).
* **OLTP** — database: random small writes to large data files with
  fdatasync, plus a synchronous log writer (10 MB files in the paper,
  1 MB here; 200 threads in the paper, 20 here).
"""

from __future__ import annotations

from typing import Iterator

from repro.fs.vfs import BaseFileSystem, O_APPEND, O_CREAT, O_RDONLY, O_RDWR
from repro.workloads.base import Workload


def _whole_read(fs: BaseFileSystem, path: str, chunk: int = 1 << 16) -> None:
    fd = fs.open(path, O_RDONLY)
    try:
        size = fs.stat(path).size
        off = 0
        while off < size:
            data = fs.pread(fd, off, min(chunk, size - off))
            if not data:
                break
            off += len(data)
    finally:
        fs.close(fd)


class Varmail(Workload):
    name = "varmail"

    def __init__(
        self,
        n_files: int = 240,
        file_size: int = 16 << 10,
        n_threads: int = 12,
        ops_per_thread: int = 60,
        seed: int = 42,
    ) -> None:
        super().__init__(seed)
        self.n_files = n_files
        self.file_size = file_size
        self.n_threads = n_threads
        self.ops_per_thread = ops_per_thread

    def setup(self, fs: BaseFileSystem) -> None:
        fs.mkdir("/mail")
        payload = b"m" * self.file_size
        for i in range(self.n_files // 2):
            fd = fs.open(f"/mail/msg{i}", O_CREAT | O_RDWR)
            fs.write(fd, payload)
            fs.close(fd)
        fs.sync()

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        rng = self.rng(f"t{tid}")
        next_new = self.n_files // 2 + tid * 10_000
        payload = b"M" * (self.file_size // 2)
        for _ in range(self.ops_per_thread):
            # delete-of-oldest / create / fsync / read / append cycle,
            # the Varmail flowlet structure.
            victim = rng.randrange(max(1, next_new))
            if fs.exists(f"/mail/msg{victim}"):
                fs.unlink(f"/mail/msg{victim}")
                yield "delete"
            fd = fs.open(f"/mail/msg{next_new}", O_CREAT | O_RDWR)
            fs.write(fd, payload)
            fs.fsync(fd)
            fs.close(fd)
            yield "create+fsync"
            target = f"/mail/msg{next_new}"
            _whole_read(fs, target)
            yield "read"
            fd = fs.open(target, O_RDWR | O_APPEND)
            fs.write(fd, payload)
            fs.fsync(fd)
            fs.close(fd)
            yield "append+fsync"
            _whole_read(fs, target)
            yield "read"
            next_new += 1


class Fileserver(Workload):
    name = "fileserver"

    def __init__(
        self,
        n_files: int = 60,
        file_size: int = 128 << 10,
        n_threads: int = 12,
        ops_per_thread: int = 25,
        seed: int = 42,
    ) -> None:
        super().__init__(seed)
        self.n_files = n_files
        self.file_size = file_size
        self.n_threads = n_threads
        self.ops_per_thread = ops_per_thread

    def setup(self, fs: BaseFileSystem) -> None:
        fs.mkdir("/srv")
        payload = b"f" * self.file_size
        for i in range(self.n_files):
            fd = fs.open(f"/srv/file{i}", O_CREAT | O_RDWR)
            fs.write(fd, payload)
            fs.close(fd)
        fs.sync()

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        rng = self.rng(f"t{tid}")
        next_new = self.n_files + tid * 10_000
        append_chunk = b"A" * (16 << 10)
        for _ in range(self.ops_per_thread):
            # create a new file, write it whole
            fd = fs.open(f"/srv/file{next_new}", O_CREAT | O_RDWR)
            fs.write(fd, b"F" * self.file_size)
            fs.close(fd)
            yield "createfile"
            # append to a random file
            victim = rng.randrange(next_new)
            if fs.exists(f"/srv/file{victim}"):
                fd = fs.open(f"/srv/file{victim}", O_RDWR | O_APPEND)
                fs.write(fd, append_chunk)
                fs.close(fd)
                yield "append"
            # whole-read a random file
            victim = rng.randrange(next_new)
            if fs.exists(f"/srv/file{victim}"):
                _whole_read(fs, f"/srv/file{victim}")
                yield "read"
            # delete a random file
            victim = rng.randrange(next_new)
            if fs.exists(f"/srv/file{victim}"):
                fs.unlink(f"/srv/file{victim}")
                yield "delete"
            next_new += 1


class Webproxy(Workload):
    name = "webproxy"

    def __init__(
        self,
        n_files: int = 240,
        file_size: int = 16 << 10,
        n_threads: int = 12,
        ops_per_thread: int = 30,
        seed: int = 42,
    ) -> None:
        super().__init__(seed)
        self.n_files = n_files
        self.file_size = file_size
        self.n_threads = n_threads
        self.ops_per_thread = ops_per_thread

    def setup(self, fs: BaseFileSystem) -> None:
        fs.mkdir("/proxy")
        for d in range(self.n_threads):
            fs.mkdir(f"/proxy/d{d}")
        payload = b"p" * self.file_size
        for i in range(self.n_files):
            fd = fs.open(
                f"/proxy/d{i % self.n_threads}/obj{i}", O_CREAT | O_RDWR
            )
            fs.write(fd, payload)
            fs.close(fd)
        fs.sync()

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        rng = self.rng(f"t{tid}")
        next_new = self.n_files + tid * 10_000
        payload = b"P" * self.file_size
        for _ in range(self.ops_per_thread):
            # proxy cache replacement: delete an old object, fetch a new
            # one, then serve (read) five random objects
            victim = rng.randrange(self.n_files)
            victim_path = f"/proxy/d{victim % self.n_threads}/obj{victim}"
            if fs.exists(victim_path):
                fs.unlink(victim_path)
                yield "delete"
            fd = fs.open(f"/proxy/d{tid}/obj{next_new}", O_CREAT | O_RDWR)
            fs.write(fd, payload)
            fs.close(fd)
            yield "create"
            for _r in range(5):
                obj = rng.randrange(next_new)
                path = f"/proxy/d{obj % self.n_threads}/obj{obj}"
                if fs.exists(path):
                    _whole_read(fs, path)
                    yield "read"
            next_new += 1


class Webserver(Workload):
    name = "webserver"

    def __init__(
        self,
        n_files: int = 240,
        file_size: int = 16 << 10,
        n_threads: int = 12,
        ops_per_thread: int = 30,
        seed: int = 42,
    ) -> None:
        super().__init__(seed)
        self.n_files = n_files
        self.file_size = file_size
        self.n_threads = n_threads
        self.ops_per_thread = ops_per_thread

    def setup(self, fs: BaseFileSystem) -> None:
        fs.mkdir("/web")
        payload = b"w" * self.file_size
        for i in range(self.n_files):
            fd = fs.open(f"/web/page{i}", O_CREAT | O_RDWR)
            fs.write(fd, payload)
            fs.close(fd)
        fs.mkdir("/web/logs")
        for tid in range(self.n_threads):
            fd = fs.open(f"/web/logs/log{tid}", O_CREAT | O_RDWR)
            fs.close(fd)
        fs.sync()

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        rng = self.rng(f"t{tid}")
        log_entry = b"L" * 512
        for _ in range(self.ops_per_thread):
            for _r in range(10):
                page = rng.randrange(self.n_files)
                _whole_read(fs, f"/web/page{page}")
                yield "read"
            fd = fs.open(f"/web/logs/log{tid}", O_RDWR | O_APPEND)
            fs.write(fd, log_entry)
            fs.close(fd)
            yield "logappend"


class OLTP(Workload):
    name = "oltp"

    def __init__(
        self,
        n_files: int = 4,
        file_size: int = 1 << 20,
        n_threads: int = 20,
        ops_per_thread: int = 30,
        write_size: int = 2 << 10,
        seed: int = 42,
    ) -> None:
        super().__init__(seed)
        self.n_files = n_files
        self.file_size = file_size
        self.n_threads = n_threads
        self.ops_per_thread = ops_per_thread
        self.write_size = write_size

    def setup(self, fs: BaseFileSystem) -> None:
        fs.mkdir("/db")
        chunk = b"d" * (128 << 10)
        for i in range(self.n_files):
            fd = fs.open(f"/db/data{i}", O_CREAT | O_RDWR)
            written = 0
            while written < self.file_size:
                fs.write(fd, chunk)
                written += len(chunk)
            fs.close(fd)
        fd = fs.open("/db/redo.log", O_CREAT | O_RDWR)
        fs.close(fd)
        fs.sync()

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        rng = self.rng(f"t{tid}")
        buf = b"T" * self.write_size
        log_rec = b"R" * 512
        for _ in range(self.ops_per_thread):
            # read a random DB page, dirty it, fdatasync (DB writer)
            f = rng.randrange(self.n_files)
            offset = rng.randrange(self.file_size // self.write_size)
            offset *= self.write_size
            fd = fs.open(f"/db/data{f}", O_RDWR)
            fs.pread(fd, offset, self.write_size)
            yield "dbread"
            fs.pwrite(fd, offset, buf)
            fs.fdatasync(fd)
            fs.close(fd)
            yield "dbwrite+sync"
            # log writer: small synchronous append
            fd = fs.open("/db/redo.log", O_RDWR | O_APPEND)
            fs.write(fd, log_rec)
            fs.fsync(fd)
            fs.close(fd)
            yield "logwrite+sync"


MACRO_WORKLOADS = {
    "varmail": Varmail,
    "fileserver": Fileserver,
    "webproxy": Webproxy,
    "webserver": Webserver,
    "oltp": OLTP,
}
