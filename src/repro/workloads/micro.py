"""Filebench-style micro-benchmarks (paper Table 5).

The paper runs 1 M files/dirs over 12 threads; these are the same access
patterns at 1/1000 scale.  Each thread works in its own directory, and
every create/delete is followed by the fsync the paper's micro set
performs (synchronous metadata operations are exactly what separate the
file systems in Figure 6).
"""

from __future__ import annotations

from typing import Iterator

from repro.fs.vfs import BaseFileSystem, O_CREAT, O_RDWR
from repro.workloads.base import Workload


class MicroCreate(Workload):
    """Create ``n_files`` 4 KB files across ``n_threads`` threads."""

    name = "create"

    def __init__(
        self, n_files: int = 600, n_threads: int = 12, seed: int = 42
    ) -> None:
        super().__init__(seed)
        self.n_files = n_files
        self.n_threads = n_threads
        self.payload = b"\xab" * 4096

    def setup(self, fs: BaseFileSystem) -> None:
        for tid in range(self.n_threads):
            fs.mkdir(f"/t{tid}")

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        for i in range(self.n_files // self.n_threads):
            fd = fs.open(f"/t{tid}/f{i}", O_CREAT | O_RDWR)
            fs.write(fd, self.payload)
            fs.fsync(fd)
            fs.close(fd)
            yield "create"


class MicroDelete(Workload):
    """Delete the pre-created 4 KB files."""

    name = "delete"

    def __init__(
        self, n_files: int = 600, n_threads: int = 12, seed: int = 42
    ) -> None:
        super().__init__(seed)
        self.n_files = n_files
        self.n_threads = n_threads

    def setup(self, fs: BaseFileSystem) -> None:
        payload = b"\xcd" * 4096
        for tid in range(self.n_threads):
            fs.mkdir(f"/t{tid}")
            for i in range(self.n_files // self.n_threads):
                fd = fs.open(f"/t{tid}/f{i}", O_CREAT | O_RDWR)
                fs.write(fd, payload)
                fs.fsync(fd)
                fs.close(fd)

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        for i in range(self.n_files // self.n_threads):
            fs.unlink(f"/t{tid}/f{i}")
            yield "delete"


class MicroMkdir(Workload):
    """Make ``n_dirs`` directories."""

    name = "mkdir"

    def __init__(
        self, n_dirs: int = 600, n_threads: int = 12, seed: int = 42
    ) -> None:
        super().__init__(seed)
        self.n_dirs = n_dirs
        self.n_threads = n_threads

    def setup(self, fs: BaseFileSystem) -> None:
        for tid in range(self.n_threads):
            fs.mkdir(f"/t{tid}")

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        for i in range(self.n_dirs // self.n_threads):
            fs.mkdir(f"/t{tid}/d{i}")
            yield "mkdir"


class MicroRmdir(Workload):
    """Remove pre-created directories."""

    name = "rmdir"

    def __init__(
        self, n_dirs: int = 600, n_threads: int = 12, seed: int = 42
    ) -> None:
        super().__init__(seed)
        self.n_dirs = n_dirs
        self.n_threads = n_threads

    def setup(self, fs: BaseFileSystem) -> None:
        for tid in range(self.n_threads):
            fs.mkdir(f"/t{tid}")
            for i in range(self.n_dirs // self.n_threads):
                fs.mkdir(f"/t{tid}/d{i}")

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        for i in range(self.n_dirs // self.n_threads):
            fs.rmdir(f"/t{tid}/d{i}")
            yield "rmdir"


class MmapStress(Workload):
    """Memory-mapped I/O stress: the natural driver for the device-DRAM
    cache tier (docs/CACHING.md).

    Each thread maps a ``file_pages``-page file and runs three phases:

    1. a **sequential scan** of the whole mapping (stride-1 page faults —
       what the devcache prefetcher detects);
    2. a **strided scan** (stride ``stride_pages``);
    3. a **mixed tail**: hot-set reads over the first ``hot_pages``
       pages, plus random stores with periodic ``msync``.

    The combined working set is sized to overflow the host page cache
    (default 4 threads x 192 pages = 768 pages vs. the harness's
    512-page cache), so re-touches miss host DRAM and reach the device —
    with the devcache on they hit device DRAM instead of NAND.

    On file systems without ``mmap`` (f2fs/nova/pmfs) the same access
    pattern runs through ``pread``/``pwrite``/``fsync``, so the workload
    stays usable across the whole matrix.
    """

    name = "mmap_stress"
    PAGE = 4096

    def __init__(
        self,
        n_ops: int = 400,
        n_threads: int = 4,
        seed: int = 42,
        file_pages: int = 192,
        hot_pages: int = 16,
        stride_pages: int = 4,
    ) -> None:
        super().__init__(seed)
        self.n_ops = n_ops
        self.n_threads = n_threads
        self.file_pages = file_pages
        self.hot_pages = min(hot_pages, file_pages)
        self.stride_pages = stride_pages

    def setup(self, fs: BaseFileSystem) -> None:
        fs.mkdir("/mm")
        payload = b"\x5a" * self.PAGE
        for tid in range(self.n_threads):
            fd = fs.open(f"/mm/f{tid}", O_CREAT | O_RDWR)
            for _ in range(self.file_pages):
                fs.write(fd, payload)
            fs.fsync(fd)
            fs.close(fd)

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        n = self.n_ops // self.n_threads
        page_bytes = self.PAGE
        length = self.file_pages * page_bytes
        fd = fs.open(f"/mm/f{tid}", O_RDWR)
        mapped = fs.mmap(fd, 0, length) if hasattr(fs, "mmap") else None
        rng = self.rng(f"ops{tid}")
        store_payload = b"\xa5" * 1024
        seq_pos = 0
        stride_pos = tid  # offset the threads so their streams differ
        try:
            for i in range(n):
                phase = (3 * i) // n
                if phase == 0:
                    page = seq_pos % self.file_pages
                    seq_pos += 1
                    op = "mmap_seq_read"
                elif phase == 1:
                    page = stride_pos % self.file_pages
                    stride_pos += self.stride_pages
                    op = "mmap_stride_read"
                elif rng.random() < 0.35:
                    page = rng.randrange(self.file_pages)
                    off = page * page_bytes + 512
                    if mapped is not None:
                        mapped.store(off, store_payload)
                        if i % 16 == 0:
                            mapped.msync()
                    else:
                        fs.pwrite(fd, off, store_payload)
                        if i % 16 == 0:
                            fs.fsync(fd)
                    yield "mmap_store"
                    continue
                else:
                    page = rng.randrange(self.hot_pages)
                    op = "mmap_hot_read"
                if mapped is not None:
                    mapped.load(page * page_bytes, page_bytes)
                else:
                    fs.pread(fd, page * page_bytes, page_bytes)
                yield op
        finally:
            if mapped is not None:
                mapped.msync()
                mapped.close()
            else:
                fs.fsync(fd)
            fs.close(fd)


MICRO_WORKLOADS = {
    "create": MicroCreate,
    "delete": MicroDelete,
    "mkdir": MicroMkdir,
    "rmdir": MicroRmdir,
    "mmap_stress": MmapStress,
}
