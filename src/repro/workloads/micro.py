"""Filebench-style micro-benchmarks (paper Table 5).

The paper runs 1 M files/dirs over 12 threads; these are the same access
patterns at 1/1000 scale.  Each thread works in its own directory, and
every create/delete is followed by the fsync the paper's micro set
performs (synchronous metadata operations are exactly what separate the
file systems in Figure 6).
"""

from __future__ import annotations

from typing import Iterator

from repro.fs.vfs import BaseFileSystem, O_CREAT, O_RDWR
from repro.workloads.base import Workload


class MicroCreate(Workload):
    """Create ``n_files`` 4 KB files across ``n_threads`` threads."""

    name = "create"

    def __init__(
        self, n_files: int = 600, n_threads: int = 12, seed: int = 42
    ) -> None:
        super().__init__(seed)
        self.n_files = n_files
        self.n_threads = n_threads
        self.payload = b"\xab" * 4096

    def setup(self, fs: BaseFileSystem) -> None:
        for tid in range(self.n_threads):
            fs.mkdir(f"/t{tid}")

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        for i in range(self.n_files // self.n_threads):
            fd = fs.open(f"/t{tid}/f{i}", O_CREAT | O_RDWR)
            fs.write(fd, self.payload)
            fs.fsync(fd)
            fs.close(fd)
            yield "create"


class MicroDelete(Workload):
    """Delete the pre-created 4 KB files."""

    name = "delete"

    def __init__(
        self, n_files: int = 600, n_threads: int = 12, seed: int = 42
    ) -> None:
        super().__init__(seed)
        self.n_files = n_files
        self.n_threads = n_threads

    def setup(self, fs: BaseFileSystem) -> None:
        payload = b"\xcd" * 4096
        for tid in range(self.n_threads):
            fs.mkdir(f"/t{tid}")
            for i in range(self.n_files // self.n_threads):
                fd = fs.open(f"/t{tid}/f{i}", O_CREAT | O_RDWR)
                fs.write(fd, payload)
                fs.fsync(fd)
                fs.close(fd)

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        for i in range(self.n_files // self.n_threads):
            fs.unlink(f"/t{tid}/f{i}")
            yield "delete"


class MicroMkdir(Workload):
    """Make ``n_dirs`` directories."""

    name = "mkdir"

    def __init__(
        self, n_dirs: int = 600, n_threads: int = 12, seed: int = 42
    ) -> None:
        super().__init__(seed)
        self.n_dirs = n_dirs
        self.n_threads = n_threads

    def setup(self, fs: BaseFileSystem) -> None:
        for tid in range(self.n_threads):
            fs.mkdir(f"/t{tid}")

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        for i in range(self.n_dirs // self.n_threads):
            fs.mkdir(f"/t{tid}/d{i}")
            yield "mkdir"


class MicroRmdir(Workload):
    """Remove pre-created directories."""

    name = "rmdir"

    def __init__(
        self, n_dirs: int = 600, n_threads: int = 12, seed: int = 42
    ) -> None:
        super().__init__(seed)
        self.n_dirs = n_dirs
        self.n_threads = n_threads

    def setup(self, fs: BaseFileSystem) -> None:
        for tid in range(self.n_threads):
            fs.mkdir(f"/t{tid}")
            for i in range(self.n_dirs // self.n_threads):
                fs.mkdir(f"/t{tid}/d{i}")

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        for i in range(self.n_dirs // self.n_threads):
            fs.rmdir(f"/t{tid}/d{i}")
            yield "rmdir"


MICRO_WORKLOADS = {
    "create": MicroCreate,
    "delete": MicroDelete,
    "mkdir": MicroMkdir,
    "rmdir": MicroRmdir,
}
