"""YCSB core workloads A-F over the LSM KV store (paper Table 5, Fig 7).

Mixes follow the YCSB core-workload definitions:

========  ======================  ====================
workload  operation mix           request distribution
========  ======================  ====================
A         50 % read / 50 % update zipfian
B         95 % read /  5 % update zipfian
C         100 % read              zipfian
D         95 % read /  5 % insert latest
E         95 % scan /  5 % insert uniform (scan start)
F         50 % read / 50 % RMW    zipfian
========  ======================  ====================

The paper loads 10 M 1000 B records and runs 40 M ops; this reproduction
scales both down while preserving the mixes and distributions.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.fs.vfs import BaseFileSystem
from repro.kv.db import KVConfig, KVStore
from repro.workloads.base import Workload
from repro.workloads.zipfian import (
    LatestGenerator,
    UniformGenerator,
    ZipfianGenerator,
)

YCSB_MIXES: Dict[str, Dict[str, float]] = {
    "A": {"read": 0.5, "update": 0.5},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.0},
    "D": {"read": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"read": 0.5, "rmw": 0.5},
}


class YCSB(Workload):
    """One YCSB workload letter against a fresh KVStore."""

    def __init__(
        self,
        letter: str = "A",
        n_records: int = 2000,
        n_ops: int = 2000,
        value_size: int = 1000,
        n_threads: int = 4,
        scan_length: int = 20,
        kv_config: Optional[KVConfig] = None,
        seed: int = 42,
    ) -> None:
        super().__init__(seed)
        letter = letter.upper()
        if letter not in YCSB_MIXES:
            raise ValueError(f"unknown YCSB workload {letter!r}")
        self.letter = letter
        self.name = f"ycsb-{letter.lower()}"
        self.mix = YCSB_MIXES[letter]
        self.n_records = n_records
        self.n_ops = n_ops
        self.value_size = value_size
        self.n_threads = n_threads
        self.scan_length = scan_length
        self.kv_config = kv_config or KVConfig()
        self.db: Optional[KVStore] = None
        self._insert_count = 0

    @staticmethod
    def key(i: int) -> bytes:
        return f"user{i:012d}".encode()

    def _value(self, rng) -> bytes:
        return bytes(rng.getrandbits(8) for _ in range(32)) * (
            self.value_size // 32
        )

    def setup(self, fs: BaseFileSystem) -> None:
        rng = self.rng("load")
        self.db = KVStore(fs, config=self.kv_config)
        value = self._value(rng)
        for i in range(self.n_records):
            self.db.put(self.key(i), value)
        self._insert_count = self.n_records

    def thread_ops(self, fs: BaseFileSystem, tid: int) -> Iterator[str]:
        rng = self.rng(f"t{tid}")
        zipf = ZipfianGenerator(self.n_records, rng=rng)
        latest = LatestGenerator(self.n_records, rng=rng)
        uniform = UniformGenerator(self.n_records, rng=rng)
        value = self._value(rng)
        choices = list(self.mix.items())
        #: application-side work per request (parse, hash, serialize);
        #: keeps pure-memtable hits from reporting zero latency
        think_ns = 400.0
        for _ in range(self.n_ops // self.n_threads):
            fs.clock.advance(think_ns)
            r = rng.random()
            acc = 0.0
            op = choices[-1][0]
            for name, frac in choices:
                acc += frac
                if r < acc:
                    op = name
                    break
            if op == "read":
                idx = (
                    latest.next()
                    if self.letter == "D"
                    else zipf.next()
                )
                self.db.get(self.key(idx % self._insert_count))
                yield "read"
            elif op == "update":
                idx = zipf.next()
                self.db.put(self.key(idx % self._insert_count), value)
                yield "update"
            elif op == "insert":
                idx = self._insert_count
                self._insert_count += 1
                latest.set_max(self._insert_count)
                self.db.put(self.key(idx), value)
                yield "update"  # inserts count as writes for Fig 7
            elif op == "scan":
                start = uniform.next() % self._insert_count
                self.db.scan(self.key(start), self.scan_length)
                yield "scan"
            elif op == "rmw":
                idx = zipf.next() % self._insert_count
                self.db.get(self.key(idx))
                self.db.put(self.key(idx), value)
                yield "update"

    def teardown(self, fs: BaseFileSystem) -> None:
        if self.db is not None:
            self.db.close()
