"""Request distribution generators for YCSB (Zipfian, latest, uniform).

The Zipfian generator follows Gray et al.'s "Quickly generating
billion-record synthetic databases" construction, which is what the YCSB
reference implementation uses.
"""

from __future__ import annotations

import math
import random

from repro.sim.rng import make_rng


class ZipfianGenerator:
    """Zipfian-distributed integers in [0, n); theta defaults to YCSB's
    0.99."""

    def __init__(
        self, n: int, theta: float = 0.99, rng: random.Random = None
    ) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.theta = theta
        self.rng = rng if rng is not None else make_rng(0, "zipfian")
        self.zetan = self._zeta(n, theta)
        self.zeta2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1 - (2.0 / n) ** (1 - theta)) / (
            1 - self.zeta2 / self.zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.n * ((self.eta * u - self.eta + 1) ** self.alpha)
        ) % self.n


class LatestGenerator:
    """YCSB's 'latest' distribution: Zipfian over recency."""

    def __init__(self, n: int, rng: random.Random = None) -> None:
        self.rng = rng if rng is not None else make_rng(0, "latest")
        self._max = n
        self._zipf = ZipfianGenerator(max(1, n), rng=self.rng)

    def set_max(self, n: int) -> None:
        if n > self._max:
            self._max = n
            self._zipf = ZipfianGenerator(max(1, n), rng=self.rng)

    def next(self) -> int:
        return (self._max - 1) - self._zipf.next() % self._max


class UniformGenerator:
    def __init__(self, n: int, rng: random.Random = None) -> None:
        self.n = n
        self.rng = rng if rng is not None else make_rng(0, "uniform")

    def next(self) -> int:
        return self.rng.randrange(self.n)
