"""Shared fixtures: small device geometries and pre-built FS stacks."""

from __future__ import annotations

import pytest

from repro.core.bytefs import build_stack
from repro.nand.geometry import FlashGeometry
from repro.sim.clock import VirtualClock
from repro.ssd.device import MSSD, MSSDConfig
from repro.stats.traffic import TrafficStats

#: 32 MB device: big enough for every unit test, instant to build.
SMALL_GEOMETRY = FlashGeometry(
    n_channels=4,
    ways_per_channel=1,
    blocks_per_way=32,
    pages_per_block=64,
    page_size=4096,
)

ALL_FS = ["ext4", "f2fs", "nova", "pmfs", "bytefs"]
ALL_FS_AND_VARIANTS = ALL_FS + ["bytefs-dual", "bytefs-log"]


def pytest_addoption(parser):
    parser.addoption(
        "--max-sites",
        type=int,
        default=None,
        help="cap the number of crash sites replayed per sweep test "
        "(default: the per-test tier-1 bound; extended sweeps replay all)",
    )
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden RunResult fixtures "
        "(tests/golden/run_results.json) instead of asserting against "
        "them; only for deliberate performance-model changes",
    )


@pytest.fixture
def clock():
    return VirtualClock(1)


@pytest.fixture
def stats():
    return TrafficStats()


def make_device(firmware: str = "bytefs", clock=None, stats=None) -> MSSD:
    cfg = MSSDConfig(geometry=SMALL_GEOMETRY, firmware=firmware)
    return MSSD(cfg, clock or VirtualClock(1), stats or TrafficStats())


@pytest.fixture
def bytefs_device():
    return make_device("bytefs")


@pytest.fixture
def baseline_device():
    return make_device("baseline")


def make_stack(fs_name: str, n_threads: int = 1):
    clock, stats, device, fs = build_stack(
        fs_name, geometry=SMALL_GEOMETRY, n_threads=n_threads
    )
    stats.reset()  # exclude mkfs traffic from test assertions
    return clock, stats, device, fs


@pytest.fixture(params=ALL_FS)
def any_fs(request):
    _clock, _stats, _device, fs = make_stack(request.param)
    return fs


@pytest.fixture(params=ALL_FS_AND_VARIANTS)
def any_fs_or_variant(request):
    _clock, _stats, _device, fs = make_stack(request.param)
    return fs
