"""Pytest helpers for crash-consistency sweeps.

Thin glue between :mod:`repro.faults` and the sweep tests: runs a sweep
with a site cap (overridable via ``pytest --max-sites=N``) and turns a
failing report into an assertion message that tells the reader exactly
how to reproduce each failing crash point outside pytest::

    PYTHONPATH=src python -m repro crashsweep --fs ext4 --seed 0 --site 42

Kept out of conftest so the sweep tests stay importable on their own.
"""

from __future__ import annotations

from typing import Optional

from repro.faults import SweepConfig, SweepReport, run_sweep


def sweep_or_report(
    fs_name: str,
    seed: int = 0,
    max_sites: Optional[int] = None,
    torn: bool = True,
) -> SweepReport:
    """Run one sweep and return the report (no assertions)."""
    config = SweepConfig(
        fs_name=fs_name, seed=seed, max_sites=max_sites, torn=torn
    )
    return run_sweep(config)


def repro_command(fs_name: str, seed: int, site: int, torn: bool) -> str:
    cmd = (
        f"PYTHONPATH=src python -m repro crashsweep "
        f"--fs {fs_name} --seed {seed} --site {site}"
    )
    return cmd + (" --torn" if torn else "")


def assert_sweep_clean(report: SweepReport, min_sites: int = 0) -> None:
    """Assert every replayed crash point recovered oracle-consistent."""
    assert report.n_sites >= min_sites, (
        f"{report.fs_name}: workload reached only {report.n_sites} crash "
        f"sites (need >= {min_sites}); the standard workload shrank?"
    )
    if report.ok:
        return
    lines = [report.summary()]
    for failure in report.failures:
        lines.append("  " + failure.describe())
        lines.append(
            "    reproduce: "
            + repro_command(
                report.fs_name, report.seed, failure.site, failure.torn
            )
        )
    raise AssertionError("\n".join(lines))


def run_and_check(
    fs_name: str,
    seed: int = 0,
    max_sites: Optional[int] = None,
    min_sites: int = 0,
    torn: bool = True,
) -> SweepReport:
    """Sweep + assert in one call; returns the report for extra checks."""
    report = sweep_or_report(fs_name, seed=seed, max_sites=max_sites, torn=torn)
    assert_sweep_clean(report, min_sites=min_sites)
    return report
