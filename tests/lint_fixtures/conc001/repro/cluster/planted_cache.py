"""Planted CONC001 fixture: module-level mutable state on the serve path.

The module lives under ``repro.cluster`` so the serve-path import
closure reaches it; the cache is both defined and mutated here.
"""

_RESULT_CACHE = {}


def remember(key, value):
    _RESULT_CACHE[key] = value
    return _RESULT_CACHE
