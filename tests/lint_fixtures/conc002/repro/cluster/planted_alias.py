"""Planted CONC002 fixture: state aliasing across shard boundaries."""


class PlantedBackend:
    shared_queue = []  # one list shared by every instance, every shard

    def __init__(self, name):
        self.name = name


def merge(results, acc={}):  # one dict shared by every call
    acc.update(results)
    return acc
