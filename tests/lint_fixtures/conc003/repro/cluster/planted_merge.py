"""Planted CONC003 fixture: merge order from per-shard dict iteration."""


def merge(by_shard):
    out = []
    for name, rows in by_shard.items():  # flagged: unordered merge
        out.extend(rows)
    for name in sorted(by_shard):        # clean: explicit order
        out.append(name)
    return out
