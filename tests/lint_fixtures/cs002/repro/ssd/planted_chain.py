"""Planted CS002 fixture: an unguarded entry chain to a mutation."""


class PlantedFW:
    def mount(self):
        self._replay()

    def _replay(self):
        self.ftl.write_page(0, b"", None)
