"""Planted SCH001 fixture: emitter/validator key drift, both directions.

The path places it at module ``repro.cluster.result`` — one of the
registered schema modules — so the pass picks up the pair below.
"""

_DOC_FIELDS = ("a", "ghost")


def to_json(x):
    return {"a": x, "drifted": 1}


def validate_doc(doc):
    problems = []
    for key in _DOC_FIELDS:
        if key not in doc:
            problems.append(key)
    return problems
