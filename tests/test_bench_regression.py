"""Golden-number benchmark regression smoke (tier-1).

A scaled-down Figure-6 slice: four workloads on the 32 MB test geometry,
ByteFS vs. Ext4 vs. F2FS.  The simulation clock is virtual and every
workload is seeded, so throughput ratios are *deterministic* — the bands
below are not statistical noise margins but room for legitimate
performance-model changes.  A drift outside a band means a change moved
the paper-facing numbers; recalibrate the golden value deliberately (and
re-check the full ``benchmarks/`` suite) rather than widening the band.

Golden ratios were measured at this smoke scale (create 150 files,
12/10/8 ops per thread); the full-scale counterparts live in
``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_workload
from repro.workloads import OLTP, MicroCreate, Varmail, Webserver
from tests.conftest import SMALL_GEOMETRY

#: workload -> (bytefs/ext4 golden ratio, relative tolerance)
GOLDEN_B_OVER_E = {
    "create": (4.88, 0.30),
    "varmail": (4.12, 0.30),
    "oltp": (2.83, 0.30),
    "webserver": (1.10, 0.20),
}


def _workloads():
    return {
        "create": MicroCreate(n_files=150),
        "varmail": Varmail(ops_per_thread=12),
        "oltp": OLTP(ops_per_thread=10),
        "webserver": Webserver(ops_per_thread=8),
    }


@pytest.fixture(scope="module")
def throughput():
    tput = {}
    for wl_name, _ in _workloads().items():
        for fs in ("ext4", "f2fs", "bytefs"):
            # fresh workload instance per run: setup mutates state
            wl = _workloads()[wl_name]
            tput[(fs, wl_name)] = run_workload(
                fs, wl, geometry=SMALL_GEOMETRY
            ).throughput
    return tput


@pytest.mark.parametrize("wl_name", sorted(GOLDEN_B_OVER_E))
def test_bytefs_vs_ext4_golden_ratio(throughput, wl_name):
    golden, tol = GOLDEN_B_OVER_E[wl_name]
    ratio = throughput[("bytefs", wl_name)] / throughput[("ext4", wl_name)]
    assert golden * (1 - tol) <= ratio <= golden * (1 + tol), (
        f"{wl_name}: ByteFS/Ext4 throughput ratio {ratio:.3f} drifted "
        f"outside golden {golden} ±{tol:.0%} — a perf-model change moved "
        f"the paper-facing numbers; recalibrate deliberately"
    )


def test_fig6_ordering_preserved(throughput):
    """The paper's qualitative ordering survives at smoke scale."""
    # metadata-heavy: ByteFS > F2FS > Ext4 (paper fig. 6 create/varmail)
    for wl in ("create", "varmail"):
        b = throughput[("bytefs", wl)]
        f = throughput[("f2fs", wl)]
        e = throughput[("ext4", wl)]
        assert b > f > e, (wl, b, f, e)
    # read-heavy webserver: all three within ~25% (host caching dominates)
    ws = [throughput[(fs, "webserver")] for fs in ("ext4", "f2fs", "bytefs")]
    assert max(ws) / min(ws) < 1.25, ws
