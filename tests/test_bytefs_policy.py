"""ByteFS-specific behaviour: interface selection, variants, traffic.

These tests verify the paper's §4.5/§4.6 policies end-to-end by checking
which interface actually carried the bytes.
"""

import pytest

from repro.core.bytefs import ByteFS, ByteFSVariant, bytefs_config
from repro.fs.extfs import ExtFSConfig
from repro.fs.vfs import O_CREAT, O_RDWR
from repro.stats.traffic import Direction, Interface, StructKind
from tests.conftest import make_stack


def test_variant_flags():
    full = bytefs_config(ByteFSVariant.FULL)
    assert full.metadata_byte and full.fw_tx and full.data_byte_policy
    log = bytefs_config(ByteFSVariant.LOG)
    assert log.metadata_byte and log.fw_tx and not log.data_byte_policy
    dual = bytefs_config(ByteFSVariant.DUAL)
    assert dual.metadata_byte and not dual.fw_tx and not dual.data_byte_policy


def test_metadata_goes_over_byte_interface():
    _clk, st, _dev, fs = make_stack("bytefs")
    fs.mkdir("/d")
    fd = fs.open("/d/f", O_CREAT | O_RDWR)
    fs.write(fd, b"x" * 4096)
    fs.fsync(fd)
    fs.close(fd)
    meta_byte = st.metadata_bytes(Direction.WRITE, Interface.BYTE)
    meta_block = st.metadata_bytes(Direction.WRITE, Interface.BLOCK)
    assert meta_byte > 0
    assert meta_block == 0  # no metadata block writes in steady state


def test_small_overwrite_uses_byte_interface_for_data():
    _clk, st, _dev, fs = make_stack("bytefs")
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"0" * 4096)
    fs.fsync(fd)
    before_byte = st.data_bytes(Direction.WRITE, Interface.BYTE)
    before_block = st.data_bytes(Direction.WRITE, Interface.BLOCK)
    fs.pwrite(fd, 100, b"tiny")        # one dirty cacheline: R = 1/64
    fs.fsync(fd)
    assert st.data_bytes(Direction.WRITE, Interface.BYTE) > before_byte
    assert st.data_bytes(Direction.WRITE, Interface.BLOCK) == before_block
    fs.close(fd)


def test_large_overwrite_uses_block_interface_for_data():
    _clk, st, _dev, fs = make_stack("bytefs")
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"0" * 4096)
    fs.fsync(fd)
    before_block = st.data_bytes(Direction.WRITE, Interface.BLOCK)
    fs.pwrite(fd, 0, b"1" * 2048)      # R = 1/2 >= 1/8 -> block
    fs.fsync(fd)
    assert st.data_bytes(Direction.WRITE, Interface.BLOCK) > before_block
    fs.close(fd)


def test_threshold_boundary_exactly_one_eighth():
    """R == 1/8 must take the block path (policy is R < 1/8 for byte)."""
    _clk, st, _dev, fs = make_stack("bytefs")
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"0" * 4096)
    fs.fsync(fd)
    before_block = st.data_bytes(Direction.WRITE, Interface.BLOCK)
    fs.pwrite(fd, 0, b"1" * 512)       # exactly 8 of 64 lines
    fs.fsync(fd)
    assert st.data_bytes(Direction.WRITE, Interface.BLOCK) > before_block
    fs.close(fd)


def test_split_inode_update_touches_single_half():
    """A size/mtime update persists 64 B (the lower half), not 128 B."""
    _clk, st, _dev, fs = make_stack("bytefs")
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"z" * 100)
    fs.fsync(fd)
    st.reset()
    fs.pwrite(fd, 0, b"z" * 64)  # overwrite: no allocation, lower half only
    inode_bytes = st.host_ssd_bytes(
        (StructKind.INODE,), Direction.WRITE, Interface.BYTE
    )
    assert inode_bytes == 64
    fs.close(fd)


def test_reads_always_use_block_interface():
    _clk, st, _dev, fs = make_stack("bytefs")
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"q" * 8192)
    fs.fsync(fd)
    fs.close(fd)
    # force cold caches
    fs.page_cache.drop_all()
    fs._inodes.clear()
    fs._itable.clear()
    st.reset()
    fd = fs.open("/f", O_RDWR)
    fs.pread(fd, 0, 8192)
    fs.close(fd)
    assert st.host_ssd_bytes(direction=Direction.READ, interface=Interface.BYTE) == 0
    assert st.host_ssd_bytes(direction=Direction.READ, interface=Interface.BLOCK) > 0


def test_dual_variant_runs_on_baseline_firmware():
    _clk, _st, dev, fs = make_stack("bytefs-dual")
    assert dev.config.firmware == "baseline"
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"dual")
    fs.fsync(fd)
    assert fs.pread(fd, 0, 4) == b"dual"
    fs.close(fd)


def test_fw_tx_requires_bytefs_firmware():
    from repro.fs.errors import FSError
    from tests.conftest import make_device

    device = make_device("baseline")
    with pytest.raises(FSError):
        ByteFS(device, ByteFSVariant.FULL)


def test_transaction_ids_monotonic():
    _clk, _st, _dev, fs = make_stack("bytefs")
    t1 = fs._txtable.begin()
    t2 = fs._txtable.begin()
    assert t2 == t1 + 1


def test_cow_duplicate_pages_tracked():
    _clk, _st, _dev, fs = make_stack("bytefs")
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"0" * 4096)
    fs.fsync(fd)
    fs.pwrite(fd, 0, b"1")
    assert fs.page_cache.duplicate_pages() == 1
    fs.fsync(fd)
    assert fs.page_cache.duplicate_pages() == 0  # dropped after writeback
    fs.close(fd)


def test_bytefs_write_traffic_lower_than_ext4():
    def traffic(fs_name):
        _clk, st, _dev, fs = make_stack(fs_name)
        fs.mkdir("/d")
        for i in range(30):
            fd = fs.open(f"/d/f{i}", O_CREAT | O_RDWR)
            fs.write(fd, b"w" * 4096)
            fs.fsync(fd)
            fs.close(fd)
        return st.host_ssd_bytes(direction=Direction.WRITE)

    assert traffic("bytefs") < traffic("ext4") / 3


def test_config_override_threshold():
    cfg = ExtFSConfig(byte_ratio_threshold=1.0)  # byte path for any R
    _clk, st, _dev, fs = make_stack("bytefs")
    fs.cfg.byte_ratio_threshold = 1.1
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"0" * 4096)
    fs.fsync(fd)
    before = st.data_bytes(Direction.WRITE, Interface.BYTE)
    fs.pwrite(fd, 0, b"1" * 4096)
    fs.fsync(fd)
    assert st.data_bytes(Direction.WRITE, Interface.BYTE) > before
    fs.close(fd)
