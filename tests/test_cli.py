"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bytefs" in out
    assert "varmail" in out
    assert "ycsb-a" in out


def test_run_micro(capsys):
    assert main(["run", "--fs", "bytefs", "--workload", "mkdir"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "mkdir" in out


def test_run_ycsb(capsys):
    assert main(["run", "--fs", "ext4", "--workload", "ycsb-c"]) == 0
    out = capsys.readouterr().out
    assert "read" in out


def test_compare(capsys):
    assert main(
        ["compare", "--workload", "create", "--systems", "ext4,bytefs"]
    ) == 0
    out = capsys.readouterr().out
    assert "vs ext4" in out


def test_unknown_workload():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "nonsense"])


def test_unknown_fs_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--fs", "ntfs"])


def test_run_json_echoes_seed_and_config(capsys):
    assert main(
        ["run", "--fs", "bytefs", "--workload", "mkdir", "--format=json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["seed"] == 42
    assert doc["config"]["workload"] == "mkdir"
    assert doc["config"]["log_bytes"] == 1 << 20


# ---------------------------------------------------------------------- #
# repro serve
# ---------------------------------------------------------------------- #

_SERVE = ["serve", "--tenants", "2", "--ops", "10"]


def test_serve_text(capsys):
    assert main(_SERVE + ["--sched", "drr"]) == 0
    out = capsys.readouterr().out
    assert "tn0-mixed" in out
    assert "tn1-light" in out
    assert "p99 us" in out
    assert "total:" in out


def test_serve_json_is_valid_and_deterministic(capsys):
    from repro.cluster import validate_cluster_run

    assert main(_SERVE + ["--format=json"]) == 0
    first = capsys.readouterr().out
    assert main(_SERVE + ["--format=json"]) == 0
    second = capsys.readouterr().out
    assert first == second
    doc = json.loads(first)
    assert validate_cluster_run(doc) == []
    assert doc["schema"] == "repro.cluster.run/v2"
    assert doc["seed"] == 42
    assert {t["spec"]["name"] for t in doc["tenants"]} == {
        "tn0-mixed", "tn1-light",
    }


def test_serve_every_policy_and_multi_device(capsys):
    for sched in ("fifo", "drr", "token-bucket"):
        argv = _SERVE + ["--sched", sched, "--devices", "2", "--format=json"]
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["scheduler"]["policy"] == sched
        assert len(doc["devices"]) == 2


def test_serve_out_writes_document(tmp_path, capsys):
    path = tmp_path / "cluster.json"
    assert main(_SERVE + ["--out", str(path)]) == 0
    capsys.readouterr()
    doc = json.loads(path.read_text())
    assert doc["schema"] == "repro.cluster.run/v2"


def test_serve_rejects_unknown_scheduler():
    with pytest.raises(SystemExit):
        main(["serve", "--sched", "deadline"])


def test_serve_with_fault_reports_recovery(tmp_path, capsys):
    path = tmp_path / "faulted.json"
    argv = _SERVE + ["--fault", "crash:dev0@ops=5", "--out", str(path)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "recovery: dev0" in out
    assert "oracle clean" in out
    doc = json.loads(path.read_text())
    assert doc["fault_plan"] == [
        {"device": 0, "at_s": None, "after_ops": 5, "torn": False}
    ]
    assert len(doc["recovery"]) == 1
    assert doc["recovery"][0]["oracle"]["clean"] is True


def test_serve_bad_fault_spec_is_a_usage_error(capsys):
    assert main(_SERVE + ["--fault", "nonsense"]) == 2
    assert "bad fault spec" in capsys.readouterr().err
    assert main(_SERVE + ["--fault", "crash:dev9@t=0.1"]) == 2
    assert "device 9" in capsys.readouterr().err
