"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bytefs" in out
    assert "varmail" in out
    assert "ycsb-a" in out


def test_run_micro(capsys):
    assert main(["run", "--fs", "bytefs", "--workload", "mkdir"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "mkdir" in out


def test_run_ycsb(capsys):
    assert main(["run", "--fs", "ext4", "--workload", "ycsb-c"]) == 0
    out = capsys.readouterr().out
    assert "read" in out


def test_compare(capsys):
    assert main(
        ["compare", "--workload", "create", "--systems", "ext4,bytefs"]
    ) == 0
    out = capsys.readouterr().out
    assert "vs ext4" in out


def test_unknown_workload():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "nonsense"])


def test_unknown_fs_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--fs", "ntfs"])
