"""repro.cluster: scheduling invariants, QoS isolation, sharding,
determinism, and the versioned result schema.

The headline test is the noisy-neighbour bound: a permanently
backlogged heavy tenant must not be able to blow up a light tenant's
p99 under weighted-fair scheduling the way it does under FIFO.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.cluster import (
    ALL_OPS,
    SCHEMA,
    NamespacedFS,
    TenantSpec,
    default_tenants,
    make_scheduler,
    place_tenant,
    serve_cluster,
    validate_cluster_run,
)
from repro.cluster.sched import AdmissionQueue
from repro.core.bytefs import build_stack
from repro.fs.vfs import O_CREAT, O_RDWR
from repro.sim.clock import SEC
from tests.conftest import SMALL_GEOMETRY

#: A deliberately unfair pair: `heavy` floods 64 KB writes ~2x faster
#: than the device serves them; `light` issues small reads at a gentle
#: rate with a tight SLO.  Both pinned to one device so they contend.
LIGHT = dict(name="light", workload="light", rate_ops_s=2_000.0,
             slo_ms=2.0, n_ops=80, device=0)
HEAVY = dict(name="heavy", workload="heavy", rate_ops_s=50_000.0,
             slo_ms=50.0, n_ops=160, device=0)


def _serve(sched: str, *, light=None, heavy=None, **kw):
    tenants = [
        TenantSpec(**{**LIGHT, **(light or {})}),
        TenantSpec(**{**HEAVY, **(heavy or {})}),
    ]
    kw.setdefault("geometry", SMALL_GEOMETRY)
    kw.setdefault("queue_depth", 1)
    kw.setdefault("max_queue", 256)
    return serve_cluster(tenants, sched=sched, **kw)


# ---------------------------------------------------------------------- #
# the acceptance criterion: weighted-fair bounds the noisy neighbour
# ---------------------------------------------------------------------- #

def test_drr_bounds_noisy_neighbour_tail_vs_fifo():
    fifo = _serve("fifo")
    drr = _serve("drr")
    fifo_p99 = fifo.tenant("light").latency.percentile(ALL_OPS, 99)
    drr_p99 = drr.tenant("light").latency.percentile(ALL_OPS, 99)
    # Under FIFO the light tenant's requests queue behind the heavy
    # backlog; under DRR each round serves the light tenant promptly.
    assert drr_p99 * 2 < fifo_p99, (
        f"DRR p99 {drr_p99 / 1e3:.0f}us not well below "
        f"FIFO p99 {fifo_p99 / 1e3:.0f}us"
    )
    assert (
        drr.tenant("light").slo_violations
        <= fifo.tenant("light").slo_violations
    )
    # Fairness costs the aggressor, not the victim: heavy still gets
    # the residual bandwidth and everyone's requests are all served.
    for result in (fifo, drr):
        for t in result.tenants:
            assert t.submitted == t.ops + t.rejected + t.dropped


def test_fifo_head_of_line_blocking_is_real():
    """The baseline must actually exhibit the pathology the QoS policies
    exist to fix, or the comparison above is vacuous."""
    fifo = _serve("fifo")
    light = fifo.tenant("light")
    p99 = light.latency.percentile(ALL_OPS, 99)
    p50 = light.latency.percentile(ALL_OPS, 50)
    assert p99 > 10 * p50
    assert fifo.tenant("heavy").ops > 0


# ---------------------------------------------------------------------- #
# work conservation (provable from the dispatch log at queue depth 1)
# ---------------------------------------------------------------------- #

@pytest.mark.parametrize("sched", ["fifo", "drr"])
def test_work_conservation(sched):
    result = _serve(sched, keep_dispatch_log=True)
    log = result.dispatch_log
    assert log, "dispatch log empty"
    arrivals = [d["arrival"] for d in log]
    assert log[0]["begin"] == min(arrivals)
    for i in range(len(log) - 1):
        # The device never idles while work is pending: the next grant
        # starts the instant the device frees OR the next request
        # arrives, whichever is later.
        pending_min = min(arrivals[i + 1:])
        expect = max(log[i]["end"], pending_min)
        assert log[i + 1]["begin"] == expect, (
            f"device idled: dispatch {i + 1} began {log[i + 1]['begin']}"
            f" expected {expect}"
        )


def test_token_bucket_is_not_work_conserving():
    """With the heavy tenant rate-capped, the device is deliberately
    left idle: total elapsed grows and heavy throughput drops to the
    cap (which is the whole point of a rate limiter)."""
    capped = _serve(
        "token-bucket",
        heavy=dict(limit_ops_s=500.0, burst_ops=4),
        keep_dispatch_log=True,
    )
    begins = sorted(
        d["begin"] for d in capped.dispatch_log if d["tenant"] == "heavy"
    )
    burst, rate = 4, 500.0
    n = len(begins)
    assert n > burst
    for i in range(n):
        for j in range(i + 1, n):
            window_s = (begins[j] - begins[i]) / SEC
            assert j - i <= burst + rate * window_s + 1, (
                f"{j - i} heavy dispatches in {window_s * 1e3:.2f} ms "
                f"exceeds the {rate} ops/s cap (burst {burst})"
            )


# ---------------------------------------------------------------------- #
# starvation freedom and weighted sharing under skew
# ---------------------------------------------------------------------- #

def test_drr_no_starvation_under_skew():
    """While the light tenant has a request pending, DRR never lets the
    heavy tenant monopolize the device for more than a few grants."""
    result = _serve("drr", keep_dispatch_log=True)
    log = result.dispatch_log
    light_windows = [
        (d["arrival"], d["end"]) for d in log if d["tenant"] == "light"
    ]

    def light_pending(t: float) -> bool:
        return any(a <= t < e for a, e in light_windows)

    worst = run = 0
    for d in log:
        if d["tenant"] == "heavy" and light_pending(d["begin"]):
            run += 1
            worst = max(worst, run)
        else:
            run = 0
    # DRR's starvation bound: one turn spends at most quantum * weight of
    # deficit, so a turn grants at most ceil(quantum / min_service) ops
    # (+1 because the last op may overdraw the deficit).
    quantum = result.scheduler["quantum_ns"]
    min_service = min(
        d["end"] - d["begin"] for d in log if d["tenant"] == "heavy"
    )
    bound = math.ceil(quantum / min_service) + 1
    assert worst <= bound, (
        f"{worst} consecutive heavy grants while light waited "
        f"(DRR turn bound is {bound})"
    )
    assert result.tenant("light").ops == LIGHT["n_ops"]


def test_drr_weights_split_service_proportionally():
    """Two identical permanently-backlogged tenants with weights 4:1
    split device service roughly 4:1."""
    tenants = [
        TenantSpec(name="big", workload="heavy", rate_ops_s=50_000.0,
                   weight=4, n_ops=120, device=0),
        TenantSpec(name="small", workload="heavy", rate_ops_s=50_000.0,
                   weight=1, n_ops=120, device=0),
    ]
    result = serve_cluster(
        tenants, sched="drr", geometry=SMALL_GEOMETRY,
        queue_depth=1, max_queue=512, keep_dispatch_log=True,
    )
    log = result.dispatch_log
    # Only the window where BOTH are backlogged is a fair-share regime:
    # once one side's arrivals dry up, the other rightfully takes all.
    last_start = max(
        min(d["arrival"] for d in log if d["tenant"] == name)
        for name in ("big", "small")
    )
    first_end = min(
        max(d["arrival"] for d in log if d["tenant"] == name)
        for name in ("big", "small")
    )
    big = sum(
        d["end"] - d["begin"] for d in log
        if d["tenant"] == "big" and last_start <= d["begin"] <= first_end
    )
    small = sum(
        d["end"] - d["begin"] for d in log
        if d["tenant"] == "small" and last_start <= d["begin"] <= first_end
    )
    assert small > 0
    ratio = big / small
    assert 2.0 < ratio < 8.0, f"weight-4 : weight-1 service ratio {ratio:.2f}"


# ---------------------------------------------------------------------- #
# admission control
# ---------------------------------------------------------------------- #

def test_admission_control_rejects_when_backlog_full():
    result = _serve("fifo", max_queue=4)
    heavy = result.tenant("heavy")
    assert heavy.rejected > 0
    assert heavy.submitted == heavy.ops + heavy.rejected + heavy.dropped
    # the gentle tenant never hits the cap
    assert result.tenant("light").rejected == 0


def test_max_queue_one_still_serves():
    result = _serve("drr", max_queue=1)
    assert result.tenant("light").ops > 0
    assert result.tenant("heavy").ops > 0


# ---------------------------------------------------------------------- #
# determinism
# ---------------------------------------------------------------------- #

def test_serve_is_deterministic_byte_for_byte():
    docs = [
        json.dumps(
            serve_cluster(
                default_tenants(3, n_ops=30),
                sched="drr", n_devices=2, geometry=SMALL_GEOMETRY,
            ).to_json(),
            sort_keys=True,
        )
        for _ in range(2)
    ]
    assert docs[0] == docs[1]


def test_seed_changes_the_run():
    a = serve_cluster(
        default_tenants(2, n_ops=20), geometry=SMALL_GEOMETRY, seed=1,
    )
    b = serve_cluster(
        default_tenants(2, n_ops=20), geometry=SMALL_GEOMETRY, seed=2,
    )
    assert a.to_json() != b.to_json()
    assert a.to_json()["seed"] == 1


# ---------------------------------------------------------------------- #
# sharding and namespaces
# ---------------------------------------------------------------------- #

def test_placement_deterministic_and_pinnable():
    spec = TenantSpec(name="alpha")
    assert place_tenant(spec, 4) == place_tenant(spec, 4)
    pinned = TenantSpec(name="alpha", device=3)
    assert place_tenant(pinned, 4) == 3
    with pytest.raises(ValueError):
        place_tenant(TenantSpec(name="x", device=4), 4)


def test_tenants_spread_across_devices():
    result = serve_cluster(
        default_tenants(6, n_ops=10),
        n_devices=2, geometry=SMALL_GEOMETRY,
    )
    devices = {t.device for t in result.tenants}
    assert devices == {0, 1}
    assert len(result.devices) == 2
    for summary in result.devices:
        assert summary["app_write"] + summary["app_read"] > 0


def test_namespaces_isolate_identical_paths():
    clock, _stats, _dev, fs = build_stack(
        "bytefs", geometry=SMALL_GEOMETRY
    )
    a = NamespacedFS(fs, "tn-a")
    b = NamespacedFS(fs, "tn-b")
    for ns in (a, b):
        fs.mkdir(ns.root)
        ns.mkdir("/data")
    fd = a.open("/data/f", O_CREAT | O_RDWR)
    a.write(fd, b"from-a")
    a.close(fd)
    assert a.exists("/data/f")
    assert not b.exists("/data/f")
    assert fs.exists("/tn-a/data/f")
    fd = b.open("/data/f", O_CREAT | O_RDWR)
    b.write(fd, b"from-b")
    b.close(fd)
    fd = a.open("/data/f", O_RDWR)
    assert a.read(fd, 16) == b"from-a"
    a.close(fd)


def test_duplicate_tenant_names_rejected():
    with pytest.raises(ValueError):
        serve_cluster(
            [TenantSpec(name="t"), TenantSpec(name="t")],
            geometry=SMALL_GEOMETRY,
        )


# ---------------------------------------------------------------------- #
# result schema
# ---------------------------------------------------------------------- #

def test_result_document_validates():
    result = serve_cluster(
        default_tenants(2, n_ops=15), geometry=SMALL_GEOMETRY,
    )
    doc = result.to_json()
    assert doc["schema"] == SCHEMA
    assert validate_cluster_run(doc) == []
    # the document survives a JSON round trip intact
    assert validate_cluster_run(json.loads(json.dumps(doc))) == []


def test_validator_rejects_malformed_documents():
    result = serve_cluster(
        default_tenants(2, n_ops=10), geometry=SMALL_GEOMETRY,
    )
    doc = result.to_json()

    bad = dict(doc, schema="repro.cluster.run/v0")
    assert any("schema" in p for p in validate_cluster_run(bad))

    bad = {k: v for k, v in doc.items() if k != "tenants"}
    assert any("tenants" in p for p in validate_cluster_run(bad))

    bad = json.loads(json.dumps(doc))
    bad["tenants"][0]["submitted"] += 1
    assert any("ledger" in p or "submitted" in p
               for p in validate_cluster_run(bad))

    assert validate_cluster_run([]) == ["document is not an object"]


def test_latency_and_counters_consistent():
    result = serve_cluster(
        default_tenants(2, n_ops=25), geometry=SMALL_GEOMETRY,
    )
    assert result.ops == sum(t.ops for t in result.tenants)
    assert result.latency.count(ALL_OPS) == result.ops
    for t in result.tenants:
        assert t.latency.count(ALL_OPS) == t.ops
        summary = t.latency.summary(ALL_OPS)
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert not math.isnan(summary["mean"])


# ---------------------------------------------------------------------- #
# tracing integration
# ---------------------------------------------------------------------- #

def test_traced_serve_tags_spans_with_tenant_and_device():
    result = serve_cluster(
        default_tenants(2, n_ops=12), geometry=SMALL_GEOMETRY, traced=True,
    )
    roots = [s for s in result.trace.roots() if s.layer == "cluster"]
    assert len(roots) == result.ops
    tenants = {s.attrs["tenant"] for s in roots}
    assert tenants == {t.name for t in result.tenants}
    assert all("device" in s.attrs for s in roots)
    assert all(s.op in ("read", "write") for s in roots)


def test_queueing_delay_attributed_to_device_queue_group():
    result = _serve("fifo", traced=True)
    roots = [
        s for s in result.trace.roots()
        if s.layer == "cluster" and s.waits
    ]
    assert any(
        any(key.startswith("dev0.nvmeq") for key in s.waits)
        for s in roots
    ), "no span carries admission-queue wait attribution"


# ---------------------------------------------------------------------- #
# scheduler construction
# ---------------------------------------------------------------------- #

def test_make_scheduler_rejects_unknown_policy():
    with pytest.raises(ValueError):
        make_scheduler("cfq", [])


def test_admission_queue_validates_depth():
    with pytest.raises(ValueError):
        AdmissionQueue(0, 0)
    q = AdmissionQueue(1, 3)
    assert q.depth == 3
    assert q.earliest_free() == 0.0
