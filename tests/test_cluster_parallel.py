"""Process-parallel serving: the determinism contract of the reducer.

``serve_cluster(..., workers=K)`` shards the cluster over K worker
processes and reduces the per-shard fragments; the contract
(``docs/PERFORMANCE.md``) is that the merged ``repro.cluster.run/v2``
document — and the ``repro.telemetry.series/v1`` output — is
**byte-identical** to the in-process serial run for every K.  These
tests pin that on the same fixture shapes the golden differential test
uses: a plain multi-device run and a faulted one (mid-run device crash
plus a tenant-less faulted device), both with live telemetry sampled.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import TenantSpec, serve_cluster, validate_cluster_run
from repro.faults.plan import DeviceCrash
from repro.telemetry.series import to_lines, validate_series
from tests.conftest import SMALL_GEOMETRY

SAMPLE_NS = 500_000.0


def _tenants(n, n_devices, n_ops=40):
    return [
        TenantSpec(name=f"t{i}", workload="synthetic", n_ops=n_ops,
                   rate_ops_s=200_000.0, device=i % n_devices)
        for i in range(n)
    ]


def _run(workers, *, faulted, n_devices=2, keep_dispatch_log=False):
    faults = None
    if faulted:
        # One loaded device crashing mid-run, one tenant-less device
        # crashing at a virtual time: covers both recovery paths the
        # reducer has to order.
        n_devices = 3
        faults = [DeviceCrash(device=0, after_ops=9),
                  DeviceCrash(device=2, at_s=0.0001)]
    res = serve_cluster(
        _tenants(4, 2),
        fs_name="bytefs",
        n_devices=n_devices,
        sched="drr",
        seed=42,
        queue_depth=2,
        max_queue=256,
        geometry=SMALL_GEOMETRY,
        faults=faults,
        sample_every_ns=SAMPLE_NS,
        keep_dispatch_log=keep_dispatch_log,
        workers=workers,
    )
    doc = json.dumps(res.to_json(), sort_keys=True)
    series = "\n".join(to_lines(res.telemetry))
    return res, doc, series


@pytest.mark.parametrize("faulted", [False, True],
                         ids=["plain", "faulted"])
def test_workers_byte_identical_to_serial(faulted):
    res0, doc0, series0 = _run(0, faulted=faulted)
    assert not validate_cluster_run(res0.to_json())
    assert not validate_series(
        [json.loads(line) for line in series0.splitlines()]
    )
    for workers in (2, 4):
        res, doc, series = _run(workers, faulted=faulted)
        assert doc == doc0, f"result document differs at workers={workers}"
        assert series == series0, (
            f"telemetry series differs at workers={workers}"
        )


def test_workers_preserve_dispatch_log_order():
    _, doc0, _ = _run(0, faulted=True, keep_dispatch_log=True)
    _, doc2, _ = _run(2, faulted=True, keep_dispatch_log=True)
    assert doc2 == doc0


def test_workers_capped_at_device_count():
    # More workers than devices must not change anything (W = min).
    _, doc0, series0 = _run(0, faulted=False)
    _, doc9, series9 = _run(9, faulted=False)
    assert doc9 == doc0
    assert series9 == series0


def test_parallel_run_reports_live_only_fields():
    res, _, _ = _run(2, faulted=False)
    assert res.wall_s is not None and res.wall_s > 0
    assert res.layer_calls and all(
        v >= 0 for v in res.layer_calls.values()
    )
    # ... and they never leak into the serialized document.
    doc = res.to_json()
    assert "wall_s" not in doc
    assert "layer_calls" not in doc


def test_traced_requires_serial_path():
    with pytest.raises(ValueError, match="serial"):
        serve_cluster(
            _tenants(2, 2), n_devices=2, geometry=SMALL_GEOMETRY,
            traced=True, workers=2,
        )


def test_parallel_rejects_bad_fault_plan_before_spawn():
    # The error contract must not depend on workers: a bad plan raises
    # the same ValueError the serial path raises.
    with pytest.raises(ValueError):
        serve_cluster(
            _tenants(2, 2), n_devices=2, geometry=SMALL_GEOMETRY,
            faults=[DeviceCrash(device=7, after_ops=1)], workers=2,
        )
