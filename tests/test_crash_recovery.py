"""Crash-consistency and recovery integration tests (§4.7, §5.5).

The crash protocol: ``device.power_fail()`` (battery-backed device DRAM
is retained), ``fs.crash()`` (all host-volatile state is lost), then
``fs.remount()`` (firmware RECOVER() plus file-system-level recovery).
Every assertion below re-parses state from the device.
"""

import pytest

from repro.fs.vfs import O_CREAT, O_RDONLY, O_RDWR
from tests.conftest import make_stack


def crash_and_remount(device, fs):
    device.power_fail()
    fs.crash()
    return fs.remount()


@pytest.mark.parametrize("fs_name", ["ext4", "bytefs", "bytefs-log"])
def test_fsynced_data_survives_crash(fs_name):
    _clk, _st, device, fs = make_stack(fs_name)
    fd = fs.open("/safe", O_CREAT | O_RDWR)
    fs.write(fd, b"S" * 6000)
    fs.fsync(fd)
    fs.close(fd)
    crash_and_remount(device, fs)
    assert fs.exists("/safe")
    assert fs.stat("/safe").size == 6000
    fd = fs.open("/safe", O_RDONLY)
    assert fs.pread(fd, 0, 6000) == b"S" * 6000
    fs.close(fd)


def test_ext4_unsynced_create_vanishes():
    _clk, _st, device, fs = make_stack("ext4")
    fd = fs.open("/volatile", O_CREAT | O_RDWR)
    fs.write(fd, b"gone")
    # no fsync, no sync: the journal never committed
    crash_and_remount(device, fs)
    assert not fs.exists("/volatile")


def test_bytefs_unsynced_create_vanishes_like_ext4():
    """Namespace updates ride a batched transaction (committed every N
    ops / on fsync, like JBD2's timer); an un-fsynced create before the
    first commit is discarded at recovery, matching Ext4 semantics."""
    _clk, _st, device, fs = make_stack("bytefs")
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"D" * 100)
    rec = crash_and_remount(device, fs)
    assert rec["discarded_entries"] >= 1
    assert not fs.exists("/f")


def test_bytefs_fsync_commits_pending_namespace_ops():
    """fsync on a freshly created file must also make its creation
    durable (the namespace transaction commits before the inode's)."""
    _clk, _st, device, fs = make_stack("bytefs")
    fs.mkdir("/dir")
    fd = fs.open("/dir/f", O_CREAT | O_RDWR)
    fs.write(fd, b"X" * 200)
    fs.fsync(fd)
    crash_and_remount(device, fs)
    assert fs.exists("/dir/f")
    assert fs.stat("/dir/f").size == 200


@pytest.mark.parametrize("fs_name", ["ext4", "bytefs"])
def test_fsynced_overwrite_survives(fs_name):
    _clk, _st, device, fs = make_stack(fs_name)
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"A" * 8192)
    fs.fsync(fd)
    fs.pwrite(fd, 4000, b"PATCH")
    fs.fsync(fd)
    fs.close(fd)
    crash_and_remount(device, fs)
    fd = fs.open("/f", O_RDONLY)
    assert fs.pread(fd, 4000, 5) == b"PATCH"
    assert fs.pread(fd, 0, 10) == b"A" * 10
    fs.close(fd)


@pytest.mark.parametrize("fs_name", ["ext4", "bytefs"])
def test_directory_tree_survives_crash_after_sync(fs_name):
    _clk, _st, device, fs = make_stack(fs_name)
    fs.mkdir("/a")
    fs.mkdir("/a/b")
    for i in range(20):
        fd = fs.open(f"/a/b/f{i}", O_CREAT | O_RDWR)
        fs.write(fd, bytes([i]) * 100)
        fs.close(fd)
    fs.sync()
    crash_and_remount(device, fs)
    assert fs.listdir("/a") == ["b"]
    assert len(fs.listdir("/a/b")) == 20
    fd = fs.open("/a/b/f7", O_RDONLY)
    assert fs.pread(fd, 0, 100) == bytes([7]) * 100
    fs.close(fd)


@pytest.mark.parametrize("fs_name", ["ext4", "bytefs"])
def test_unlink_survives_crash_after_fsyncish_boundary(fs_name):
    _clk, _st, device, fs = make_stack(fs_name)
    fd = fs.open("/dead", O_CREAT | O_RDWR)
    fs.write(fd, b"x" * 4096)
    fs.fsync(fd)
    fs.close(fd)
    fs.unlink("/dead")
    fs.sync()
    crash_and_remount(device, fs)
    assert not fs.exists("/dead")


def test_ext4_journal_replay_count():
    _clk, _st, device, fs = make_stack("ext4")
    for i in range(3):
        fd = fs.open(f"/j{i}", O_CREAT | O_RDWR)
        fs.write(fd, b"j" * 1000)
        fs.fsync(fd)
        fs.close(fd)
    rec = crash_and_remount(device, fs)
    assert rec["journal_txs_replayed"] >= 1
    for i in range(3):
        assert fs.exists(f"/j{i}")


def test_f2fs_checkpoint_plus_roll_forward():
    """Checkpointed state recovers; a post-checkpoint *fsynced* file is
    rolled forward from the node log (F2FS's fsync recovery); a
    post-checkpoint un-fsynced file rolls back."""
    _clk, _st, device, fs = make_stack("f2fs")
    fd = fs.open("/before", O_CREAT | O_RDWR)
    fs.write(fd, b"B" * 3000)
    fs.close(fd)
    fs.sync()  # checkpoint
    fd = fs.open("/after", O_CREAT | O_RDWR)
    fs.write(fd, b"A" * 3000)
    fs.fsync(fd)
    fs.close(fd)
    fd = fs.open("/unsynced", O_CREAT | O_RDWR)
    fs.write(fd, b"U" * 1000)
    rec = crash_and_remount(device, fs)
    assert fs.exists("/before")
    fd = fs.open("/before", O_RDONLY)
    assert fs.pread(fd, 0, 3000) == b"B" * 3000
    fs.close(fd)
    # fsynced node rolled forward
    assert rec["rolled_forward"] >= 1
    assert fs.exists("/after")
    fd = fs.open("/after", O_RDONLY)
    assert fs.pread(fd, 0, 3000) == b"A" * 3000
    fs.close(fd)
    # un-fsynced create rolls back to the checkpoint
    assert not fs.exists("/unsynced")


def test_f2fs_roll_forward_survives_second_crash():
    _clk, _st, device, fs = make_stack("f2fs")
    fs.sync()
    fd = fs.open("/rf", O_CREAT | O_RDWR)
    fs.write(fd, b"R" * 2000)
    fs.fsync(fd)
    fs.close(fd)
    crash_and_remount(device, fs)
    assert fs.exists("/rf")
    crash_and_remount(device, fs)  # recovery checkpointed: still there
    fd = fs.open("/rf", O_RDONLY)
    assert fs.pread(fd, 0, 2000) == b"R" * 2000
    fs.close(fd)


@pytest.mark.parametrize("fs_name", ["nova", "pmfs"])
def test_dax_fs_writes_durable_at_completion(fs_name):
    _clk, _st, device, fs = make_stack(fs_name)
    fs.mkdir("/d")
    fd = fs.open("/d/f", O_CREAT | O_RDWR)
    fs.write(fd, b"immediately durable")
    # no fsync needed for NVM-style file systems
    crash_and_remount(device, fs)
    assert fs.exists("/d/f")
    fd = fs.open("/d/f", O_RDONLY)
    assert fs.pread(fd, 0, 100) == b"immediately durable"
    fs.close(fd)


@pytest.mark.parametrize("fs_name", ["nova", "pmfs"])
def test_dax_fs_namespace_ops_survive(fs_name):
    _clk, _st, device, fs = make_stack(fs_name)
    fd = fs.open("/keep", O_CREAT | O_RDWR)
    fs.write(fd, b"k")
    fs.close(fd)
    fd = fs.open("/kill", O_CREAT | O_RDWR)
    fs.close(fd)
    fs.unlink("/kill")
    fs.rename("/keep", "/kept")
    crash_and_remount(device, fs)
    assert fs.exists("/kept")
    assert not fs.exists("/keep")
    assert not fs.exists("/kill")


def test_recovery_reports_duration():
    _clk, _st, device, fs = make_stack("bytefs")
    for i in range(10):
        fd = fs.open(f"/r{i}", O_CREAT | O_RDWR)
        fs.write(fd, b"r" * 500)
        fs.fsync(fd)
        fs.close(fd)
    rec = crash_and_remount(device, fs)
    assert rec["duration_ns"] > 0
    assert rec["flushed_pages"] >= 1


def test_double_crash(any_fs_with_device=None):
    """Crashing twice in a row must still recover cleanly."""
    _clk, _st, device, fs = make_stack("bytefs")
    fd = fs.open("/x", O_CREAT | O_RDWR)
    fs.write(fd, b"1" * 4096)
    fs.fsync(fd)
    fs.close(fd)
    crash_and_remount(device, fs)
    fd = fs.open("/x", O_RDWR)
    fs.pwrite(fd, 0, b"2")
    fs.fsync(fd)
    fs.close(fd)
    crash_and_remount(device, fs)
    fd = fs.open("/x", O_RDONLY)
    assert fs.pread(fd, 0, 2) == b"21"
    fs.close(fd)


def test_clean_unmount_then_mount_preserves_everything():
    from repro.fs.extfs import ExtFS
    _clk, _st, device, fs = make_stack("ext4")
    fs.mkdir("/data")
    fd = fs.open("/data/file", O_CREAT | O_RDWR)
    fs.write(fd, b"persistent" * 100)
    fs.close(fd)
    fs.unmount()
    fs2 = ExtFS(device, format_device=False)
    assert fs2.exists("/data/file")
    fd = fs2.open("/data/file", O_RDONLY)
    assert fs2.pread(fd, 0, 10) == b"persistent"
    fs2.close(fd)
