"""Oracle-checked crash-consistency sweeps (ISSUE acceptance tests).

The tier-1 tests replay a bounded, evenly-spaced subset of crash sites
for the three acceptance file systems and must always pass.  The
``crashsweep``-marked tests replay *every* site for *every* file system
and are opt-in (``pytest -m crashsweep``); CI runs them with
``--max-sites=200``.

A failure message embeds the exact command that reproduces the failing
crash point standalone, e.g.::

    PYTHONPATH=src python -m repro crashsweep --fs f2fs --seed 0 --site 104
"""

from __future__ import annotations

import pytest

from tests.crashgen import run_and_check, sweep_or_report

#: ISSUE acceptance floor: the standard workload must reach at least this
#: many distinct crash sites on each acceptance file system.
MIN_SITES = 100

#: Tier-1 replay bound (overridable with ``pytest --max-sites=N``).
TIER1_MAX_REPLAYS = 120

ACCEPTANCE_FS = ["ext4", "bytefs", "bytefs-log"]

#: bytefs-dual (byte-addressed metadata, *no* firmware transactions) is
#: the paper's ablation point: compound namespace ops such as rename are
#: not atomic without the transaction log, and the sweep demonstrates it.
EXTENDED_FS = [
    "ext4",
    "f2fs",
    "nova",
    "pmfs",
    "bytefs",
    "bytefs-log",
    pytest.param(
        "bytefs-dual",
        marks=pytest.mark.xfail(
            reason="no firmware transactions: rename is not crash-atomic "
            "(the ablation that motivates ByteFS's transaction log)",
            strict=True,
        ),
    ),
]


def _max_replays(request) -> int:
    opt = request.config.getoption("--max-sites")
    return TIER1_MAX_REPLAYS if opt is None else opt


@pytest.mark.parametrize("fs_name", ACCEPTANCE_FS)
def test_crash_sweep_bounded(fs_name, request):
    """Every replayed crash point recovers to an oracle-consistent state."""
    report = run_and_check(
        fs_name, seed=0, max_sites=_max_replays(request), min_sites=MIN_SITES
    )
    # The bound selects sites evenly over the whole trace, so both early
    # (mkfs-adjacent) and late (post-sync quiesced) sites are exercised.
    assert report.sites_tested[0] == 0
    assert report.sites_tested[-1] == report.n_sites - 1


def test_crash_sweep_covers_all_mutation_kinds():
    """The standard workload reaches every class of crash site."""
    report = sweep_or_report("bytefs", max_sites=0)
    labels = set(report.label_histogram)
    # Byte-path MMIO stores, NVMe block writes, and the firmware log
    # must all appear; a missing class means part of the crash surface
    # went dark.
    assert "mssd.store" in labels, labels
    assert "mssd.write_block" in labels, labels
    assert "fw.log_append" in labels, labels


def test_crash_sweep_deterministic_enumeration():
    """Same (fs, seed) -> identical site count and label histogram."""
    a = sweep_or_report("ext4", seed=0, max_sites=0)
    b = sweep_or_report("ext4", seed=0, max_sites=0)
    assert a.n_sites == b.n_sites
    assert a.label_histogram == b.label_histogram


@pytest.mark.crashsweep
@pytest.mark.parametrize("fs_name", EXTENDED_FS)
def test_crash_sweep_full(fs_name, request):
    """Exhaustive sweep: every enumerated site, torn variants included."""
    opt = request.config.getoption("--max-sites")
    run_and_check(fs_name, seed=0, max_sites=opt, min_sites=MIN_SITES)
