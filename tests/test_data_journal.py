"""Tests for ByteFS data-journaling mode (§4.6: JBD2 combined with
ByteFS transactions for large block writes)."""

import pytest

from repro.core.bytefs import ByteFS, ByteFSVariant
from repro.fs.extfs import ExtFSConfig
from repro.fs.vfs import O_CREAT, O_RDWR
from repro.sim.clock import VirtualClock
from repro.ssd.device import MSSD, MSSDConfig
from repro.stats.traffic import Direction, Interface, StructKind, TrafficStats
from tests.conftest import SMALL_GEOMETRY


def make_dj_stack():
    clock = VirtualClock(1)
    stats = TrafficStats()
    device = MSSD(
        MSSDConfig(geometry=SMALL_GEOMETRY, firmware="bytefs"), clock, stats
    )
    cfg = ExtFSConfig(data_journal=True)
    fs = ByteFS(device, ByteFSVariant.FULL, cfg)
    stats.reset()
    return clock, stats, device, fs


def test_data_journal_flag_set():
    _clk, _st, _dev, fs = make_dj_stack()
    assert fs.cfg.data_journal


def test_large_write_journaled_then_checkpointed():
    _clk, st, _dev, fs = make_dj_stack()
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"J" * 8192)
    fs.fsync(fd)
    fs.close(fd)
    # the data blocks went to the journal (JOURNAL kind block writes)
    journal_w = st.host_ssd_bytes(
        (StructKind.JOURNAL,), Direction.WRITE, Interface.BLOCK
    )
    assert journal_w >= 8192
    assert st.counters.get("journaled_data_writebacks", 0) >= 2


def test_data_survives_crash_via_journal_replay():
    _clk, _st, device, fs = make_dj_stack()
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"D" * 6000)
    fs.fsync(fd)
    fs.close(fd)
    device.power_fail()
    fs.crash()
    rec = fs.remount()
    assert rec["journal_txs_replayed"] >= 1
    fd = fs.open("/f", O_RDWR)
    assert fs.pread(fd, 0, 6000) == b"D" * 6000
    fs.close(fd)


def test_read_after_journaled_write_is_coherent():
    """Before checkpoint, the in-place block is stale; reads must come
    from the page cache."""
    _clk, _st, _dev, fs = make_dj_stack()
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"A" * 4096)
    fs.fsync(fd)
    fs.pwrite(fd, 0, b"B" * 4096)
    fs.fsync(fd)
    assert fs.pread(fd, 0, 4)[:4] == b"BBBB"
    fs.close(fd)
    fs.unmount()  # checkpoint forces in-place convergence
    fd = fs.open("/f", O_RDWR)
    assert fs.pread(fd, 0, 4) == b"BBBB"
    fs.close(fd)


def test_small_writes_still_take_byte_path():
    _clk, st, _dev, fs = make_dj_stack()
    fd = fs.open("/f", O_CREAT | O_RDWR)
    fs.write(fd, b"0" * 4096)
    fs.fsync(fd)
    before = st.data_bytes(Direction.WRITE, Interface.BYTE)
    fs.pwrite(fd, 7, b"x")
    fs.fsync(fd)
    # the 1-line overwrite goes via the byte interface (transactional
    # redo logging in the firmware), not the JBD2 data journal
    assert st.data_bytes(Direction.WRITE, Interface.BYTE) > before
    fs.close(fd)
